#!/usr/bin/env python3
"""Diff BENCH_*.json wall-clock times against the checked-in baselines.

Usage: bench_diff.py BASELINE_DIR NEW_DIR [--ratio R] [--min-seconds S]
                     [--normalize]

Compares each experiment's wall_clock_seconds in NEW_DIR against the
record of the same name in BASELINE_DIR. The tolerance is deliberately
generous (default: fail only on > 2x regressions). With --normalize the
per-experiment ratios are divided by their median first, which cancels
a uniformly slower/faster host (e.g. a CI runner vs the dev box that
recorded the baselines) and flags only experiments that regressed
*relative to the rest of the suite*. Records whose baseline is below
--min-seconds are reported but never fail (they are timer noise).
Missing or failed (exit_code != 0) records always fail.
"""

import argparse
import json
import pathlib
import statistics
import sys


def load_records(directory):
    records = {}
    for path in sorted(pathlib.Path(directory).glob("BENCH_*.json")):
        with open(path) as f:
            rec = json.load(f)
        records[rec["experiment"]] = rec
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir")
    parser.add_argument("new_dir")
    parser.add_argument("--ratio", type=float, default=2.0,
                        help="fail when new wall clock exceeds baseline "
                             "by more than this factor (default 2.0)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="baselines below this are never failed "
                             "(timer noise; default 0.05)")
    parser.add_argument("--normalize", action="store_true",
                        help="divide ratios by their median to cancel "
                             "host speed differences before gating")
    parser.add_argument("--max-raw-ratio", type=float, default=10.0,
                        help="backstop: fail on raw (unnormalized) ratios "
                             "above this even under --normalize, so a "
                             "broad regression cannot hide inside the "
                             "median it shifts (default 10.0)")
    args = parser.parse_args()

    baseline = load_records(args.baseline_dir)
    new = load_records(args.new_dir)
    if not baseline:
        print(f"error: no BENCH_*.json records in {args.baseline_dir}")
        return 1

    failures = []
    comparable = {}  # name -> (base_wall, new_wall, ratio)
    for name, base_rec in sorted(baseline.items()):
        new_rec = new.get(name)
        if new_rec is None:
            failures.append(f"{name}: record missing from {args.new_dir}")
            continue
        if new_rec.get("exit_code", 1) != 0:
            failures.append(f"{name}: run failed "
                            f"(exit_code={new_rec.get('exit_code')})")
            continue
        base_wall = base_rec["wall_clock_seconds"]
        new_wall = new_rec["wall_clock_seconds"]
        ratio = new_wall / base_wall if base_wall > 0 else float("inf")
        comparable[name] = (base_wall, new_wall, ratio)

    sizable = {name: entry for name, entry in comparable.items()
               if entry[0] >= args.min_seconds}
    host_factor = 1.0
    if args.normalize and sizable:
        host_factor = statistics.median(r for _, _, r in sizable.values())
        print(f"host speed factor (median ratio): {host_factor:.2f}x")

    for name, (base_wall, new_wall, ratio) in sorted(comparable.items()):
        adjusted = ratio / host_factor
        line = (f"{name}: baseline {base_wall:.3f}s -> new {new_wall:.3f}s "
                f"({ratio:.2f}x raw, {adjusted:.2f}x adjusted)")
        if name not in sizable:
            print(f"  skip  {line}  [baseline below --min-seconds]")
        elif adjusted > args.ratio:
            print(f"  FAIL  {line}  [> {args.ratio:.1f}x]")
            failures.append(f"{name}: {adjusted:.2f}x regression")
        elif ratio > args.max_raw_ratio:
            print(f"  FAIL  {line}  [raw > {args.max_raw_ratio:.1f}x]")
            failures.append(f"{name}: {ratio:.2f}x raw regression")
        else:
            print(f"  ok    {line}")

    extra = sorted(set(new) - set(baseline))
    for name in extra:
        print(f"  note  {name}: new experiment with no baseline")

    if failures:
        print(f"\n{len(failures)} bench regression(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno bench regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
