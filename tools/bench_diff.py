#!/usr/bin/env python3
"""Diff BENCH_*.json records against the checked-in baselines.

Usage: bench_diff.py BASELINE_DIR NEW_DIR [--ratio R] [--min-seconds S]
                     [--normalize] [--series-z Z] [--series-rel F]

Compares each experiment's wall_clock_seconds in NEW_DIR against the
record of the same name in BASELINE_DIR. The tolerance is deliberately
generous (default: fail only on > 2x regressions). With --normalize the
per-experiment ratios are divided by their median first, which cancels
a uniformly slower/faster host (e.g. a CI runner vs the dev box that
recorded the baselines) and flags only experiments that regressed
*relative to the rest of the suite*. Records whose baseline is below
--min-seconds are reported but never fail (they are timer noise).
Missing or failed (exit_code != 0) records always fail.

With --series-z Z (> 0), the *measured values* are gated too, not just
the wall clock: every series entry is matched by (name, params) across
the two directories and the means are compared with a two-sample
z-statistic, |m_new - m_base| / sqrt(se_base^2 + se_new^2). Runs are
seed-deterministic, so on unchanged code the means are identical; a
shift larger than Z combined standard errors *and* larger than
--series-rel relative to the baseline mean means the sampled
distribution itself moved — either a real behavioral regression or an
intentional change that must come with refreshed baselines. Baseline
series missing from the new record always fail (renames count as
regressions in record continuity); new series with no baseline are
reported only.

Cross-host caveat: "seed-deterministic" holds per libm. Trajectories
pass RNG draws through std::log/std::pow, which are not correctly
rounded, so a runner with a different libm than the baseline host can
produce a 1-ULP difference that reorders events and shifts a
small-reps mean past the gate. If the series gate fails on a host
change (glibc upgrade, new runner image) while the code is untouched,
regenerate the baselines on the new host rather than loosening the
gate.
"""

import argparse
import json
import math
import pathlib
import re
import statistics
import sys


def load_records(directory):
    records = {}
    for path in sorted(pathlib.Path(directory).glob("BENCH_*.json")):
        with open(path) as f:
            rec = json.load(f)
        records[rec["experiment"]] = rec
    return records


def series_key(entry):
    """(name, canonical params) — the identity of one measured series."""
    return (entry["name"],
            json.dumps(entry.get("params", {}), sort_keys=True))


def diff_series(name, base_rec, new_rec, z_gate, rel_floor, skip_re):
    """Stderr-aware mean comparison of every matched series entry.

    Returns (failures, n_compared, worst_line). Entries with fewer than
    2 samples (no stderr estimate) are compared for exact equality of
    their single sample instead of z-scored. Series matching `skip_re`
    (wall-time measurements like ns_per_op, which track the host rather
    than the seeded process) are exempt.
    """
    base_series = {series_key(s): s for s in base_rec.get("series", [])}
    new_series = {series_key(s): s for s in new_rec.get("series", [])}
    failures = []
    compared = 0
    worst = (0.0, None)  # (z, line)
    for key, base in sorted(base_series.items()):
        if skip_re.search(base["name"]):
            continue
        label = f"{name}:{base['name']}{key[1]}"
        new = new_series.get(key)
        if new is None:
            failures.append(f"{label}: series missing from new record")
            continue
        compared += 1
        m0, m1 = base["mean"], new["mean"]
        se = math.hypot(base.get("stderr", 0.0), new.get("stderr", 0.0))
        delta = abs(m1 - m0)
        rel = delta / abs(m0) if m0 != 0.0 else (0.0 if delta == 0.0
                                                 else float("inf"))
        if se > 0.0:
            z = delta / se
            if z > worst[0]:
                worst = (z, f"{label}: base {m0:.4g} -> new {m1:.4g} "
                            f"({z:.1f} combined stderr, {rel:.1%})")
            if z > z_gate and rel > rel_floor:
                failures.append(
                    f"{label}: mean {m0:.4g} -> {m1:.4g} "
                    f"({z:.1f} combined stderr > {z_gate:.1f}, "
                    f"{rel:.1%} > {rel_floor:.0%})")
        elif rel > rel_floor:
            # No stderr on either side (reps < 2): seed-deterministic
            # samples should still match to within the relative floor.
            failures.append(
                f"{label}: mean {m0:.4g} -> {m1:.4g} with no stderr "
                f"estimate ({rel:.1%} > {rel_floor:.0%})")
    return failures, compared, worst[1]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir")
    parser.add_argument("new_dir")
    parser.add_argument("--ratio", type=float, default=2.0,
                        help="fail when new wall clock exceeds baseline "
                             "by more than this factor (default 2.0)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="baselines below this are never failed "
                             "(timer noise; default 0.05)")
    parser.add_argument("--normalize", action="store_true",
                        help="divide ratios by their median to cancel "
                             "host speed differences before gating")
    parser.add_argument("--max-raw-ratio", type=float, default=10.0,
                        help="backstop: fail on raw (unnormalized) ratios "
                             "above this even under --normalize, so a "
                             "broad regression cannot hide inside the "
                             "median it shifts (default 10.0)")
    parser.add_argument("--series-z", type=float, default=0.0,
                        help="also gate per-series means: fail when a "
                             "matched series' means differ by more than "
                             "this many combined standard errors (0 "
                             "disables, default 0; 6 is a generous gate)")
    parser.add_argument("--series-rel", type=float, default=0.10,
                        help="relative-change floor for the series gate: "
                             "shifts below this fraction of the baseline "
                             "mean never fail even at high z (default "
                             "0.10)")
    parser.add_argument(
        "--series-skip",
        default=r"^(ns_per_|trace_barrier_wait_frac$|trace_steal_count$)",
        help="regex of series names exempt from the mean gate — "
             "wall-time or schedule measurements that track the host "
             "rather than the seeded process. The trace layer's "
             "barrier-wait fraction and steal count are schedule "
             "properties (their presence and value depend on thread "
             "timing); its queue-depth quantiles are trajectory "
             "properties and stay gated. (default "
             "'^(ns_per_|trace_barrier_wait_frac$|trace_steal_count$)')")
    args = parser.parse_args()

    baseline = load_records(args.baseline_dir)
    new = load_records(args.new_dir)
    if not baseline:
        print(f"error: no BENCH_*.json records in {args.baseline_dir}")
        return 1

    failures = []
    comparable = {}  # name -> (base_wall, new_wall, ratio)
    for name, base_rec in sorted(baseline.items()):
        new_rec = new.get(name)
        if new_rec is None:
            failures.append(f"{name}: record missing from {args.new_dir}")
            continue
        if new_rec.get("exit_code", 1) != 0:
            failures.append(f"{name}: run failed "
                            f"(exit_code={new_rec.get('exit_code')})")
            continue
        base_wall = base_rec["wall_clock_seconds"]
        new_wall = new_rec["wall_clock_seconds"]
        ratio = new_wall / base_wall if base_wall > 0 else float("inf")
        comparable[name] = (base_wall, new_wall, ratio)

    sizable = {name: entry for name, entry in comparable.items()
               if entry[0] >= args.min_seconds}
    host_factor = 1.0
    if args.normalize and sizable:
        host_factor = statistics.median(r for _, _, r in sizable.values())
        print(f"host speed factor (median ratio): {host_factor:.2f}x")

    for name, (base_wall, new_wall, ratio) in sorted(comparable.items()):
        adjusted = ratio / host_factor
        line = (f"{name}: baseline {base_wall:.3f}s -> new {new_wall:.3f}s "
                f"({ratio:.2f}x raw, {adjusted:.2f}x adjusted)")
        if name not in sizable:
            print(f"  skip  {line}  [baseline below --min-seconds]")
        elif adjusted > args.ratio:
            print(f"  FAIL  {line}  [> {args.ratio:.1f}x]")
            failures.append(f"{name}: {adjusted:.2f}x regression")
        elif ratio > args.max_raw_ratio:
            print(f"  FAIL  {line}  [raw > {args.max_raw_ratio:.1f}x]")
            failures.append(f"{name}: {ratio:.2f}x raw regression")
        else:
            print(f"  ok    {line}")

    if args.series_z > 0:
        skip_re = re.compile(args.series_skip)
        print(f"\nper-series mean gate (z > {args.series_z:.1f} and "
              f"rel > {args.series_rel:.0%}, skipping "
              f"'{args.series_skip}'):")
        total_compared = 0
        for name in sorted(comparable):
            series_failures, compared, worst = diff_series(
                name, baseline[name], new[name], args.series_z,
                args.series_rel, skip_re)
            total_compared += compared
            for failure in series_failures:
                print(f"  FAIL  {failure}")
                failures.append(failure)
            if not series_failures and worst is not None:
                print(f"  ok    {worst}")
        print(f"  compared {total_compared} series across "
              f"{len(comparable)} experiments")

    extra = sorted(set(new) - set(baseline))
    for name in extra:
        print(f"  note  {name}: new experiment with no baseline")

    if failures:
        print(f"\n{len(failures)} bench regression(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno bench regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
