#!/usr/bin/env python3
"""Generate (or verify) docs/EXPERIMENTS.md from the experiment registry.

The registry inside the `plurality_exp` binary is the single source of
truth for the experiment catalog; `--describe-all` prints it as
deterministic markdown. This script wraps that invocation:

    tools/gen_experiment_docs.py --binary build/plurality_exp          # write
    tools/gen_experiment_docs.py --binary build/plurality_exp --check  # CI gate

`--check` exits non-zero (with a unified diff) when the checked-in file
drifts from the registry — add or edit an experiment's registrar and
rerun without --check to refresh.
"""

import argparse
import difflib
import pathlib
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--binary",
        default="build/plurality_exp",
        help="path to the plurality_exp binary (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default="docs/EXPERIMENTS.md",
        help="catalog file to write or verify (default: %(default)s)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify only: fail if the file differs from the registry",
    )
    args = parser.parse_args()

    result = subprocess.run(
        [args.binary, "--describe-all"],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        sys.stderr.write(result.stderr)
        sys.stderr.write(f"error: '{args.binary} --describe-all' failed "
                         f"with exit code {result.returncode}\n")
        return 1
    generated = result.stdout

    out_path = pathlib.Path(args.out)
    if args.check:
        current = out_path.read_text() if out_path.exists() else ""
        if current == generated:
            print(f"{out_path} is up to date with the registry")
            return 0
        sys.stderr.writelines(
            difflib.unified_diff(
                current.splitlines(keepends=True),
                generated.splitlines(keepends=True),
                fromfile=str(out_path),
                tofile="registry (--describe-all)",
            )
        )
        sys.stderr.write(
            f"\nerror: {out_path} is stale; regenerate it with "
            f"`{sys.argv[0]} --binary {args.binary}`\n"
        )
        return 1

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(generated)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
