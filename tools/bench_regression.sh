#!/usr/bin/env bash
# Reduced-scale bench snapshot: runs every registered experiment with
# the same per-experiment overrides the checked-in baselines under
# bench/results/ were produced with, writing one BENCH_<name>.json per
# experiment into OUT_DIR. Pair with tools/bench_diff.py to catch
# wall-clock regressions:
#
#   tools/bench_regression.sh build/plurality_exp /tmp/bench_now
#   tools/bench_diff.py bench/results /tmp/bench_now
#
# To refresh the baselines themselves, point OUT_DIR at bench/results.

set -euo pipefail

BIN=${1:-build/plurality_exp}
OUT_DIR=${2:-bench_snapshot}

mkdir -p "$OUT_DIR"

run() { "$BIN" --out-dir="$OUT_DIR" --csv "$@" > /dev/null; }

# Scale keeps this baseline above bench_diff's --min-seconds floor (the
# censored community/clustered placements burn the full horizon) so the
# placement sweep is actually gated in CI.
run --exp=adversarial_placements --reps=3 --n=1024 --horizon=2000
run --exp=async_main           --reps=2 --k=4 --max_n=8192 --n=4096
run --exp=bias_threshold       --reps=4 --n=4096
run --exp=clock_skew           --reps=2 --n=1024
run --exp=crash_faults         --reps=2 --n=1024
run --exp=delta_ablation       --reps=2 --n=1024
run --exp=endgame              --reps=3 --max_n=8192 --n=4096
# Reduced-scale R2: budgets scale with n, so n=1024 sweeps {4, 16, 64}
# over both arms; the metastable static-boundary cells at budget 64 burn
# horizon, keeping the record above bench_diff's --min-seconds floor.
run --exp=late_adversary       --reps=3 --n=1024
# Scale keeps this baseline above bench_diff's --min-seconds floor so
# the latency-model sweep is actually gated in CI. --shards is pinned:
# the const_fold_sharded series keys on the resolved shard count, and
# an unpinned --shards=0 resolves to the host's core count, which would
# make the series identity (and so the --series-z gate) host-dependent.
run --exp=latency_models       --reps=4 --n=4096 --shards=1
# Scale keeps this baseline above bench_diff's --min-seconds floor so
# the M1b/M1c engine comparison is actually gated in CI. The M1e
# LLC-crossing ladder is pinned to a reduced 64k..1M sweep at a fixed
# 2M-tick budget: big enough that the largest point leaves a typical
# LLC (3 MB of hot state at n=1M) and the section clears the
# min-seconds floor, small enough for every-PR CI.
run --exp=microbench_engines   --reps=2 --iters=200000 --n=4096 --m1c_iters=2000000 \
    --m1e_min_n=65536 --m1e_max_n=1048576 --m1e_iters=2000000
run --exp=microbench_rng       --reps=2 --iters=100000
run --exp=model_equivalence    --reps=3 --n=1024
run --exp=one_extra_bit        --reps=2 --k=8 --max_k=16 --n=16384
run --exp=quadratic_growth     --reps=2 --n=4096
# Scale keeps the R1 rate x {sequential, sharded} sweep above
# bench_diff's --min-seconds floor so the perturbation path is
# actually gated in CI.
run --exp=recovery_injection   --reps=4 --n=8192
run --exp=response_delays      --reps=2 --n=1024
run --exp=sync_gadget_ablation --reps=2 --max_n=8192
run --exp=tick_concentration   --reps=2 --max_n=4096 --t=8
run --exp=topologies           --reps=2 --horizon=200 --n=1024
run --exp=two_choices_lower_bound --reps=2 --max_k=16 --n=4096
run --exp=two_choices_scaling  --reps=2 --max_n=4096

# Full-composition snapshot: community graph x adversarial placement x
# heavy-tail latency x sharded engine, through the unified RunPlan
# dispatch. Written into its own subdirectory (and diffed with a second
# bench_diff invocation) so it does not clobber the default-engine
# record of the same experiment above. --shards is pinned for the same
# host-independence reason as the latency_models entry.
mkdir -p "$OUT_DIR/sharded_composition"
"$BIN" --out-dir="$OUT_DIR/sharded_composition" --csv \
  --exp=adversarial_placements --reps=3 --n=1024 --horizon=1000 \
  --engine=sharded --shards=2 --placement=adversarial_boundary \
  --latency=pareto --latency-mean=0.5 > /dev/null

# Parallel-catalog wall-clock entry: the heaviest sweep again, but on
# the work-stealing executor with every host core (--jobs=0 resolves to
# the core count). By the determinism contract the series are
# bit-identical to the serial record above — what this entry adds is a
# gated wall clock for the parallel path, and an end-to-end exercise of
# the executor dispatch in every snapshot. Own subdirectory so the
# record name does not clobber the serial one.
mkdir -p "$OUT_DIR/parallel_catalog"
"$BIN" --out-dir="$OUT_DIR/parallel_catalog" --csv \
  --exp=two_choices_scaling --reps=2 --max_n=4096 --jobs=0 > /dev/null

echo "wrote $(ls "$OUT_DIR"/BENCH_*.json "$OUT_DIR"/sharded_composition/BENCH_*.json "$OUT_DIR"/parallel_catalog/BENCH_*.json | wc -l) records to $OUT_DIR"
