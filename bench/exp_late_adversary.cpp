// R2 — late adversary vs static placement (ours, after
// Robinson–Scheideler–Setzer's adversarially corrupted configurations,
// arXiv:1805.00774): an adversary allowed to corrupt b opinions can
// spend them all *before* the run (flip b plurality nodes to the
// runner-up and seed them on the SBM cut — the strongest static
// placement, W1's adversarial_boundary), or hold them back and spend
// them *adaptively*: observe the support counts every interval and
// re-color the highest-impact current-plurality nodes while the run is
// trying to converge. Same corruption count, different timing. A
// strong majority absorbs any statically placed corruption almost
// instantly — even seeded on the cut — so in the regime where the
// static gap stays comfortable the late adversary delays consensus by
// the whole sustained-pressure window, many stderr beyond the static
// arm. Only when the budget grows large enough to nearly close the
// support gap does the static boundary placement fight back, by
// tipping the SBM into a metastable near-tie (docs/SCENARIOS.md
// records the measured crossover).
//
// The headline check is a >= 2-stderr separation: at some swept
// budget, the adaptive arm's two_choices consensus time exceeds the
// static arm's.

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "graph/csr.hpp"
#include "opinion/assignment.hpp"
#include "opinion/placement.hpp"
#include "sim/perturb.hpp"

using namespace plurality;

namespace {

struct Cell {
  Summary time;
  Summary done;
};

template <template <GraphTopology> class Proto>
Cell run_cell(ExperimentContext& ctx, const bench::RunPlan& cell_plan,
              const AnyGraph& any, const CsrTopology& csr,
              const char* protocol, const char* arm, std::uint64_t budget,
              const PlacementSpec& placement, std::uint64_t c1_start,
              double horizon, std::uint64_t sweep_point) {
  const std::uint64_t n = csr.num_nodes();
  const ColorId k = 2;
  const bool adaptive = cell_plan.perturb.kind == PerturbKind::kAdversary;
  const auto seeds = ctx.seeds_for(sweep_point);
  const auto slots = run_repetitions_multi(
      ctx.reps, 2, seeds,
      [&](std::uint64_t, Xoshiro256& rng) {
        auto workload = std::visit(
            [&](const auto& g) {
              return bench::place_with(ctx, placement, g,
                                       counts_two_colors(n, c1_start),
                                       rng);
            },
            any);
        Proto<CsrTopology> proto(csr, std::move(workload));
        if (adaptive) {
          Perturber perturb =
              bench::make_perturber(cell_plan, n, k, rng, &csr);
          const auto result = bench::run(cell_plan, proto, rng, horizon,
                                         NullObserver{}, 1.0, &perturb);
          return std::vector<double>{result.time,
                                     result.consensus ? 1.0 : 0.0};
        }
        const auto result = bench::run(cell_plan, proto, rng, horizon);
        return std::vector<double>{result.time,
                                   result.consensus ? 1.0 : 0.0};
      },
      ctx.threads);
  ctx.record("time_vs_budget",
             {{"protocol", protocol},
              {"arm", arm},
              {"budget", budget},
              {"n", n}},
             slots[0]);
  return Cell{summarize(slots[0]), summarize(slots[1])};
}

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "R2 (late adversary vs static placement)",
                "a corruption budget spent adaptively mid-run (observe "
                "support, re-color leading nodes) delays consensus more "
                "than the same budget spent on the strongest static "
                "placement — until the budget nearly closes the gap and "
                "the static cut placement turns metastable");

  bench::RunPlan plan = bench::make_plan(
      ctx, EngineKind::kSuperposition, GraphKind::kSbm);
  // The adaptive arm's adversary: observe every 2 time units from just
  // after the start, spend ceil(budget/32) corruptions per sweep so
  // every budget is spread over the same ~64-time-unit window.
  plan.perturb.kind = PerturbKind::kAdversary;
  if (!ctx.args.has_flag("perturb-start")) plan.perturb.start = 5.0;
  if (!ctx.args.has_flag("perturb-interval")) plan.perturb.interval = 2.0;

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 12);
  const double c1_frac = ctx.args.get_double("c1-frac", 0.6);
  PC_EXPECTS(c1_frac > 0.5 && c1_frac < 1.0);
  const double horizon = ctx.args.get_double("horizon", 3000.0);

  Xoshiro256 build_rng(ctx.master_seed);
  const AnyGraph any = bench::topology(plan, n, build_rng);
  const CsrTopology csr = make_csr_view(any);
  const std::uint64_t n_eff = csr.num_nodes();
  const auto c1 = static_cast<std::uint64_t>(
      c1_frac * static_cast<double>(n_eff));

  // Budgets scale with n (n/256, n/64, n/16 — at the default n=4096:
  // 16, 64, 256) so the corruption pressure is the same fraction of
  // the support gap at any size.
  std::vector<std::uint64_t> budgets;
  if (ctx.args.has_flag("perturb-budget")) {
    budgets.push_back(ctx.perturb.budget);
  } else {
    budgets = {std::max<std::uint64_t>(1, n_eff / 256),
               std::max<std::uint64_t>(1, n_eff / 64),
               std::max<std::uint64_t>(1, n_eff / 16)};
  }
  // Matched corruption: every swept budget must leave the plurality
  // ahead in the static arm, else the "corruption" flips the winner
  // outright and the arms measure different races.
  for (const std::uint64_t b : budgets) {
    PC_EXPECTS(c1 > b && c1 - b > n_eff - c1 + b);
  }

  ctx.note_param("c1-frac", JsonValue(c1_frac));
  ctx.note_param("horizon", JsonValue(horizon));
  ctx.note_param("perturb-start", JsonValue(plan.perturb.start));
  ctx.note_param("perturb-interval", JsonValue(plan.perturb.interval));

  const PlacementSpec boundary{PlacementKind::kAdversarialBoundary,
                               ctx.placement.fraction};
  const PlacementSpec uniform{PlacementKind::kUniform,
                              ctx.placement.fraction};

  Table table("R2: consensus time, late adversary vs static boundary  (" +
                  plan.graph.label() + ", n=" + std::to_string(n_eff) +
                  ", c1=" + std::to_string(c1) + ", horizon=" +
                  std::to_string(static_cast<int>(horizon)) + ")",
              {"budget", "arm", "protocol", "mean_time", "ci95", "done"});

  double best_z = -1e300;
  std::uint64_t best_budget = 0;
  std::uint64_t sweep_point = 0;
  for (const std::uint64_t budget : budgets) {
    // Static arm: b corruptions applied before the run — the counts
    // hand b plurality nodes to the runner-up, and the boundary
    // placement seeds the enlarged minority on the cut. No perturber.
    bench::RunPlan static_plan = plan;
    static_plan.perturb.kind = PerturbKind::kNone;
    // Adaptive arm: pristine counts, uniform start, and the same b
    // corruptions spent mid-run by the observing adversary.
    bench::RunPlan adaptive_plan = plan;
    adaptive_plan.perturb.budget = budget;
    if (!ctx.args.has_flag("perturb-rate")) {
      adaptive_plan.perturb.rate =
          static_cast<double>(budget) / 64.0;
    }

    struct Arm {
      const char* name;
      Cell two_choices;
      Cell three_majority;
    };
    const Arm arms[] = {
        {"static_boundary",
         run_cell<TwoChoicesAsync>(ctx, static_plan, any, csr,
                                   "two_choices", "static_boundary",
                                   budget, boundary, c1 - budget, horizon,
                                   sweep_point * 4),
         run_cell<ThreeMajorityAsync>(ctx, static_plan, any, csr,
                                      "three_majority", "static_boundary",
                                      budget, boundary, c1 - budget,
                                      horizon, sweep_point * 4 + 1)},
        {"late_adversary",
         run_cell<TwoChoicesAsync>(ctx, adaptive_plan, any, csr,
                                   "two_choices", "late_adversary",
                                   budget, uniform, c1, horizon,
                                   sweep_point * 4 + 2),
         run_cell<ThreeMajorityAsync>(ctx, adaptive_plan, any, csr,
                                      "three_majority", "late_adversary",
                                      budget, uniform, c1, horizon,
                                      sweep_point * 4 + 3)},
    };
    ++sweep_point;
    for (const Arm& arm : arms) {
      table.row()
          .cell(budget)
          .cell(arm.name)
          .cell("two_choices")
          .cell(arm.two_choices.time.mean, 1)
          .cell(arm.two_choices.time.ci95_halfwidth, 1)
          .cell(arm.two_choices.done.mean, 2);
      table.row()
          .cell(budget)
          .cell(arm.name)
          .cell("three_majority")
          .cell(arm.three_majority.time.mean, 1)
          .cell(arm.three_majority.time.ci95_halfwidth, 1)
          .cell(arm.three_majority.done.mean, 2);
    }
    const Summary& st = arms[0].two_choices.time;
    const Summary& ad = arms[1].two_choices.time;
    const double se_st = st.ci95_halfwidth / 1.96;
    const double se_ad = ad.ci95_halfwidth / 1.96;
    const double pooled = std::sqrt(se_st * se_st + se_ad * se_ad);
    const double z = pooled > 0.0 ? (ad.mean - st.mean) / pooled : 0.0;
    if (!ctx.csv) {
      std::printf("budget %llu (two_choices): late adversary is %.1f "
                  "stderr %s than static boundary\n",
                  static_cast<unsigned long long>(budget), std::fabs(z),
                  z >= 0.0 ? "slower" : "faster");
    }
    if (z > best_z) {
      best_z = z;
      best_budget = budget;
    }
  }
  table.print(std::cout, ctx.csv);
  if (!ctx.csv) {
    std::printf("R2 headline: at budget %llu the late adversary delays "
                "consensus %.1f stderr beyond the static boundary "
                "placement  %s\n",
                static_cast<unsigned long long>(best_budget), best_z,
                best_z >= 2.0 ? "[resolved, >= 2 stderr]"
                              : "[not resolved at this scale]");
  }
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "late_adversary",
    "R2 (robustness): a corruption budget spent adaptively mid-run "
    "beats the same budget spent on the strongest static placement, "
    "once it sustains pressure",
    "Adversary-timing contrast on one SBM instance: both arms corrupt "
    "exactly b opinions of a two-color c1-frac split running async "
    "Two-Choices and 3-Majority. The *static* arm corrupts before the "
    "run — b plurality nodes handed to the runner-up and the enlarged "
    "minority seeded on the high-conductance cut (W1's "
    "adversarial_boundary, the strongest static placement). The "
    "*adaptive* arm starts from pristine uniformly-placed counts and "
    "attaches the late adversary (--perturb=adversary machinery): "
    "every --perturb-interval= time units it observes the live support "
    "counts and re-colors ceil(rate x interval) of the highest-impact "
    "(most same-color neighbors) current-plurality nodes to the "
    "runner-up, until b corruptions are spent. Sweeps the budget and "
    "records `time_vs_budget` per protocol x arm. While the static gap "
    "stays comfortable the majority absorbs the placed corruption "
    "almost instantly and the adaptive arm is many combined stderr "
    "slower (the sustained-pressure window sets the delay); only a "
    "budget large enough to nearly close the gap lets the static "
    "boundary fight back by tipping the SBM into a metastable "
    "near-tie. The headline is the best adaptive-minus-static "
    "separation across budgets, >= 2 stderr, with the measured "
    "crossover in docs/SCENARIOS.md. Overrides: --n=, --c1-frac=, "
    "--horizon=, "
    "--perturb-budget= (pin one budget), --perturb-rate=, "
    "--perturb-start=, --perturb-interval=, --graph-* (SBM shape), "
    "--engine=, --shards=.",
    /*default_reps=*/8, run_exp};

}  // namespace
