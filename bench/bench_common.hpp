#pragma once

/// \file bench_common.hpp
/// Shared scaffolding for the registered experiments in bench/. Every
/// experiment body receives an ExperimentContext (shared --seed=,
/// --reps=, --threads=, --csv handling plus its own sweep overrides),
/// prints the paper claim it regenerates, renders its tables via
/// experiment/table.hpp, and records its headline series through
/// ctx.record() so each run also emits a structured JSON record.
///
/// The run dispatch itself lives in run_plan.hpp: experiments resolve
/// a RunPlan once (bench::make_plan) and hand every protocol instance
/// to bench::run / bench::run_queued, the single engine × latency
/// entry point.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "experiment/args.hpp"
#include "experiment/registry.hpp"
#include "experiment/runner.hpp"
#include "experiment/table.hpp"
#include "graph/factory.hpp"
#include "opinion/placement.hpp"
#include "rng/seed.hpp"
#include "run_plan.hpp"
#include "sim/engine_select.hpp"
#include "stats/quantiles.hpp"
#include "stats/regression.hpp"

namespace plurality::bench {

/// Once per process: --placement=community was requested on a topology
/// without a community partition.
inline void warn_community_placement_fallback_once() {
  static std::atomic_flag warned = ATOMIC_FLAG_INIT;
  if (!warned.test_and_set()) {
    std::cerr << "warning: --placement=community needs a topology with "
                 "communities (--graph=sbm); placing uniformly instead\n";
  }
}

/// The graph spec an experiment will actually build: the experiment's
/// default kind unless the user passed --graph=, with the full
/// --graph* flag family from the context applied either way (so a
/// family knob like --graph-degree= is honored without --graph=).
inline GraphSpec resolved_graph_spec(const ExperimentContext& ctx,
                                     GraphKind experiment_default) {
  GraphSpec spec = ctx.graph;
  if (!ctx.args.has_flag("graph")) spec.kind = experiment_default;
  return spec;
}

/// Builds the topology for one sweep point from the resolved spec and
/// attributes the built family into the record (graph_effective).
/// Random families draw their edges from `build_rng`; the torus rounds
/// n down to floor(sqrt n)^2, so read the realized size back via
/// num_nodes().
inline AnyGraph make_topology(const ExperimentContext& ctx, std::uint64_t n,
                              Xoshiro256& build_rng,
                              GraphKind experiment_default =
                                  GraphKind::kComplete) {
  const GraphSpec spec = resolved_graph_spec(ctx, experiment_default);
  ctx.note_effective_graph(graph_kind_name(spec.kind));
  AnyGraph graph = make_graph(spec, n, build_rng);
  // The topology share of bytes_per_node: read the realized size back
  // (the torus rounds n down) so the ratio matches what was built.
  const std::uint64_t realized =
      std::visit([](const auto& g) { return g.num_nodes(); }, graph);
  if (realized > 0) {
    ctx.note_topology_bytes_per_node(
        static_cast<double>(graph_storage_bytes(graph)) /
        static_cast<double>(realized));
  }
  return graph;
}

/// Builds the topology and runs `fn(g)` on the concrete graph type —
/// the one-std::visit-per-sweep-point pattern every factory-driven
/// experiment shares.
template <typename Fn>
auto with_topology(const ExperimentContext& ctx, std::uint64_t n,
                   Xoshiro256& build_rng, Fn&& fn,
                   GraphKind experiment_default = GraphKind::kComplete) {
  return std::visit(std::forward<Fn>(fn),
                    make_topology(ctx, n, build_rng, experiment_default));
}

/// Places an exact count profile onto the nodes of `g` according to an
/// explicit placement spec (the sweep form used by W1). The placement
/// that actually ran is attributed into the record via
/// placement_effective: a community-aligned request on a topology
/// without communities falls back to uniform with a once-per-process
/// warning rather than mislabeling the samples.
template <typename G>
Assignment place_with(const ExperimentContext& ctx,
                      const PlacementSpec& placement, const G& g,
                      std::vector<std::uint64_t> counts, Xoshiro256& rng) {
  switch (placement.kind) {
    case PlacementKind::kUniform:
      break;
    case PlacementKind::kCommunityAligned:
      if constexpr (HasCommunities<G>) {
        ctx.note_effective_placement(
            placement_kind_name(PlacementKind::kCommunityAligned));
        return place_community_aligned(std::move(counts), g.communities(),
                                       placement.fraction, rng);
      } else {
        warn_community_placement_fallback_once();
      }
      break;
    case PlacementKind::kAdversarialBoundary: {
      const TopologyView<G> view(g);
      ctx.note_effective_placement(
          placement_kind_name(PlacementKind::kAdversarialBoundary));
      if constexpr (HasCommunities<G>) {
        return place_adversarial_boundary(std::move(counts), view,
                                          g.communities(), rng);
      } else {
        return place_adversarial_boundary(std::move(counts), view, {}, rng);
      }
    }
    case PlacementKind::kClusteredBfs: {
      const TopologyView<G> view(g);
      ctx.note_effective_placement(
          placement_kind_name(PlacementKind::kClusteredBfs));
      return place_clustered_bfs(std::move(counts), view, rng);
    }
  }
  ctx.note_effective_placement(placement_kind_name(PlacementKind::kUniform));
  return place_uniform(std::move(counts), rng);
}

/// Places an exact count profile onto the nodes of `g` according to
/// --placement= (default uniform, the historical behavior — identical
/// RNG draws).
template <typename G>
Assignment place_on(const ExperimentContext& ctx, const G& g,
                    std::vector<std::uint64_t> counts, Xoshiro256& rng) {
  return place_with(ctx, ctx.placement, g, std::move(counts), rng);
}

/// AnyGraph overload: dispatches to the concrete topology once, at the
/// placement (not tick) level.
inline Assignment place_on(const ExperimentContext& ctx, const AnyGraph& g,
                           std::vector<std::uint64_t> counts,
                           Xoshiro256& rng) {
  return std::visit(
      [&](const auto& graph) {
        return place_on(ctx, graph, std::move(counts), rng);
      },
      g);
}

/// Prints the experiment banner: id, paper claim, reproduce command.
inline void banner(const ExperimentContext& ctx, const std::string& id,
                   const std::string& claim) {
  if (ctx.csv) return;
  std::cout << "--------------------------------------------------------\n"
            << "Experiment " << id << "\n"
            << "Paper claim: " << claim << "\n"
            << "seed=" << ctx.master_seed << " reps=" << ctx.reps << "\n"
            << "--------------------------------------------------------\n";
}

/// Prints a fitted growth law under a table.
inline void report_fit(const ExperimentContext& ctx, const std::string& label,
                       const LinearFit& fit) {
  if (ctx.csv) return;
  std::printf("%s: slope=%.3f intercept=%.3f R^2=%.4f\n", label.c_str(),
              fit.slope, fit.intercept, fit.r_squared);
}

}  // namespace plurality::bench
