#pragma once

/// \file bench_common.hpp
/// Shared scaffolding for the experiment binaries in bench/. Every
/// binary accepts --seed=, --reps=, --threads=, --csv plus its own
/// sweep overrides, prints the paper claim it regenerates, and renders
/// its tables via experiment/table.hpp so EXPERIMENTS.md rows can be
/// reproduced with a single command.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "experiment/args.hpp"
#include "experiment/runner.hpp"
#include "experiment/table.hpp"
#include "rng/seed.hpp"
#include "stats/quantiles.hpp"
#include "stats/regression.hpp"

namespace plurality::bench {

struct Context {
  Args args;
  std::uint64_t master_seed;
  std::uint64_t reps;
  unsigned threads;
  bool csv;

  Context(int argc, char** argv, std::uint64_t default_reps)
      : args(argc, argv),
        master_seed(args.get_u64("seed", 42)),
        reps(args.get_u64("reps", default_reps)),
        threads(static_cast<unsigned>(args.get_u64("threads", 0))),
        csv(args.csv()) {}

  SeedSequence seeds_for(std::uint64_t sweep_point) const {
    return SeedSequence(master_seed).child(sweep_point);
  }
};

/// Prints the experiment banner: id, paper claim, reproduce command.
inline void banner(const Context& ctx, const std::string& id,
                   const std::string& claim) {
  if (ctx.csv) return;
  std::cout << "--------------------------------------------------------\n"
            << "Experiment " << id << "\n"
            << "Paper claim: " << claim << "\n"
            << "seed=" << ctx.master_seed << " reps=" << ctx.reps << "\n"
            << "--------------------------------------------------------\n";
}

/// Prints a fitted growth law under a table.
inline void report_fit(const Context& ctx, const std::string& label,
                       const LinearFit& fit) {
  if (ctx.csv) return;
  std::printf("%s: slope=%.3f intercept=%.3f R^2=%.4f\n", label.c_str(),
              fit.slope, fit.intercept, fit.r_squared);
}

}  // namespace plurality::bench
