#pragma once

/// \file bench_common.hpp
/// Shared scaffolding for the registered experiments in bench/. Every
/// experiment body receives an ExperimentContext (shared --seed=,
/// --reps=, --threads=, --csv handling plus its own sweep overrides),
/// prints the paper claim it regenerates, renders its tables via
/// experiment/table.hpp, and records its headline series through
/// ctx.record() so each run also emits a structured JSON record.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "experiment/args.hpp"
#include "experiment/registry.hpp"
#include "experiment/runner.hpp"
#include "experiment/table.hpp"
#include "rng/seed.hpp"
#include "stats/quantiles.hpp"
#include "stats/regression.hpp"

namespace plurality::bench {

/// Prints the experiment banner: id, paper claim, reproduce command.
inline void banner(const ExperimentContext& ctx, const std::string& id,
                   const std::string& claim) {
  if (ctx.csv) return;
  std::cout << "--------------------------------------------------------\n"
            << "Experiment " << id << "\n"
            << "Paper claim: " << claim << "\n"
            << "seed=" << ctx.master_seed << " reps=" << ctx.reps << "\n"
            << "--------------------------------------------------------\n";
}

/// Prints a fitted growth law under a table.
inline void report_fit(const ExperimentContext& ctx, const std::string& label,
                       const LinearFit& fit) {
  if (ctx.csv) return;
  std::printf("%s: slope=%.3f intercept=%.3f R^2=%.4f\n", label.c_str(),
              fit.slope, fit.intercept, fit.r_squared);
}

}  // namespace plurality::bench
