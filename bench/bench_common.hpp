#pragma once

/// \file bench_common.hpp
/// Shared scaffolding for the registered experiments in bench/. Every
/// experiment body receives an ExperimentContext (shared --seed=,
/// --reps=, --threads=, --csv handling plus its own sweep overrides),
/// prints the paper claim it regenerates, renders its tables via
/// experiment/table.hpp, and records its headline series through
/// ctx.record() so each run also emits a structured JSON record.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "experiment/args.hpp"
#include "experiment/registry.hpp"
#include "experiment/runner.hpp"
#include "experiment/table.hpp"
#include "rng/seed.hpp"
#include "sim/engine_select.hpp"
#include "stats/quantiles.hpp"
#include "stats/regression.hpp"

namespace plurality::bench {

/// The engine an experiment body runs a protocol on: the experiment's
/// default asynchronous model unless the user passed --engine=.
inline EngineKind engine_for(const ExperimentContext& ctx,
                             EngineKind experiment_default) {
  return ctx.engine.empty() ? experiment_default
                            : parse_engine_kind(ctx.engine);
}

/// Once per process (a plain function, not a template, so the flag is
/// shared by every protocol instantiation).
inline void warn_sharded_fallback_once() {
  static std::atomic_flag warned = ATOMIC_FLAG_INIT;
  if (!warned.test_and_set()) {
    std::cerr << "warning: --engine=sharded is not supported by this "
                 "protocol (no propose()); running on the superposition "
                 "engine instead\n";
  }
}

/// Once per process: a messaging (delayed-response) run was asked to
/// use an engine without a delivery queue.
inline void warn_messaging_engine_once() {
  static std::atomic_flag warned = ATOMIC_FLAG_INIT;
  if (!warned.test_and_set()) {
    std::cerr << "warning: delayed-response runs require the messaging "
                 "driver; ignoring --engine= and running on the "
                 "superposition-based delivery engine\n";
  }
}

/// Runs one *messaging* protocol instance under the given latency
/// model. Messaging protocols always ride the superposition-based
/// delivery driver (the only engine with a message queue); any other
/// --engine= request falls back to it with a once-per-process warning,
/// and the record's params.engine_effective says "superposition" so the
/// JSON stays truthful. The latency draws come from `rng` via the
/// driver (see continuous_engine.hpp); `model` must outlive the run.
template <MessagingProtocol P, typename Obs = NullObserver>
AsyncRunResult run_messaging(const ExperimentContext& ctx, P& proto,
                             const LatencyModel& model, Xoshiro256& rng,
                             double max_time, Obs&& obs = Obs{},
                             double sample_every = 1.0) {
  if (!ctx.engine.empty() &&
      parse_engine_kind(ctx.engine) != EngineKind::kSuperposition) {
    warn_messaging_engine_once();
  }
  ctx.note_effective_engine(
      engine_kind_name(EngineKind::kSuperposition));
  ctx.note_effective_latency(model.name());
  return run_continuous_messaging(proto, model, rng, max_time,
                                  std::forward<Obs>(obs), sample_every);
}

/// Runs one protocol instance on the engine selected by --engine=
/// (default: `experiment_default`, preserving each experiment's
/// historical model). The sharded engine derives its per-shard streams
/// from a word of `rng`; the other engines leave the stream untouched
/// relative to the pre---engine harness. A --engine=sharded request for
/// a protocol that is not shardable falls back to the superposition
/// engine with a once-per-process stderr warning, so BENCH records
/// claiming engine=sharded cannot silently hold superposition samples.
template <typename P, typename Obs = NullObserver>
AsyncRunResult run_async(const ExperimentContext& ctx,
                         EngineKind experiment_default, P& proto,
                         Xoshiro256& rng, double max_time, Obs&& obs = Obs{},
                         double sample_every = 1.0) {
  const EngineKind kind = engine_for(ctx, experiment_default);
  const EngineKind effective = effective_engine_kind<P>(kind);
  if (effective != kind) warn_sharded_fallback_once();
  ctx.note_effective_engine(engine_kind_name(effective));
  const std::uint64_t shard_seed =
      effective == EngineKind::kSharded ? rng() : 0;
  // Dispatch on `effective`, the same value that was just recorded, so
  // the JSON label and the engine that runs can never diverge.
  return run_async_engine(effective, proto, rng, shard_seed, ctx.shards,
                          max_time, std::forward<Obs>(obs), sample_every);
}

/// Prints the experiment banner: id, paper claim, reproduce command.
inline void banner(const ExperimentContext& ctx, const std::string& id,
                   const std::string& claim) {
  if (ctx.csv) return;
  std::cout << "--------------------------------------------------------\n"
            << "Experiment " << id << "\n"
            << "Paper claim: " << claim << "\n"
            << "seed=" << ctx.master_seed << " reps=" << ctx.reps << "\n"
            << "--------------------------------------------------------\n";
}

/// Prints a fitted growth law under a table.
inline void report_fit(const ExperimentContext& ctx, const std::string& label,
                       const LinearFit& fit) {
  if (ctx.csv) return;
  std::printf("%s: slope=%.3f intercept=%.3f R^2=%.4f\n", label.c_str(),
              fit.slope, fit.intercept, fit.r_squared);
}

}  // namespace plurality::bench
