// M1 — microbenchmarks: RNG and sampling primitive throughput
// (google-benchmark). These are the per-tick costs every simulation
// pays, so regressions here slow every experiment.

#include <benchmark/benchmark.h>

#include <vector>

#include "graph/complete.hpp"
#include "rng/alias_table.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace plurality {
namespace {

void BM_SplitMix64(benchmark::State& state) {
  SplitMix64 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_SplitMix64);

void BM_Xoshiro256(benchmark::State& state) {
  Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_Xoshiro256);

void BM_UniformBelow(benchmark::State& state) {
  Xoshiro256 rng(42);
  const auto bound = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(uniform_below(rng, bound));
  }
}
BENCHMARK(BM_UniformBelow)->Arg(7)->Arg(1 << 16)->Arg(1 << 30);

void BM_Exponential(benchmark::State& state) {
  Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exponential(rng, 1.0));
  }
}
BENCHMARK(BM_Exponential);

void BM_Poisson(benchmark::State& state) {
  Xoshiro256 rng(42);
  const auto mean = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(poisson(rng, mean));
  }
}
BENCHMARK(BM_Poisson)->Arg(4)->Arg(100);

void BM_AliasTableSample(benchmark::State& state) {
  Xoshiro256 rng(42);
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<double>(i + 1);
  }
  const AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(16)->Arg(4096);

void BM_CompleteGraphNeighbor(benchmark::State& state) {
  Xoshiro256 rng(42);
  const CompleteGraph g(1 << 20);
  NodeId u = 12345;
  for (auto _ : state) {
    u = g.sample_neighbor(u, rng);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_CompleteGraphNeighbor);

}  // namespace
}  // namespace plurality

BENCHMARK_MAIN();
