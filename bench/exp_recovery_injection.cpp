// R1 — recovery under sustained opinion injection (ours): a
// Poisson(rate) stream re-colors random nodes mid-run, and the question
// is how long the protocol takes to re-converge after each hit. At low
// rates the system snaps back between events (short recoveries); as the
// rate rises, events land faster than the protocol can heal and each
// hit's recovery stretches toward the tail of the whole stream — mean
// time-to-reconverge is increasing in the injection rate. Runs the same
// perturbation stream (bit-identical events for a fixed seed) on the
// sequential and sharded engines, for async Two-Choices and 3-Majority.
//
// The headline check is the rate monotonicity on two_choices: the
// highest swept rate must be >= 2 combined stderr slower to recover
// than the lowest (per engine). Also records the live-agreement time
// series at fixed probe times — the recovery curves SCENARIOS.md cites.

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "graph/csr.hpp"
#include "opinion/assignment.hpp"
#include "sim/perturb.hpp"

using namespace plurality;

namespace {

constexpr double kProbeTimes[] = {5.0,  10.0, 12.0, 16.0,
                                  24.0, 40.0, 80.0, 160.0};

struct Cell {
  Summary recovery;        ///< mean per-event time-to-reconverge
  Summary final_recovery;  ///< consensus time minus last event time
  Summary min_agreement;   ///< deepest live-agreement dip
};

template <template <GraphTopology> class Proto>
Cell run_cell(ExperimentContext& ctx, const bench::RunPlan& cell_plan,
              const AnyGraph& any, const CsrTopology& csr,
              const char* protocol, const char* engine_name, double rate,
              std::uint64_t c1, double horizon, double sample_every,
              std::uint64_t sweep_point) {
  const std::uint64_t n = csr.num_nodes();
  const ColorId k = 2;
  const auto seeds = ctx.seeds_for(sweep_point);
  const bool wants_churn =
      cell_plan.perturb.kind == PerturbKind::kChurn &&
      !csr.is_implicit_complete();
  const auto slots = run_repetitions_multi(
      ctx.reps, 3 + std::size(kProbeTimes), seeds,
      [&](std::uint64_t, Xoshiro256& rng) {
        auto workload =
            bench::place_on(ctx, any, counts_two_colors(n, c1), rng);
        // Churn rewires edges in place, so each repetition mutates its
        // own copy of the adjacency (reps run concurrently and the
        // next rep must start from the pristine graph).
        std::optional<ChurnableCsr> churn;
        const CsrTopology* run_csr = &csr;
        if (wants_churn) {
          churn.emplace(csr);
          run_csr = &churn->view();
        }
        Proto<CsrTopology> proto(*run_csr, std::move(workload));
        Perturber perturb = bench::make_perturber(
            cell_plan, n, k, rng, run_csr, churn ? &*churn : nullptr);
        AgreementTrace trace(perturb);
        const auto result = bench::run(cell_plan, proto, rng, horizon,
                                       trace, sample_every, &perturb);
        const auto& events = perturb.events();
        const auto& points = trace.points();
        double mean_recovery = 0.0;
        double final_recovery = 0.0;
        if (!events.empty() && !points.empty()) {
          const auto rec = recovery_times(events, points, 1.0);
          for (const double r : rec) mean_recovery += r;
          mean_recovery /= static_cast<double>(rec.size());
          final_recovery =
              std::max(0.0, result.time - events.back().time);
        }
        double min_agreement = 1.0;
        for (const auto& p : points) {
          min_agreement = std::min(min_agreement, p.agreement);
        }
        // The recovery curve: live agreement at fixed probe times,
        // recorded per repetition so each probe gets mean +- stderr.
        std::vector<double> out{mean_recovery, final_recovery,
                                min_agreement};
        for (const double t : kProbeTimes) {
          out.push_back(points.empty() ? 1.0 : agreement_at(points, t));
        }
        return out;
      },
      ctx.threads);
  ctx.record("recovery_time_vs_rate",
             {{"protocol", protocol},
              {"engine", engine_name},
              {"rate", rate},
              {"n", n}},
             slots[0]);
  ctx.record("final_recovery_vs_rate",
             {{"protocol", protocol},
              {"engine", engine_name},
              {"rate", rate},
              {"n", n}},
             slots[1]);
  for (std::size_t i = 0; i < std::size(kProbeTimes); ++i) {
    ctx.record("live_agreement_trace",
               {{"protocol", protocol},
                {"engine", engine_name},
                {"rate", rate},
                {"t", kProbeTimes[i]}},
               slots[3 + i]);
  }
  return Cell{summarize(slots[0]), summarize(slots[1]),
              summarize(slots[2])};
}

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "R1 (recovery vs injection rate)",
                "mean time-to-reconverge after each injected opinion "
                "grows with the injection rate: past the healing rate, "
                "hits pile up faster than the protocol re-converges");

  // Default perturbation: opinion injection. --perturb= swaps the kind
  // (the CI smoke drives crash/churn/adversary through this same
  // experiment); --perturb-rate= pins the sweep to one rate.
  bench::RunPlan plan = bench::make_plan(
      ctx, EngineKind::kSequential, GraphKind::kComplete,
      PerturbKind::kInject);
  if (!ctx.args.has_flag("perturb-start")) plan.perturb.start = 10.0;
  if (!ctx.args.has_flag("perturb-budget")) plan.perturb.budget = 48;

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 12);
  const double horizon = ctx.args.get_double("horizon", 400.0);
  const double sample_every = ctx.args.get_double("sample-every", 0.5);

  Xoshiro256 build_rng(ctx.master_seed);
  const AnyGraph any = bench::topology(plan, n, build_rng);
  const CsrTopology csr = make_csr_view(any);
  const std::uint64_t n_eff = csr.num_nodes();
  const auto c1 = static_cast<std::uint64_t>(
      0.6 * static_cast<double>(n_eff));

  ctx.note_param("perturb-start", JsonValue(plan.perturb.start));
  ctx.note_param("perturb-budget", JsonValue(plan.perturb.budget));
  ctx.note_param("horizon", JsonValue(horizon));

  std::vector<double> rates;
  if (ctx.args.has_flag("perturb-rate")) {
    rates.push_back(plan.perturb.rate);
  } else {
    rates = {0.5, 2.0, 8.0};
  }
  // Both parallel-path coverage arms by default: the same event stream
  // drained at exact event times (sequential) and at epoch boundaries
  // (sharded workers + main-thread drains). --engine= pins one.
  std::vector<EngineKind> engines;
  if (ctx.args.has_flag("engine")) {
    engines.push_back(parse_engine_kind(ctx.engine));
  } else {
    engines = {EngineKind::kSequential, EngineKind::kSharded};
  }

  Table table("R1: recovery time vs injection rate  (" +
                  plan.graph.label() + ", n=" + std::to_string(n_eff) +
                  ", " + plan.perturb.label() + " sweep, horizon=" +
                  std::to_string(static_cast<int>(horizon)) + ")",
              {"engine", "protocol", "rate", "mean_recovery", "ci95",
               "final_recovery", "min_agree"});

  struct Anchor {
    double mean = -1.0;
    double se = 0.0;
  };
  std::uint64_t sweep_point = 0;
  double worst_z = 1e300;
  bool have_z = false;
  for (const EngineKind engine : engines) {
    const char* engine_name = engine_kind_name(engine);
    Anchor low;
    for (const double rate : rates) {
      bench::RunPlan cell_plan = plan;
      cell_plan.engine = engine;
      cell_plan.perturb.rate = rate;
      struct Row {
        const char* protocol;
        Cell cell;
      };
      const Row rows[] = {
          {"two_choices",
           run_cell<TwoChoicesAsync>(ctx, cell_plan, any, csr,
                                     "two_choices", engine_name, rate, c1,
                                     horizon, sample_every,
                                     sweep_point * 2)},
          {"three_majority",
           run_cell<ThreeMajorityAsync>(ctx, cell_plan, any, csr,
                                        "three_majority", engine_name,
                                        rate, c1, horizon, sample_every,
                                        sweep_point * 2 + 1)},
      };
      ++sweep_point;
      for (const Row& row : rows) {
        table.row()
            .cell(engine_name)
            .cell(row.protocol)
            .cell(rate, 2)
            .cell(row.cell.recovery.mean, 2)
            .cell(row.cell.recovery.ci95_halfwidth, 2)
            .cell(row.cell.final_recovery.mean, 2)
            .cell(row.cell.min_agreement.mean, 3);
      }
      // Monotonicity bookkeeping on two_choices: lowest swept rate is
      // the anchor, the highest is compared against it per engine.
      const Summary& tc = rows[0].cell.recovery;
      const double se = tc.ci95_halfwidth / 1.96;
      if (rate == rates.front()) {
        low = Anchor{tc.mean, se};
      }
      if (rate == rates.back() && rates.size() > 1 && low.mean >= 0.0) {
        const double pooled =
            std::sqrt(low.se * low.se + se * se);
        const double z =
            pooled > 0.0 ? (tc.mean - low.mean) / pooled : 0.0;
        worst_z = std::min(worst_z, z);
        have_z = true;
        if (!ctx.csv) {
          std::printf(
              "rate monotonicity (two_choices, %s): rate %.1f recovers "
              "%.1f stderr slower than rate %.1f  %s\n",
              engine_name, rates.back(), z, rates.front(),
              z >= 2.0 ? "[resolved, >= 2 stderr]"
                       : "[not resolved at this scale]");
        }
      }
    }
  }
  table.print(std::cout, ctx.csv);
  if (!ctx.csv && have_z) {
    std::printf("R1 headline: recovery time increases with injection "
                "rate on every engine  %s\n",
                worst_z >= 2.0 ? "[resolved, >= 2 stderr]"
                               : "[not resolved at this scale]");
  }
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "recovery_injection",
    "R1 (robustness): mean time-to-reconverge after each injected "
    "opinion grows with the Poisson injection rate, on the sequential "
    "and sharded engines",
    "Perturbation recovery sweep: a Poisson(--perturb-rate=) stream "
    "(default kind inject; --perturb= swaps in crash, churn, or the "
    "budgeted adversary) re-colors random nodes from --perturb-start= "
    "until --perturb-budget= events have landed, while async "
    "Two-Choices and 3-Majority run from a 60:40 split. Sweeps the "
    "rate x {sequential, sharded} engines (the identical event stream "
    "is drained at exact event times vs at epoch boundaries) and "
    "records `recovery_time_vs_rate` (mean per-event time until live "
    "agreement returns to 1), `final_recovery_vs_rate` (consensus time "
    "minus last event time), and `live_agreement_trace` (the recovery "
    "curve at fixed probe times). The headline check is rate "
    "monotonicity on two_choices: the highest swept rate recovers >= 2 "
    "combined stderr slower than the lowest, per engine. Overrides: "
    "--n=, --horizon=, --sample-every=, --perturb=, --perturb-rate= "
    "(pin one rate), --perturb-budget=, --perturb-start=, "
    "--perturb-target=hub, --engine= (pin one engine), --shards=, "
    "--graph= and the --graph-* knobs.",
    /*default_reps=*/8, run_exp};

}  // namespace
