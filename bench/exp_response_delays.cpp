// E10 — §4 extension: exponentially distributed response delays with a
// constant rate should leave the asynchronous protocol's O(log n) run
// time intact (up to constants). The table sweeps the delay rate mu
// (mean delay 1/mu) on the delayed protocol, with the instant-response
// protocol as the baseline row.

#include "bench_common.hpp"
#include "core/async_one_extra_bit.hpp"
#include "core/delayed.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/latency.hpp"

using namespace plurality;

namespace {

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "E10 (response delays, §4)",
                "constant-mean exponential response delays preserve the "
                "Theta(log n) run time; only huge delays (>> block "
                "length) degrade the protocol");
  const bench::RunPlan plan =
      bench::make_plan(ctx, EngineKind::kSuperposition);

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 12);
  const CompleteGraph g(n);
  const std::uint32_t k = 4;
  const std::uint64_t bias = n / 4;  // comfortably in the theorem regime

  Table table("E10: async OneExtraBit under response delays  (n=" +
                  std::to_string(n) + ", k=4)",
              {"mean_delay", "mean_time", "ci95", "win_rate", "success"});

  // Baseline: instant responses (the paper's base model).
  {
    const auto seeds = ctx.seeds_for(0);
    const auto slots = run_repetitions_multi(
        ctx.reps, 3, seeds,
        [&](std::uint64_t, Xoshiro256& rng) {
          auto proto = AsyncOneExtraBit<CompleteGraph>::make(
              g, bench::place_on(ctx, g, counts_plurality_bias(n, k, bias),
                                 rng));
          const auto result = bench::run(plan, proto, rng, 1e5);
          return std::vector<double>{
              result.time,
              (result.consensus && result.winner == 0) ? 1.0 : 0.0,
              result.consensus ? 1.0 : 0.0};
        },
        ctx.threads);
    ctx.record("time_vs_delay", {{"n", n}, {"k", k}, {"mean_delay", 0.0}},
               slots[0]);
    const Summary time = summarize(slots[0]);
    table.row()
        .cell("0 (instant)")
        .cell(time.mean, 1)
        .cell(time.ci95_halfwidth, 1)
        .cell(summarize(slots[1]).mean, 2)
        .cell(summarize(slots[2]).mean, 2);
  }

  std::uint64_t sweep_point = 1;
  for (const double rate : {20.0, 4.0, 1.0, 0.25}) {
    const auto seeds = ctx.seeds_for(sweep_point++);
    // The §4 delay law as a LatencyModel: the driver owns the draws,
    // the protocol no longer hand-rolls exponential delays.
    const ExponentialLatency latency(1.0 / rate);
    const auto slots = run_repetitions_multi(
        ctx.reps, 3, seeds,
        [&](std::uint64_t, Xoshiro256& rng) {
          auto proto = AsyncOneExtraBitDelayed<CompleteGraph>::make(
              g, bench::place_on(ctx, g, counts_plurality_bias(n, k, bias),
                                 rng));
          const auto result =
              bench::run(plan, proto, latency, rng, 1e5);
          return std::vector<double>{
              result.time,
              (result.consensus && result.winner == 0) ? 1.0 : 0.0,
              result.consensus ? 1.0 : 0.0};
        },
        ctx.threads);
    ctx.record("time_vs_delay",
               {{"n", n}, {"k", k}, {"mean_delay", 1.0 / rate}}, slots[0]);
    const Summary time = summarize(slots[0]);
    char label[32];
    std::snprintf(label, sizeof label, "%.2f", 1.0 / rate);
    table.row()
        .cell(label)
        .cell(time.mean, 1)
        .cell(time.ci95_halfwidth, 1)
        .cell(summarize(slots[1]).mean, 2)
        .cell(summarize(slots[2]).mean, 2);
  }

  table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "response_delays",
    "E10 (S4): exponential response delays with constant mean preserve "
    "the Theta(log n) run time of the async protocol",
    "Runs the asynchronous OneExtraBit protocol on the complete graph "
    "(k=4 colors, bias n/4) with every two-choices/bit/sync/endgame "
    "answer delayed by an ExponentialLatency model, sweeping the mean "
    "delay 1/mu over {0 (instant baseline), 0.05, 0.25, 1, 4} time "
    "units. Records the `time_vs_delay` series (consensus time, "
    "plurality win rate, success rate per mean delay). Overrides: "
    "--n=. The paper's S4 conjecture holds when the delayed rows stay "
    "within a constant factor of the instant baseline.",
    /*default_reps=*/5, run_exp};

}  // namespace
