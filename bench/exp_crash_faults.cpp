// B2 — robustness probe (ours): crash-stop faults. A fraction of nodes
// silently stops ticking mid-run (their colors stay readable — the
// adversarial case). Global consensus becomes unreachable once a
// crashed node pins a dead color, so the table reports *live
// agreement*: the fraction of surviving nodes on the live-plurality
// color at the horizon, for both async Two-Choices and the phased
// protocol. Runs on any --graph= family and any --engine= (the phased
// protocol falls back from sharded to superposition; the record's
// engine_effective says which engine actually drove each arm).

#include "bench_common.hpp"
#include "core/async_one_extra_bit.hpp"
#include "core/two_choices.hpp"
#include "graph/csr.hpp"
#include "opinion/assignment.hpp"
#include "sim/crash.hpp"
#include "sim/sequential_engine.hpp"

using namespace plurality;

namespace {

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "B2 (crash faults)",
                "survivors should still agree (live agreement ~ 1) for "
                "moderate crash fractions; crashed nodes pin stale "
                "colors so global consensus is lost");
  const bench::RunPlan plan =
      bench::make_plan(ctx, EngineKind::kSequential);

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 12);
  Xoshiro256 build_rng(ctx.master_seed);
  const AnyGraph any = bench::topology(plan, n, build_rng);
  const CsrTopology csr = make_csr_view(any);
  const std::uint64_t n_eff = csr.num_nodes();
  const std::uint32_t k = 4;
  const std::uint64_t bias = n_eff / 4;
  const std::uint64_t crash_tick = ctx.args.get_u64("crash_tick", 50);

  // The resolved fault parameters, in the record's params block: the
  // raw-args echo only carries what was explicitly passed.
  ctx.note_param("crash_tick", JsonValue(crash_tick));
  ctx.note_param("crash_fracs", JsonValue("0,0.05,0.1,0.25,0.5"));

  Table table("B2: live agreement under crash-stop faults  (" +
                  plan.graph.label() + ", n=" + std::to_string(n_eff) +
                  ", k=4, crash at own tick " + std::to_string(crash_tick) +
                  ")",
              {"crash_frac", "protocol", "live_agree", "ci95",
               "global_consensus"});

  std::uint64_t sweep = 0;
  for (const double fraction : {0.0, 0.05, 0.1, 0.25, 0.5}) {
    for (const bool phased : {false, true}) {
      const auto seeds = ctx.seeds_for(sweep++);
      const auto slots = run_repetitions_multi(
          ctx.reps, 2, seeds,
          [&](std::uint64_t, Xoshiro256& rng) {
            const auto crashes =
                crash_fraction_plan(n_eff, fraction, crash_tick, rng);
            auto workload = bench::place_on(
                ctx, any, counts_plurality_bias(n_eff, k, bias), rng);
            if (phased) {
              CrashAdapter<AsyncOneExtraBit<CsrTopology>> proto(
                  AsyncOneExtraBit<CsrTopology>::make(
                      csr, std::move(workload)),
                  crashes);
              const auto result = bench::run(plan, proto, rng, 2000.0);
              return std::vector<double>{proto.live_agreement(),
                                         result.consensus ? 1.0 : 0.0};
            }
            CrashAdapter<TwoChoicesAsync<CsrTopology>> proto(
                TwoChoicesAsync<CsrTopology>(csr, std::move(workload)),
                crashes);
            const auto result = bench::run(plan, proto, rng, 2000.0);
            return std::vector<double>{proto.live_agreement(),
                                       result.consensus ? 1.0 : 0.0};
          },
          ctx.threads);
      ctx.record("live_agreement",
                 {{"n", n_eff},
                  {"crash_frac", fraction},
                  {"protocol",
                   phased ? "async_oneextrabit" : "async_two_choices"}},
                 slots[0]);
      const Summary agree = summarize(slots[0]);
      table.row()
          .cell(fraction, 2)
          .cell(phased ? "async_oneextrabit" : "async_two_choices")
          .cell(agree.mean, 4)
          .cell(agree.ci95_halfwidth, 4)
          .cell(summarize(slots[1]).mean, 2);
    }
  }
  table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "crash_faults",
    "B2 (robustness): live agreement among survivors under crash-stop "
    "faults, async Two-Choices vs the phased protocol",
    "Robustness probe: crashes a sweep of node fractions at tick "
    "--crash_tick= (crashed nodes stop ticking and answering) and "
    "measures whether the survivors still agree, for plain async "
    "Two-Choices and the phased OneExtraBit protocol, on any --graph= "
    "family and --engine= (the phased protocol is not shardable and "
    "falls back to superposition; engine_effective records what ran). "
    "Records `live_agreement` (fraction of live nodes on the "
    "live-plurality color) per crash fraction and protocol; the "
    "resolved crash_tick and the crash_frac sweep land in the params "
    "block. Overrides: --n=, --crash_tick=, --graph=, --engine=, "
    "--placement=.",
    /*default_reps=*/5, run_exp};

}  // namespace
