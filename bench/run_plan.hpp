#pragma once

/// \file run_plan.hpp
/// The one run dispatch behind every experiment: a RunPlan is the
/// resolved {engine, graph, placement, latency} tuple of one
/// experiment invocation, and bench::run(plan, ...) is the single
/// entry point that routes any protocol to the driver that can
/// actually execute that composition — replacing the historical
/// run_async / run_messaging / run_sharded_latency branching that was
/// spread across bench_common.hpp and engine_select.hpp.
///
/// Dispatch rules (each records truthful *_effective attribution):
///   - zero latency: the requested engine drives the protocol
///     (sequential | heap | superposition | sharded), with the
///     sharded→superposition fallback for non-shardable protocols —
///     bit-identical behavior (and RNG consumption) to the old
///     bench::run_async, so historical baselines survive unchanged;
///   - non-zero latency + a delayed-shardable protocol (query/apply
///     split): the sharded engine's per-shard delivery queues
///     (run_sharded_queued), under the blocking one-query-in-flight
///     discipline, always with the resolved --shards= worker count —
///     the only driver for this composition, so the run is attributed
///     engine_effective=sharded whatever engine was requested, and
///     shards_effective names the count that actually keyed the
///     trajectories. This is what makes graph × placement ×
///     random-latency compositions run in parallel instead of being
///     exiled to single-threaded drivers;
///   - non-zero latency + a protocol without the query/apply split:
///     the latency is *ignored with a once-per-process warning* and no
///     latency_effective is attributed — the record stays truthful;
///   - messaging protocols (core/delayed.hpp) take the explicit-model
///     overload and always ride the superposition messaging driver,
///     the only single-stream engine with a delivery queue.

#include <atomic>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <variant>

#include "experiment/registry.hpp"
#include "graph/csr.hpp"
#include "graph/factory.hpp"
#include "opinion/placement.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/engine_select.hpp"
#include "sim/latency.hpp"
#include "sim/sharded_engine.hpp"

namespace plurality::bench {

/// Once per process (a plain function, not a template, so the flag is
/// shared by every protocol instantiation).
inline void warn_sharded_fallback_once() {
  static std::atomic_flag warned = ATOMIC_FLAG_INIT;
  if (!warned.test_and_set()) {
    std::cerr << "warning: --engine=sharded is not supported by this "
                 "protocol (no propose()); running on the superposition "
                 "engine instead\n";
  }
}

/// Once per process: a messaging (delayed-response) run was asked to
/// use an engine without a delivery queue.
inline void warn_messaging_engine_once() {
  static std::atomic_flag warned = ATOMIC_FLAG_INIT;
  if (!warned.test_and_set()) {
    std::cerr << "warning: delayed-response runs require the messaging "
                 "driver; ignoring --engine= and running on the "
                 "superposition-based delivery engine\n";
  }
}

/// Once per process: --latency= was requested for a protocol that has
/// no query/apply split (e.g. the stateful OneExtraBit tick machines),
/// so the run proceeds with instant responses.
inline void warn_latency_unsupported_once() {
  static std::atomic_flag warned = ATOMIC_FLAG_INIT;
  if (!warned.test_and_set()) {
    std::cerr << "warning: --latency= is not supported by this protocol "
                 "(no query/apply split); running with instant "
                 "responses instead (the record carries no "
                 "latency_effective for these samples)\n";
  }
}

/// The resolved composition of one experiment invocation: which engine
/// drives the runs, which topology family the sweep builds, where the
/// counts start, and under which response-latency model. Built once
/// per experiment body via make_plan(); every axis is already
/// validated (ExperimentContext parses the flags on the main thread).
struct RunPlan {
  const ExperimentContext* ctx = nullptr;
  EngineKind engine = EngineKind::kSuperposition;  ///< resolved request
  GraphSpec graph;          ///< resolved --graph* (or experiment default)
  PlacementSpec placement;  ///< resolved --placement*
  LatencySpec latency;      ///< resolved --latency*
  PerturbSpec perturb;      ///< resolved --perturb* (or experiment default)
  unsigned shards = 1;      ///< resolved --shards=
  EngineTuning tuning;      ///< resolved --sampling/--numa/--exact-reads
};

/// Resolves the plan for one experiment body: --engine= overrides
/// `default_engine` (each experiment's historical model), --graph=
/// overrides `default_graph`, --perturb= overrides `default_perturb`
/// (most experiments default to none; the recovery experiments default
/// to their studied kind); the --graph-* / --perturb-* family knobs
/// apply either way.
inline RunPlan make_plan(const ExperimentContext& ctx,
                         EngineKind default_engine,
                         GraphKind default_graph = GraphKind::kComplete,
                         PerturbKind default_perturb = PerturbKind::kNone) {
  RunPlan plan;
  plan.ctx = &ctx;
  plan.engine = ctx.engine.empty() ? default_engine
                                   : parse_engine_kind(ctx.engine);
  plan.graph = ctx.graph;
  if (!ctx.args.has_flag("graph")) plan.graph.kind = default_graph;
  plan.placement = ctx.placement;
  plan.latency = ctx.latency;
  plan.perturb = ctx.perturb;
  if (!ctx.args.has_flag("perturb")) plan.perturb.kind = default_perturb;
  plan.shards = ctx.shards;
  plan.tuning = ctx.tuning;
  return plan;
}

/// Attributes the per-node cost of the opinion state a run is about to
/// carry: the table's packed colors + support counters, plus the
/// sharded engine's live/snapshot copies (two more packed arrays) when
/// that engine will drive the protocol. Called by both dispatches below
/// so every engine-driven record can report bytes_per_node.
inline void note_state_footprint(const RunPlan& plan,
                                 const OpinionTable& table,
                                 bool sharded_engine) {
  double bytes = table.state_bytes_per_node();
  if (sharded_engine && !plan.tuning.exact_reads) {
    bytes += 2.0 * static_cast<double>(color_width_bytes(table.width()));
  }
  plan.ctx->note_state_bytes_per_node(bytes);
}

/// Mints the plan's Perturber for one run and attributes the kind into
/// the record (perturb_effective) — the attribution happens here, at
/// the only place a perturber can be built from a plan, so a record
/// can only claim a kind whose event stream was actually wired into a
/// run. Seeded from one word of `rng` (mirroring the shard-seed draw):
/// the event stream is a function of that word alone, so it is
/// bit-identical whichever engine later drains it. `topology` enables
/// degree-targeted picks and adversary impact scoring; `churn` enables
/// edge rewiring (see Perturber's contract for when each may be null).
inline Perturber make_perturber(const RunPlan& plan, std::uint64_t n,
                                ColorId num_colors, Xoshiro256& rng,
                                const CsrTopology* topology = nullptr,
                                ChurnableCsr* churn = nullptr) {
  if (plan.perturb.kind != PerturbKind::kNone) {
    plan.ctx->note_effective_perturb(perturb_kind_name(plan.perturb.kind));
  }
  return Perturber(plan.perturb, n, num_colors, rng(), topology, churn);
}

/// Builds the plan's topology for one sweep point and attributes the
/// built family into the record (graph_effective). Random families
/// draw their edges from `build_rng`; the torus rounds n down to
/// floor(sqrt n)^2, so read the realized size back via num_nodes().
inline AnyGraph topology(const RunPlan& plan, std::uint64_t n,
                         Xoshiro256& build_rng) {
  plan.ctx->note_effective_graph(graph_kind_name(plan.graph.kind));
  AnyGraph graph = make_graph(plan.graph, n, build_rng);
  // The topology share of bytes_per_node, at the realized size (the
  // torus rounds n down to a square).
  const std::uint64_t realized =
      std::visit([](const auto& g) { return g.num_nodes(); }, graph);
  if (realized > 0) {
    plan.ctx->note_topology_bytes_per_node(
        static_cast<double>(graph_storage_bytes(graph)) /
        static_cast<double>(realized));
  }
  return graph;
}

/// Runs a delayed-shardable protocol under an explicit latency model on
/// the sharded engine's per-shard delivery queues — the only driver for
/// this composition, whatever engine the plan requested, and always
/// with the plan's resolved `--shards=` count: the record says
/// {engine_effective: sharded, shards_effective: plan.shards}, and that
/// pair must describe the trajectories it holds (replaying a record
/// with a different shard count gives a different — statistically
/// equivalent — run). The engine seeds its per-shard streams from a
/// word of `rng`.
template <DelayedShardableProtocol P, typename Obs = NullObserver>
AsyncRunResult run_queued(const RunPlan& plan, P& proto,
                          const LatencyModel& model,
                          QueryDiscipline discipline, Xoshiro256& rng,
                          double max_time, Obs&& obs = Obs{},
                          double sample_every = 1.0,
                          Perturber* perturb = nullptr) {
  plan.ctx->note_effective_engine(engine_kind_name(EngineKind::kSharded));
  plan.ctx->note_effective_latency(model.name());
  note_state_footprint(plan, proto.table(), /*sharded_engine=*/true);
  return run_sharded_queued(proto, model, discipline, rng(), plan.shards,
                            max_time, std::forward<Obs>(obs), sample_every,
                            /*epoch_length=*/0.25, perturb, plan.tuning);
}

/// THE run dispatch for plain (non-messaging) async protocols: engine ×
/// latency routing as described in the file header. For the default
/// zero-latency axis this is bit-identical (including RNG consumption)
/// to the historical bench::run_async.
template <typename P, typename Obs = NullObserver>
AsyncRunResult run(const RunPlan& plan, P& proto, Xoshiro256& rng,
                   double max_time, Obs&& obs = Obs{},
                   double sample_every = 1.0, Perturber* perturb = nullptr) {
  if (plan.latency.kind != LatencyKind::kZero) {
    if constexpr (DelayedShardableProtocol<P>) {
      const auto model = plan.latency.make();
      return run_queued(plan, proto, *model, QueryDiscipline::kBlocking,
                        rng, max_time, std::forward<Obs>(obs),
                        sample_every, perturb);
    } else {
      // Fall through to the instant-response dispatch below; the
      // warning is loud and the record carries no latency_effective
      // for these samples, so it cannot misattribute them.
      warn_latency_unsupported_once();
    }
  }
  const EngineKind effective = effective_engine_kind<P>(plan.engine);
  if (effective != plan.engine) warn_sharded_fallback_once();
  plan.ctx->note_effective_engine(engine_kind_name(effective));
  note_state_footprint(plan, proto.table(),
                       effective == EngineKind::kSharded);
  const std::uint64_t shard_seed =
      effective == EngineKind::kSharded ? rng() : 0;
  // Dispatch on `effective`, the same value that was just recorded, so
  // the JSON label and the engine that runs can never diverge.
  return run_async_engine(effective, proto, rng, shard_seed, plan.shards,
                          max_time, std::forward<Obs>(obs), sample_every,
                          perturb, plan.tuning);
}

/// The run dispatch for *messaging* protocols (core/delayed.hpp) under
/// an explicit latency model. Messaging protocols always ride the
/// superposition-based delivery driver (the only single-stream engine
/// with a message queue); any other engine request falls back to it
/// with a once-per-process warning, and the record's
/// params.engine_effective says "superposition" so the JSON stays
/// truthful. The latency draws come from `rng` via the driver (see
/// continuous_engine.hpp); `model` must outlive the run.
template <MessagingProtocol P, typename Obs = NullObserver>
AsyncRunResult run(const RunPlan& plan, P& proto, const LatencyModel& model,
                   Xoshiro256& rng, double max_time, Obs&& obs = Obs{},
                   double sample_every = 1.0) {
  if (!plan.ctx->engine.empty() &&
      plan.engine != EngineKind::kSuperposition) {
    warn_messaging_engine_once();
  }
  plan.ctx->note_effective_engine(
      engine_kind_name(EngineKind::kSuperposition));
  plan.ctx->note_effective_latency(model.name());
  return run_continuous_messaging(proto, model, rng, max_time,
                                  std::forward<Obs>(obs), sample_every);
}

}  // namespace plurality::bench
