// E8 — §3.2 (the endgame): once part 1 has driven the plurality to
// support (1 - eps) n, plain asynchronous Two-Choices finishes
// consensus within O(log n) time w.h.p. The tables sweep n at fixed eps
// (time ~ ln n) and eps at fixed n. The topology and the initial
// placement are scenario axes: --graph= swaps the clique for any
// factory family and --placement= starts the endgame from a clustered
// rather than uniformly mixed (1-eps)n configuration.

#include <cmath>
#include <deque>

#include "bench_common.hpp"
#include "core/two_choices.hpp"
#include "graph/factory.hpp"
#include "opinion/assignment.hpp"
#include "sim/sequential_engine.hpp"

using namespace plurality;

namespace {

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "E8 (endgame, §3.2)",
                "from c1 >= (1-eps)n, async Two-Choices finishes in "
                "O(log n) time and C1 always wins");
  const bench::RunPlan plan =
      bench::make_plan(ctx, EngineKind::kSequential);

  const std::uint64_t max_n = ctx.args.get_u64("max_n", 1ull << 17);
  const double eps_fixed = ctx.args.get_double("eps", 0.1);
  Xoshiro256 build_rng(ctx.master_seed);

  Table by_n("E8a: endgame time vs n  (k=2, c1=(1-eps)n, eps=" +
                 std::to_string(eps_fixed) + ")",
             {"n", "mean_time", "ci95", "p90", "win_rate", "time/ln(n)"});
  std::vector<double> xs;
  std::vector<double> ys;

  // Both tables ride ONE job graph (see runner.hpp): every (point, rep)
  // pair is a leaf on the process executor. Topologies are built up
  // front in the historical order — all E8a graphs, then the E8b graph
  // — so the build_rng draw sequence is unchanged; the deque keeps
  // their addresses stable for the leaf lambdas.
  std::deque<AnyGraph> graphs;
  SweepRunner sweep(ctx.threads);
  const auto body_for = [&ctx, &plan](const AnyGraph& g, std::uint64_t n_eff,
                                      std::uint64_t c1) {
    return [&ctx, &plan, &g, n_eff, c1](std::uint64_t, Xoshiro256& rng) {
      return std::visit(
          [&](const auto& cg) {
            TwoChoicesAsync proto(
                cg,
                bench::place_on(ctx, cg, counts_two_colors(n_eff, c1), rng));
            const auto result = bench::run(plan, proto, rng, 1e6);
            return std::vector<double>{
                result.time,
                (result.consensus && result.winner == 0) ? 1.0 : 0.0};
          },
          g);
    };
  };

  std::uint64_t sweep_point = 0;
  for (std::uint64_t n = 2048; n <= max_n; n *= 2, ++sweep_point) {
    graphs.push_back(bench::make_topology(ctx, n, build_rng));
    const AnyGraph& g = graphs.back();
    const std::uint64_t n_eff =
        std::visit([](const auto& cg) { return cg.num_nodes(); }, g);
    const auto c1 = static_cast<std::uint64_t>(
        (1.0 - eps_fixed) * static_cast<double>(n_eff));
    sweep.add_point(
        ctx.reps, 2, ctx.seeds_for(sweep_point), body_for(g, n_eff, c1),
        [&ctx, &by_n, &xs, &ys, n_eff, eps_fixed](const auto& slots) {
          ctx.record("endgame_time_vs_n", {{"n", n_eff}, {"eps", eps_fixed}},
                     slots[0]);
          const Summary time = summarize(slots[0]);
          const Summary wins = summarize(slots[1]);
          by_n.row()
              .cell(n_eff)
              .cell(time.mean, 2)
              .cell(time.ci95_halfwidth, 2)
              .cell(time.p90, 2)
              .cell(wins.mean, 2)
              .cell(time.mean / std::log(static_cast<double>(n_eff)), 3);
          xs.push_back(static_cast<double>(n_eff));
          ys.push_back(time.mean);
        });
  }

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 14);
  graphs.push_back(bench::make_topology(ctx, n, build_rng));
  const AnyGraph& g_eps = graphs.back();
  const std::uint64_t n_eff =
      std::visit([](const auto& cg) { return cg.num_nodes(); }, g_eps);
  Table by_eps("E8b: endgame time vs eps  (n=" + std::to_string(n_eff) + ")",
               {"eps", "c1/n", "mean_time", "ci95", "win_rate"});
  for (const double eps : {0.02, 0.05, 0.1, 0.2, 0.3}) {
    const auto c1 = static_cast<std::uint64_t>(
        (1.0 - eps) * static_cast<double>(n_eff));
    sweep.add_point(
        ctx.reps, 2, ctx.seeds_for(sweep_point++), body_for(g_eps, n_eff, c1),
        [&ctx, &by_eps, n_eff, eps](const auto& slots) {
          ctx.record("endgame_time_vs_eps", {{"n", n_eff}, {"eps", eps}},
                     slots[0]);
          const Summary time = summarize(slots[0]);
          const Summary wins = summarize(slots[1]);
          by_eps.row()
              .cell(eps, 2)
              .cell(1.0 - eps, 2)
              .cell(time.mean, 2)
              .cell(time.ci95_halfwidth, 2)
              .cell(wins.mean, 2);
        });
  }
  sweep.run();

  by_n.print(std::cout, ctx.csv);
  bench::report_fit(ctx, "endgame time = a + b*ln(n) fit", fit_log_x(xs, ys));
  by_eps.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "endgame",
    "E8 (S3.2): from support (1-eps)n, plain async Two-Choices finishes "
    "consensus within O(log n) time and C1 always wins",
    "Starts plain async Two-Choices from an already-decided "
    "configuration (support (1-eps)n for color 1) and measures the "
    "time to finish consensus — the endgame phase the main protocol "
    "hands over to. Sweeps n (doubling up to --max_n=) at fixed "
    "--eps=, then sweeps eps at fixed n. Records `endgame_time_vs_n` "
    "and `endgame_time_vs_eps`. Overrides: --n=, --max_n=, --eps=, "
    "--engine=, --graph= (any factory family), --placement= (start "
    "the endgame from a non-uniform residual configuration).",
    /*default_reps=*/20, run_exp};

}  // namespace
