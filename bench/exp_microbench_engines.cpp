// M1b-M1e — microbenchmarks. M1b: protocol tick and engine event-loop
// throughput (ns per tick / node-update). M1c: the same protocol driven
// by every asynchronous engine — sequential, n-timer heap, O(1)
// superposition, and the sharded engine at several shard counts — so
// the per-tick cost of the engine machinery itself can be compared
// head-to-head (ISSUE 2 acceptance: superposition >= 3x over heap at
// n = 10^6, sharded scaling across threads at n = 10^7; run with
// --m1c_n=1000000 / 10000000 to reproduce at full scale). M1e: the
// LLC-crossing series for the packed-SoA hot path — sharded ns/tick
// over a geometric ladder of n with bytes/node recorded; run with
// --m1e_max_n=100000000 for the memory-fit acceptance run.
// Hand-rolled timing (steady_clock, one sample per repetition) on the
// shared registry/JSON harness.

#include <chrono>

#include "bench_common.hpp"
#include "core/async_one_extra_bit.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "graph/csr.hpp"
#include "graph/factory.hpp"
#include "opinion/assignment.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/sequential_engine.hpp"
#include "sim/sharded_engine.hpp"

using namespace plurality;

namespace {

volatile std::uint64_t g_sink;

/// ns per tick of `proto.on_tick` on uniform nodes over `ticks` ticks.
template <typename Proto>
double time_ticks(Proto& proto, Xoshiro256& rng, std::uint64_t n,
                  std::uint64_t ticks) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ticks; ++i) {
    proto.on_tick(static_cast<NodeId>(uniform_below(rng, n)), rng);
  }
  const auto stop = std::chrono::steady_clock::now();
  g_sink = proto.table().support(0);
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(ticks);
}

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "M1b (engine microbench)",
                "per-tick protocol cost and event-queue overhead bound "
                "every experiment's wall-clock time");

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 16);
  const std::uint64_t ticks = ctx.args.get_u64("iters", 1ull << 20);
  const CompleteGraph g(n);

  Table table("M1b: engine / protocol throughput  (n=" + std::to_string(n) +
                  ", " + std::to_string(ticks) + " ticks per rep)",
              {"op", "ns_op", "ci95", "ops_per_sec"});

  const auto report = [&](const std::string& name,
                          const std::vector<double>& samples) {
    ctx.record("ns_per_op", {{"op", name.c_str()}, {"n", n}}, samples);
    const Summary s = summarize(samples);
    table.row()
        .cell(name)
        .cell(s.mean, 2)
        .cell(s.ci95_halfwidth, 2)
        .cell(1e9 / s.mean, 0);
  };

  const auto per_rep = [&](auto body) {
    std::vector<double> samples;
    samples.reserve(ctx.reps);
    for (std::uint64_t rep = 0; rep < ctx.reps; ++rep) {
      Xoshiro256 rng(SeedSequence(ctx.master_seed).stream(rep));
      samples.push_back(body(rng));
    }
    return samples;
  };

  report("voter_tick", per_rep([&](Xoshiro256& rng) {
           VoterAsync proto(g, assign_equal(n, 64, rng));
           return time_ticks(proto, rng, n, ticks);
         }));
  report("two_choices_tick", per_rep([&](Xoshiro256& rng) {
           TwoChoicesAsync proto(g, assign_equal(n, 64, rng));
           return time_ticks(proto, rng, n, ticks);
         }));
  report("async_oeb_tick", per_rep([&](Xoshiro256& rng) {
           auto proto = AsyncOneExtraBit<CompleteGraph>::make(
               g, assign_equal(n, 64, rng));
           return time_ticks(proto, rng, n, ticks);
         }));
  report("sync_two_choices_node_update", per_rep([&](Xoshiro256& rng) {
           TwoChoicesSync proto(g, assign_equal(n, 64, rng));
           const std::uint64_t rounds = std::max<std::uint64_t>(ticks / n, 1);
           const auto start = std::chrono::steady_clock::now();
           for (std::uint64_t r = 0; r < rounds; ++r) {
             proto.execute_round(rng);
           }
           const auto stop = std::chrono::steady_clock::now();
           g_sink = proto.table().support(0);
           return std::chrono::duration<double, std::nano>(stop - start)
                      .count() /
                  static_cast<double>(rounds * n);
         }));
  report("continuous_engine_tick", per_rep([&](Xoshiro256& rng) {
           // Cost of the continuous-engine machinery itself (now the
           // superposition sampler), amortized per tick of the cheapest
           // protocol.
           const double horizon =
               static_cast<double>(ticks) / static_cast<double>(n);
           VoterAsync proto(g, assign_equal(n, 2, rng));
           const auto start = std::chrono::steady_clock::now();
           const auto result = run_continuous(proto, rng, horizon);
           const auto stop = std::chrono::steady_clock::now();
           g_sink = result.consensus ? 1 : 0;
           const double simulated_ticks =
               result.time * static_cast<double>(n);
           return std::chrono::duration<double, std::nano>(stop - start)
                      .count() /
                  std::max(simulated_ticks, 1.0);
         }));

  table.print(std::cout, ctx.csv);

  // ---- M1c: one protocol, every engine. Voter with 64 colors stays
  // far from consensus over the horizon, so all engines simulate the
  // same Poisson(n * horizon) tick load and the measured difference is
  // pure engine machinery.
  const std::uint64_t mc_n = ctx.args.get_u64("m1c_n", n);
  const std::uint64_t mc_ticks = ctx.args.get_u64("m1c_iters", ticks);
  const double horizon =
      static_cast<double>(mc_ticks) / static_cast<double>(mc_n);
  const CompleteGraph mc_graph(mc_n);

  Table engines("M1c: async engine comparison  (voter, n=" +
                    std::to_string(mc_n) + ", horizon=" +
                    std::to_string(horizon) + ")",
                {"engine", "ns_tick", "ci95", "ticks_per_sec",
                 "speedup_vs_heap"});

  const auto time_engine = [&](auto&& run_engine) {
    return per_rep([&](Xoshiro256& rng) {
      VoterAsync proto(mc_graph, assign_equal(mc_n, 64, rng));
      const auto start = std::chrono::steady_clock::now();
      const auto result = run_engine(proto, rng);
      const auto stop = std::chrono::steady_clock::now();
      g_sink = result.ticks;
      return std::chrono::duration<double, std::nano>(stop - start)
                 .count() /
             std::max(static_cast<double>(result.ticks), 1.0);
    });
  };

  double heap_mean = 0.0;
  const auto report_engine = [&](const std::string& name,
                                 const std::vector<double>& samples) {
    ctx.record("ns_per_tick_engine",
               {{"engine", name.c_str()}, {"n", mc_n}}, samples);
    const Summary s = summarize(samples);
    if (name == "heap") heap_mean = s.mean;
    engines.row()
        .cell(name)
        .cell(s.mean, 2)
        .cell(s.ci95_halfwidth, 2)
        .cell(1e9 / s.mean, 0)
        .cell(heap_mean > 0.0 ? heap_mean / s.mean : 1.0, 2);
  };

  report_engine("heap", time_engine([&](auto& proto, Xoshiro256& rng) {
                  return run_continuous_heap(proto, rng, horizon);
                }));
  report_engine("superposition",
                time_engine([&](auto& proto, Xoshiro256& rng) {
                  return run_continuous(proto, rng, horizon);
                }));
  report_engine("sequential",
                time_engine([&](auto& proto, Xoshiro256& rng) {
                  return run_sequential(proto, rng, horizon);
                }));
  for (const unsigned shards : {1u, 2u, 4u}) {
    report_engine("sharded_t" + std::to_string(shards),
                  time_engine([&](auto& proto, Xoshiro256& rng) {
                    return run_sharded(proto, rng(), shards, horizon);
                  }));
  }

  engines.print(std::cout, ctx.csv);

  // ---- M1d: sharded on a *graph*. The same far-from-consensus Voter
  // workload on a sparse random 8-regular topology, sampled through
  // the flat CSR view (graph/csr.hpp) that the unified RunPlan path
  // hands every engine: per-tick cost of the sequential graph driver
  // vs superposition vs the sharded engine at several shard counts.
  // The regular family keeps the neighbor-sample cost identical across
  // nodes, so the measured difference is pure engine machinery plus
  // the CSR row load.
  const std::uint64_t mg_n = ctx.args.get_u64("m1d_n", n);
  const std::uint64_t mg_ticks = ctx.args.get_u64("m1d_iters", ticks);
  const double mg_horizon =
      static_cast<double>(mg_ticks) / static_cast<double>(mg_n);
  GraphSpec mg_spec;
  mg_spec.kind = GraphKind::kRandomRegular;
  Xoshiro256 mg_build_rng(ctx.master_seed);
  const AnyGraph mg_graph = make_graph(mg_spec, mg_n, mg_build_rng);
  const CsrTopology mg_csr = make_csr_view(mg_graph);

  Table on_graph("M1d: async engines on a graph  (voter, random "
                 "8-regular via CSR view, n=" +
                     std::to_string(mg_n) + ", horizon=" +
                     std::to_string(mg_horizon) + ")",
                 {"engine", "ns_tick", "ci95", "ticks_per_sec",
                  "speedup_vs_sequential"});

  const auto time_graph_engine = [&](auto&& run_engine) {
    return per_rep([&](Xoshiro256& rng) {
      VoterAsync<CsrTopology> proto(mg_csr, assign_equal(mg_n, 64, rng));
      const auto start = std::chrono::steady_clock::now();
      const auto result = run_engine(proto, rng);
      const auto stop = std::chrono::steady_clock::now();
      g_sink = result.ticks;
      return std::chrono::duration<double, std::nano>(stop - start)
                 .count() /
             std::max(static_cast<double>(result.ticks), 1.0);
    });
  };

  double sequential_mean = 0.0;
  const auto report_graph_engine = [&](const std::string& name,
                                       const std::vector<double>& samples) {
    ctx.record("ns_per_tick_graph",
               {{"engine", name.c_str()}, {"graph", "regular"}, {"n", mg_n}},
               samples);
    const Summary s = summarize(samples);
    if (name == "sequential") sequential_mean = s.mean;
    on_graph.row()
        .cell(name)
        .cell(s.mean, 2)
        .cell(s.ci95_halfwidth, 2)
        .cell(1e9 / s.mean, 0)
        .cell(sequential_mean > 0.0 ? sequential_mean / s.mean : 1.0, 2);
  };

  report_graph_engine("sequential",
                      time_graph_engine([&](auto& proto, Xoshiro256& rng) {
                        return run_sequential(proto, rng, mg_horizon);
                      }));
  report_graph_engine("superposition",
                      time_graph_engine([&](auto& proto, Xoshiro256& rng) {
                        return run_continuous(proto, rng, mg_horizon);
                      }));
  for (const unsigned shards : {1u, 2u, 4u}) {
    report_graph_engine("sharded_t" + std::to_string(shards),
                        time_graph_engine([&](auto& proto, Xoshiro256& rng) {
                          return run_sharded(proto, rng(), shards,
                                             mg_horizon);
                        }));
  }

  on_graph.print(std::cout, ctx.csv);

  // ---- M1e: LLC-crossing series. The same far-from-consensus Voter
  // workload on the sharded engine at a geometric ladder of n, with a
  // *fixed* total tick budget so every sweep point simulates the same
  // load: once the packed working set (1 byte/node color state plus
  // live + snapshot shard buffers) outgrows the last-level cache, the
  // per-tick cost should plateau at the DRAM random-access rate
  // instead of climbing — the acceptance gate for the billion-node
  // hot path. The plateau assumes huge-page translation (the slab
  // layer madvises THP); on hosts that never promote — e.g. a
  // virtualized CI box in `madvise` THP mode that ignores the advice
  // — 4 KiB page walks add a visible slope well past the LLC, so
  // judge flatness on THP-capable hardware. The
  // resolved bytes/node of the hot state is recorded per sweep point
  // (and flows into the BENCH record's params.bytes_per_node). Scale
  // up with --m1e_max_n= (10^8 reproduces the memory-fit acceptance
  // run); the engine honors --sampling=, --numa=, and --exact-reads
  // via the shared tuning context.
  const std::uint64_t me_min_n = ctx.args.get_u64("m1e_min_n", 100000);
  const std::uint64_t me_max_n = ctx.args.get_u64("m1e_max_n", 3200000);
  const std::uint64_t me_ticks = ctx.args.get_u64("m1e_iters", 1ull << 21);
  const auto me_shards =
      static_cast<unsigned>(ctx.args.get_u64("m1e_shards", 4));

  Table llc("M1e: LLC-crossing ns/tick  (voter, sharded_t" +
                std::to_string(me_shards) + ", " + std::to_string(me_ticks) +
                " ticks per rep)",
            {"n", "ns_tick", "ci95", "bytes_node", "state_mb"});

  for (std::uint64_t me_n = me_min_n; me_n <= me_max_n; me_n *= 4) {
    const double me_horizon =
        static_cast<double>(me_ticks) / static_cast<double>(me_n);
    const CompleteGraph me_graph(me_n);
    double bytes_node = 0.0;
    const auto samples = per_rep([&](Xoshiro256& rng) {
      VoterAsync proto(me_graph, assign_equal(me_n, 64, rng));
      // Hot-state share: packed colors + the engine's live and
      // snapshot buffers (complete graph, so no topology share).
      bytes_node = proto.table().state_bytes_per_node() +
                   (ctx.tuning.exact_reads
                        ? 0.0
                        : 2.0 * static_cast<double>(color_width_bytes(
                                    proto.table().width())));
      ctx.note_state_bytes_per_node(bytes_node);
      const auto start = std::chrono::steady_clock::now();
      const auto result =
          run_sharded(proto, rng(), me_shards, me_horizon, NullObserver{},
                      /*sample_every=*/me_horizon, /*epoch_length=*/0.25,
                      /*snapshot_reads=*/false, /*perturb=*/nullptr,
                      ctx.tuning);
      const auto stop = std::chrono::steady_clock::now();
      g_sink = result.ticks;
      return std::chrono::duration<double, std::nano>(stop - start).count() /
             std::max(static_cast<double>(result.ticks), 1.0);
    });
    ctx.record("ns_per_tick_llc",
               {{"engine", "sharded"}, {"shards", me_shards}, {"n", me_n}},
               samples);
    ctx.record("bytes_per_node_llc", {{"n", me_n}},
               std::vector<double>{bytes_node});
    const Summary s = summarize(samples);
    llc.row()
        .cell(me_n)
        .cell(s.mean, 2)
        .cell(s.ci95_halfwidth, 2)
        .cell(bytes_node, 2)
        .cell(bytes_node * static_cast<double>(me_n) / 1e6, 1);
  }

  llc.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "microbench_engines",
    "M1b/M1c: protocol tick and engine event-loop throughput (ns per "
    "tick / node-update), plus heap vs superposition vs sharded engine "
    "head-to-head",
    "Hot-path microbenchmarks. M1b: ns per protocol tick (Voter, "
    "Two-Choices, 3-Majority) and ns per node-update for the sync "
    "drivers. M1c: the same Two-Choices workload driven end to end by "
    "each async engine (sequential, heap, superposition, sharded) — "
    "the superposition-vs-heap gap is the PR 2 headline. M1d: the "
    "engines on a *graph* (Voter on a random 8-regular topology "
    "through the flat CSR view): per-tick throughput of the sharded "
    "engine at several shard counts vs the sequential graph driver. "
    "M1e: the LLC-crossing series — sharded ns/tick over a geometric "
    "ladder of n at a fixed tick budget, with the resolved packed "
    "bytes/node per sweep point; flat past the LLC is the billion-node "
    "hot-path acceptance gate. Records `ns_per_op`, "
    "`ns_per_tick_engine`, `ns_per_tick_graph`, `ns_per_tick_llc`, and "
    "`bytes_per_node_llc`. Overrides: --n=, --iters=, --m1c_n=, "
    "--m1c_iters=, --m1d_n=, --m1d_iters=, --shards=, --m1e_min_n=, "
    "--m1e_max_n=, --m1e_iters=, --m1e_shards=.",
    /*default_reps=*/5, run_exp};

}  // namespace
