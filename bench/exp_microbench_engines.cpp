// M1b — microbenchmarks: engine and protocol throughput, reported as
// ns per tick (async protocols), ns per node-update (sync rounds), and
// the cost of the continuous-time event-queue machinery. Hand-rolled
// timing (steady_clock, one sample per repetition) on the shared
// registry/JSON harness.

#include <chrono>

#include "bench_common.hpp"
#include "core/async_one_extra_bit.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/sequential_engine.hpp"

using namespace plurality;

namespace {

volatile std::uint64_t g_sink;

/// ns per tick of `proto.on_tick` on uniform nodes over `ticks` ticks.
template <typename Proto>
double time_ticks(Proto& proto, Xoshiro256& rng, std::uint64_t n,
                  std::uint64_t ticks) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ticks; ++i) {
    proto.on_tick(static_cast<NodeId>(uniform_below(rng, n)), rng);
  }
  const auto stop = std::chrono::steady_clock::now();
  g_sink = proto.table().support(0);
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(ticks);
}

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "M1b (engine microbench)",
                "per-tick protocol cost and event-queue overhead bound "
                "every experiment's wall-clock time");

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 16);
  const std::uint64_t ticks = ctx.args.get_u64("iters", 1ull << 20);
  const CompleteGraph g(n);

  Table table("M1b: engine / protocol throughput  (n=" + std::to_string(n) +
                  ", " + std::to_string(ticks) + " ticks per rep)",
              {"op", "ns_op", "ci95", "ops_per_sec"});

  const auto report = [&](const std::string& name,
                          const std::vector<double>& samples) {
    ctx.record("ns_per_op", {{"op", name.c_str()}, {"n", n}}, samples);
    const Summary s = summarize(samples);
    table.row()
        .cell(name)
        .cell(s.mean, 2)
        .cell(s.ci95_halfwidth, 2)
        .cell(1e9 / s.mean, 0);
  };

  const auto per_rep = [&](auto body) {
    std::vector<double> samples;
    samples.reserve(ctx.reps);
    for (std::uint64_t rep = 0; rep < ctx.reps; ++rep) {
      Xoshiro256 rng(SeedSequence(ctx.master_seed).stream(rep));
      samples.push_back(body(rng));
    }
    return samples;
  };

  report("voter_tick", per_rep([&](Xoshiro256& rng) {
           VoterAsync proto(g, assign_equal(n, 64, rng));
           return time_ticks(proto, rng, n, ticks);
         }));
  report("two_choices_tick", per_rep([&](Xoshiro256& rng) {
           TwoChoicesAsync proto(g, assign_equal(n, 64, rng));
           return time_ticks(proto, rng, n, ticks);
         }));
  report("async_oeb_tick", per_rep([&](Xoshiro256& rng) {
           auto proto = AsyncOneExtraBit<CompleteGraph>::make(
               g, assign_equal(n, 64, rng));
           return time_ticks(proto, rng, n, ticks);
         }));
  report("sync_two_choices_node_update", per_rep([&](Xoshiro256& rng) {
           TwoChoicesSync proto(g, assign_equal(n, 64, rng));
           const std::uint64_t rounds = std::max<std::uint64_t>(ticks / n, 1);
           const auto start = std::chrono::steady_clock::now();
           for (std::uint64_t r = 0; r < rounds; ++r) {
             proto.execute_round(rng);
           }
           const auto stop = std::chrono::steady_clock::now();
           g_sink = proto.table().support(0);
           return std::chrono::duration<double, std::nano>(stop - start)
                      .count() /
                  static_cast<double>(rounds * n);
         }));
  report("continuous_engine_tick", per_rep([&](Xoshiro256& rng) {
           // Cost of the event-queue machinery itself: heap pops/pushes
           // plus exponential draws, amortized per tick of the cheapest
           // protocol.
           const double horizon =
               static_cast<double>(ticks) / static_cast<double>(n);
           VoterAsync proto(g, assign_equal(n, 2, rng));
           const auto start = std::chrono::steady_clock::now();
           const auto result = run_continuous(proto, rng, horizon);
           const auto stop = std::chrono::steady_clock::now();
           g_sink = result.consensus ? 1 : 0;
           const double simulated_ticks =
               result.time * static_cast<double>(n);
           return std::chrono::duration<double, std::nano>(stop - start)
                      .count() /
                  std::max(simulated_ticks, 1.0);
         }));

  table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "microbench_engines",
    "M1b: protocol tick and engine event-loop throughput (ns per tick / "
    "node-update)",
    /*default_reps=*/5, run_exp};

}  // namespace
