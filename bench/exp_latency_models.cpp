// L1 — edge-latency models (Bankhamer et al., "Fast Consensus
// Protocols in the Asynchronous Poisson Clock Model with Edge
// Latencies"): at matched mean delay, the *shape* of the latency
// distribution decides the consensus time. Positive-aging latencies
// (non-decreasing hazard: constant, Weibull shape >= 1) stay close to
// the instant-response baseline, the memoryless exponential sits in
// between, and the heavy-tailed Pareto/Lomax family pays for its
// stragglers: late deliveries keep reinjecting stale minority opinions
// into the endgame.
//
// Sweeps TwoChoices and 3-Majority (two colors at a 3:1 split,
// blocking one-query-in-flight discipline — the regime where the
// latency shape matters) under zero|const|exp|pareto|aging at the same
// mean delay. The topology comes from the graph factory (default:
// complete graph, the historical workload; pass --graph= to compose
// latency with any family and --placement= with any start). Two
// engines can drive the cells: the default is the single-stream
// superposition messaging driver (delayed protocol variants,
// core/delayed.hpp); --engine=sharded runs the same blocking
// discipline on the sharded engine's per-shard delivery queues
// (run_sharded_queued), which is the parallel path. Passing
// --latency=<model> restricts the sweep to that model; --latency-mean=
// sets the matched mean (default 1.0) and --latency-shape= overrides
// the per-family default shape. A final section cross-validates the
// sharded engine's constant-latency epoch fold against the messaging
// driver on the same (fire-and-forget) workload.

#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/delayed.hpp"
#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "graph/csr.hpp"
#include "opinion/assignment.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/engine_select.hpp"
#include "sim/latency.hpp"

using namespace plurality;

namespace {

/// One (protocol, model) cell: consensus times of the blocking
/// discipline, on the engine the plan selects — the messaging driver
/// (delayed protocol variant) by default, the sharded engine's
/// delivery queues (plain protocol, query/apply split) under
/// --engine=sharded.
template <template <GraphTopology> class ProtoDelayed,
          template <GraphTopology> class ProtoPlain>
std::vector<std::vector<double>> run_cell(ExperimentContext& ctx,
                                          const bench::RunPlan& plan,
                                          const AnyGraph& any,
                                          const CsrTopology& csr,
                                          const LatencyModel& model,
                                          std::uint64_t sweep_point) {
  const std::uint64_t n = csr.num_nodes();
  const auto seeds = ctx.seeds_for(sweep_point);
  const bool sharded = plan.engine == EngineKind::kSharded;
  return run_repetitions_multi(
      ctx.reps, 2, seeds,
      [&](std::uint64_t, Xoshiro256& rng) {
        AsyncRunResult result;
        if (sharded) {
          ProtoPlain<CsrTopology> proto(
              csr, bench::place_on(ctx, any,
                                   counts_two_colors(n, (n * 3) / 4), rng));
          result = bench::run_queued(plan, proto, model,
                                     QueryDiscipline::kBlocking, rng, 1e5);
        } else {
          ProtoDelayed<CsrTopology> proto(
              csr, bench::place_on(ctx, any,
                                   counts_two_colors(n, (n * 3) / 4), rng));
          result = bench::run(plan, proto, model, rng, 1e5);
        }
        return std::vector<double>{result.time,
                                   result.consensus ? 1.0 : 0.0};
      },
      ctx.threads);
}

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "L1 (edge-latency models, Bankhamer et al.)",
                "at matched mean delay, positive-aging latencies "
                "(non-decreasing hazard) keep plurality consensus fast "
                "while heavy tails slow the endgame: "
                "aging <~ exp < pareto");
  const bench::RunPlan plan =
      bench::make_plan(ctx, EngineKind::kSuperposition);

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 12);
  Xoshiro256 build_rng(ctx.master_seed);
  const AnyGraph any = bench::topology(plan, n, build_rng);
  const CsrTopology csr = make_csr_view(any);
  const std::uint64_t n_eff = csr.num_nodes();
  // ExperimentContext resolves --latency-mean with the same default.
  const double mean = ctx.latency.mean;
  PC_EXPECTS(mean > 0.0);

  // --latency= restricts the sweep; otherwise compare all families.
  std::vector<LatencyKind> sweep;
  if (ctx.args.has_flag("latency")) {
    sweep.push_back(ctx.latency.kind);
  } else {
    sweep = {LatencyKind::kZero, LatencyKind::kConstant,
             LatencyKind::kExponential, LatencyKind::kPareto,
             LatencyKind::kAging};
  }

  Table table("L1: consensus time under edge-latency models  (n=" +
                  std::to_string(n_eff) + ", k=2, mean delay " +
                  std::to_string(mean) + ")",
              {"protocol", "latency", "shape", "mean_time", "ci95",
               "success"});

  double mean_exp = -1.0;
  double mean_aging = -1.0;
  double mean_pareto = -1.0;
  // Only the Pareto and aging families take a shape parameter. A
  // global --latency-shape= override applies to them only where it
  // satisfies the family's contract (Lomax needs > 1 for a finite
  // mean, Weibull >= 1 for non-decreasing hazard) — otherwise the
  // family keeps its default instead of aborting the sweep mid-run —
  // and is never stamped onto the shapeless zero/const/exp rows. The
  // table's shape column shows what each row actually used.
  const auto uses_shape = [](LatencyKind kind) {
    return kind == LatencyKind::kPareto || kind == LatencyKind::kAging;
  };
  const bool shape_overridden = ctx.args.has_flag("latency-shape");
  const auto shape_for = [&](LatencyKind kind) {
    const double fallback = default_latency_shape(kind);
    if (!shape_overridden || !uses_shape(kind)) return fallback;
    const double s = ctx.latency.shape;
    if (kind == LatencyKind::kPareto && s <= 1.0) return fallback;
    if (kind == LatencyKind::kAging && s < 1.0) return fallback;
    return s;
  };

  std::uint64_t sweep_point = 0;
  for (const LatencyKind kind : sweep) {
    const double shape = shape_for(kind);
    const auto model = make_latency_model(kind, mean, shape);
    struct Row {
      const char* protocol;
      std::vector<std::vector<double>> slots;
    };
    Row rows[] = {
        {"two_choices",
         run_cell<TwoChoicesAsyncDelayed, TwoChoicesAsync>(
             ctx, plan, any, csr, *model, sweep_point * 2)},
        {"three_majority",
         run_cell<ThreeMajorityAsyncDelayed, ThreeMajorityAsync>(
             ctx, plan, any, csr, *model, sweep_point * 2 + 1)},
    };
    ++sweep_point;
    for (const Row& row : rows) {
      // `shape` only describes the Pareto/aging samplers; the other
      // families' records carry no shape key at all.
      if (uses_shape(kind)) {
        ctx.record("time_vs_model",
                   {{"protocol", row.protocol},
                    {"latency", latency_kind_name(kind)},
                    {"n", n_eff},
                    {"mean_delay", mean},
                    {"shape", shape}},
                   row.slots[0]);
      } else {
        ctx.record("time_vs_model",
                   {{"protocol", row.protocol},
                    {"latency", latency_kind_name(kind)},
                    {"n", n_eff},
                    {"mean_delay",
                     kind == LatencyKind::kZero ? 0.0 : mean}},
                   row.slots[0]);
      }
      const Summary time = summarize(row.slots[0]);
      Table& with_shape = table.row()
                              .cell(row.protocol)
                              .cell(latency_kind_name(kind));
      if (uses_shape(kind)) {
        with_shape.cell(shape, 1);
      } else {
        with_shape.cell("-");
      }
      with_shape.cell(time.mean, 1)
          .cell(time.ci95_halfwidth, 1)
          .cell(summarize(row.slots[1]).mean, 2);
      if (std::string(row.protocol) == "two_choices") {
        if (kind == LatencyKind::kExponential) mean_exp = time.mean;
        if (kind == LatencyKind::kAging) mean_aging = time.mean;
        if (kind == LatencyKind::kPareto) mean_pareto = time.mean;
      }
    }
  }
  table.print(std::cout, ctx.csv);

  if (!ctx.csv && mean_exp > 0.0 && mean_aging > 0.0 && mean_pareto > 0.0) {
    std::printf("positive-aging ordering (two_choices means): "
                "aging %.1f vs exp %.1f vs pareto %.1f  %s\n",
                mean_aging, mean_exp, mean_pareto,
                (mean_aging <= mean_exp && mean_exp <= mean_pareto)
                    ? "[aging <= exp <= pareto]"
                    : "[ordering not met at this scale]");
  }

  // Cross-validation: the sharded engine folds ConstantLatency into
  // its epoch schedule (epoch = 2x mean with snapshot neighbor reads,
  // so the read age averages one mean delay — see run_sharded_latency).
  // The fold runs updates at the full tick rate from stale reads — the
  // fire-and-forget discipline — so it is compared against the
  // messaging driver under the same discipline, not against the
  // blocking rows above.
  {
    const ConstantLatency latency(mean);
    const auto fold_times = run_repetitions(
        ctx.reps, ctx.seeds_for(1000),
        [&](std::uint64_t, Xoshiro256& rng) {
          TwoChoicesAsync<CsrTopology> proto(
              csr, bench::place_on(ctx, any,
                                   counts_two_colors(n_eff, (n_eff * 3) / 4),
                                   rng));
          ctx.note_effective_engine(
              engine_kind_name(EngineKind::kSharded));
          ctx.note_effective_latency(latency.name());
          return run_sharded_latency(proto, latency, rng(), ctx.shards,
                                     1e5)
              .time;
        },
        ctx.threads);
    const auto msg_times = run_repetitions(
        ctx.reps, ctx.seeds_for(1001),
        [&](std::uint64_t, Xoshiro256& rng) {
          TwoChoicesAsyncDelayed<CsrTopology> proto(
              csr,
              bench::place_on(ctx, any,
                              counts_two_colors(n_eff, (n_eff * 3) / 4),
                              rng),
              QueryDiscipline::kFireAndForget);
          // Raw messaging driver, attributed by hand: this section
          // cross-validates the fold *against* the messaging driver by
          // design, so a --engine=sharded request (which did drive the
          // main sweep) must not trip the dispatch's "ignoring
          // --engine=" warning here.
          ctx.note_effective_engine(
              engine_kind_name(EngineKind::kSuperposition));
          ctx.note_effective_latency(latency.name());
          return run_continuous_messaging(proto, latency, rng, 1e5).time;
        },
        ctx.threads);
    ctx.record("const_fold_sharded",
               {{"protocol", "two_choices"},
                {"latency", "const"},
                {"n", n_eff},
                {"mean_delay", mean},
                {"shards", ctx.shards}},
               fold_times);
    ctx.record("const_fold_messaging",
               {{"protocol", "two_choices"},
                {"latency", "const"},
                {"n", n_eff},
                {"mean_delay", mean}},
               msg_times);
    const Summary fold = summarize(fold_times);
    const Summary msg = summarize(msg_times);
    if (!ctx.csv) {
      std::printf("const-latency fire-and-forget cross-check: sharded "
                  "epoch fold %.1f +- %.1f (%u shard(s)) vs messaging "
                  "driver %.1f +- %.1f\n",
                  fold.mean, fold.ci95_halfwidth, ctx.shards, msg.mean,
                  msg.ci95_halfwidth);
    }
  }
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "latency_models",
    "L1 (Bankhamer et al.): at matched mean delay, positive-aging edge "
    "latencies keep consensus fast while heavy tails slow the endgame",
    "Compares TwoChoices and 3-Majority (two colors at a 3:1 split, "
    "blocking one-query-in-flight discipline) under the five "
    "edge-latency models zero|const|exp|pareto|aging at matched mean "
    "delay. The topology comes from the graph factory (default "
    "complete; --graph= composes latency with any family, --placement= "
    "with any start). The default engine is the single-stream "
    "superposition messaging driver; --engine=sharded runs the same "
    "blocking discipline on the sharded engine's per-shard delivery "
    "queues (--shards=T workers). Records `time_vs_model` (consensus "
    "time and success rate per protocol x model) plus "
    "`const_fold_sharded` / `const_fold_messaging` (the sharded "
    "engine's constant-latency epoch fold vs the messaging driver on "
    "the same fire-and-forget workload). Overrides: --n=, --latency= "
    "(restrict to one model), --latency-mean= (matched mean, default "
    "1.0), --latency-shape= (per-family default: pareto 2.5, aging "
    "4.0), --engine=, --shards=, --graph= and the --graph-* knobs, "
    "--placement=. The headline check is the positive-aging ordering "
    "aging <= exp <= pareto in the two_choices means.",
    /*default_reps=*/5, run_exp};

}  // namespace
