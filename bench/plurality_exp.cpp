// The single experiment binary. Every experiment in bench/ self-registers
// into the ExperimentRegistry; this main selects and runs them:
//
//   plurality_exp --list                 show all registered experiments
//   plurality_exp --exp=<name>[,<name>]  run the named experiment(s)
//   plurality_exp --all                  run every experiment
//
// Shared knobs (--seed= --reps= --threads= --csv) plus each experiment's
// own sweep overrides pass straight through. Besides the human-readable
// tables on stdout, every run writes one structured JSON record —
// params, per-rep samples, Welford mean/stderr, wall clock — to
// BENCH_<name>.json (override the directory with --out-dir=, bundle all
// records into one file with --json=, or disable with --no-json).

#include <algorithm>
#include <cstddef>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/args.hpp"
#include "experiment/json_writer.hpp"
#include "experiment/registry.hpp"

namespace {

using plurality::Args;
using plurality::Experiment;
using plurality::ExperimentRegistry;
using plurality::JsonValue;

void print_list(const ExperimentRegistry& registry, std::ostream& os) {
  os << "registered experiments (" << registry.size() << "):\n";
  std::size_t width = 0;
  for (const Experiment* e : registry.list()) {
    width = std::max(width, e->name.size());
  }
  for (const Experiment* e : registry.list()) {
    os << "  " << e->name << std::string(width - e->name.size(), ' ')
       << "  reps=" << e->default_reps << "  " << e->description << "\n";
  }
}

void print_usage(const ExperimentRegistry& registry, std::ostream& os) {
  os << "usage: plurality_exp --exp=<name>[,<name>...] | --all | --list\n"
     << "       [--seed=N] [--reps=N] [--threads=N] [--csv]\n"
     << "       [--json=FILE | --out-dir=DIR | --no-json]\n"
     << "       [experiment-specific overrides, e.g. --n=4096]\n\n";
  print_list(registry, os);
}

std::vector<std::string> split_csv_list(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string item = spec.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  const Args args(argc, argv);
  const auto& registry = ExperimentRegistry::instance();

  if (args.has_flag("list")) {
    print_list(registry, std::cout);
    return 0;
  }

  std::vector<const Experiment*> selected;
  if (args.has_flag("all")) {
    selected = registry.list();
  } else {
    if (!args.has_flag("exp")) {
      // No selection at all is an error, not a help request (--list is
      // the explicit way to get a 0 exit): wrapper scripts that end up
      // passing nothing must not read "success, nothing run".
      print_usage(registry, std::cerr);
      return 1;
    }
    const std::string spec = args.get_string("exp", "");
    for (const std::string& name : split_csv_list(spec)) {
      const Experiment* experiment = registry.find(name);
      if (experiment == nullptr) {
        std::cerr << "error: unknown experiment '" << name << "'\n\n";
        print_list(registry, std::cerr);
        return 1;
      }
      selected.push_back(experiment);
    }
  }
  if (selected.empty()) {
    // A present-but-empty --exp= (e.g. an unset shell variable) must
    // not exit 0 with nothing run — scripts would read it as success.
    std::cerr << "error: no experiments selected (empty --exp= value)\n";
    return 1;
  }

  const bool write_json = !args.has_flag("no-json");
  const std::string combined_path = args.get_string("json", "");
  const std::string out_dir = args.get_string("out-dir", ".");

  JsonValue combined = JsonValue::array();
  int exit_code = 0;
  for (const Experiment* experiment : selected) {
    JsonValue record;
    try {
      record = registry.run_to_record(*experiment, args);
    } catch (const std::exception& e) {
      // One failing experiment must not discard the records already
      // accumulated by a long --all / --json run; emit a failure
      // record and keep going.
      std::cerr << "error: experiment '" << experiment->name
                << "' failed: " << e.what() << "\n";
      // Carry the full record schema (empty series) so trajectory
      // consumers keyed on "series"/"params" see a failed run, not a
      // malformed record.
      record = JsonValue::object();
      record["schema_version"] = 1;
      record["experiment"] = experiment->name;
      record["description"] = experiment->description;
      record["params"] = JsonValue::object();
      record["series"] = JsonValue::array();
      record["error"] = e.what();
      record["exit_code"] = 1;
      record["wall_clock_seconds"] = 0.0;
    }
    if (const JsonValue* rc = record.find("exit_code");
        rc != nullptr && rc->as_double() != 0.0) {
      std::cerr << "warning: experiment '" << experiment->name
                << "' did not complete cleanly\n";
      exit_code = 1;
    }
    if (!write_json) continue;
    if (!combined_path.empty()) {
      combined.push_back(std::move(record));
    } else {
      const std::string path =
          out_dir + "/BENCH_" + experiment->name + ".json";
      plurality::write_json_file(path, record);
      std::cerr << "wrote " << path << "\n";
    }
  }
  if (write_json && !combined_path.empty()) {
    plurality::write_json_file(combined_path, combined);
    std::cerr << "wrote " << combined_path << "\n";
  }
  return exit_code;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
