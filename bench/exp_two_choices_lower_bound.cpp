// E2 — Theorem 1.1 (lower bound): with c2 = ... = ck and bias
// z*sqrt(n log n), synchronous Two-Choices needs Omega(n/c1 + log n)
// rounds — i.e. ~linear in k when all minorities tie. The table sweeps k
// at fixed n; the power-law fit of rounds against k should report an
// exponent near 1.

#include <cmath>

#include "bench_common.hpp"
#include "core/two_choices.hpp"
#include "graph/factory.hpp"
#include "opinion/assignment.hpp"
#include "sim/sync_driver.hpp"

using namespace plurality;

namespace {

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "E2 (Theorem 1.1 lower)",
                "with c2=...=ck, Two-Choices requires Omega(n/c1) = "
                "Omega(k) rounds; rounds should grow ~linearly in k");

  const std::uint64_t n_req = ctx.args.get_u64("n", 1ull << 14);
  const std::uint64_t max_k = ctx.args.get_u64("max_k", 64);
  Xoshiro256 build_rng(ctx.master_seed);
  const AnyGraph graph = bench::make_topology(ctx, n_req, build_rng);
  const std::uint64_t n =
      std::visit([](const auto& cg) { return cg.num_nodes(); }, graph);

  // Both k-sweeps ride one job graph (see runner.hpp): every (k, rep)
  // pair is a leaf on the process executor; rows and fits happen after
  // the sweep drains, in declaration order. c1 is read off the count
  // profile at declaration time — placement only permutes nodes, never
  // the counts — so the leaf bodies stay free of shared writes.
  SweepRunner sweep(ctx.threads);
  const auto body_for = [&ctx, &graph, n](std::uint64_t k,
                                          std::uint64_t bias) {
    return [&ctx, &graph, n, k, bias](std::uint64_t, Xoshiro256& rng) {
      return std::visit(
          [&](const auto& cg) {
            TwoChoicesSync proto(
                cg,
                bench::place_on(
                    ctx, cg,
                    counts_plurality_bias(n, static_cast<ColorId>(k), bias),
                    rng));
            const auto result = run_sync(proto, rng, 1000000);
            return std::vector<double>{
                static_cast<double>(result.rounds),
                (result.consensus && result.winner == 0) ? 1.0 : 0.0};
          },
          graph);
    };
  };

  // ---- Table 2a: the theorem's exact workload. Note the bound is
  // Omega(n/c1 + log n): fixing bias = sqrt(n ln n) inflates c1 at
  // large k, so the honest fit is rounds against n/c1, not against k.
  Table theorem("E2a: sync Two-Choices rounds vs k  (n=" +
                    std::to_string(n) + ", c2=...=ck, bias=sqrt(n ln n))",
                {"k", "c1", "n/c1", "mean_rounds", "ci95", "win_rate_C1"});
  std::vector<double> xs;
  std::vector<double> ys;

  std::uint64_t sweep_point = 0;
  for (std::uint64_t k = 2; k <= max_k; k *= 2, ++sweep_point) {
    const auto bias = static_cast<std::uint64_t>(std::sqrt(
        static_cast<double>(n) * std::log(static_cast<double>(n))));
    const std::uint64_t realized_c1 =
        counts_plurality_bias(n, static_cast<ColorId>(k), bias)[0];
    sweep.add_point(
        ctx.reps, 2, ctx.seeds_for(sweep_point), body_for(k, bias),
        [&ctx, &theorem, &xs, &ys, n, k, realized_c1](const auto& slots) {
          ctx.record("rounds_theorem_bias",
                     {{"n", n}, {"k", k}, {"c1", realized_c1}}, slots[0]);
          const Summary rounds = summarize(slots[0]);
          const Summary wins = summarize(slots[1]);
          theorem.row()
              .cell(k)
              .cell(realized_c1)
              .cell(static_cast<double>(n) / static_cast<double>(realized_c1),
                    1)
              .cell(rounds.mean, 1)
              .cell(rounds.ci95_halfwidth, 1)
              .cell(wins.mean, 2);
          xs.push_back(static_cast<double>(n) /
                       static_cast<double>(realized_c1));
          ys.push_back(rounds.mean);
        });
  }

  // ---- Table 2b: near-tie workload (bias = n/(8k) << n/k), where
  // n/c1 ~ k and the bound reads Omega(k). Win rate is NOT guaranteed
  // here (bias below the sqrt(n log n) threshold) — the claim under
  // test is the run time.
  Table neartie("E2b: sync Two-Choices rounds vs k  (n=" +
                    std::to_string(n) + ", near-tie bias n/(8k))",
                {"k", "c1", "mean_rounds", "ci95", "win_rate_C1"});
  std::vector<double> ks;
  std::vector<double> rounds_by_k;
  for (std::uint64_t k = 2; k <= max_k; k *= 2, ++sweep_point) {
    const std::uint64_t bias = std::max<std::uint64_t>(n / (8 * k), 1);
    const std::uint64_t realized_c1 =
        counts_plurality_bias(n, static_cast<ColorId>(k), bias)[0];
    sweep.add_point(
        ctx.reps, 2, ctx.seeds_for(sweep_point), body_for(k, bias),
        [&ctx, &neartie, &ks, &rounds_by_k, n, k,
         realized_c1](const auto& slots) {
          ctx.record("rounds_neartie_bias",
                     {{"n", n}, {"k", k}, {"c1", realized_c1}}, slots[0]);
          const Summary rounds = summarize(slots[0]);
          neartie.row()
              .cell(k)
              .cell(realized_c1)
              .cell(rounds.mean, 1)
              .cell(rounds.ci95_halfwidth, 1)
              .cell(summarize(slots[1]).mean, 2);
          ks.push_back(static_cast<double>(k));
          rounds_by_k.push_back(rounds.mean);
        });
  }
  sweep.run();

  theorem.print(std::cout, ctx.csv);
  bench::report_fit(ctx, "rounds = a + b*(n/c1) fit (expect b ~ 1, the "
                         "Omega(n/c1) law)",
                    fit_linear(xs, ys));
  neartie.print(std::cout, ctx.csv);
  bench::report_fit(ctx, "rounds ~ k^b power-law fit (expect b ~ 1)",
                    fit_power_law(ks, rounds_by_k));
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "two_choices_lower_bound",
    "E2 (Theorem 1.1 lower): with c2=...=ck tied, sync Two-Choices needs "
    "Omega(n/c1 + log n) rounds — ~linear in k",
    "The lower-bound side of Theorem 1.1: ties all minority colors "
    "(c2 = ... = ck) and sweeps k (doubling up to --max_k=), measuring "
    "sync Two-Choices rounds under both the theorem's bias and a "
    "near-tie bias. Records `rounds_theorem_bias` and "
    "`rounds_neartie_bias`; the ~linear growth in k is the claim "
    "OneExtraBit escapes. Overrides: --n=, --max_k=, --graph=, "
    "--placement=.",
    /*default_reps=*/10, run_exp};

}  // namespace
