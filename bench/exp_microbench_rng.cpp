// M1a — microbenchmarks: RNG and sampling primitive throughput. These
// are the per-tick costs every simulation pays, so regressions here slow
// every experiment. Timing is hand-rolled (steady_clock over a fixed
// iteration count, one sample per repetition) so the microbenches ride
// the same registry/JSON harness as the paper experiments.

#include <chrono>
#include <vector>

#include "bench_common.hpp"
#include "graph/complete.hpp"
#include "rng/alias_table.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

using namespace plurality;

namespace {

// Written once per measurement so the optimizer cannot delete the loops.
volatile std::uint64_t g_sink;

/// ns/op of `op` (which must fold its work into a value) over `iters`
/// iterations, after a 1/16 warmup.
template <typename Op>
double time_ns_per_op(Op&& op, std::uint64_t iters) {
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < iters / 16 + 1; ++i) sink += op();
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) sink += op();
  const auto stop = std::chrono::steady_clock::now();
  g_sink = sink;
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iters);
}

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "M1a (RNG microbench)",
                "per-tick sampling primitives must stay in the "
                "nanoseconds range; regressions here slow every "
                "experiment");

  const std::uint64_t iters = ctx.args.get_u64("iters", 1u << 20);
  Table table("M1a: RNG / sampling primitive cost  (iters=" +
                  std::to_string(iters) + " per rep)",
              {"op", "ns_op", "ci95", "ops_per_sec"});

  const auto measure = [&](const std::string& name, auto make_op) {
    std::vector<double> samples;
    samples.reserve(ctx.reps);
    for (std::uint64_t rep = 0; rep < ctx.reps; ++rep) {
      Xoshiro256 rng(SeedSequence(ctx.master_seed).stream(rep));
      auto op = make_op(rng);
      samples.push_back(time_ns_per_op(op, iters));
    }
    ctx.record("ns_per_op", {{"op", name.c_str()}, {"iters", iters}},
               samples);
    const Summary s = summarize(samples);
    table.row()
        .cell(name)
        .cell(s.mean, 2)
        .cell(s.ci95_halfwidth, 2)
        .cell(1e9 / s.mean, 0);
  };

  measure("splitmix64_next", [](Xoshiro256& rng) {
    return [sm = SplitMix64(rng.next())]() mutable { return sm.next(); };
  });
  measure("xoshiro256_next",
          [](Xoshiro256& rng) { return [&rng] { return rng.next(); }; });
  measure("uniform_below_7", [](Xoshiro256& rng) {
    return [&rng] { return uniform_below(rng, 7); };
  });
  measure("uniform_below_2^30", [](Xoshiro256& rng) {
    return [&rng] { return uniform_below(rng, 1u << 30); };
  });
  measure("exponential", [](Xoshiro256& rng) {
    return [&rng] {
      return static_cast<std::uint64_t>(exponential(rng, 1.0) * 1e3);
    };
  });
  measure("poisson_mean4", [](Xoshiro256& rng) {
    return [&rng] { return poisson(rng, 4.0); };
  });
  measure("alias_table_4096", [](Xoshiro256& rng) {
    std::vector<double> weights(4096);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      weights[i] = static_cast<double>(i + 1);
    }
    return [&rng, table = AliasTable(weights)] { return table.sample(rng); };
  });
  measure("complete_graph_neighbor", [](Xoshiro256& rng) {
    return [&rng, g = CompleteGraph(1u << 20)] {
      return static_cast<std::uint64_t>(
          g.sample_neighbor(static_cast<NodeId>(uniform_below(rng, 1u << 20)),
                            rng));
    };
  });

  table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "microbench_rng",
    "M1a: throughput of the RNG / sampling primitives every simulation "
    "tick pays for (ns per op)",
    "Microbenchmarks the sampling primitives on the simulation hot "
    "path: raw xoshiro256 words, Lemire uniform_below, unit "
    "exponentials, Poisson draws, and alias-table sampling. Records "
    "`ns_per_op` per primitive; useful as a canary when touching "
    "rng/distributions.hpp. Overrides: --iters=.",
    /*default_reps=*/5, run_exp};

}  // namespace
