// E9 — §1 / ref [4]: the sequential model (uniform node per step,
// time = steps/n) and the continuous Poisson-clock model give the same
// run time. The continuous model itself has two exact simulations (the
// n-timer heap and O(1) superposition sampling — see
// sim/continuous_engine.hpp); the table runs the same protocols under
// all three and compares the consensus-time distributions.

#include "bench_common.hpp"
#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/sequential_engine.hpp"

using namespace plurality;

namespace {

template <typename MakeProto>
void compare_models(ExperimentContext& ctx, Table& table,
                    const std::string& name, std::uint64_t sweep_point,
                    MakeProto&& make_proto) {
  const auto run_with = [&](std::uint64_t seed_slot, auto&& engine) {
    return run_repetitions(
        ctx.reps, ctx.seeds_for(sweep_point * 3 + seed_slot),
        [&](std::uint64_t, Xoshiro256& rng) {
          auto proto = make_proto(rng);
          return engine(proto, rng).time;
        },
        ctx.threads);
  };
  const auto seq = run_with(0, [](auto& proto, Xoshiro256& rng) {
    return run_sequential(proto, rng, 1e6);
  });
  const auto sup = run_with(1, [](auto& proto, Xoshiro256& rng) {
    return run_continuous(proto, rng, 1e6);
  });
  const auto heap = run_with(2, [](auto& proto, Xoshiro256& rng) {
    return run_continuous_heap(proto, rng, 1e6);
  });
  ctx.record("sequential_time", {{"protocol", name.c_str()}}, seq);
  ctx.record("superposition_time", {{"protocol", name.c_str()}}, sup);
  ctx.record("heap_time", {{"protocol", name.c_str()}}, heap);
  const Summary s = summarize(seq);
  const Summary c = summarize(sup);
  const Summary h = summarize(heap);
  table.row()
      .cell(name)
      .cell(s.mean, 2)
      .cell(s.ci95_halfwidth, 2)
      .cell(c.mean, 2)
      .cell(c.ci95_halfwidth, 2)
      .cell(h.mean, 2)
      .cell(h.ci95_halfwidth, 2)
      .cell(s.mean / c.mean, 3)
      .cell(h.mean / c.mean, 3);
}

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "E9 (model equivalence, ref [4])",
                "sequential, continuous-heap, and continuous-superposition "
                "asynchronous models give the same run time (ratios ~ 1)");

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 12);
  const CompleteGraph g(n);

  Table table("E9: consensus time across async engines  (n=" +
                  std::to_string(n) + ")",
              {"protocol", "seq_mean", "seq_ci95", "sup_mean", "sup_ci95",
               "heap_mean", "heap_ci95", "seq/sup", "heap/sup"});

  compare_models(ctx, table, "two_choices (c1=3n/4)", 0,
                 [&](Xoshiro256& rng) {
                   return TwoChoicesAsync<CompleteGraph>(
                       g, assign_two_colors(n, (n * 3) / 4, rng));
                 });
  compare_models(ctx, table, "two_choices k=8 tied", 1,
                 [&](Xoshiro256& rng) {
                   return TwoChoicesAsync<CompleteGraph>(
                       g, assign_plurality_bias(n, 8, n / 17, rng));
                 });
  compare_models(ctx, table, "three_majority (c1=3n/4)", 2,
                 [&](Xoshiro256& rng) {
                   return ThreeMajorityAsync<CompleteGraph>(
                       g, assign_two_colors(n, (n * 3) / 4, rng));
                 });
  compare_models(ctx, table, "voter (c1=7n/8)", 3, [&](Xoshiro256& rng) {
    return VoterAsync<CompleteGraph>(
        g, assign_two_colors(n, (n * 7) / 8, rng));
  });

  table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "model_equivalence",
    "E9 (ref [4]): the sequential uniform-node model and both continuous "
    "Poisson-clock engines (heap, superposition) give the same consensus "
    "time (ratios ~ 1)",
    "Runs the same Two-Choices clique workload on the sequential "
    "model and on both exact continuous engines (n-timer heap, "
    "superposition) and compares consensus-time distributions — the "
    "empirical side of the ref [4] equivalence and of the PR 2 engine "
    "rewrite. Records `sequential_time`, `heap_time`, and "
    "`superposition_time`; the unit-test twin (with KS statistics, "
    "including the zero-latency messaging driver) lives in "
    "tests/test_model_equivalence.cpp. Overrides: --n=.",
    /*default_reps=*/30, run_exp};

}  // namespace
