// E6 — Theorem 1.3 (the paper's headline): the asynchronous OneExtraBit
// protocol reaches plurality consensus in Theta(log n) parallel time for
// c1 >= (1+eps) c2 and k up to exp(log n / log log n). Two tables:
//   6a) time vs n at fixed k — linear in ln(n) with high R^2;
//   6b) time vs k at fixed n — near-flat for the phased protocol vs
//       ~linear for asynchronous Two-Choices, with the extrapolated
//       crossover k* printed (constants put k* beyond laptop k; the
//       shapes are the reproducible claim).

#include <cmath>

#include "bench_common.hpp"
#include "core/async_one_extra_bit.hpp"
#include "core/two_choices.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/sequential_engine.hpp"

using namespace plurality;

namespace {

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "E6 (Theorem 1.3, main result)",
                "async OneExtraBit solves plurality consensus in "
                "Theta(log n) time, independent of k (k small vs n); "
                "async Two-Choices pays ~linearly in k");
  const bench::RunPlan plan =
      bench::make_plan(ctx, EngineKind::kSequential);

  const std::uint64_t max_n = ctx.args.get_u64("max_n", 1ull << 16);
  const std::uint32_t k_fixed =
      static_cast<std::uint32_t>(ctx.args.get_u64("k", 8));

  // ---- Table 6a: time vs n (k fixed, c1 = 1.5 c2, minorities tied).
  Table growth("E6a: async OneExtraBit time vs n  (k=" +
                   std::to_string(k_fixed) + ", c1=1.5*c2)",
               {"n", "mean_time", "ci95", "win_rate", "success",
                "time/ln(n)", "sched_budget"});
  std::vector<double> xs;
  std::vector<double> ys;
  // Both tables' points go on ONE job graph; finish callbacks run in
  // declaration order (6a points, then 6b points). The schedule budget
  // (deterministic per point) rides back as an extra result slot
  // instead of a by-reference write, so concurrent leaves stay
  // race-free; only slots 0-1 are recorded, keeping the BENCH record
  // bit-identical to the historical two-loop version.
  SweepRunner sweep(ctx.threads);
  std::uint64_t sweep_point = 0;
  for (std::uint64_t n = 2048; n <= max_n; n *= 2, ++sweep_point) {
    const CompleteGraph g(n);
    // c1 = 1.5 c2: bias = c2/2 -> c2 = 2n/(2k+1).
    const std::uint64_t c2 = 2 * n / (2 * k_fixed + 1);
    const std::uint64_t bias = c2 / 2;
    sweep.add_point(
        ctx.reps, 4, ctx.seeds_for(sweep_point),
        [&ctx, &plan, g, n, k_fixed, bias](std::uint64_t, Xoshiro256& rng) {
          auto proto = AsyncOneExtraBit<CompleteGraph>::make(
              g, bench::place_on(ctx, g,
                                 counts_plurality_bias(n, k_fixed, bias),
                                 rng));
          const auto budget =
              static_cast<double>(proto.schedule().total_length());
          const auto result =
              bench::run(plan, proto, rng, 1e6);
          return std::vector<double>{
              result.time,
              (result.consensus && result.winner == 0) ? 1.0 : 0.0,
              result.consensus ? 1.0 : 0.0, budget};
        },
        [&ctx, &growth, &xs, &ys, n, k_fixed, bias](const auto& slots) {
          ctx.record("async_oeb_time_vs_n",
                     {{"n", n}, {"k", k_fixed}, {"bias", bias}}, slots[0]);
          ctx.record("async_oeb_win_vs_n",
                     {{"n", n}, {"k", k_fixed}, {"bias", bias}}, slots[1]);
          const Summary time = summarize(slots[0]);
          const Summary wins = summarize(slots[1]);
          const Summary success = summarize(slots[2]);
          growth.row()
              .cell(n)
              .cell(time.mean, 1)
              .cell(time.ci95_halfwidth, 1)
              .cell(wins.mean, 2)
              .cell(success.mean, 2)
              .cell(time.mean / std::log(static_cast<double>(n)), 2)
              .cell(slots[3][0], 0);
          xs.push_back(static_cast<double>(n));
          ys.push_back(time.mean);
        });
  }

  // ---- Table 6b: time vs k at fixed n, both protocols.
  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 13);
  const CompleteGraph g(n);
  Table versus("E6b: async time vs k  (n=" + std::to_string(n) +
                   ", c1=2*c2, minorities tied)",
               {"k", "oeb_time", "oeb_ci95", "oeb_win", "tc_time",
                "tc_ci95", "tc_win"});
  std::vector<double> ks;
  std::vector<double> oeb_times;
  std::vector<double> tc_times;
  for (std::uint64_t k = 4; k <= 64; k *= 2, ++sweep_point) {
    const std::uint64_t bias = n / (k + 1);
    sweep.add_point(
        ctx.reps, 4, ctx.seeds_for(sweep_point),
        [&ctx, &plan, &g, n, k, bias](std::uint64_t, Xoshiro256& rng) {
          auto oeb = AsyncOneExtraBit<CompleteGraph>::make(
              g, bench::place_on(
                     ctx, g,
                     counts_plurality_bias(n, static_cast<ColorId>(k), bias),
                     rng));
          const auto oeb_result =
              bench::run(plan, oeb, rng, 1e6);
          TwoChoicesAsync tc(
              g, bench::place_on(
                     ctx, g,
                     counts_plurality_bias(n, static_cast<ColorId>(k), bias),
                     rng));
          const auto tc_result =
              bench::run(plan, tc, rng, 1e6);
          return std::vector<double>{
              oeb_result.time,
              (oeb_result.consensus && oeb_result.winner == 0) ? 1.0 : 0.0,
              tc_result.time,
              (tc_result.consensus && tc_result.winner == 0) ? 1.0 : 0.0};
        },
        [&ctx, &versus, &ks, &oeb_times, &tc_times, n, k,
         bias](const auto& slots) {
          ctx.record("async_oeb_time_vs_k",
                     {{"n", n}, {"k", k}, {"bias", bias}}, slots[0]);
          ctx.record("async_tc_time_vs_k",
                     {{"n", n}, {"k", k}, {"bias", bias}}, slots[2]);
          const Summary oeb_time = summarize(slots[0]);
          const Summary oeb_win = summarize(slots[1]);
          const Summary tc_time = summarize(slots[2]);
          const Summary tc_win = summarize(slots[3]);
          versus.row()
              .cell(k)
              .cell(oeb_time.mean, 1)
              .cell(oeb_time.ci95_halfwidth, 1)
              .cell(oeb_win.mean, 2)
              .cell(tc_time.mean, 1)
              .cell(tc_time.ci95_halfwidth, 1)
              .cell(tc_win.mean, 2);
          ks.push_back(static_cast<double>(k));
          oeb_times.push_back(oeb_time.mean);
          tc_times.push_back(tc_time.mean);
        });
  }
  sweep.run();

  growth.print(std::cout, ctx.csv);
  bench::report_fit(ctx, "time = a + b*ln(n) fit", fit_log_x(xs, ys));
  versus.print(std::cout, ctx.csv);

  const LinearFit tc_fit = fit_linear(ks, tc_times);
  const LinearFit oeb_fit = fit_linear(ks, oeb_times);
  bench::report_fit(ctx, "async Two-Choices time vs k (expect slope > 0)",
                    tc_fit);
  bench::report_fit(ctx, "async OneExtraBit time vs k (expect slope ~ 0)",
                    oeb_fit);
  if (!ctx.csv && tc_fit.slope > oeb_fit.slope) {
    const double k_star = (oeb_fit.intercept - tc_fit.intercept) /
                          (tc_fit.slope - oeb_fit.slope);
    std::printf(
        "extrapolated crossover: async Two-Choices overtakes the phased "
        "protocol's fixed Theta(log n) budget near k* ~ %.0f\n", k_star);
  }
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "async_main",
    "E6 (Theorem 1.3, headline): async OneExtraBit reaches plurality "
    "consensus in Theta(log n) time, near-flat in k; async Two-Choices "
    "pays ~linearly in k",
    "The headline reproduction: asynchronous OneExtraBit vs "
    "asynchronous Two-Choices on the complete graph under Poisson "
    "clocks. Sweeps n (doubling up to --max_n=) at fixed --k= for the "
    "Theta(log n) growth, then sweeps k at fixed n for the "
    "near-flat-in-k claim. Records `async_oeb_time_vs_n`, "
    "`async_oeb_win_vs_n`, `async_oeb_time_vs_k`, and "
    "`async_tc_time_vs_k` (consensus time / plurality win rate per "
    "sweep point). Overrides: --n=, --max_n=, --k=, --engine=.",
    /*default_reps=*/8, run_exp};

}  // namespace
