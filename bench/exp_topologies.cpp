// A2 — topology extension (ours): the paper's protocols are stated for
// the clique; this table runs asynchronous Two-Choices and Voter on the
// clique, a dense Erdős–Rényi graph, a random 8-regular graph, a 2D
// torus, and the ring. Expanders track the clique; low-expansion
// topologies slow down dramatically (censored at the horizon).

#include <cmath>

#include "bench_common.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/random_regular.hpp"
#include "graph/ring.hpp"
#include "graph/torus.hpp"
#include "opinion/assignment.hpp"
#include "sim/sequential_engine.hpp"

using namespace plurality;

namespace {

template <typename G>
void measure(ExperimentContext& ctx, Table& table,
             const std::string& name, const G& g, std::uint64_t n,
             double horizon, std::uint64_t sweep_point) {
  const std::uint64_t c1 = (n * 3) / 4;
  const auto seeds = ctx.seeds_for(sweep_point);
  const auto slots = run_repetitions_multi(
      ctx.reps, 4, seeds,
      [&](std::uint64_t, Xoshiro256& rng) {
        TwoChoicesAsync tc(g, assign_two_colors(n, c1, rng));
        const auto tc_result =
            bench::run_async(ctx, EngineKind::kSequential, tc, rng, horizon);
        VoterAsync voter(g, assign_two_colors(n, c1, rng));
        const auto voter_result = bench::run_async(
            ctx, EngineKind::kSequential, voter, rng, horizon);
        return std::vector<double>{
            tc_result.time, tc_result.consensus ? 1.0 : 0.0,
            voter_result.time, voter_result.consensus ? 1.0 : 0.0};
      },
      ctx.threads);
  ctx.record("tc_time", {{"n", n}, {"topology", name.c_str()}}, slots[0]);
  ctx.record("voter_time", {{"n", n}, {"topology", name.c_str()}}, slots[2]);
  table.row()
      .cell(name)
      .cell(summarize(slots[0]).mean, 1)
      .cell(summarize(slots[1]).mean, 2)
      .cell(summarize(slots[2]).mean, 1)
      .cell(summarize(slots[3]).mean, 2);
}

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "A2 (topology extension)",
                "expander-like graphs track the clique's consensus time; "
                "ring/torus are drastically slower (censored at horizon)");

  const std::uint64_t n = ctx.args.get_u64("n", 4096);
  const double horizon = ctx.args.get_double("horizon", 2000.0);
  Xoshiro256 build_rng(ctx.master_seed);

  Table table("A2: async consensus time by topology  (n=" +
                  std::to_string(n) + ", c1=3n/4, horizon=" +
                  std::to_string(static_cast<int>(horizon)) + ")",
              {"topology", "tc_time", "tc_done", "voter_time",
               "voter_done"});

  const CompleteGraph complete(n);
  measure(ctx, table, "complete", complete, n, horizon, 0);

  const double p =
      3.0 * std::log(static_cast<double>(n)) / static_cast<double>(n);
  const ErdosRenyiGraph er(n, p, build_rng);
  measure(ctx, table, "erdos_renyi(3lnN/n)", er, n, horizon, 1);

  const RandomRegularGraph regular(n, 8, build_rng);
  measure(ctx, table, "random_8_regular", regular, n, horizon, 2);

  const auto side = static_cast<std::uint32_t>(std::sqrt(n));
  const TorusGraph torus(side, side);
  measure(ctx, table, "torus_" + std::to_string(side) + "x" +
                          std::to_string(side),
          torus, std::uint64_t{side} * side, horizon, 3);

  const RingGraph ring(n);
  measure(ctx, table, "ring", ring, n, horizon, 4);

  table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "topologies",
    "A2 (extension): async Two-Choices and Voter on clique, Erdos-Renyi, "
    "random-regular, torus, and ring — expanders track the clique",
    "Extension beyond the paper's clique: async Two-Choices and Voter "
    "on complete, Erdos-Renyi, random-regular, torus, and ring "
    "topologies at matched n, each run until consensus or --horizon=. "
    "Records `tc_time` and `voter_time` per topology — expanders track "
    "the clique while the low-conductance ring/torus stall. Overrides: "
    "--n=, --horizon=, --engine=.",
    /*default_reps=*/5, run_exp};

}  // namespace
