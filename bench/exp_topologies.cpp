// A2 — topology extension (ours): the paper's protocols are stated for
// the clique; this table runs asynchronous Two-Choices and Voter on the
// clique, a dense Erdős–Rényi graph, a random 8-regular graph, a 2D
// torus, the ring, and a stochastic block model. Expanders track the
// clique; low-expansion topologies slow down dramatically (censored at
// the horizon); the SBM sits between, gated by its cross-block rate.
// The whole sweep is driven by the graph factory (graph/factory.hpp):
// pass --graph= to restrict to one family (with its --graph-* knobs)
// and --placement= to start from a non-uniform configuration.

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/csr.hpp"
#include "graph/factory.hpp"
#include "opinion/assignment.hpp"

using namespace plurality;

namespace {

void measure(ExperimentContext& ctx, const bench::RunPlan& plan,
             Table& table, const std::string& name, const AnyGraph& any,
             double horizon, std::uint64_t sweep_point) {
  // One flat CSR view per sweep point: the protocols are instantiated
  // once (over CsrTopology, not once per concrete family) and every
  // engine — including the sharded workers — samples neighbors through
  // the same immutable structure. Placement still runs on the concrete
  // graph (it needs communities/cut structure).
  const CsrTopology csr = make_csr_view(any);
  const std::uint64_t n = csr.num_nodes();
  const std::uint64_t c1 = (n * 3) / 4;
  const auto seeds = ctx.seeds_for(sweep_point);
  const auto slots = run_repetitions_multi(
      ctx.reps, 4, seeds,
      [&](std::uint64_t, Xoshiro256& rng) {
        TwoChoicesAsync tc(
            csr, bench::place_on(ctx, any, counts_two_colors(n, c1), rng));
        const auto tc_result = bench::run(plan, tc, rng, horizon);
        VoterAsync voter(
            csr, bench::place_on(ctx, any, counts_two_colors(n, c1), rng));
        const auto voter_result = bench::run(plan, voter, rng, horizon);
        return std::vector<double>{
            tc_result.time, tc_result.consensus ? 1.0 : 0.0,
            voter_result.time, voter_result.consensus ? 1.0 : 0.0};
      },
      ctx.threads);
  ctx.record("tc_time", {{"n", n}, {"topology", name.c_str()}}, slots[0]);
  ctx.record("voter_time", {{"n", n}, {"topology", name.c_str()}},
             slots[2]);
  table.row()
      .cell(name)
      .cell(summarize(slots[0]).mean, 1)
      .cell(summarize(slots[1]).mean, 2)
      .cell(summarize(slots[2]).mean, 1)
      .cell(summarize(slots[3]).mean, 2);
}

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "A2 (topology extension)",
                "expander-like graphs track the clique's consensus time; "
                "ring/torus are drastically slower (censored at horizon)");
  const bench::RunPlan plan =
      bench::make_plan(ctx, EngineKind::kSequential);

  const std::uint64_t n = ctx.args.get_u64("n", 4096);
  const double horizon = ctx.args.get_double("horizon", 2000.0);
  Xoshiro256 build_rng(ctx.master_seed);

  Table table("A2: async consensus time by topology  (n=" +
                  std::to_string(n) + ", c1=3n/4, horizon=" +
                  std::to_string(static_cast<int>(horizon)) + ")",
              {"topology", "tc_time", "tc_done", "voter_time",
               "voter_done"});

  // The historical sweep order (complete, er, regular, torus, ring)
  // keeps the random families on the same build_rng draws as the
  // recorded baselines; sbm is appended after. The historical labels
  // stay bit-stable for series continuity — but only while the row
  // really is the historical graph: a family knob override (e.g.
  // --graph-degree=12) switches that row to the truthful spec label.
  struct Sweep {
    std::string label;
    GraphSpec spec;
  };
  const auto spec_of = [&](GraphKind kind) {
    GraphSpec spec = ctx.graph;
    spec.kind = kind;
    return spec;
  };
  const auto labeled = [&](const char* historical, GraphKind kind,
                           const char* knob) {
    GraphSpec spec = spec_of(kind);
    return Sweep{ctx.args.has_flag(knob) ? spec.label() : historical, spec};
  };
  std::vector<Sweep> sweeps;
  if (ctx.args.has_flag("graph")) {
    sweeps.push_back({ctx.graph.label(), ctx.graph});
  } else {
    const auto side = static_cast<std::uint32_t>(
        std::sqrt(static_cast<double>(n)));
    sweeps = {
        {"complete", spec_of(GraphKind::kComplete)},
        labeled("erdos_renyi(3lnN/n)", GraphKind::kErdosRenyi, "graph-p"),
        labeled("random_8_regular", GraphKind::kRandomRegular,
                "graph-degree"),
        {"torus_" + std::to_string(side) + "x" + std::to_string(side),
         spec_of(GraphKind::kTorus)},
        {"ring", spec_of(GraphKind::kRing)},
        {spec_of(GraphKind::kSbm).label(), spec_of(GraphKind::kSbm)},
    };
  }

  std::uint64_t sweep_point = 0;
  for (const Sweep& sweep : sweeps) {
    ctx.note_effective_graph(graph_kind_name(sweep.spec.kind));
    const AnyGraph g = make_graph(sweep.spec, n, build_rng);
    measure(ctx, plan, table, sweep.label, g, horizon, sweep_point++);
  }

  table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "topologies",
    "A2 (extension): async Two-Choices and Voter on clique, Erdos-Renyi, "
    "random-regular, torus, ring, and SBM — expanders track the clique",
    "Extension beyond the paper's clique: async Two-Choices and Voter "
    "on complete, Erdos-Renyi, random-regular, torus, ring, and "
    "stochastic-block-model topologies at matched n, each run until "
    "consensus or --horizon=. All six rows come from the graph factory; "
    "--graph= restricts the sweep to one family (with its --graph-p=, "
    "--graph-degree=, --graph-blocks=, --graph-pin=, --graph-pout= "
    "knobs) and --placement= starts each run from a non-uniform "
    "configuration (see docs/SCENARIOS.md). Protocols run on the flat "
    "CSR view (graph/csr.hpp), so every engine — including "
    "--engine=sharded with --shards=T workers — drives every family, "
    "and --latency= composes a response-latency model onto the runs "
    "(blocking discipline, sharded delivery queues). Records `tc_time` "
    "and `voter_time` per topology — expanders track the clique, the "
    "low-conductance ring/torus stall, and the SBM sits between, gated "
    "by its cross-block rate. Overrides: --n=, --horizon=, --engine=, "
    "--shards=, --latency= (with --latency-mean=/--latency-shape=).",
    /*default_reps=*/5, run_exp};

}  // namespace
