// E7 — §3 weak synchronicity: the Sync Gadget keeps working times
// concentrated (all but a vanishing fraction within O(Delta) of the
// median) where unsynchronized Poisson clocks drift apart like sqrt(t).
// The table runs the protocol to a fixed horizon with the gadget on and
// off and reports spread, poorly-synced fraction, and plurality win
// rate.

#include <cmath>

#include "bench_common.hpp"
#include "core/async_one_extra_bit.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/sequential_engine.hpp"

using namespace plurality;

namespace {

struct SpreadProbe {
  std::uint64_t max_spread = 0;
  double max_poor = 0.0;
  std::uint64_t window = 1;
  void operator()(double, const AsyncOneExtraBit<CompleteGraph>& p) {
    max_spread = std::max(max_spread, p.working_time_spread());
    max_poor = std::max(max_poor, p.fraction_poorly_synced(window));
  }
};

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "E7 (Sync Gadget ablation)",
                "with perpetual synchronization the working-time spread "
                "stays O(phase) and the poorly-synced fraction small; "
                "without it, spread grows like sqrt(t)");
  const bench::RunPlan plan =
      bench::make_plan(ctx, EngineKind::kSequential);

  const std::uint64_t max_n = ctx.args.get_u64("max_n", 1ull << 15);

  Table table("E7: working-time dispersion with/without Sync Gadget "
              "(fixed horizon = part-1 length, k=8, c1=1.5*c2)",
              {"n", "gadget", "max_spread", "spread/Delta", "poor_frac@2D",
               "win_rate", "jumps/node/phase"});

  // Every (n, gadget) pair is one sweep point on ONE job graph. The
  // schedule's delta/num_phases (deterministic per point) ride back as
  // extra result slots instead of by-reference writes, so concurrent
  // leaves stay race-free; only slots 0-1 are recorded, keeping the
  // BENCH record bit-identical to the historical nested loop.
  SweepRunner sweep(ctx.threads);
  std::uint64_t sweep_point = 0;
  for (std::uint64_t n = 4096; n <= max_n; n *= 2) {
    const CompleteGraph g(n);
    const std::uint64_t c2 = 2 * n / 17;  // k=8, ratio 1.5
    const std::uint64_t bias = c2 / 2;
    for (const bool enabled : {true, false}) {
      AsyncParams params;
      params.sync_gadget_enabled = enabled;
      sweep.add_point(
          ctx.reps, 6, ctx.seeds_for(sweep_point++),
          [&ctx, &plan, g, params, n, bias](std::uint64_t,
                                            Xoshiro256& rng) {
            auto proto = AsyncOneExtraBit<CompleteGraph>::make(
                g, bench::place_on(ctx, g,
                                   counts_plurality_bias(n, 8, bias), rng),
                params);
            const auto delta =
                static_cast<double>(proto.schedule().delta());
            const auto phases =
                static_cast<double>(proto.schedule().num_phases());
            SpreadProbe probe;
            probe.window = 2 * proto.schedule().delta();
            const double horizon =
                static_cast<double>(proto.schedule().part1_length());
            bench::run(plan, proto, rng,
                             horizon, std::ref(probe), 10.0);
            const bool won = proto.table().has_consensus() &&
                             proto.table().consensus_color() == 0;
            return std::vector<double>{
                static_cast<double>(probe.max_spread), probe.max_poor,
                won ? 1.0 : 0.0,
                static_cast<double>(proto.jumps_performed()) /
                    static_cast<double>(n),
                delta, phases};
          },
          [&ctx, &table, n, enabled](const auto& slots) {
            ctx.record("max_spread",
                       {{"n", n}, {"gadget", enabled ? "on" : "off"}},
                       slots[0]);
            ctx.record("poor_frac",
                       {{"n", n}, {"gadget", enabled ? "on" : "off"}},
                       slots[1]);
            const Summary spread = summarize(slots[0]);
            const Summary poor = summarize(slots[1]);
            const Summary wins = summarize(slots[2]);
            const Summary jumps = summarize(slots[3]);
            table.row()
                .cell(n)
                .cell(enabled ? "on" : "off")
                .cell(spread.mean, 1)
                .cell(spread.mean / slots[4][0], 2)
                .cell(poor.mean, 3)
                .cell(wins.mean, 2)
                .cell(jumps.mean / slots[5][0], 2);
          });
    }
  }
  sweep.run();
  table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "sync_gadget_ablation",
    "E7 (S3): with the Sync Gadget working times stay within O(Delta) of "
    "the median; without it Poisson clocks drift apart like sqrt(t)",
    "Ablates the Sync Gadget: runs the async schedule with and without "
    "the median-jump resynchronization and tracks how far working "
    "times spread across nodes as n grows (doubling up to --max_n=). "
    "Records `max_spread` (max working-time distance from the median) "
    "and `poor_frac` (fraction of nodes outside the O(Delta) band). "
    "Overrides: --max_n=.",
    /*default_reps=*/5, run_exp};

}  // namespace
