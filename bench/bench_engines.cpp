// M1 — microbenchmarks: engine and protocol throughput
// (google-benchmark). Reported as ticks/second (async) or
// node-updates/second (sync rounds).

#include <benchmark/benchmark.h>

#include "core/async_one_extra_bit.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/sequential_engine.hpp"

namespace plurality {
namespace {

constexpr std::uint64_t kN = 1 << 16;

void BM_SequentialVoterTicks(benchmark::State& state) {
  Xoshiro256 rng(1);
  const CompleteGraph g(kN);
  VoterAsync proto(g, assign_equal(kN, 64, rng));
  std::uint64_t ticks = 0;
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(uniform_below(rng, kN));
    proto.on_tick(u, rng);
    ++ticks;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ticks));
}
BENCHMARK(BM_SequentialVoterTicks);

void BM_SequentialTwoChoicesTicks(benchmark::State& state) {
  Xoshiro256 rng(2);
  const CompleteGraph g(kN);
  TwoChoicesAsync proto(g, assign_equal(kN, 64, rng));
  std::uint64_t ticks = 0;
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(uniform_below(rng, kN));
    proto.on_tick(u, rng);
    ++ticks;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ticks));
}
BENCHMARK(BM_SequentialTwoChoicesTicks);

void BM_AsyncOneExtraBitTicks(benchmark::State& state) {
  Xoshiro256 rng(3);
  const CompleteGraph g(kN);
  auto proto =
      AsyncOneExtraBit<CompleteGraph>::make(g, assign_equal(kN, 64, rng));
  std::uint64_t ticks = 0;
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(uniform_below(rng, kN));
    proto.on_tick(u, rng);
    ++ticks;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ticks));
}
BENCHMARK(BM_AsyncOneExtraBitTicks);

void BM_SyncTwoChoicesRound(benchmark::State& state) {
  Xoshiro256 rng(4);
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const CompleteGraph g(n);
  TwoChoicesSync proto(g, assign_equal(n, 64, rng));
  for (auto _ : state) {
    proto.execute_round(rng);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SyncTwoChoicesRound)->Arg(1 << 12)->Arg(1 << 16);

void BM_ContinuousEngineEventLoop(benchmark::State& state) {
  // Cost of the event-queue machinery itself: heap pops/pushes plus
  // exponential draws, amortized per tick of a trivial protocol.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Xoshiro256 rng(5);
    const CompleteGraph g(n);
    VoterAsync proto(g, assign_equal(n, 2, rng));
    state.ResumeTiming();
    benchmark::DoNotOptimize(run_continuous(proto, rng, 4.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * n));
}
BENCHMARK(BM_ContinuousEngineEventLoop)->Arg(1 << 12)->Arg(1 << 14);

}  // namespace
}  // namespace plurality

BENCHMARK_MAIN();
