// E3 — §1.1: "if c1 - c2 = O(sqrt(n)), then C2 wins with constant
// probability." The table sweeps bias = beta * sqrt(n) and reports the
// plurality's win rate: ~1/2 at beta = 0, bounded away from 1 for small
// constant beta, approaching 1 as beta reaches sqrt(log n) territory.

#include <cmath>
#include <deque>

#include "bench_common.hpp"
#include "core/two_choices.hpp"
#include "graph/factory.hpp"
#include "opinion/assignment.hpp"
#include "sim/sync_driver.hpp"

using namespace plurality;

namespace {

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "E3 (bias threshold)",
                "bias O(sqrt n) -> minority wins with constant "
                "probability; bias z*sqrt(n log n) -> plurality wins whp");

  const std::uint64_t n_req = ctx.args.get_u64("n", 1ull << 14);
  Xoshiro256 build_rng(ctx.master_seed);
  const AnyGraph graph = bench::make_topology(ctx, n_req, build_rng);
  const std::uint64_t n =
      std::visit([](const auto& cg) { return cg.num_nodes(); }, graph);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double betas[] = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};

  // Both k-tables ride one job graph (see runner.hpp): all (k, beta,
  // rep) leaves share the process executor; rows land in declaration
  // order, tables print afterwards in k order.
  SweepRunner sweep(ctx.threads);
  std::deque<Table> tables;
  for (const std::uint32_t k : {2u, 5u}) {
    tables.emplace_back(
        "E3: C1 win rate vs bias  (sync Two-Choices, n=" +
            std::to_string(n) + ", k=" + std::to_string(k) + ")",
        std::vector<std::string>{"beta", "bias=beta*sqrt(n)",
                                 "bias/sqrt(n ln n)", "win_rate_C1",
                                 "mean_rounds"});
    Table& table = tables.back();
    std::uint64_t sweep_point = k * 100;
    for (const double beta : betas) {
      const auto bias = static_cast<std::uint64_t>(beta * sqrt_n);
      sweep.add_point(
          ctx.reps, 2, ctx.seeds_for(sweep_point++),
          [&ctx, &graph, n, k, bias](std::uint64_t, Xoshiro256& rng) {
            return std::visit(
                [&](const auto& cg) {
                  TwoChoicesSync proto(
                      cg, bench::place_on(ctx, cg,
                                          counts_plurality_bias(n, k, bias),
                                          rng));
                  const auto result = run_sync(proto, rng, 1000000);
                  return std::vector<double>{
                      (result.consensus && result.winner == 0) ? 1.0 : 0.0,
                      static_cast<double>(result.rounds)};
                },
                graph);
          },
          [&ctx, &table, n, k, beta, bias](const auto& slots) {
            ctx.record("c1_win_rate",
                       {{"n", n}, {"k", k}, {"beta", beta}, {"bias", bias}},
                       slots[0]);
            const Summary wins = summarize(slots[0]);
            const Summary rounds = summarize(slots[1]);
            table.row()
                .cell(beta, 2)
                .cell(bias)
                .cell(static_cast<double>(bias) /
                          std::sqrt(static_cast<double>(n) *
                                    std::log(static_cast<double>(n))),
                      2)
                .cell(wins.mean, 3)
                .cell(rounds.mean, 1);
          });
    }
  }
  sweep.run();
  for (Table& table : tables) table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "bias_threshold",
    "E3 (S1.1): bias O(sqrt n) lets a minority win with constant "
    "probability; bias z*sqrt(n log n) makes the plurality win whp",
    "Sweeps the initial bias c1-c2 of a two-color clique instance "
    "through multiples of sqrt(n) and sqrt(n log n) and measures how "
    "often color 1 wins under sync Two-Choices, bracketing the paper's "
    "bias threshold from both sides. Records `c1_win_rate` per bias "
    "multiple (many reps — the measurement is a probability). "
    "Overrides: --n=, --graph=, --placement= (a clustered placement "
    "shifts the effective threshold — the monochromatic-distance "
    "effect).",
    /*default_reps=*/60, run_exp};

}  // namespace
