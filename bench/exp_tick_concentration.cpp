// E11 — §3: "the numbers of ticks of different nodes may differ by up to
// O(log n)" — the clock-concentration fact that motivates both the
// impossibility of o(log n) algorithms and the choice of
// Delta = Theta(log n / log log n). With no protocol at all, the table
// measures the max |ticks_u - t| deviation under Poisson clocks and
// compares it to the sqrt(2 t ln n) + ln(n) concentration envelope.

#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "graph/graph.hpp"
#include "opinion/table.hpp"
#include "rng/distributions.hpp"
#include "sim/sequential_engine.hpp"

using namespace plurality;

namespace {

/// Clock-only "protocol": counts ticks, never converges.
class ClockEnsemble {
 public:
  explicit ClockEnsemble(std::uint64_t n)
      : table_(make_colors(n), 2), ticks_(n, 0) {}

  void on_tick(NodeId u, Xoshiro256&) { ++ticks_[u]; }
  std::uint64_t num_nodes() const noexcept { return ticks_.size(); }
  bool done() const noexcept { return false; }
  const OpinionTable& table() const noexcept { return table_; }

  std::pair<std::uint64_t, std::uint64_t> min_max() const {
    std::uint64_t lo = ticks_[0];
    std::uint64_t hi = ticks_[0];
    for (const auto t : ticks_) {
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    return {lo, hi};
  }

 private:
  static std::vector<ColorId> make_colors(std::uint64_t n) {
    std::vector<ColorId> c(n, 0);
    c[0] = 1;
    return c;
  }
  OpinionTable table_;
  std::vector<std::uint64_t> ticks_;
};

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "E11 (tick concentration)",
                "after time t, node tick counts deviate from t by "
                "O(sqrt(t log n) + log n); hence no algorithm beats "
                "Theta(log n) and Delta-blocks absorb the jitter");
  const bench::RunPlan plan =
      bench::make_plan(ctx, EngineKind::kSequential);

  const std::uint64_t max_n = ctx.args.get_u64("max_n", 1ull << 16);
  const double horizon = ctx.args.get_double("t", 64.0);

  Table table("E11: max |ticks - t| at t=" + std::to_string(horizon) +
                  " under Poisson(1) clocks",
              {"n", "max_dev_mean", "ci95", "envelope", "dev/envelope",
               "min_ticks", "max_ticks"});

  // The whole n-sweep is ONE job graph: every (n, rep) pair is a leaf
  // on the process executor; records and table rows are emitted by the
  // finish callbacks in declaration order, bit-identical to the
  // historical per-point loop.
  SweepRunner sweep(ctx.threads);
  std::uint64_t sweep_point = 0;
  for (std::uint64_t n = 1024; n <= max_n; n *= 4, ++sweep_point) {
    sweep.add_point(
        ctx.reps, 3, ctx.seeds_for(sweep_point),
        [&plan, n, horizon](std::uint64_t, Xoshiro256& rng) {
          ClockEnsemble clocks(n);
          bench::run(plan, clocks, rng,
                           horizon);
          const auto [lo, hi] = clocks.min_max();
          const double dev =
              std::max(horizon - static_cast<double>(lo),
                       static_cast<double>(hi) - horizon);
          return std::vector<double>{dev, static_cast<double>(lo),
                                     static_cast<double>(hi)};
        },
        [&ctx, &table, n, horizon](const auto& slots) {
          ctx.record("max_tick_deviation", {{"n", n}, {"t", horizon}},
                     slots[0]);
          const Summary dev = summarize(slots[0]);
          const double ln_n = std::log(static_cast<double>(n));
          const double envelope = std::sqrt(2.0 * horizon * ln_n) + ln_n;
          table.row()
              .cell(n)
              .cell(dev.mean, 1)
              .cell(dev.ci95_halfwidth, 1)
              .cell(envelope, 1)
              .cell(dev.mean / envelope, 2)
              .cell(summarize(slots[1]).mean, 1)
              .cell(summarize(slots[2]).mean, 1);
        });
  }
  sweep.run();
  table.print(std::cout, ctx.csv);
  if (!ctx.csv) {
    std::printf(
        "dev/envelope should sit below ~1 and be roughly constant in n "
        "(log-driven growth), confirming the Delta sizing.\n");
  }
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "tick_concentration",
    "E11 (S3): under Poisson clocks, node tick counts deviate from t by "
    "O(sqrt(t log n) + log n) — the fact behind the Delta sizing",
    "Pure clock statistics, no protocol: simulates n Poisson(1) clocks "
    "to time --t= and measures the maximum deviation of per-node tick "
    "counts from t, sweeping n (doubling up to --max_n=). Records "
    "`max_tick_deviation`; the fit against sqrt(t log n) + log n "
    "justifies the schedule's Delta sizing. Overrides: --max_n=, --t=.",
    /*default_reps=*/5, run_exp};

}  // namespace
