// E5 — §2: one OneExtraBit phase amplifies the support ratio
// quadratically: c1'/cj' >= (1 - o(1)) * (c1/cj)^2. The table sweeps the
// initial ratio and reports measured/(predicted^2), which should sit
// near 1.

#include <cmath>

#include "bench_common.hpp"
#include "core/one_extra_bit.hpp"
#include "graph/factory.hpp"
#include "opinion/assignment.hpp"

using namespace plurality;

namespace {

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "E5 (quadratic amplification)",
                "after one phase, c1'/cj' ~ (c1/cj)^2");

  const std::uint64_t n_req = ctx.args.get_u64("n", 1ull << 16);
  Xoshiro256 build_rng(ctx.master_seed);
  const AnyGraph graph = bench::make_topology(ctx, n_req, build_rng);
  const std::uint64_t n =
      std::visit([](const auto& cg) { return cg.num_nodes(); }, graph);
  const double ratios[] = {1.1, 1.25, 1.5, 2.0, 3.0};

  Table table("E5: one-phase ratio amplification  (n=" + std::to_string(n) +
                  ", k=2)",
              {"initial_ratio", "predicted_sq", "measured_mean",
               "measured_ci95", "measured/predicted"});

  // One job graph over the whole ratio sweep (see runner.hpp): every
  // (ratio, rep) pair is a leaf on the process executor; rows are
  // recorded in declaration order after the sweep drains.
  SweepRunner sweep(ctx.threads);
  std::uint64_t sweep_point = 0;
  for (const double r : ratios) {
    // c1 = r/(1+r) * n so that c1/c2 = r exactly (up to rounding).
    const auto c1 = static_cast<std::uint64_t>(
        r / (1.0 + r) * static_cast<double>(n));
    sweep.add_point(
        ctx.reps, 1, ctx.seeds_for(sweep_point++),
        [&ctx, &graph, n, c1](std::uint64_t, Xoshiro256& rng) {
          return std::visit(
              [&](const auto& cg) {
                OneExtraBitSync proto(
                    cg,
                    bench::place_on(ctx, cg, counts_two_colors(n, c1), rng));
                const double real_ratio =
                    static_cast<double>(proto.table().support(0)) /
                    static_cast<double>(proto.table().support(1));
                proto.execute_phase(rng);
                const auto s1 = proto.table().support(0);
                const auto s2 = proto.table().support(1);
                // s2 == 0 cannot occur at these n (c2' ~ n/(1+r^2)), but
                // guard by reporting the prediction so the mean is not
                // poisoned.
                const double measured =
                    s2 == 0 ? real_ratio * real_ratio
                            : static_cast<double>(s1) /
                                  static_cast<double>(s2);
                return std::vector<double>{measured};
              },
              graph);
        },
        [&ctx, &table, n, r](const auto& slots) {
          ctx.record("amplified_ratio", {{"n", n}, {"initial_ratio", r}},
                     slots[0]);
          const Summary m = summarize(slots[0]);
          const double predicted = r * r;
          table.row()
              .cell(r, 2)
              .cell(predicted, 3)
              .cell(m.mean, 3)
              .cell(m.ci95_halfwidth, 3)
              .cell(m.mean / predicted, 3);
        });
  }
  sweep.run();
  table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "quadratic_growth",
    "E5 (S2): one OneExtraBit phase amplifies the support ratio "
    "quadratically, c1'/c2' ~ (c1/c2)^2",
    "Isolates one OneExtraBit phase: prepares support ratios c1/c2 on "
    "a two-color clique, executes a single phase, and fits the "
    "amplified ratio against the squared input ratio. Records "
    "`amplified_ratio` per initial ratio; the regression slope ~ 2 in "
    "log-log space is the S2 claim (stated for the clique — on other "
    "--graph= families the amplification degrades with expansion). "
    "Overrides: --n=, --graph=, --placement=.",
    /*default_reps=*/10, run_exp};

}  // namespace
