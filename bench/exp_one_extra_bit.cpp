// E4 — Theorem 1.2: synchronous OneExtraBit converges in
// O((log(c1/(c1-c2)) + log log n) * (log k + log log n)) rounds — flat in
// k up to a log factor — while Two-Choices pays Omega(k). Two tables:
// rounds vs k head-to-head at fixed n (flat vs linear, with the
// crossover), and OneExtraBit rounds vs n at fixed k (polylog growth).

#include <cmath>

#include "bench_common.hpp"
#include "core/one_extra_bit.hpp"
#include "core/two_choices.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/sync_driver.hpp"

using namespace plurality;

namespace {

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "E4 (Theorem 1.2)",
                "OneExtraBit runs in polylog rounds (near-flat in k); "
                "Two-Choices grows ~linearly in k on the same workloads");

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 16);
  const std::uint64_t max_k = ctx.args.get_u64("max_k", 256);
  const CompleteGraph g(n);

  // ---- Table 4a: rounds vs k, head to head (c1 = 2 c2, minorities tied)
  Table head_to_head(
      "E4a: rounds vs k  (n=" + std::to_string(n) +
          ", c1=2*c2, minorities tied)",
      {"k", "bias", "oeb_rounds", "oeb_ci95", "oeb_win", "tc_rounds",
       "tc_ci95", "tc_win", "tc/oeb"});

  // Both tables' points go on ONE job graph; finish callbacks run in
  // declaration order (all 4a points, then all 4b points), so records,
  // rows, and the power-law fit are bit-identical to the historical
  // two-loop version.
  SweepRunner sweep(ctx.threads);
  std::uint64_t sweep_point = 0;
  for (std::uint64_t k = 8; k <= max_k; k *= 2, ++sweep_point) {
    const std::uint64_t bias = n / (k + 1);
    sweep.add_point(
        ctx.reps, 4, ctx.seeds_for(sweep_point),
        [&ctx, &g, n, k, bias](std::uint64_t, Xoshiro256& rng) {
          OneExtraBitSync oeb(
              g, bench::place_on(
                     ctx, g,
                     counts_plurality_bias(n, static_cast<ColorId>(k), bias),
                     rng));
          const auto oeb_result = run_sync(oeb, rng, 1000000);
          TwoChoicesSync tc(
              g, bench::place_on(
                     ctx, g,
                     counts_plurality_bias(n, static_cast<ColorId>(k), bias),
                     rng));
          const auto tc_result = run_sync(tc, rng, 1000000);
          return std::vector<double>{
              static_cast<double>(oeb_result.rounds),
              (oeb_result.consensus && oeb_result.winner == 0) ? 1.0 : 0.0,
              static_cast<double>(tc_result.rounds),
              (tc_result.consensus && tc_result.winner == 0) ? 1.0 : 0.0};
        },
        [&ctx, &head_to_head, n, k, bias](const auto& slots) {
          ctx.record("oeb_rounds_vs_k", {{"n", n}, {"k", k}, {"bias", bias}},
                     slots[0]);
          ctx.record("tc_rounds_vs_k", {{"n", n}, {"k", k}, {"bias", bias}},
                     slots[2]);
          const Summary oeb_rounds = summarize(slots[0]);
          const Summary oeb_wins = summarize(slots[1]);
          const Summary tc_rounds = summarize(slots[2]);
          const Summary tc_wins = summarize(slots[3]);
          head_to_head.row()
              .cell(k)
              .cell(bias)
              .cell(oeb_rounds.mean, 1)
              .cell(oeb_rounds.ci95_halfwidth, 1)
              .cell(oeb_wins.mean, 2)
              .cell(tc_rounds.mean, 1)
              .cell(tc_rounds.ci95_halfwidth, 1)
              .cell(tc_wins.mean, 2)
              .cell(tc_rounds.mean / oeb_rounds.mean, 2);
        });
  }

  // ---- Table 4b: OneExtraBit rounds vs n at fixed k (polylog growth).
  const std::uint64_t k_fixed = ctx.args.get_u64("k", 32);
  Table growth("E4b: OneExtraBit rounds vs n  (k=" +
                   std::to_string(k_fixed) + ", c1=2*c2)",
               {"n", "mean_rounds", "ci95", "win_rate",
                "rounds/(ln ln n * ln k)"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::uint64_t nn = 4096; nn <= n; nn *= 4, ++sweep_point) {
    const CompleteGraph gg(nn);
    const std::uint64_t bias = nn / (k_fixed + 1);
    sweep.add_point(
        ctx.reps, 2, ctx.seeds_for(sweep_point),
        [&ctx, gg, nn, k_fixed, bias](std::uint64_t, Xoshiro256& rng) {
          OneExtraBitSync proto(
              gg, bench::place_on(ctx, gg,
                                  counts_plurality_bias(
                                      nn, static_cast<ColorId>(k_fixed),
                                      bias),
                                  rng));
          const auto result = run_sync(proto, rng, 1000000);
          return std::vector<double>{
              static_cast<double>(result.rounds),
              (result.consensus && result.winner == 0) ? 1.0 : 0.0};
        },
        [&ctx, &growth, &xs, &ys, nn, k_fixed, bias](const auto& slots) {
          ctx.record("oeb_rounds_vs_n",
                     {{"n", nn}, {"k", k_fixed}, {"bias", bias}}, slots[0]);
          const Summary rounds = summarize(slots[0]);
          const Summary wins = summarize(slots[1]);
          const double dn = static_cast<double>(nn);
          growth.row()
              .cell(nn)
              .cell(rounds.mean, 1)
              .cell(rounds.ci95_halfwidth, 1)
              .cell(wins.mean, 2)
              .cell(rounds.mean / (std::log(std::log(dn)) *
                                   std::log(static_cast<double>(k_fixed))),
                    2);
          xs.push_back(dn);
          ys.push_back(rounds.mean);
        });
  }
  sweep.run();

  head_to_head.print(std::cout, ctx.csv);
  growth.print(std::cout, ctx.csv);
  bench::report_fit(ctx,
                    "OneExtraBit rounds ~ n^b power law (expect b ~ 0)",
                    fit_power_law(xs, ys));
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "one_extra_bit",
    "E4 (Theorem 1.2): sync OneExtraBit converges in polylog rounds, "
    "near-flat in k, while Two-Choices grows ~linearly in k",
    "The synchronous-rounds version of the headline: sync OneExtraBit "
    "vs sync Two-Choices on the clique. Sweeps k (doubling up to "
    "--max_k=) at fixed n, plus n at fixed --k= for the polylog "
    "growth. Records `oeb_rounds_vs_k`, `tc_rounds_vs_k`, and "
    "`oeb_rounds_vs_n` (rounds to consensus). Overrides: --n=, --k=, "
    "--max_k=.",
    /*default_reps=*/8, run_exp};

}  // namespace
