// A1 — design ablation (ours): the do-nothing block length Delta is the
// knob that buys weak synchronicity. Too small and the Two-Choices /
// commit / Bit-Propagation steps of different nodes interleave
// incorrectly (win rate drops, more endgame reliance); too large and
// the fixed schedule wastes time. The table sweeps the delta multiplier.

#include "bench_common.hpp"
#include "core/async_one_extra_bit.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/sequential_engine.hpp"

using namespace plurality;

namespace {

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "A1 (Delta ablation)",
                "block length Delta trades run time against "
                "synchronization quality: win rate degrades when blocks "
                "cannot absorb the clock jitter");
  const bench::RunPlan plan =
      bench::make_plan(ctx, EngineKind::kSequential);

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 13);
  const CompleteGraph g(n);
  const std::uint32_t k = 8;
  const std::uint64_t c2 = 2 * n / 17;  // ratio 1.5
  const std::uint64_t bias = c2 / 2;

  Table table("A1: Delta multiplier sweep  (n=" + std::to_string(n) +
                  ", k=8, c1=1.5*c2)",
              {"delta_mult", "Delta", "sched_budget", "mean_time", "ci95",
               "win_rate", "poor_frac@2D"});

  // One multiplier = one sweep point on ONE job graph. The schedule's
  // delta/budget (deterministic per point) ride back as extra result
  // slots rather than by-reference writes, so concurrent leaves stay
  // race-free; only slots 0-1 are recorded, keeping the BENCH record
  // bit-identical to the historical loop.
  SweepRunner sweep(ctx.threads);
  std::uint64_t sweep_point = 0;
  for (const double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    AsyncParams params;
    params.delta_mult = mult;
    sweep.add_point(
        ctx.reps, 5, ctx.seeds_for(sweep_point++),
        [&ctx, &g, &plan, params, n, k, bias](std::uint64_t,
                                              Xoshiro256& rng) {
          auto proto = AsyncOneExtraBit<CompleteGraph>::make(
              g, bench::place_on(ctx, g, counts_plurality_bias(n, k, bias),
                                 rng),
              params);
          const auto delta = static_cast<double>(proto.schedule().delta());
          const auto budget =
              static_cast<double>(proto.schedule().total_length());
          double max_poor = 0.0;
          const auto result = bench::run(plan, proto, rng, 1e6,
              [&](double, const AsyncOneExtraBit<CompleteGraph>& p) {
                max_poor = std::max(
                    max_poor,
                    p.fraction_poorly_synced(2 * p.schedule().delta()));
              },
              20.0);
          return std::vector<double>{
              result.time,
              (result.consensus && result.winner == 0) ? 1.0 : 0.0,
              max_poor, delta, budget};
        },
        [&ctx, &table, mult, n, k](const auto& slots) {
          ctx.record("time_vs_delta_mult",
                     {{"n", n}, {"k", k}, {"delta_mult", mult}}, slots[0]);
          ctx.record("win_vs_delta_mult",
                     {{"n", n}, {"k", k}, {"delta_mult", mult}}, slots[1]);
          const Summary time = summarize(slots[0]);
          table.row()
              .cell(mult, 2)
              .cell(static_cast<std::uint64_t>(slots[3][0]))
              .cell(slots[4][0], 0)
              .cell(time.mean, 1)
              .cell(time.ci95_halfwidth, 1)
              .cell(summarize(slots[1]).mean, 2)
              .cell(summarize(slots[2]).mean, 3);
        });
  }
  sweep.run();
  table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "delta_ablation",
    "A1 (ablation): sweep the do-nothing block length Delta — too small "
    "breaks weak synchronicity, too large wastes schedule budget",
    "Ablation of the schedule's do-nothing block length: scales Delta "
    "by multiples from well below to well above the theory value and "
    "runs async OneExtraBit at each setting. Records "
    "`time_vs_delta_mult` and `win_vs_delta_mult` — the U-shape "
    "(failures at small Delta, wasted time at large Delta) is the "
    "claim. Overrides: --n=.",
    /*default_reps=*/8, run_exp};

}  // namespace
