// B1 — robustness probe (ours, invited by §4): "our techniques should
// carry over to a much more general setting." How much clock-rate
// heterogeneity does the asynchronous protocol actually tolerate? The
// table sweeps log-normal rate spreads (sigma) and two-speed profiles,
// always normalized to mean rate 1, and reports time / win rate.

#include "bench_common.hpp"
#include "core/async_one_extra_bit.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/heterogeneous.hpp"

using namespace plurality;

namespace {

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "B1 (clock skew robustness)",
                "the async protocol should tolerate moderate clock-rate "
                "heterogeneity (§4's general-setting conjecture); strong "
                "skew degrades weak synchronicity");

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 12);
  const CompleteGraph g(n);
  const std::uint32_t k = 8;
  const std::uint64_t c2 = 2 * n / 17;  // ratio 1.5
  const std::uint64_t bias = c2 / 2;

  Table table("B1: async OneExtraBit under clock skew  (n=" +
                  std::to_string(n) + ", k=8, c1=1.5*c2)",
              {"rate_profile", "mean_time", "ci95", "win_rate",
               "success"});

  // One profile = one sweep point on ONE job graph; records and rows
  // come from finish callbacks in declaration order, bit-identical to
  // the historical per-profile run_repetitions_multi loop.
  SweepRunner runner(ctx.threads);
  auto add_profile = [&](const std::string& name, auto make_rates,
                         std::uint64_t sweep_point) {
    runner.add_point(
        ctx.reps, 3, ctx.seeds_for(sweep_point),
        [&ctx, &g, make_rates, n, k, bias](std::uint64_t, Xoshiro256& rng) {
          const auto rates = make_rates(rng);
          auto proto = AsyncOneExtraBit<CompleteGraph>::make(
              g, bench::place_on(ctx, g, counts_plurality_bias(n, k, bias),
                                 rng));
          const auto result =
              run_continuous_heterogeneous(proto, rng, rates, 1e5);
          return std::vector<double>{
              result.time,
              (result.consensus && result.winner == 0) ? 1.0 : 0.0,
              result.consensus ? 1.0 : 0.0};
        },
        [&ctx, &table, name, n, k](const auto& slots) {
          ctx.record("time_under_skew",
                     {{"n", n}, {"k", k}, {"profile", name.c_str()}},
                     slots[0]);
          ctx.record("win_under_skew",
                     {{"n", n}, {"k", k}, {"profile", name.c_str()}},
                     slots[1]);
          const Summary time = summarize(slots[0]);
          table.row()
              .cell(name)
              .cell(time.mean, 1)
              .cell(time.ci95_halfwidth, 1)
              .cell(summarize(slots[1]).mean, 2)
              .cell(summarize(slots[2]).mean, 2);
        });
  };

  std::uint64_t sweep = 0;
  add_profile("uniform (paper model)",
              [n](Xoshiro256&) { return clock_rates::uniform(n); },
              sweep++);
  for (const double sigma : {0.25, 0.5, 1.0}) {
    char name[48];
    std::snprintf(name, sizeof name, "log-normal sigma=%.2f", sigma);
    add_profile(name,
                [n, sigma](Xoshiro256& rng) {
                  return clock_rates::log_normal(n, sigma, rng);
                },
                sweep++);
  }
  for (const double slow : {0.5, 0.25}) {
    char name[48];
    std::snprintf(name, sizeof name, "20%% of nodes at rate %.2f", slow);
    add_profile(name,
                [n, slow](Xoshiro256& rng) {
                  return clock_rates::two_speed(n, 0.2, slow, rng);
                },
                sweep++);
  }
  runner.run();

  table.print(std::cout, ctx.csv);
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "clock_skew",
    "B1 (robustness): async OneExtraBit under log-normal and two-speed "
    "clock-rate heterogeneity; strong skew degrades weak synchronicity",
    "Robustness probe outside the paper's identical-Poisson-clock "
    "assumption: runs async OneExtraBit with per-node clock rates drawn "
    "log-normal (sweeping sigma) and from a two-speed fast/slow mix, "
    "via the heterogeneous-rate engine. Records `time_under_skew` and "
    "`win_under_skew` per skew setting; the interesting regime is where "
    "the Sync Gadget's weak synchronicity starts to crack. Overrides: "
    "--n=.",
    /*default_reps=*/5, run_exp};

}  // namespace
