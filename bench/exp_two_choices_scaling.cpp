// E1 — Theorem 1.1 (upper bound): synchronous Two-Choices with k = 2 and
// bias sqrt(n ln n) converges in O(n/c1 * log n) = O(log n) rounds (c1 is
// a constant fraction). The table sweeps n; the fit of rounds against
// ln(n) should be linear with a small slope and high R^2.

#include <cmath>
#include <deque>

#include "bench_common.hpp"
#include "core/two_choices.hpp"
#include "graph/factory.hpp"
#include "opinion/assignment.hpp"
#include "sim/sync_driver.hpp"

using namespace plurality;

namespace {

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "E1 (Theorem 1.1 upper, k=2)",
                "Two-Choices converges within O(n/c1 * log n) rounds given "
                "bias >= z*sqrt(n log n); with k=2 that is O(log n)");

  const std::uint64_t max_n = ctx.args.get_u64("max_n", 1ull << 17);
  Xoshiro256 build_rng(ctx.master_seed);

  Table table("E1: sync Two-Choices rounds vs n  (k=2, bias=sqrt(n ln n))",
              {"n", "bias", "mean_rounds", "ci95", "median", "p90",
               "win_rate_C1", "rounds/ln(n)"});
  std::vector<double> xs;
  std::vector<double> ys;

  // The whole sweep is ONE job graph: every (n, rep) pair is a leaf on
  // the process executor, so short small-n points fill workers that
  // the big-n points leave idle. Topologies are built up front on the
  // main thread in sweep order — the build_rng draw sequence (and so
  // every graph) is identical to the historical per-point loop — and
  // live in a deque so the leaf lambdas can hold stable references.
  std::deque<AnyGraph> graphs;
  SweepRunner sweep(ctx.threads);
  std::uint64_t sweep_point = 0;
  for (std::uint64_t n_req = 1024; n_req <= max_n;
       n_req *= 2, ++sweep_point) {
    graphs.push_back(bench::make_topology(ctx, n_req, build_rng));
    const AnyGraph& g = graphs.back();
    const std::uint64_t n =
        std::visit([](const auto& cg) { return cg.num_nodes(); }, g);
    const auto bias = static_cast<std::uint64_t>(std::sqrt(
        static_cast<double>(n) * std::log(static_cast<double>(n))));
    sweep.add_point(
        ctx.reps, 2, ctx.seeds_for(sweep_point),
        [&ctx, &g, n, bias](std::uint64_t, Xoshiro256& rng) {
          return std::visit(
              [&](const auto& cg) {
                TwoChoicesSync proto(
                    cg, bench::place_on(
                            ctx, cg, counts_two_colors(n, n / 2 + bias / 2),
                            rng));
                const auto result = run_sync(proto, rng, 100000);
                return std::vector<double>{
                    static_cast<double>(result.rounds),
                    (result.consensus && result.winner == 0) ? 1.0 : 0.0};
              },
              g);
        },
        [&ctx, &table, &xs, &ys, n, bias](const auto& slots) {
          ctx.record("rounds_vs_n", {{"n", n}, {"bias", bias}}, slots[0]);
          const Summary rounds = summarize(slots[0]);
          const Summary wins = summarize(slots[1]);
          table.row()
              .cell(n)
              .cell(bias)
              .cell(rounds.mean, 1)
              .cell(rounds.ci95_halfwidth, 1)
              .cell(rounds.median, 1)
              .cell(rounds.p90, 1)
              .cell(wins.mean, 2)
              .cell(rounds.mean / std::log(static_cast<double>(n)), 2);
          xs.push_back(static_cast<double>(n));
          ys.push_back(rounds.mean);
        });
  }
  sweep.run();

  table.print(std::cout, ctx.csv);
  bench::report_fit(ctx, "rounds = a + b*ln(n) fit", fit_log_x(xs, ys));
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "two_choices_scaling",
    "E1 (Theorem 1.1 upper): sync Two-Choices with k=2 and bias "
    "sqrt(n ln n) converges in O(log n) rounds",
    "The upper-bound side of Theorem 1.1 in its simplest setting: "
    "two-color sync Two-Choices with bias sqrt(n ln n), sweeping n "
    "(doubling up to --max_n=). Records `rounds_vs_n`; the fit of "
    "rounds against log n should be linear with slope O(1). Overrides: "
    "--max_n=, --graph= (any factory family), --placement=.",
    /*default_reps=*/10, run_exp};

}  // namespace
