// W1 — adversarial placements (ours, after Becchetti et al.'s
// monochromatic-distance analysis, arXiv:1407.2565, and
// Robinson–Scheideler–Setzer's adversarially positioned initial
// configurations, arXiv:1805.00774): at *fixed support counts*, how
// much does the initial placement alone move the consensus time? On a
// stochastic block model, a uniformly shuffled 55:45 split hands every
// neighborhood the global plurality and finishes fast; the same counts
// concentrated community-by-community (community-aligned, BFS balls)
// turn the run into a slow cross-cut invasion — and can flip the
// winner, because most blocks lock onto the minority first. Minorities
// seeded on the cut (adversarial_boundary) sit in between.
//
// Sweeps placement x {Two-Choices, 3-Majority} on one SBM instance at
// fixed counts; --placement= restricts the sweep to one family,
// --graph= swaps the topology (on placement-oblivious families the
// placements collapse onto uniform, which is the point of the
// contrast). The headline check is a >= 2-stderr separation between
// uniform and at least one adversarial placement in the two_choices
// means; docs/SCENARIOS.md records the measured ordering.

#include <cmath>
#include <string>
#include <type_traits>
#include <vector>

#include "bench_common.hpp"
#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "graph/csr.hpp"
#include "graph/factory.hpp"
#include "opinion/assignment.hpp"
#include "opinion/placement.hpp"

using namespace plurality;

namespace {

struct Cell {
  Summary time;
  Summary wins;
  Summary done;
};

template <template <GraphTopology> class Proto>
Cell run_cell(ExperimentContext& ctx, const bench::RunPlan& plan,
              const AnyGraph& any, const CsrTopology& csr,
              const char* protocol, const PlacementSpec& placement,
              std::uint64_t c1, double c1_frac, double horizon,
              std::uint64_t sweep_point, const std::string& topology) {
  // The protocol runs on the flat CSR view (one instantiation, shared
  // by all engines incl. the sharded workers); the placement runs on
  // the concrete graph, which knows its communities and cut structure.
  const std::uint64_t n = csr.num_nodes();
  const auto seeds = ctx.seeds_for(sweep_point);
  const auto place = [&](Xoshiro256& rng) {
    return std::visit(
        [&](const auto& g) {
          return bench::place_with(ctx, placement, g,
                                   counts_two_colors(n, c1), rng);
        },
        any);
  };
  const auto slots = run_repetitions_multi(
      ctx.reps, 3, seeds,
      [&](std::uint64_t, Xoshiro256& rng) {
        Proto<CsrTopology> proto(csr, place(rng));
        const auto result = bench::run(plan, proto, rng, horizon);
        return std::vector<double>{
            result.time,
            (result.consensus && result.winner == 0) ? 1.0 : 0.0,
            result.consensus ? 1.0 : 0.0};
      },
      ctx.threads);
  ctx.record("time_vs_placement",
             {{"protocol", protocol},
              {"placement", placement_kind_name(placement.kind)},
              {"topology", topology.c_str()},
              {"c1_frac", c1_frac}},
             slots[0]);
  ctx.record("c1_win_vs_placement",
             {{"protocol", protocol},
              {"placement", placement_kind_name(placement.kind)},
              {"topology", topology.c_str()},
              {"c1_frac", c1_frac}},
             slots[1]);
  return Cell{summarize(slots[0]), summarize(slots[1]), summarize(slots[2])};
}

int run_exp(ExperimentContext& ctx) {
  bench::banner(ctx, "W1 (adversarial placements)",
                "at fixed counts on a community graph, placement alone "
                "moves the consensus time by multiples (and can flip "
                "the winner): uniform << boundary-seeded < "
                "community-aligned/clustered");

  const bench::RunPlan plan =
      bench::make_plan(ctx, EngineKind::kSuperposition, GraphKind::kSbm);

  const std::uint64_t n = ctx.args.get_u64("n", 1ull << 12);
  const double c1_frac = ctx.args.get_double("c1-frac", 0.55);
  PC_EXPECTS(c1_frac > 0.0 && c1_frac < 1.0);
  const double horizon = ctx.args.get_double("horizon", 5000.0);

  Xoshiro256 build_rng(ctx.master_seed);
  const AnyGraph any = bench::topology(plan, n, build_rng);
  const CsrTopology csr = make_csr_view(any);
  const std::uint64_t n_eff = num_nodes(any);
  const auto c1 = static_cast<std::uint64_t>(
      c1_frac * static_cast<double>(n_eff));
  const std::string topology = plan.graph.label();

  // --placement= restricts the sweep; otherwise compare all families,
  // uniform first (it is the baseline of the separation check).
  std::vector<PlacementKind> sweep;
  if (ctx.args.has_flag("placement")) {
    sweep.push_back(ctx.placement.kind);
  } else {
    sweep = {PlacementKind::kUniform, PlacementKind::kAdversarialBoundary,
             PlacementKind::kClusteredBfs, PlacementKind::kCommunityAligned};
  }

  Table table("W1: consensus time by placement  (" + topology +
                  ", n=" + std::to_string(n_eff) + ", c1=" +
                  std::to_string(c1) + ", horizon=" +
                  std::to_string(static_cast<int>(horizon)) + ")",
              {"protocol", "placement", "mean_time", "ci95", "done",
               "c1_win_rate"});

  double uniform_mean = -1.0;
  double uniform_se = 0.0;
  double best_z = -1.0;
  const char* best_placement = "";
  std::uint64_t sweep_point = 0;
  for (const PlacementKind kind : sweep) {
    const PlacementSpec placement{kind, ctx.placement.fraction};
    struct Row {
      const char* protocol;
      Cell cell;
    };
    const Row rows[] = {
        {"two_choices",
         run_cell<TwoChoicesAsync>(ctx, plan, any, csr, "two_choices",
                                   placement, c1, c1_frac, horizon,
                                   sweep_point * 2, topology)},
        {"three_majority",
         run_cell<ThreeMajorityAsync>(ctx, plan, any, csr, "three_majority",
                                      placement, c1, c1_frac, horizon,
                                      sweep_point * 2 + 1, topology)},
    };
    ++sweep_point;
    for (const Row& row : rows) {
      table.row()
          .cell(row.protocol)
          .cell(placement_kind_name(kind))
          .cell(row.cell.time.mean, 1)
          .cell(row.cell.time.ci95_halfwidth, 1)
          .cell(row.cell.done.mean, 2)
          .cell(row.cell.wins.mean, 2);
    }
    // Separation bookkeeping on the two_choices series: how many
    // combined standard errors lie between this placement and uniform.
    const Summary& tc = rows[0].cell.time;
    const double se = tc.ci95_halfwidth / 1.96;
    if (kind == PlacementKind::kUniform) {
      uniform_mean = tc.mean;
      uniform_se = se;
    } else if (uniform_mean >= 0.0) {
      const double pooled =
          std::sqrt(uniform_se * uniform_se + se * se);
      const double z =
          pooled > 0.0 ? (tc.mean - uniform_mean) / pooled : 0.0;
      if (z > best_z) {
        best_z = z;
        best_placement = placement_kind_name(kind);
      }
    }
  }
  table.print(std::cout, ctx.csv);

  if (!ctx.csv && best_z >= 0.0) {
    std::printf("placement separation (two_choices): %s is %.1f stderr "
                "slower than uniform  %s\n",
                best_placement, best_z,
                best_z >= 2.0 ? "[resolved, >= 2 stderr]"
                              : "[not resolved at this scale]");
  }
  return 0;
}

const ExperimentRegistrar kRegistrar{
    "adversarial_placements",
    "W1 (ours): at fixed counts on an SBM, the initial placement alone "
    "moves consensus time by multiples and can flip the winner",
    "Fixes a two-color 55:45 support profile on one stochastic block "
    "model instance and sweeps *where* those counts start: uniformly "
    "shuffled, minorities seeded on the high-conductance cut "
    "(adversarial_boundary), each color a BFS ball (clustered_bfs), "
    "and the plurality concentrated inside one block (community). "
    "Runs async Two-Choices and 3-Majority per placement to consensus "
    "or --horizon= and records `time_vs_placement` and "
    "`c1_win_vs_placement` per protocol x placement. Uniform hands "
    "every neighborhood the global plurality and finishes fast; the "
    "segregated placements force a slow invasion across the sparse "
    "cuts and usually flip the winner to the locally dominant "
    "minority. The headline check is a >= 2-stderr separation between "
    "uniform and the slowest placement in the two_choices means "
    "(measured ordering recorded in docs/SCENARIOS.md). Overrides: "
    "--n=, --c1-frac=, --horizon=, --placement= (restrict to one "
    "family), --placement-fraction=, --graph= and the --graph-* knobs "
    "(swap the topology; placement-oblivious families collapse the "
    "contrast), --engine= (incl. sharded with --shards=T — protocols "
    "run on the flat CSR view, so the parallel engine drives every "
    "composition), --latency= (compose a response-latency model, "
    "blocking discipline on the sharded delivery queues).",
    /*default_reps=*/10, run_exp};

}  // namespace
