// Sensor swarm scenario: a field of cheap sensors measures the same
// physical quantity; each sensor quantizes its noisy reading into one
// of k buckets, and the swarm must agree on the modal bucket using only
// anonymous gossip — no ids, no coordinator, no synchronized clocks,
// and answers that come back late (exponential response delays, §4).
//
// The initial configuration is drawn from a Dirichlet prior (noisy
// measurements spread mass over neighboring buckets), then the paper's
// delayed asynchronous OneExtraBit protocol runs under the continuous
// Poisson-clock engine.
//
//   build/examples/example_sensor_swarm

#include <cstdio>

#include "core/delayed.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/latency.hpp"

int main() {
  using namespace plurality;

  constexpr std::uint64_t kSensors = 20000;
  constexpr ColorId kBuckets = 8;
  constexpr double kMeanDelay = 0.25;  // mean network delay, time units

  Xoshiro256 rng(7);
  const CompleteGraph swarm(kSensors);

  // Noisy quantized readings: a peaked Dirichlet draw (alpha < 1 makes
  // one bucket clearly modal while others keep stragglers).
  auto readings = assign_dirichlet(kSensors, kBuckets, 0.4, rng);
  std::printf("sensor histogram over %u buckets:\n", kBuckets);
  for (ColorId b = 0; b < kBuckets; ++b) {
    std::printf("  bucket %u: %6llu sensors\n", b,
                static_cast<unsigned long long>(readings.counts[b]));
  }
  const ColorId truth = 0;  // assign_dirichlet relabels the mode to 0

  auto protocol = AsyncOneExtraBitDelayed<CompleteGraph>::make(
      swarm, std::move(readings));

  // Exponential network delays (§4); swap in ParetoLatency or
  // PositiveAgingLatency to explore the edge-latency families.
  const ExponentialLatency network(kMeanDelay);
  const AsyncRunResult result = run_continuous_messaging(
      protocol, network, rng, /*max_time=*/20000.0);

  if (result.consensus) {
    std::printf(
        "swarm agreed on bucket %u (%s) after %.1f time units under "
        "mean response delay %.2f\n",
        result.winner, result.winner == truth ? "the true mode" : "NOT the mode",
        result.time, kMeanDelay);
  } else {
    std::printf("swarm failed to agree within the horizon\n");
  }
  return result.consensus && result.winner == truth ? 0 : 1;
}
