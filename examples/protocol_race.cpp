// Protocol race: runs four asynchronous dynamics on the same initial
// configuration and charts the plurality color's support over time as
// ASCII sparklines — voter, two-choices, 3-majority, and the paper's
// phased OneExtraBit protocol.
//
//   build/examples/example_protocol_race

#include <cstdio>
#include <string>
#include <vector>

#include "core/async_one_extra_bit.hpp"
#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/sequential_engine.hpp"

namespace {

using namespace plurality;

constexpr std::uint64_t kNodes = 16384;
constexpr ColorId kColors = 16;
constexpr double kHorizon = 700.0;
constexpr double kSampleEvery = 10.0;

/// Records c1/n at a fixed cadence.
struct FractionTrace {
  std::vector<double> fractions;
  template <typename P>
  void operator()(double, const P& proto) {
    fractions.push_back(
        static_cast<double>(proto.table().support(0)) /
        static_cast<double>(proto.table().num_nodes()));
  }
};

std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {"_", ".", ":", "-", "=", "+", "*", "#"};
  std::string out;
  for (const double v : values) {
    const int level =
        std::min(7, static_cast<int>(v * 8.0));
    out += kLevels[std::max(0, level)];
  }
  return out;
}

template <typename MakeProto>
void race(const char* name, MakeProto&& make) {
  Xoshiro256 rng(99);
  auto proto = make(rng);
  FractionTrace trace;
  const auto result =
      run_sequential(proto, rng, kHorizon, std::ref(trace), kSampleEvery);
  std::printf("%-18s |%s| %s at t=%.0f\n", name,
              sparkline(trace.fractions).c_str(),
              result.consensus
                  ? (result.winner == 0 ? "consensus on C1" : "WRONG winner")
                  : "still divided",
              result.time);
}

}  // namespace

int main() {
  using namespace plurality;
  const CompleteGraph g(kNodes);
  std::printf(
      "plurality fraction over time (n=%llu, k=%u, c1=1.5*c2); one char "
      "per %.0f time units, scale _ (0) to # (1)\n\n",
      static_cast<unsigned long long>(kNodes), kColors, kSampleEvery);

  const std::uint64_t c2 = 2 * kNodes / (2 * kColors + 1);
  const std::uint64_t bias = c2 / 2;

  race("voter", [&](Xoshiro256& rng) {
    return VoterAsync<CompleteGraph>(
        g, assign_plurality_bias(kNodes, kColors, bias, rng));
  });
  race("two_choices", [&](Xoshiro256& rng) {
    return TwoChoicesAsync<CompleteGraph>(
        g, assign_plurality_bias(kNodes, kColors, bias, rng));
  });
  race("three_majority", [&](Xoshiro256& rng) {
    return ThreeMajorityAsync<CompleteGraph>(
        g, assign_plurality_bias(kNodes, kColors, bias, rng));
  });
  race("async_oneextrabit", [&](Xoshiro256& rng) {
    return AsyncOneExtraBit<CompleteGraph>::make(
        g, assign_plurality_bias(kNodes, kColors, bias, rng));
  });

  std::printf(
      "\nvoter wanders (winner ~ proportional to support); the "
      "two-choices family drifts to the plurality; the phased protocol "
      "shows its staircase phase structure.\n");
  return 0;
}
