// Sync Gadget demo: visualizes *weak synchronicity*. Runs the
// asynchronous protocol twice — gadget enabled and disabled — to the
// same horizon and renders the distribution of node working times
// around the median as ASCII histograms. With the gadget, mass
// concentrates near 0; without it, the distribution smears out with
// sqrt(t) tails.
//
//   build/examples/example_sync_gadget_demo

#include <cstdio>

#include "core/async_one_extra_bit.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/sequential_engine.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace plurality;

  constexpr std::uint64_t kNodes = 8192;
  constexpr ColorId kColors = 8;

  for (const bool enabled : {true, false}) {
    AsyncParams params;
    params.sync_gadget_enabled = enabled;

    Xoshiro256 rng(5);
    const CompleteGraph g(kNodes);
    auto proto = AsyncOneExtraBit<CompleteGraph>::make(
        g, assign_plurality_bias(kNodes, kColors, kNodes / 8, rng),
        params);

    // Run to 80% of part 1 (no consensus shortcut distortion: the
    // horizon is identical for both configurations).
    const double horizon =
        0.8 * static_cast<double>(proto.schedule().part1_length());
    run_sequential(proto, rng, horizon);

    const auto median =
        static_cast<double>(proto.median_working_time());
    Histogram hist(-60.0, 60.0, 24);
    for (NodeId u = 0; u < kNodes; ++u) {
      hist.add(static_cast<double>(proto.working_time_of(u)) - median);
    }

    std::printf(
        "\n=== Sync Gadget %s ===  (t=%.0f, Delta=%llu, phase=%llu, "
        "jumps=%llu)\nworking time - median:\n%s",
        enabled ? "ON" : "OFF", horizon,
        static_cast<unsigned long long>(proto.schedule().delta()),
        static_cast<unsigned long long>(proto.schedule().phase_length()),
        static_cast<unsigned long long>(proto.jumps_performed()),
        hist.render(46).c_str());
    std::printf("spread (max-min): %llu ticks\n",
                static_cast<unsigned long long>(proto.working_time_spread()));
  }

  std::printf(
      "\nThe gadget re-anchors every node's working time to the median "
      "of sampled real times once per phase (the 'jump'), trading a "
      "little per-phase noise for bounded long-run dispersion.\n");
  return 0;
}
