// Version vote scenario: a peer-to-peer network must converge on one of
// k candidate protocol versions, each with a different initial adoption
// share (a geometric profile: newest version leads, older ones trail).
// Nodes proceed in synchronized gossip rounds, so the synchronous
// OneExtraBit protocol (one extra bit per message, §2) applies — and is
// compared against plain Two-Choices on the same configuration.
//
//   build/examples/example_version_vote

#include <cstdio>

#include "core/one_extra_bit.hpp"
#include "core/two_choices.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/sync_driver.hpp"

int main() {
  using namespace plurality;

  constexpr std::uint64_t kPeers = 65536;
  constexpr ColorId kVersions = 24;

  const CompleteGraph network(kPeers);

  std::printf("adoption shares across %u candidate versions:\n",
              kVersions);
  {
    Xoshiro256 preview_rng(11);
    const auto preview =
        assign_geometric(kPeers, kVersions, 0.7, preview_rng);
    for (ColorId v = 0; v < 6; ++v) {
      std::printf("  v%-2u %6llu peers\n", v,
                  static_cast<unsigned long long>(preview.counts[v]));
    }
    std::printf("  ... (%u more versions with long-tail support)\n",
                kVersions - 6);
  }

  {
    Xoshiro256 rng(11);
    OneExtraBitSync vote(network,
                         assign_geometric(kPeers, kVersions, 0.7, rng));
    const auto result = run_sync(vote, rng, 5000);
    std::printf(
        "OneExtraBit:  %s v%u after %llu rounds (%llu phases of 1+%llu "
        "rounds)\n",
        result.consensus ? "converged on" : "did not converge;",
        result.winner, static_cast<unsigned long long>(result.rounds),
        static_cast<unsigned long long>(vote.phases_completed()),
        static_cast<unsigned long long>(vote.bp_rounds_per_phase()));
  }
  {
    Xoshiro256 rng(11);
    TwoChoicesSync vote(network,
                        assign_geometric(kPeers, kVersions, 0.7, rng));
    const auto result = run_sync(vote, rng, 5000);
    std::printf("Two-Choices:  %s v%u after %llu rounds\n",
                result.consensus ? "converged on" : "did not converge;",
                result.winner,
                static_cast<unsigned long long>(result.rounds));
  }
  return 0;
}
