// Quickstart: plurality consensus on a clique of 100k nodes with five
// opinions, using the paper's asynchronous OneExtraBit protocol under
// the sequential Poisson-clock model.
//
//   build/examples/example_quickstart

#include <cstdio>

#include "core/async_one_extra_bit.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/sequential_engine.hpp"

int main() {
  using namespace plurality;

  constexpr std::uint64_t kNodes = 100000;
  constexpr ColorId kOpinions = 5;

  Xoshiro256 rng(2024);
  const CompleteGraph clique(kNodes);

  // Initial configuration: opinion 0 leads with c1 = 1.5 * c2, the
  // (1 + eps) regime of Theorem 1.3.
  auto workload =
      assign_plurality_bias(kNodes, kOpinions, kNodes / 10, rng);
  std::printf("initial supports:");
  for (const auto c : workload.counts) {
    std::printf(" %llu", static_cast<unsigned long long>(c));
  }
  std::printf("  (bias c1-c2 = %lld)\n",
              static_cast<long long>(workload.bias()));

  auto protocol =
      AsyncOneExtraBit<CompleteGraph>::make(clique, std::move(workload));
  std::printf(
      "schedule: Delta=%llu, %llu phases of %llu ticks, endgame=%llu\n",
      static_cast<unsigned long long>(protocol.schedule().delta()),
      static_cast<unsigned long long>(protocol.schedule().num_phases()),
      static_cast<unsigned long long>(protocol.schedule().phase_length()),
      static_cast<unsigned long long>(protocol.schedule().endgame_ticks()));

  const AsyncRunResult result =
      run_sequential(protocol, rng, /*max_time=*/10000.0);

  if (result.consensus) {
    std::printf(
        "consensus on opinion %u after %.1f parallel time units "
        "(%llu total ticks, ~%.1f per node)\n",
        result.winner, result.time,
        static_cast<unsigned long long>(result.ticks),
        static_cast<double>(result.ticks) / kNodes);
  } else {
    std::printf("no consensus within the horizon (time %.1f)\n",
                result.time);
  }
  return result.consensus ? 0 : 1;
}
