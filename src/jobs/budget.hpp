#pragma once

/// \file budget.hpp
/// The worker-budget handshake between the process-wide job executor
/// (src/jobs/executor.hpp) and the per-run shard worker pools
/// (sim/sharded_engine.hpp): `--jobs=N` caps the TOTAL number of
/// threads the process may run, and every subsystem that spawns
/// threads acquires them from this budget instead of assuming it owns
/// the machine.
///
/// Accounting model (static tokens):
///   - the budget starts with `total - 1` tokens — the main thread is
///     the implicit first thread;
///   - the process executor acquires one token per worker for its
///     whole lifetime (parked workers keep their token: the cap is a
///     hard ceiling on thread count, not a load-balancing device);
///   - each detail::ShardWorkerPool acquires up to `shards - 1` tokens
///     at construction and multiplexes its shards over the granted
///     lanes (the calling thread always runs one lane for free), so a
///     sharded run under an exhausted budget degrades to running its
///     shards sequentially on the caller — bit-identical results,
///     fewer threads — instead of oversubscribing.
/// An unconfigured budget is unlimited, which preserves the historical
/// behavior of library users (tests, examples) that never pass --jobs.
///
/// acquire() never blocks and may grant less than requested (including
/// zero); callers must be correct with any grant. release() returns
/// exactly what acquire() granted.

#include <atomic>
#include <cstdint>

namespace plurality::jobs {

class ThreadBudget {
 public:
  /// An unlimited budget (the default-constructed state).
  ThreadBudget() = default;
  ThreadBudget(const ThreadBudget&) = delete;
  ThreadBudget& operator=(const ThreadBudget&) = delete;

  /// The process-wide budget every thread-spawning subsystem consults.
  static ThreadBudget& global();

  /// Sets the cap to `total` threads including the calling (main)
  /// thread; `total` >= 1. Outstanding grants are preserved: the new
  /// pool of available tokens is `total - 1 - outstanding`, clamped at
  /// zero. Call from one thread, with no acquire/release racing it
  /// (the experiment harness reconfigures only between runs).
  void configure(unsigned total);

  /// Removes the cap (the default). Test hook.
  void reset_unlimited();

  /// The configured cap; 0 when unlimited.
  unsigned limit() const noexcept {
    return limit_.load(std::memory_order_relaxed);
  }

  /// Grants between 0 and `want` tokens, never blocking.
  unsigned acquire(unsigned want) noexcept;

  /// Returns tokens obtained from acquire(). `granted` must not exceed
  /// what this caller still holds.
  void release(unsigned granted) noexcept;

  /// Tokens currently available (advisory — racy by nature).
  std::int64_t available() const noexcept {
    return available_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::int64_t kUnlimited = INT64_C(1) << 40;

  std::atomic<std::int64_t> available_{kUnlimited};
  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<unsigned> limit_{0};
};

}  // namespace plurality::jobs
