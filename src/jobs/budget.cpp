#include "jobs/budget.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace plurality::jobs {

ThreadBudget& ThreadBudget::global() {
  static ThreadBudget budget;
  return budget;
}

void ThreadBudget::configure(unsigned total) {
  PC_EXPECTS(total >= 1);
  limit_.store(total, std::memory_order_relaxed);
  const std::int64_t outstanding =
      outstanding_.load(std::memory_order_relaxed);
  available_.store(
      std::max<std::int64_t>(0, static_cast<std::int64_t>(total) - 1 -
                                    outstanding),
      std::memory_order_relaxed);
}

void ThreadBudget::reset_unlimited() {
  limit_.store(0, std::memory_order_relaxed);
  available_.store(kUnlimited - outstanding_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

unsigned ThreadBudget::acquire(unsigned want) noexcept {
  if (want == 0) return 0;
  std::int64_t current = available_.load(std::memory_order_relaxed);
  for (;;) {
    const std::int64_t grant =
        std::min<std::int64_t>(want, std::max<std::int64_t>(0, current));
    if (grant == 0) return 0;
    if (available_.compare_exchange_weak(current, current - grant,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      outstanding_.fetch_add(grant, std::memory_order_relaxed);
      return static_cast<unsigned>(grant);
    }
  }
}

void ThreadBudget::release(unsigned granted) noexcept {
  if (granted == 0) return;
  const std::int64_t outstanding =
      outstanding_.fetch_sub(granted, std::memory_order_relaxed) - granted;
  const unsigned limit = limit_.load(std::memory_order_relaxed);
  if (limit == 0) {
    available_.fetch_add(granted, std::memory_order_acq_rel);
    return;
  }
  // Under a cap, returned tokens are clamped to limit - 1 - outstanding:
  // a reconfigure that lowered the cap below what was already granted
  // must not see the excess come back into circulation.
  const std::int64_t cap = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(limit) - 1 - outstanding);
  std::int64_t current = available_.load(std::memory_order_relaxed);
  for (;;) {
    const std::int64_t next =
        std::min<std::int64_t>(current + granted, cap);
    if (available_.compare_exchange_weak(current, next,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace plurality::jobs
