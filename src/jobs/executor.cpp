#include "jobs/executor.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "trace/trace.hpp"

namespace plurality::jobs {

namespace detail {

namespace {
constexpr std::int64_t kInitialCapacity = 256;  // power of two
}  // namespace

WorkDeque::Array::Array(std::int64_t cap)
    : capacity(cap),
      cells(std::make_unique<std::atomic<JobGraph::Node*>[]>(
          static_cast<std::size_t>(cap))) {}

WorkDeque::WorkDeque() {
  auto initial = std::make_unique<Array>(kInitialCapacity);
  array_.store(initial.get(), std::memory_order_relaxed);
  retired_.push_back(std::move(initial));
}

WorkDeque::~WorkDeque() = default;

void WorkDeque::grow(std::int64_t bottom, std::int64_t top) {
  Array* old = array_.load(std::memory_order_relaxed);
  auto bigger = std::make_unique<Array>(old->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) bigger->put(i, old->get(i));
  array_.store(bigger.get(), std::memory_order_release);
  retired_.push_back(std::move(bigger));
}

void WorkDeque::push(JobGraph::Node* node) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Array* a = array_.load(std::memory_order_relaxed);
  if (b - t > a->capacity - 1) {
    grow(b, t);
    a = array_.load(std::memory_order_relaxed);
  }
  a->put(b, node);
  std::atomic_thread_fence(std::memory_order_release);
  bottom_.store(b + 1, std::memory_order_relaxed);
}

JobGraph::Node* WorkDeque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Array* a = array_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  JobGraph::Node* node = nullptr;
  if (t <= b) {
    node = a->get(b);
    if (t == b) {
      // Last item: race the thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        node = nullptr;  // a thief got there first
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return node;
}

JobGraph::Node* WorkDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return nullptr;
  Array* a = array_.load(std::memory_order_acquire);
  JobGraph::Node* node = a->get(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // lost the race; caller may retry
  }
  return node;
}

std::int64_t WorkDeque::approx_size() const noexcept {
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  return std::max<std::int64_t>(0, b - t);
}

}  // namespace detail

namespace {

/// The worker slot of the current thread, so enqueue() can push
/// continuations onto the local deque instead of the injection queue.
struct WorkerSlot {
  Executor* executor = nullptr;
  unsigned index = 0;
};
thread_local WorkerSlot tl_worker;

constexpr int kSpinRounds = 2;      // idle scavenging passes before parking
constexpr unsigned kMaxMigrate = 32;  // steal-half cap per scavenge

}  // namespace

Executor::Executor(unsigned workers, ThreadBudget* budget)
    : budget_(budget) {
  if (budget_ != nullptr) {
    budget_granted_ = budget_->acquire(workers);
    workers = budget_granted_;
  }
  workers_.resize(workers);
  for (auto& worker : workers_) {
    worker.deque = std::make_unique<detail::WorkDeque>();
  }
  for (unsigned i = 0; i < workers; ++i) {
    workers_[i].thread = std::thread([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() {
  {
    const std::lock_guard<std::mutex> lock(park_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  park_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.thread.joinable()) worker.thread.join();
  }
  if (budget_ != nullptr) budget_->release(budget_granted_);
}

void Executor::submit(JobGraph& graph) {
  PC_EXPECTS(!graph.submitted_);
  graph.submitted_ = true;
  graph.remaining_.store(graph.nodes_.size(), std::memory_order_release);
  // Snapshot the root set BEFORE the first enqueue. The moment one node
  // is published a worker may run it and release children (pending
  // 1 -> 0); scanning pending counts concurrently would then see such a
  // child as a root and enqueue it a second time — double execution and
  // a remaining_ underflow. Pre-publication the counts are exactly the
  // build-phase values, so the scan is race-free.
  std::vector<JobGraph::Node*> roots;
  for (auto& node : graph.nodes_) {
    if (node.pending.load(std::memory_order_relaxed) == 0) {
      roots.push_back(&node);
    }
  }
  for (JobGraph::Node* root : roots) enqueue(root);
}

void Executor::wait(JobGraph& graph) {
  PC_EXPECTS(graph.submitted_);
  for (;;) {
    if (JobGraph::Node* node = try_get(/*self_index=*/workers()) ) {
      execute(node);
      continue;
    }
    std::unique_lock<std::mutex> lock(graph.done_mutex_);
    if (graph.remaining_.load(std::memory_order_acquire) == 0) break;
    if (workers_.empty()) {
      // Nobody else can make progress and we found nothing runnable:
      // the graph has a dependency cycle.
      throw ContractViolation(
          "JobGraph can never finish: no runnable job but nodes remain "
          "(dependency cycle?)");
    }
    // Completion notifies done_cv_; the timeout lets the caller resume
    // helping when workers release new continuations. This is the
    // caller's completion barrier — time spent here is the DAG's tail
    // imbalance, traced as a barrier wait like the shard pools' epoch
    // barrier.
    const bool traced = trace::enabled();
    const std::int64_t wait_t0 = traced ? trace::now_ns() : 0;
    graph.done_cv_.wait_for(lock, std::chrono::milliseconds(10), [&] {
      return graph.remaining_.load(std::memory_order_acquire) == 0;
    });
    if (traced) {
      lock.unlock();
      trace::local_sink().barrier_wait(wait_t0,
                                       trace::now_ns() - wait_t0);
    }
  }
  if (graph.failed()) {
    std::exception_ptr error;
    {
      const std::lock_guard<std::mutex> lock(graph.done_mutex_);
      error = graph.error_;
    }
    if (error) std::rethrow_exception(error);
  }
}

void Executor::enqueue(JobGraph::Node* node) {
  if (tl_worker.executor == this) {
    workers_[tl_worker.index].deque->push(node);
  } else {
    const std::lock_guard<std::mutex> lock(inject_mutex_);
    // Compact the drained prefix before it can grow without bound.
    if (inject_head_ > 64 && inject_head_ * 2 > injected_.size()) {
      injected_.erase(injected_.begin(),
                      injected_.begin() +
                          static_cast<std::ptrdiff_t>(inject_head_));
      inject_head_ = 0;
    }
    injected_.push_back(node);
  }
  {
    const std::lock_guard<std::mutex> lock(park_mutex_);
    ready_.fetch_add(1, std::memory_order_relaxed);
  }
  park_cv_.notify_one();
}

JobGraph::Node* Executor::pop_injected() {
  const std::lock_guard<std::mutex> lock(inject_mutex_);
  if (inject_head_ >= injected_.size()) return nullptr;
  return injected_[inject_head_++];
}

JobGraph::Node* Executor::steal_from_workers(unsigned self_index,
                                             bool migrate) {
  const unsigned count = workers();
  for (unsigned offset = 1; offset <= count; ++offset) {
    const unsigned victim = (self_index + offset) % (count + 1);
    if (victim == self_index || victim >= count) continue;
    detail::WorkDeque& prey = *workers_[victim].deque;
    JobGraph::Node* node = prey.steal();
    if (node == nullptr) continue;
    std::uint64_t migrated = 1;
    if (migrate) {
      // Steal-half: migrate up to half of the victim's remaining queue
      // into our own deque so the next idle pass finds local work.
      std::int64_t extra =
          std::min<std::int64_t>(prey.approx_size() / 2, kMaxMigrate);
      while (extra-- > 0) {
        JobGraph::Node* moved = prey.steal();
        if (moved == nullptr) break;
        workers_[tl_worker.index].deque->push(moved);
        ++migrated;
      }
    }
    if (trace::enabled()) {
      trace::local_sink().steal(trace::now_ns(), migrated);
    }
    return node;
  }
  return nullptr;
}

JobGraph::Node* Executor::try_get(unsigned self_index) {
  const bool is_worker =
      tl_worker.executor == this && self_index < workers();
  if (is_worker) {
    if (JobGraph::Node* node = workers_[self_index].deque->pop()) {
      ready_.fetch_sub(1, std::memory_order_relaxed);
      return node;
    }
  }
  if (JobGraph::Node* node = pop_injected()) {
    ready_.fetch_sub(1, std::memory_order_relaxed);
    return node;
  }
  if (JobGraph::Node* node = steal_from_workers(self_index, is_worker)) {
    ready_.fetch_sub(1, std::memory_order_relaxed);
    return node;
  }
  return nullptr;
}

void Executor::execute(JobGraph::Node* node) {
  JobGraph& graph = *node->graph;
  if (!graph.failed_.load(std::memory_order_acquire)) {
    try {
      node->fn();
    } catch (...) {
      bool expected = false;
      if (graph.failed_.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        const std::lock_guard<std::mutex> lock(graph.done_mutex_);
        graph.error_ = std::current_exception();
      }
    }
  }
  finish(node);
}

void Executor::finish(JobGraph::Node* node) {
  JobGraph& graph = *node->graph;
  for (const JobGraph::JobId child : node->children) {
    JobGraph::Node& dependent = graph.nodes_[child];
    if (dependent.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      enqueue(&dependent);
    }
  }
  if (graph.remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::lock_guard<std::mutex> lock(graph.done_mutex_);
    graph.done_cv_.notify_all();
  }
}

void Executor::worker_loop(unsigned index) {
  tl_worker = WorkerSlot{this, index};
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    JobGraph::Node* node = nullptr;
    for (int round = 0; round < kSpinRounds && node == nullptr; ++round) {
      node = try_get(index);
    }
    if (node != nullptr) {
      execute(node);
      continue;
    }
    // Park-span trace: the stop_ wake is shutdown (and may race static
    // destruction of the trace registry), so only wakes that lead back
    // into work are recorded.
    const bool traced = trace::enabled();
    const std::int64_t park_t0 = traced ? trace::now_ns() : 0;
    {
      std::unique_lock<std::mutex> lock(park_mutex_);
      park_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               ready_.load(std::memory_order_relaxed) > 0;
      });
    }
    if (traced && !stop_.load(std::memory_order_acquire)) {
      trace::local_sink().park(park_t0, trace::now_ns() - park_t0);
    }
  }
}

namespace {

std::mutex g_process_mutex;
std::unique_ptr<Executor> g_process_executor;

unsigned default_process_workers() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return hw - 1;
}

}  // namespace

Executor& Executor::process() {
  const std::lock_guard<std::mutex> lock(g_process_mutex);
  if (!g_process_executor) {
    g_process_executor = std::make_unique<Executor>(
        default_process_workers(), &ThreadBudget::global());
  }
  return *g_process_executor;
}

void Executor::set_process_workers(unsigned workers) {
  const std::lock_guard<std::mutex> lock(g_process_mutex);
  if (g_process_executor && g_process_executor->workers() == workers) {
    return;
  }
  g_process_executor.reset();  // release budget tokens before reacquiring
  g_process_executor =
      std::make_unique<Executor>(workers, &ThreadBudget::global());
}

void set_process_concurrency(unsigned total) {
  PC_EXPECTS(total >= 1);
  ThreadBudget::global().configure(total);
  Executor::set_process_workers(total - 1);
}

}  // namespace plurality::jobs
