#pragma once

/// \file executor.hpp
/// A process-wide work-stealing job executor, the scheduling substrate
/// behind whole-sweep parallelism in the experiment layer (see
/// experiment/runner.hpp): sweeps become DAGs of (sweep-point, rep)
/// jobs on ONE pool of workers, so small jobs pack many runs per core
/// while the per-run shard pools fan out under the same --jobs= budget
/// (src/jobs/budget.hpp).
///
/// Scheduling design:
///   - one Chase–Lev deque per worker (lock-free owner push/pop at the
///     bottom, CAS steal at the top, with the memory orderings of
///     Lê/Pop/Cohen/Nardelli "Correct and Efficient Work-Stealing for
///     Weak Memory Models"; payload cells are release/acquire so a
///     thief's read of the job body is properly ordered even under
///     ThreadSanitizer, which does not model standalone fences);
///   - steal-half scavenging: a thief that hits a victim takes one job
///     to run and migrates up to half of the victim's remaining queue
///     into its own deque, amortizing the steal path when one worker
///     holds a long run of jobs;
///   - an injection queue (mutex-guarded) for submissions from threads
///     that are not workers — the experiment main thread, and the
///     continuations it releases while helping;
///   - park/unpark: idle workers spin over {own deque, injection
///     queue, every victim} a few rounds and then park on a condition
///     variable. Every enqueue bumps a ready counter UNDER the park
///     mutex and notifies, and parked workers re-check that counter
///     under the same mutex — the classic eventcount pairing that
///     cannot lose a wakeup.
///
/// Waiting: Executor::wait(graph) lets the calling thread help — it
/// drains the injection queue and steals from workers until the graph
/// completes. With zero workers (--jobs=1) this degrades to running
/// every job inline on the caller in release order: the serial path,
/// which is what the scheduling-determinism tests compare against.
///
/// Shutdown is RAII: the destructor stops the workers after their
/// in-flight job, joins them, and DROPS any still-queued work — a
/// graph abandoned this way never reports done, so destroy the
/// executor only when no thread is left inside wait().
///
/// Determinism contract (what the experiment layer builds on): the
/// executor schedules; it never touches job payloads. Any computation
/// whose jobs write disjoint, pre-sized slots and derive their RNG
/// streams from (seed, job-key) — never from thread identity or
/// completion order — produces bit-identical results for every worker
/// count, including zero.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "jobs/budget.hpp"
#include "jobs/graph.hpp"

namespace plurality::jobs {

namespace detail {

/// Chase–Lev work-stealing deque of JobGraph::Node*. The owner pushes
/// and pops at the bottom; any number of thieves steal from the top.
/// Grows by doubling; retired arrays are kept until destruction, since
/// a thief may still be reading a stale array pointer within one
/// steal() call.
class WorkDeque {
 public:
  WorkDeque();
  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;
  ~WorkDeque();

  /// Owner only.
  void push(JobGraph::Node* node);

  /// Owner only; nullptr when empty (or lost the last-item race).
  JobGraph::Node* pop();

  /// Any thread; nullptr when empty or when the steal raced.
  JobGraph::Node* steal();

  /// Approximate size as seen by a thief.
  std::int64_t approx_size() const noexcept;

 private:
  struct Array {
    explicit Array(std::int64_t cap);
    std::int64_t capacity;
    std::unique_ptr<std::atomic<JobGraph::Node*>[]> cells;

    JobGraph::Node* get(std::int64_t i) const noexcept {
      return cells[static_cast<std::size_t>(i & (capacity - 1))].load(
          std::memory_order_acquire);
    }
    void put(std::int64_t i, JobGraph::Node* node) noexcept {
      cells[static_cast<std::size_t>(i & (capacity - 1))].store(
          node, std::memory_order_release);
    }
  };

  void grow(std::int64_t bottom, std::int64_t top);

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_;
  std::vector<std::unique_ptr<Array>> retired_;  // owner-side
};

}  // namespace detail

class Executor {
 public:
  /// Spawns `workers` worker threads. With a non-null `budget` the
  /// worker count is first clamped to what the budget grants (the
  /// process executor passes ThreadBudget::global(); tests pass
  /// nothing and get exactly what they ask for).
  explicit Executor(unsigned workers, ThreadBudget* budget = nullptr);
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;
  ~Executor();

  unsigned workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues every zero-dependency node of `graph`. Non-blocking; the
  /// graph must outlive its run and can be submitted once.
  void submit(JobGraph& graph);

  /// Helps execute work until `graph` is done, then rethrows the first
  /// captured job exception, if any. Throws ContractViolation when the
  /// graph can provably never finish (zero workers, no runnable job,
  /// nodes remaining — i.e. a dependency cycle).
  void wait(JobGraph& graph);

  /// submit + wait.
  void run(JobGraph& graph) {
    submit(graph);
    wait(graph);
  }

  /// The process-wide executor (created on first use with
  /// hardware_concurrency - 1 workers, clamped by the global budget).
  static Executor& process();

  /// Rebuilds the process executor with `workers` threads if it differs
  /// from the current count. Call only between runs, from one thread,
  /// with no other thread inside submit()/wait().
  static void set_process_workers(unsigned workers);

 private:
  struct Worker {
    std::unique_ptr<detail::WorkDeque> deque;
    std::thread thread;
  };

  void worker_loop(unsigned index);
  void execute(JobGraph::Node* node);
  void enqueue(JobGraph::Node* node);
  void finish(JobGraph::Node* node);
  JobGraph::Node* try_get(unsigned self_index);
  JobGraph::Node* pop_injected();
  JobGraph::Node* steal_from_workers(unsigned self_index, bool migrate);

  std::vector<Worker> workers_;
  ThreadBudget* budget_ = nullptr;
  unsigned budget_granted_ = 0;

  // Injection queue: submissions from non-worker threads.
  std::mutex inject_mutex_;
  std::vector<JobGraph::Node*> injected_;  // FIFO via head index
  std::size_t inject_head_ = 0;

  // Park/unpark eventcount: ready_ is incremented under park_mutex_ on
  // every enqueue (so a worker that checked it under the mutex and
  // found nothing is guaranteed a notify), decremented relaxed on
  // every successful take.
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<std::int64_t> ready_{0};
  std::atomic<bool> stop_{false};
};

/// Configures the process-wide concurrency from a resolved --jobs=
/// value: the global ThreadBudget cap becomes `total` and the process
/// executor is rebuilt with `total - 1` workers (the main thread is
/// the first thread). Idempotent for an unchanged value; call only
/// between runs.
void set_process_concurrency(unsigned total);

}  // namespace plurality::jobs
