#pragma once

/// \file graph.hpp
/// The job-graph half of the work-stealing executor (see executor.hpp):
/// a JobGraph is a one-shot DAG of jobs — each node a callable plus a
/// dependency count — built single-threaded, then handed to an
/// Executor, which releases a node the moment its last prerequisite
/// completes (continuation release, no global barrier between "levels").
///
/// Lifecycle contract:
///   - build:  add() / depend() from ONE thread, before submission;
///   - run:    Executor::submit() hands every zero-dependency node to
///             the scheduler; completion of a node decrements its
///             children's pending counts and enqueues the ones that
///             reach zero;
///   - done:   when every node has completed (or been skipped after a
///             failure), Executor::wait() returns and rethrows the
///             first captured exception, if any.
/// A graph can be submitted once; it must outlive its run. Results are
/// communicated through the job callables' captures — the graph itself
/// carries no payload, which is what keeps the experiment layer's
/// pre-sized per-rep slots lock-free (each leaf writes its own slot).
///
/// Failure semantics: the first job to throw wins — its exception is
/// captured, the graph is marked failed, and every job that has not
/// yet *started* runs as a no-op (its completion still releases
/// children, so the graph drains promptly and wait() can rethrow).
/// Jobs already running on other workers finish normally.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "support/assert.hpp"

namespace plurality::jobs {

class Executor;

class JobGraph {
 public:
  using JobId = std::size_t;

  JobGraph() = default;
  JobGraph(const JobGraph&) = delete;
  JobGraph& operator=(const JobGraph&) = delete;

  /// Adds a job; returns its id. Build-phase only (single thread, before
  /// submission).
  JobId add(std::function<void()> fn);

  /// Declares that `job` cannot start before `prerequisite` completes.
  /// Build-phase only. Cycles are not detected here — a cyclic graph is
  /// reported by Executor::wait() when it finds live nodes but no
  /// runnable work (see executor.hpp).
  void depend(JobId job, JobId prerequisite);

  std::size_t size() const noexcept { return nodes_.size(); }

  /// True once every node has completed (or been skipped). Meaningful
  /// only after submission.
  bool done() const noexcept {
    return submitted_ && remaining_.load(std::memory_order_acquire) == 0;
  }

  /// True when a job threw; wait() rethrows the captured exception.
  bool failed() const noexcept {
    return failed_.load(std::memory_order_acquire);
  }

  /// One node: the callable, the not-yet-completed prerequisite count,
  /// and the dependents to release on completion. Nodes live in a
  /// std::deque so their addresses are stable — the executor's deques
  /// hold raw Node pointers. Scheduler-facing; user code never touches
  /// Nodes directly.
  struct Node {
    std::function<void()> fn;
    std::atomic<std::uint32_t> pending{0};
    std::vector<JobId> children;
    JobGraph* graph = nullptr;
  };

 private:
  friend class Executor;

  std::deque<Node> nodes_;
  std::atomic<std::size_t> remaining_{0};
  std::atomic<bool> failed_{false};
  bool submitted_ = false;

  // Completion signalling: the finisher of the last node notifies under
  // done_mutex_; error_ is written once, by the first failing job.
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::exception_ptr error_;
};

inline JobGraph::JobId JobGraph::add(std::function<void()> fn) {
  PC_EXPECTS(!submitted_);
  PC_EXPECTS(static_cast<bool>(fn));
  Node& node = nodes_.emplace_back();
  node.fn = std::move(fn);
  node.graph = this;
  return nodes_.size() - 1;
}

inline void JobGraph::depend(JobId job, JobId prerequisite) {
  PC_EXPECTS(!submitted_);
  PC_EXPECTS(job < nodes_.size());
  PC_EXPECTS(prerequisite < nodes_.size());
  PC_EXPECTS(job != prerequisite);
  nodes_[prerequisite].children.push_back(job);
  nodes_[job].pending.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace plurality::jobs
