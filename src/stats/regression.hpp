#pragma once

/// \file regression.hpp
/// Ordinary least squares on (x, y) pairs, plus the two transformed fits
/// the experiments use to check growth laws: y = a + b*ln(x)
/// (logarithmic growth, Theorems 1.2/1.3) and ln(y) = a + b*ln(x)
/// (power laws, e.g. the Omega(k) lower bound has exponent ~1).

#include <span>

namespace plurality {

struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;  ///< 1 when the data is constant (perfect fit)
};

/// OLS fit of y = intercept + slope * x. Requires >= 2 points and
/// non-constant x.
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Fit y = a + b * ln(x). Requires all x > 0.
LinearFit fit_log_x(std::span<const double> x, std::span<const double> y);

/// Fit ln(y) = a + b * ln(x); slope is the empirical power-law exponent.
/// Requires all x > 0 and y > 0.
LinearFit fit_power_law(std::span<const double> x, std::span<const double> y);

}  // namespace plurality
