#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace plurality {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  PC_EXPECTS(lo < hi);
  PC_EXPECTS(bins >= 1);
  bin_width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  bin = std::min(bin, counts_.size() - 1);  // guard fp edge at hi_
  ++counts_[bin];
}

std::uint64_t Histogram::count(std::size_t bin) const {
  PC_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

std::pair<double, double> Histogram::bin_range(std::size_t bin) const {
  PC_EXPECTS(bin < counts_.size());
  const double lo = lo_ + bin_width_ * static_cast<double>(bin);
  return {lo, lo + bin_width_};
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto [lo, hi] = bin_range(i);
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof line, "[%10.2f, %10.2f) %10llu ", lo, hi,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ > 0 || overflow_ > 0) {
    std::snprintf(line, sizeof line, "underflow=%llu overflow=%llu\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace plurality
