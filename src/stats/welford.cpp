#include "stats/welford.hpp"

namespace plurality {

void Welford::merge(const Welford& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

}  // namespace plurality
