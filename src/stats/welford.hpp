#pragma once

/// \file welford.hpp
/// Numerically stable streaming moments (Welford 1962). Every experiment
/// aggregates repetition outcomes through this accumulator.

#include <cmath>
#include <cstdint>
#include <limits>

#include "support/assert.hpp"

namespace plurality {

class Welford {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const noexcept { return count_; }

  /// Requires at least one observation.
  double mean() const {
    PC_EXPECTS(count_ >= 1);
    return mean_;
  }

  /// Unbiased sample variance. Requires at least two observations.
  double variance() const {
    PC_EXPECTS(count_ >= 2);
    return m2_ / static_cast<double>(count_ - 1);
  }

  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean. Requires at least two observations.
  double std_error() const {
    return stddev() / std::sqrt(static_cast<double>(count_));
  }

  double min() const {
    PC_EXPECTS(count_ >= 1);
    return min_;
  }

  double max() const {
    PC_EXPECTS(count_ >= 1);
    return max_;
  }

  /// Merges another accumulator (Chan's parallel update); enables
  /// thread-local accumulation in the experiment runner.
  void merge(const Welford& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace plurality
