#pragma once

/// \file histogram.hpp
/// Fixed-width binning over a closed range with underflow/overflow
/// buckets. Used to report working-time dispersion (experiment E7/E11)
/// and tick-count spreads.

#include <cstdint>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace plurality {

class Histogram {
 public:
  /// Bins [lo, hi) into `bins` equal cells. Requires lo < hi, bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t num_bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  /// Inclusive-exclusive bounds of a bin.
  std::pair<double, double> bin_range(std::size_t bin) const;

  /// Multi-line ASCII rendering (for example programs).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace plurality
