#include "stats/regression.hpp"

#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace plurality {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  PC_EXPECTS(x.size() == y.size());
  PC_EXPECTS(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  PC_EXPECTS(sxx > 0.0);
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit fit_log_x(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    PC_EXPECTS(x[i] > 0.0);
    lx[i] = std::log(x[i]);
  }
  return fit_linear(lx, y);
}

LinearFit fit_power_law(std::span<const double> x,
                        std::span<const double> y) {
  PC_EXPECTS(x.size() == y.size());
  std::vector<double> lx(x.size());
  std::vector<double> ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    PC_EXPECTS(x[i] > 0.0);
    PC_EXPECTS(y[i] > 0.0);
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return fit_linear(lx, ly);
}

}  // namespace plurality
