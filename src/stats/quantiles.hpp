#pragma once

/// \file quantiles.hpp
/// Exact small-sample quantiles (linear interpolation, type-7 / the
/// numpy default) plus a Summary convenience bundle for experiment rows.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace plurality {

/// q-quantile of the data (q in [0,1]) with linear interpolation between
/// order statistics. Copies and sorts; intended for per-row sample sizes
/// (tens to thousands). Requires non-empty data.
double quantile(std::span<const double> data, double q);

/// Convenience bundle of the distribution of one measured quantity.
struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< 0 when count < 2
  double min = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double max = 0.0;

  /// Half-width of the normal-approximation 95% confidence interval of
  /// the mean (0 when count < 2).
  double ci95_halfwidth = 0.0;
};

/// Summarizes a sample. Requires non-empty data.
Summary summarize(std::span<const double> data);

}  // namespace plurality
