#include "stats/quantiles.hpp"

#include <algorithm>
#include <cmath>

#include "stats/welford.hpp"
#include "support/assert.hpp"

namespace plurality {

double quantile(std::span<const double> data, double q) {
  PC_EXPECTS(!data.empty());
  PC_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> data) {
  PC_EXPECTS(!data.empty());
  Welford w;
  for (const double x : data) w.add(x);
  Summary s;
  s.count = w.count();
  s.mean = w.mean();
  s.min = w.min();
  s.max = w.max();
  s.median = quantile(data, 0.5);
  s.p90 = quantile(data, 0.9);
  if (w.count() >= 2) {
    s.stddev = w.stddev();
    s.ci95_halfwidth = 1.959963984540054 * w.std_error();
  }
  return s;
}

}  // namespace plurality
