#pragma once

/// \file trace.hpp
/// Always-compiled, low-overhead tracing for the parallel runtime. Two
/// tiers, selected by --trace=:
///
///   - Aggregates (kSummary, the default): every instrumented thread
///     owns a Sink whose counters are relaxed std::atomic fields —
///     barrier waits, tick-loop work, delivery-queue drains, a bounded
///     exact histogram of queue depths, executor steals and parks.
///     Aggregates never drop and merge order-independently, so the
///     summary folded into every BENCH record is deterministic wherever
///     the underlying quantity is (queue depths are trajectory
///     properties; wait times are schedule properties).
///   - Timeline (kTimeline, --trace=FILE): each Sink additionally owns
///     a fixed-capacity event buffer appended lock-free by its one
///     writer thread; overflow increments a truthful drop counter
///     instead of blocking or reallocating. After the run the main
///     thread drains every sink into a chrome://tracing JSON document
///     loadable in Perfetto.
///
/// Concurrency contract: each Sink has exactly one writer (the thread
/// that registered it). The Registry may be drained or reset only while
/// instrumented threads are quiescent (shard pools are destroyed per
/// run; executor workers are parked between runs). Aggregate fields are
/// relaxed atomics and timeline appends publish with a release store on
/// the count, so a drain that races with a straggling writer is still
/// free of data races — it merely misses the straggler's last events.
///
/// Hot paths gate on trace::enabled() (one relaxed atomic load) and
/// record per *epoch*, never per tick, keeping the disabled and
/// summary-mode overhead within the ROADMAP's 2% budget.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace plurality {
class JsonValue;
}

namespace plurality::trace {

enum class Mode : std::uint8_t {
  kOff,      ///< no clock reads, no recording
  kSummary,  ///< aggregates only (the default)
  kTimeline  ///< aggregates + bounded per-thread event buffers
};

/// Resolved --trace= value: "off"/"none" disable, "summary"/"on" select
/// aggregates only, any other non-empty value is a timeline output path.
struct TraceSpec {
  Mode mode = Mode::kSummary;
  std::string path;  ///< timeline JSON path; empty unless kTimeline
};

/// Parses a --trace= value. Throws ContractViolation naming the flag on
/// an empty value (a bare `--trace` is ambiguous between off and on).
TraceSpec parse_trace_spec(const std::string& value);

/// Human-readable mode name ("off" / "summary" / "timeline").
const char* mode_name(Mode mode);

enum class EventKind : std::uint8_t {
  kShardTicks,   ///< span: one shard's tick loop for one epoch
  kBarrierWait,  ///< span: a thread blocked on the epoch barrier
  kQueueDrain,   ///< span: delivery-queue processing within an epoch
  kQueueDepth,   ///< counter: delivery-queue depth at an epoch boundary
  kSteal,        ///< instant: the executor stole a batch of jobs
  kPark          ///< span: an executor worker slept between jobs
};

struct Event {
  std::int64_t ts_ns;   ///< start, steady-clock nanoseconds
  std::int64_t dur_ns;  ///< span duration; 0 for instants/counters
  std::uint64_t value;  ///< kind-specific payload (ticks, depth, ...)
  EventKind kind;
};

namespace detail {
extern std::atomic<Mode> g_mode;
}

/// The active mode; one relaxed load, safe from any thread.
inline Mode mode() noexcept {
  return detail::g_mode.load(std::memory_order_relaxed);
}

/// The hot-path gate: false means "take no clock readings at all".
inline bool enabled() noexcept { return mode() != Mode::kOff; }

/// Steady-clock nanoseconds. Only meaningful relative to other values
/// from the same process; the timeline export re-bases to the first
/// event.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Queue depths at or above this are clamped into the last histogram
/// bucket; depth quantiles saturate there.
inline constexpr std::size_t kDepthBuckets = 1024;

/// Per-thread event sink. One writer (the owning thread); aggregate
/// reads and timeline drains may happen concurrently from the main
/// thread without data races (see the file comment).
class Sink {
 public:
  /// `timeline_capacity` = 0 records aggregates only.
  Sink(std::uint32_t tid, std::size_t timeline_capacity)
      : tid_(tid), events_(timeline_capacity) {}

  std::uint32_t tid() const noexcept { return tid_; }

  /// One shard's tick loop for one epoch: `ticks` Poisson-drawn node
  /// activations executed in `dur_ns` wall nanoseconds.
  void shard_span(std::int64_t ts, std::int64_t dur, std::uint64_t ticks) {
    work_ns_.fetch_add(as_u64(dur), std::memory_order_relaxed);
    ticks_.fetch_add(ticks, std::memory_order_relaxed);
    append(EventKind::kShardTicks, ts, dur, ticks);
  }

  /// A thread blocked on the epoch barrier for `dur_ns`.
  void barrier_wait(std::int64_t ts, std::int64_t dur) {
    barrier_wait_ns_.fetch_add(as_u64(dur), std::memory_order_relaxed);
    barrier_wait_count_.fetch_add(1, std::memory_order_relaxed);
    append(EventKind::kBarrierWait, ts, dur, 0);
  }

  /// `drained` deliveries applied from a shard's queue within one epoch.
  void queue_drain(std::int64_t ts, std::int64_t dur, std::uint64_t drained) {
    queue_drained_.fetch_add(drained, std::memory_order_relaxed);
    append(EventKind::kQueueDrain, ts, dur, drained);
  }

  /// Delivery-queue depth observed at an epoch boundary. Feeds the
  /// exact bounded histogram the depth quantiles are computed from.
  void queue_depth(std::int64_t ts, std::uint64_t depth) {
    const std::size_t bucket =
        depth < kDepthBuckets ? static_cast<std::size_t>(depth)
                              : kDepthBuckets - 1;
    depth_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
    depth_samples_.fetch_add(1, std::memory_order_relaxed);
    append(EventKind::kQueueDepth, ts, 0, depth);
  }

  /// The executor migrated a batch of jobs from another worker's deque.
  void steal(std::int64_t ts, std::uint64_t migrated) {
    steal_count_.fetch_add(1, std::memory_order_relaxed);
    append(EventKind::kSteal, ts, 0, migrated);
  }

  /// An executor worker slept on the park condition for `dur_ns`.
  void park(std::int64_t ts, std::int64_t dur) {
    park_ns_.fetch_add(as_u64(dur), std::memory_order_relaxed);
    park_count_.fetch_add(1, std::memory_order_relaxed);
    append(EventKind::kPark, ts, dur, 0);
  }

  // --- drain-side accessors (main thread; relaxed reads) ---

  std::uint64_t barrier_wait_ns() const {
    return barrier_wait_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t barrier_wait_count() const {
    return barrier_wait_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t work_ns() const {
    return work_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }
  std::uint64_t queue_drained() const {
    return queue_drained_.load(std::memory_order_relaxed);
  }
  std::uint64_t depth_samples() const {
    return depth_samples_.load(std::memory_order_relaxed);
  }
  std::uint64_t depth_bucket(std::size_t i) const {
    return depth_hist_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t steal_count() const {
    return steal_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t park_count() const {
    return park_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t park_ns() const {
    return park_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  std::size_t timeline_capacity() const noexcept { return events_.size(); }

  /// Published timeline events, in append order. Acquire-loads the
  /// count so every returned slot is fully written.
  std::size_t timeline_size() const {
    return count_.load(std::memory_order_acquire);
  }
  const Event& timeline_at(std::size_t i) const { return events_[i]; }

 private:
  static std::uint64_t as_u64(std::int64_t ns) noexcept {
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  }

  void append(EventKind kind, std::int64_t ts, std::int64_t dur,
              std::uint64_t value) {
    if (events_.empty()) return;  // aggregates-only sink
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n >= events_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[n] = Event{ts, dur, value, kind};
    count_.store(n + 1, std::memory_order_release);
  }

  const std::uint32_t tid_;

  std::atomic<std::uint64_t> barrier_wait_ns_{0};
  std::atomic<std::uint64_t> barrier_wait_count_{0};
  std::atomic<std::uint64_t> work_ns_{0};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> queue_drained_{0};
  std::atomic<std::uint64_t> depth_samples_{0};
  std::array<std::atomic<std::uint64_t>, kDepthBuckets> depth_hist_{};
  std::atomic<std::uint64_t> steal_count_{0};
  std::atomic<std::uint64_t> park_count_{0};
  std::atomic<std::uint64_t> park_ns_{0};

  std::vector<Event> events_;  ///< fixed at construction; never grows
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Merged aggregates across every sink of one run.
struct TraceSummary {
  std::uint64_t barrier_wait_ns = 0;
  std::uint64_t barrier_wait_count = 0;
  std::uint64_t work_ns = 0;
  std::uint64_t ticks = 0;
  std::uint64_t queue_drained = 0;
  std::uint64_t depth_samples = 0;
  std::uint64_t depth_p50 = 0;
  std::uint64_t depth_p99 = 0;
  std::uint64_t steal_count = 0;
  std::uint64_t park_count = 0;
  std::uint64_t park_ns = 0;
  std::uint64_t events_recorded = 0;
  std::uint64_t dropped = 0;

  /// Fraction of instrumented runtime spent blocked on epoch barriers;
  /// 0 when nothing was instrumented (inline/serial paths record no
  /// waits).
  double barrier_wait_frac() const {
    const double total =
        static_cast<double>(barrier_wait_ns) + static_cast<double>(work_ns);
    return total > 0.0 ? static_cast<double>(barrier_wait_ns) / total : 0.0;
  }
};

/// Default per-sink timeline capacity (events). ~2 MiB per sink; tests
/// override it via Registry::configure.
inline constexpr std::size_t kDefaultTimelineCapacity = 1u << 16;

/// Owns every Sink (sinks live until the next reset, so threads never
/// merge on exit) and hands each thread its own via a generation-tagged
/// thread_local cache.
class Registry {
 public:
  static Registry& instance();

  /// Applies a spec for the next run: sets the mode gate, remembers the
  /// timeline path/capacity, and resets all sinks. Call only while
  /// instrumented threads are quiescent.
  void configure(const TraceSpec& spec,
                 std::size_t timeline_capacity = kDefaultTimelineCapacity);

  /// Discards all sinks and invalidates every thread's cached pointer.
  /// Call only while instrumented threads are quiescent.
  void reset();

  /// The calling thread's sink, registering one on first use (or after
  /// a reset). Cheap after the first call: one relaxed load + compare.
  Sink& local_sink();

  /// Merges every sink's aggregates; depth quantiles come from the
  /// summed exact histogram, so they are independent of thread count
  /// and merge order.
  TraceSummary summarize() const;

  /// All sinks' published timeline events as one chrome://tracing
  /// document ({"traceEvents": [...]}), timestamps re-based to the
  /// earliest event.
  JsonValue timeline_json() const;

  /// Writes timeline_json() to `path` (pretty JSON, trailing newline).
  void write_timeline(const std::string& path) const;

  /// Visits every sink under the registry lock, in registration order.
  /// Drain-side: call while writer threads are quiescent (the invariant
  /// tests recount raw events through this).
  void for_each_sink(const std::function<void(const Sink&)>& fn) const;

  const TraceSpec& spec() const noexcept { return spec_; }

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::atomic<std::uint64_t> generation_{1};
  TraceSpec spec_;
  std::size_t timeline_capacity_ = 0;
};

/// Shorthand for Registry::instance().local_sink().
inline Sink& local_sink() { return Registry::instance().local_sink(); }

}  // namespace plurality::trace
