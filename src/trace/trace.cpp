#include "trace/trace.hpp"

#include <algorithm>
#include <limits>

#include "experiment/json_writer.hpp"
#include "support/assert.hpp"

namespace plurality::trace {

namespace detail {
std::atomic<Mode> g_mode{Mode::kSummary};
}  // namespace detail

TraceSpec parse_trace_spec(const std::string& value) {
  if (value.empty()) {
    throw ContractViolation(
        "--trace= expects off|summary|FILE, got an empty value");
  }
  TraceSpec spec;
  if (value == "off" || value == "none") {
    spec.mode = Mode::kOff;
  } else if (value == "summary" || value == "on") {
    spec.mode = Mode::kSummary;
  } else {
    spec.mode = Mode::kTimeline;
    spec.path = value;
  }
  return spec;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kSummary:
      return "summary";
    case Mode::kTimeline:
      return "timeline";
  }
  return "unknown";
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::configure(const TraceSpec& spec,
                         std::size_t timeline_capacity) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    spec_ = spec;
    timeline_capacity_ =
        spec.mode == Mode::kTimeline ? timeline_capacity : 0;
    detail::g_mode.store(spec.mode, std::memory_order_relaxed);
  }
  reset();
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  sinks_.clear();
  // Bump *after* clearing: a thread that sees the new generation is
  // guaranteed to re-register rather than write into a freed sink.
  generation_.fetch_add(1, std::memory_order_release);
}

Sink& Registry::local_sink() {
  struct Cache {
    const Registry* registry = nullptr;
    std::uint64_t generation = 0;
    Sink* sink = nullptr;
  };
  thread_local Cache cache;
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  if (cache.sink == nullptr || cache.registry != this ||
      cache.generation != generation) {
    const std::lock_guard<std::mutex> lock(mutex_);
    sinks_.push_back(std::make_unique<Sink>(
        static_cast<std::uint32_t>(sinks_.size()), timeline_capacity_));
    cache.registry = this;
    // Re-read under the lock so a reset that raced the unlocked load
    // costs at most one extra (harmless) re-registration.
    cache.generation = generation_.load(std::memory_order_relaxed);
    cache.sink = sinks_.back().get();
  }
  return *cache.sink;
}

TraceSummary Registry::summarize() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceSummary s;
  std::array<std::uint64_t, kDepthBuckets> hist{};
  for (const auto& sink : sinks_) {
    s.barrier_wait_ns += sink->barrier_wait_ns();
    s.barrier_wait_count += sink->barrier_wait_count();
    s.work_ns += sink->work_ns();
    s.ticks += sink->ticks();
    s.queue_drained += sink->queue_drained();
    s.depth_samples += sink->depth_samples();
    s.steal_count += sink->steal_count();
    s.park_count += sink->park_count();
    s.park_ns += sink->park_ns();
    s.events_recorded += sink->timeline_size();
    s.dropped += sink->dropped();
    for (std::size_t b = 0; b < kDepthBuckets; ++b) {
      hist[b] += sink->depth_bucket(b);
    }
  }
  // Exact quantiles from the merged histogram: the k-th order statistic
  // with k = ceil(q * samples), clamped into the last bucket for depths
  // beyond the histogram range.
  const auto order_stat = [&](double q) -> std::uint64_t {
    if (s.depth_samples == 0) return 0;
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               q * static_cast<double>(s.depth_samples) + 0.5));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kDepthBuckets; ++b) {
      seen += hist[b];
      if (seen >= rank) return b;
    }
    return kDepthBuckets - 1;
  };
  s.depth_p50 = order_stat(0.50);
  s.depth_p99 = order_stat(0.99);
  return s;
}

JsonValue Registry::timeline_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Re-base timestamps to the earliest published event so the document
  // starts near t = 0 regardless of process uptime.
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (const auto& sink : sinks_) {
    const std::size_t n = sink->timeline_size();
    for (std::size_t i = 0; i < n; ++i) {
      base = std::min(base, sink->timeline_at(i).ts_ns);
    }
  }
  if (base == std::numeric_limits<std::int64_t>::max()) base = 0;

  JsonValue events = JsonValue::array();
  std::uint64_t dropped = 0;
  for (const auto& sink : sinks_) {
    const std::size_t n = sink->timeline_size();
    dropped += sink->dropped();
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = sink->timeline_at(i);
      JsonValue entry = JsonValue::object();
      JsonValue args = JsonValue::object();
      const double ts_us =
          static_cast<double>(e.ts_ns - base) / 1000.0;
      const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
      switch (e.kind) {
        case EventKind::kShardTicks:
          entry["name"] = "shard_ticks";
          entry["ph"] = "X";
          args["ticks"] = e.value;
          break;
        case EventKind::kBarrierWait:
          entry["name"] = "barrier_wait";
          entry["ph"] = "X";
          break;
        case EventKind::kQueueDrain:
          entry["name"] = "queue_drain";
          entry["ph"] = "X";
          args["drained"] = e.value;
          break;
        case EventKind::kQueueDepth:
          entry["name"] = "queue_depth";
          entry["ph"] = "C";
          args["depth"] = e.value;
          break;
        case EventKind::kSteal:
          entry["name"] = "steal";
          entry["ph"] = "i";
          entry["s"] = "t";
          args["migrated"] = e.value;
          break;
        case EventKind::kPark:
          entry["name"] = "park";
          entry["ph"] = "X";
          break;
      }
      entry["cat"] = "plurality";
      entry["pid"] = 1;
      entry["tid"] = sink->tid();
      entry["ts"] = ts_us;
      if (entry.find("ph") != nullptr &&
          entry.find("ph")->as_string() == "X") {
        entry["dur"] = dur_us;
      }
      if (args.size() > 0) entry["args"] = std::move(args);
      events.push_back(std::move(entry));
    }
  }

  JsonValue doc = JsonValue::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  JsonValue other = JsonValue::object();
  other["trace_dropped"] = dropped;
  doc["otherData"] = std::move(other);
  return doc;
}

void Registry::write_timeline(const std::string& path) const {
  write_json_file(path, timeline_json());
}

void Registry::for_each_sink(
    const std::function<void(const Sink&)>& fn) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& sink : sinks_) fn(*sink);
}

}  // namespace plurality::trace
