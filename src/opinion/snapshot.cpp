#include "opinion/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace plurality {

std::int64_t OpinionSnapshot::bias() const {
  if (sorted_supports.size() < 2) {
    return sorted_supports.empty()
               ? 0
               : static_cast<std::int64_t>(sorted_supports[0]);
  }
  return static_cast<std::int64_t>(sorted_supports[0]) -
         static_cast<std::int64_t>(sorted_supports[1]);
}

double OpinionSnapshot::plurality_fraction() const {
  if (n == 0 || sorted_supports.empty()) return 0.0;
  return static_cast<double>(sorted_supports[0]) / static_cast<double>(n);
}

double OpinionSnapshot::top_ratio() const {
  if (sorted_supports.size() < 2 || sorted_supports[1] == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(sorted_supports[0]) /
         static_cast<double>(sorted_supports[1]);
}

double OpinionSnapshot::normalized_entropy() const {
  if (surviving <= 1 || n == 0) return 0.0;
  double h = 0.0;
  for (const std::uint64_t s : sorted_supports) {
    if (s == 0) continue;
    const double p = static_cast<double>(s) / static_cast<double>(n);
    h -= p * std::log(p);
  }
  return h / std::log(static_cast<double>(surviving));
}

OpinionSnapshot snapshot_of(const OpinionTable& table) {
  OpinionSnapshot snap;
  snap.n = table.num_nodes();
  snap.surviving = table.surviving_colors();
  const auto supports = table.supports();
  snap.sorted_supports.assign(supports.begin(), supports.end());
  std::sort(snap.sorted_supports.begin(), snap.sorted_supports.end(),
            std::greater<>());
  return snap;
}

}  // namespace plurality
