#pragma once

/// \file placement.hpp
/// Placement generators: *where* an initial configuration sits on the
/// topology, as an axis independent of *how many* nodes hold each
/// color. The count-profile generators in assignment.hpp fix the
/// support vector (c1, ..., ck); a placement maps that exact vector
/// onto nodes. The paper's worst-case guarantees are stated over all
/// initial configurations, yet a uniformly shuffled start is the
/// *easiest* placement — community-correlated and cut-seeded starts
/// shrink the effective bias a protocol sees (Becchetti et al.'s
/// monochromatic distance, arXiv:1407.2565) and are the configurations
/// an adversary would pick (Robinson–Scheideler–Setzer,
/// arXiv:1805.00774).
///
/// Invariants shared by every placement:
///   - counts are preserved *exactly*: the returned Assignment realizes
///     the requested support vector, only positions differ;
///   - randomness comes from the caller's stream only (fixed seed =>
///     fixed placement), placements own no RNG;
///   - color 0 keeps its meaning as the plurality color C1.
///
/// Topology access goes through NeighborView, a deliberately boring
/// enumeration interface: placements run once per repetition, off the
/// hot path, so virtual dispatch is free compared to graph building.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "opinion/assignment.hpp"
#include "rng/xoshiro256.hpp"
#include "support/assert.hpp"

namespace plurality {

/// Read-only neighbor enumeration over a topology, for the placement
/// heuristics (BFS balls, boundary scores). Not a protocol-facing
/// interface: protocols keep sampling through GraphTopology.
class NeighborView {
 public:
  virtual ~NeighborView() = default;
  virtual std::uint64_t num_nodes() const = 0;
  virtual std::uint64_t degree(NodeId u) const = 0;
  /// Appends u's neighbors to `out` (does not clear it).
  virtual void append_neighbors(NodeId u, std::vector<NodeId>& out) const = 0;
};

/// Topologies exposing a CSR row per node (adjacency-backed graphs).
template <typename G>
concept NeighborSpan = requires(const G g, NodeId u) {
  { g.neighbors(u) };
};

/// Topologies enumerating neighbors in closed form (complete, ring,
/// torus).
template <typename G>
concept NeighborAppend = requires(const G g, NodeId u,
                                  std::vector<NodeId>& out) {
  g.append_neighbors(u, out);
};

/// Topologies carrying a ground-truth community partition (SBM).
template <typename G>
concept HasCommunities = requires(const G g) {
  { g.communities() };
};

/// Adapts any concrete topology to NeighborView.
template <typename G>
  requires NeighborSpan<G> || NeighborAppend<G>
class TopologyView final : public NeighborView {
 public:
  explicit TopologyView(const G& graph) : graph_(&graph) {}

  std::uint64_t num_nodes() const override { return graph_->num_nodes(); }
  std::uint64_t degree(NodeId u) const override { return graph_->degree(u); }

  void append_neighbors(NodeId u, std::vector<NodeId>& out) const override {
    if constexpr (NeighborSpan<G>) {
      const auto row = graph_->neighbors(u);
      out.insert(out.end(), row.begin(), row.end());
    } else {
      graph_->append_neighbors(u, out);
    }
  }

 private:
  const G* graph_;
};

/// The registered placement families, as selected by `--placement=`.
enum class PlacementKind : std::uint8_t {
  kUniform,              ///< exact counts, uniformly shuffled (the
                         ///< historical implicit behavior)
  kCommunityAligned,     ///< plurality concentrated inside one block
  kAdversarialBoundary,  ///< minorities seeded on high-conductance cuts
  kClusteredBfs,         ///< each color one (or few) BFS ball(s)
};

inline const char* placement_kind_name(PlacementKind kind) noexcept {
  switch (kind) {
    case PlacementKind::kUniform: return "uniform";
    case PlacementKind::kCommunityAligned: return "community";
    case PlacementKind::kAdversarialBoundary: return "adversarial_boundary";
    case PlacementKind::kClusteredBfs: return "clustered_bfs";
  }
  return "unknown";
}

/// Parses a `--placement=` value; throws ContractViolation (naming the
/// offending text) on anything unrecognized.
PlacementKind parse_placement_kind(const std::string& name);

/// The resolved `--placement=` / `--placement-fraction=` pair carried
/// by ExperimentContext; validated once on the main thread.
struct PlacementSpec {
  PlacementKind kind = PlacementKind::kUniform;
  double fraction = 1.0;  ///< share of c1 aimed at the target community
                          ///< (community placement only)

  /// Throws ContractViolation naming --placement-fraction when the
  /// fraction is outside (0, 1].
  void validate() const;
};

/// Exact counts, uniformly shuffled over nodes — byte-identical to the
/// historical assign_* behavior (same Fisher–Yates draws). All four
/// builders take the count profile by value and move it through to the
/// Assignment (one construction, no copies down the chain); pass
/// std::move(counts) when the profile is no longer needed.
Assignment place_uniform(std::vector<std::uint64_t> counts, Xoshiro256& rng);

/// Concentrates the plurality color inside one community: at least
/// ceil(fraction * c1) color-0 nodes land in the largest block (capped
/// by the block size and by c1 itself); every other slot is filled
/// uniformly from the remaining color pool. Requires a non-empty
/// partition covering exactly sum(counts) nodes and fraction in (0, 1].
Assignment place_community_aligned(
    std::vector<std::uint64_t> counts,
    const std::vector<std::vector<NodeId>>& communities, double fraction,
    Xoshiro256& rng);

/// Seeds the minority colors on the highest-conductance cut positions:
/// nodes are ranked by (descending cross-community neighbor fraction,
/// ascending degree, random tie-break) and colors 1..k-1 claim the top
/// of the ranking in color order; the plurality fills the interior
/// remainder. With an empty `communities` the cross fraction is zero
/// everywhere and the ranking degenerates to (low degree, random).
/// Requires sum(counts) == view.num_nodes().
Assignment place_adversarial_boundary(
    std::vector<std::uint64_t> counts, const NeighborView& view,
    const std::vector<std::vector<NodeId>>& communities, Xoshiro256& rng);

/// Grows one BFS ball per color (colors in descending count order, so
/// the plurality gets a genuine ball before the minorities tile the
/// rest): each color claims its exact count of nodes by breadth-first
/// expansion through still-unclaimed nodes from a random unclaimed
/// seed, re-seeding when a frontier exhausts (disconnected remainder).
/// Requires sum(counts) == view.num_nodes().
Assignment place_clustered_bfs(std::vector<std::uint64_t> counts,
                               const NeighborView& view, Xoshiro256& rng);

}  // namespace plurality
