#include "opinion/table.hpp"

namespace plurality {

OpinionTable::OpinionTable(std::vector<ColorId> colors, ColorId num_colors,
                           ColorWidth width)
    : num_colors_(num_colors) {
  PC_EXPECTS(num_colors_ >= 1);
  PC_EXPECTS(!colors.empty());
  PC_EXPECTS(color_width_bytes(width) >=
             color_width_bytes(color_width_for(num_colors_)));
  support_.assign(num_colors_, 0);
  for (const ColorId c : colors) {
    PC_EXPECTS(c < num_colors_);
    ++support_[c];
  }
  packed_ = PackedColors(colors, width);
  for (const std::uint64_t s : support_) {
    if (s > 0) ++surviving_;
    if (s > max_support_) max_support_ = s;
  }
  PC_ENSURES(surviving_ >= 1);
}

void OpinionTable::merge_shard_deltas(std::span<const NodeId> changed,
                                      const PackedColors& live,
                                      std::span<const std::int64_t> delta) {
  PC_EXPECTS(live.size() == packed_.size());
  PC_EXPECTS(live.width() == packed_.width());
  PC_EXPECTS(delta.size() == support_.size());
  for (const NodeId u : changed) {
    PC_EXPECTS(u < packed_.size());
    const ColorId c = live.get(u);
    PC_EXPECTS(c < num_colors_);
    packed_.set(u, c);
  }
  std::int64_t total = 0;
  for (ColorId c = 0; c < num_colors_; ++c) {
    const std::int64_t d = delta[c];
    if (d == 0) continue;
    total += d;
    const std::uint64_t old = support_[c];
    PC_EXPECTS(d >= 0 || old >= static_cast<std::uint64_t>(-d));
    const std::uint64_t updated = old + static_cast<std::uint64_t>(d);
    support_[c] = updated;
    if (old == 0 && updated > 0) ++surviving_;
    if (old > 0 && updated == 0) --surviving_;
    if (updated > max_support_) max_support_ = updated;
  }
  PC_ENSURES(total == 0);
  PC_ENSURES(surviving_ >= 1);
}

ColorId OpinionTable::consensus_color() const {
  PC_EXPECTS(has_consensus());
  return packed_.get(0);
}

ColorId OpinionTable::plurality_color() const {
  ColorId best = 0;
  std::uint64_t best_support = support_[0];
  for (ColorId c = 1; c < num_colors_; ++c) {
    if (support_[c] > best_support) {
      best = c;
      best_support = support_[c];
    }
  }
  return best;
}

}  // namespace plurality
