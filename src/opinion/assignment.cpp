#include "opinion/assignment.hpp"

#include <algorithm>
#include <numeric>

#include "rng/distributions.hpp"
#include "support/assert.hpp"

namespace plurality {

namespace {

/// Builds the node->color vector from counts and shuffles it.
Assignment materialize(std::vector<std::uint64_t> counts, Xoshiro256& rng) {
  const std::uint64_t n =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  PC_EXPECTS(n > 0);

  Assignment out;
  out.num_colors = static_cast<ColorId>(counts.size());
  out.colors.reserve(n);
  for (ColorId c = 0; c < counts.size(); ++c) {
    out.colors.insert(out.colors.end(), counts[c], c);
  }
  // Fisher-Yates so that which node holds which color is uniform.
  for (std::size_t i = out.colors.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(uniform_below(rng, i + 1));
    std::swap(out.colors[i], out.colors[j]);
  }
  out.counts = std::move(counts);
  return out;
}

}  // namespace

std::int64_t Assignment::bias() const {
  PC_EXPECTS(num_colors >= 2);
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  for (const std::uint64_t c : counts) {
    if (c >= first) {
      second = first;
      first = c;
    } else if (c > second) {
      second = c;
    }
  }
  return static_cast<std::int64_t>(first) - static_cast<std::int64_t>(second);
}

Assignment assign_exact(std::vector<std::uint64_t> counts, Xoshiro256& rng) {
  PC_EXPECTS(!counts.empty());
  return materialize(std::move(counts), rng);
}

std::vector<std::uint64_t> counts_equal(std::uint64_t n, ColorId k) {
  PC_EXPECTS(k >= 1);
  PC_EXPECTS(n >= k);
  std::vector<std::uint64_t> counts(k, n / k);
  const std::uint64_t remainder = n % k;
  for (std::uint64_t i = 0; i < remainder; ++i) {
    ++counts[k - 1 - i];  // favor high indices, never color 0
  }
  return counts;
}

std::vector<std::uint64_t> counts_plurality_bias(std::uint64_t n, ColorId k,
                                                 std::uint64_t bias) {
  PC_EXPECTS(k >= 2);
  PC_EXPECTS(n >= k + bias);
  // c2 = ... = ck = floor((n - bias) / k); c1 absorbs bias + rounding, so
  // the realized bias is in [bias, bias + k - 1].
  const std::uint64_t minority = (n - bias) / k;
  PC_EXPECTS(minority >= 1);
  std::vector<std::uint64_t> counts(k, minority);
  counts[0] = n - minority * (k - 1);
  PC_ASSERT(counts[0] >= minority + bias);
  return counts;
}

std::vector<std::uint64_t> counts_two_colors(std::uint64_t n,
                                             std::uint64_t c1) {
  PC_EXPECTS(n >= 2);
  PC_EXPECTS(c1 >= 1 && c1 <= n - 1);
  return {c1, n - c1};
}

Assignment assign_equal(std::uint64_t n, ColorId k, Xoshiro256& rng) {
  return materialize(counts_equal(n, k), rng);
}

Assignment assign_plurality_bias(std::uint64_t n, ColorId k,
                                 std::uint64_t bias, Xoshiro256& rng) {
  return materialize(counts_plurality_bias(n, k, bias), rng);
}

Assignment assign_two_colors(std::uint64_t n, std::uint64_t c1,
                             Xoshiro256& rng) {
  return materialize(counts_two_colors(n, c1), rng);
}

Assignment assign_geometric(std::uint64_t n, ColorId k, double ratio,
                            Xoshiro256& rng) {
  PC_EXPECTS(k >= 1);
  PC_EXPECTS(n >= k);
  PC_EXPECTS(ratio > 0.0 && ratio < 1.0);
  std::vector<double> weights(k);
  double w = 1.0;
  for (ColorId c = 0; c < k; ++c) {
    weights[c] = w;
    w *= ratio;
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);

  // Largest-remainder rounding to exact sum n with every color >= 1.
  std::vector<std::uint64_t> counts(k, 1);
  std::uint64_t assigned = k;
  std::vector<std::pair<double, ColorId>> remainders;
  remainders.reserve(k);
  for (ColorId c = 0; c < k; ++c) {
    const double ideal = weights[c] / total * static_cast<double>(n);
    const auto extra = ideal >= 1.0 ? static_cast<std::uint64_t>(ideal) - 1 : 0;
    counts[c] += extra;
    assigned += extra;
    remainders.emplace_back(ideal - std::floor(ideal), c);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t i = 0;
  while (assigned < n) {
    ++counts[remainders[i % remainders.size()].second];
    ++assigned;
    ++i;
  }
  while (assigned > n) {  // defensive: trim from the smallest colors
    for (ColorId c = k; c-- > 0 && assigned > n;) {
      if (counts[c] > 1) {
        --counts[c];
        --assigned;
      }
    }
  }
  return materialize(std::move(counts), rng);
}

Assignment assign_dirichlet(std::uint64_t n, ColorId k, double alpha,
                            Xoshiro256& rng) {
  PC_EXPECTS(k >= 1);
  PC_EXPECTS(n >= k);
  PC_EXPECTS(alpha > 0.0);
  std::vector<double> proportions(k);
  double total = 0.0;
  for (auto& p : proportions) {
    p = gamma(rng, alpha);
    total += p;
  }
  // Largest-remainder rounding with every color >= 1.
  std::vector<std::uint64_t> counts(k, 1);
  std::uint64_t assigned = k;
  std::vector<std::pair<double, ColorId>> remainders;
  remainders.reserve(k);
  for (ColorId c = 0; c < k; ++c) {
    const double ideal = proportions[c] / total * static_cast<double>(n);
    const auto extra = ideal >= 1.0 ? static_cast<std::uint64_t>(ideal) - 1 : 0;
    counts[c] += extra;
    assigned += extra;
    remainders.emplace_back(ideal - std::floor(ideal), c);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t i = 0;
  while (assigned < n) {
    ++counts[remainders[i % remainders.size()].second];
    ++assigned;
    ++i;
  }
  while (assigned > n) {
    for (ColorId c = k; c-- > 0 && assigned > n;) {
      if (counts[c] > 1) {
        --counts[c];
        --assigned;
      }
    }
  }
  // Relabel so the plurality color is color 0.
  const auto best = static_cast<ColorId>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  std::swap(counts[0], counts[best]);
  return materialize(std::move(counts), rng);
}

}  // namespace plurality
