#pragma once

/// \file table.hpp
/// OpinionTable: the color of every node plus O(1)-maintained aggregate
/// bookkeeping (per-color support, number of surviving colors, running
/// maximum support). Engines poll has_consensus() every step, so those
/// aggregates must never require a scan.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "support/assert.hpp"

namespace plurality {

class OpinionTable {
 public:
  /// Takes ownership of the initial assignment. `num_colors` is the size
  /// of the color universe; every entry of `colors` must be < num_colors.
  OpinionTable(std::vector<ColorId> colors, ColorId num_colors);

  std::uint64_t num_nodes() const noexcept { return colors_.size(); }
  ColorId num_colors() const noexcept { return num_colors_; }

  ColorId color(NodeId u) const {
    PC_EXPECTS(u < colors_.size());
    return colors_[u];
  }

  /// Recolors node u, updating supports, survivor count and max support
  /// in O(1).
  void set_color(NodeId u, ColorId c) {
    PC_EXPECTS(u < colors_.size());
    PC_EXPECTS(c < num_colors_);
    const ColorId old = colors_[u];
    if (old == c) return;
    colors_[u] = c;
    if (--support_[old] == 0) --surviving_;
    if (support_[c]++ == 0) ++surviving_;
    if (support_[c] > max_support_) max_support_ = support_[c];
    // max_support_ may now overestimate if `old` held the maximum; it is
    // only used as a monotone lower-bound accelerator for plurality
    // scans, never for correctness decisions (see plurality_color()).
  }

  /// Bulk merge for the sharded engine: `changed` lists the nodes a
  /// shard recolored during an epoch (duplicates allowed), `live` is the
  /// full n-entry color array holding their final colors, and `delta` is
  /// the shard's per-color net support change over the epoch. Updates
  /// colors, supports, survivor count and max support in
  /// O(|changed| + num_colors). Requires the deltas to sum to zero and
  /// to keep every support non-negative.
  void merge_shard_deltas(std::span<const NodeId> changed,
                          std::span<const ColorId> live,
                          std::span<const std::int64_t> delta);

  std::uint64_t support(ColorId c) const {
    PC_EXPECTS(c < num_colors_);
    return support_[c];
  }

  /// Number of colors with at least one supporter.
  ColorId surviving_colors() const noexcept { return surviving_; }

  /// True iff every node holds the same color.
  bool has_consensus() const noexcept { return surviving_ == 1; }

  /// The consensus color. Requires has_consensus().
  ColorId consensus_color() const;

  /// A color of maximum support (lowest index wins ties); O(k) scan.
  ColorId plurality_color() const;

  /// Supports of all colors (index = color).
  std::span<const std::uint64_t> supports() const noexcept {
    return support_;
  }

  /// Colors of all nodes (index = node).
  std::span<const ColorId> colors() const noexcept { return colors_; }

 private:
  std::vector<ColorId> colors_;
  std::vector<std::uint64_t> support_;
  ColorId num_colors_;
  ColorId surviving_ = 0;
  std::uint64_t max_support_ = 0;
};

}  // namespace plurality
