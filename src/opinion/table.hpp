#pragma once

/// \file table.hpp
/// OpinionTable: the color of every node plus O(1)-maintained aggregate
/// bookkeeping (per-color support, number of surviving colors, running
/// maximum support). Engines poll has_consensus() every step, so those
/// aggregates must never require a scan.
///
/// Storage is the packed SoA backend (opinion/packed.hpp): the per-node
/// color array is u8/u16/u32, the narrowest width that holds
/// num_colors - 1, selected at construction (or forced, for the width
/// equivalence tests). The color()/set_color() API is unchanged — width
/// never touches the RNG stream, so trajectories are bit-identical
/// across widths for a fixed seed.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "opinion/packed.hpp"
#include "support/assert.hpp"

namespace plurality {

class OpinionTable {
 public:
  /// Takes ownership of the initial assignment. `num_colors` is the size
  /// of the color universe; every entry of `colors` must be < num_colors.
  /// The packed width is the narrowest that holds num_colors - 1.
  OpinionTable(std::vector<ColorId> colors, ColorId num_colors)
      : OpinionTable(std::move(colors), num_colors,
                     color_width_for(num_colors)) {}

  /// Forced-width form (width equivalence tests and the packed unit
  /// tests); `width` must hold num_colors - 1.
  OpinionTable(std::vector<ColorId> colors, ColorId num_colors,
               ColorWidth width);

  std::uint64_t num_nodes() const noexcept { return packed_.size(); }
  ColorId num_colors() const noexcept { return num_colors_; }
  ColorWidth width() const noexcept { return packed_.width(); }

  ColorId color(NodeId u) const {
    PC_EXPECTS(u < packed_.size());
    return packed_.get(u);
  }

  /// Recolors node u, updating supports, survivor count and max support
  /// in O(1).
  void set_color(NodeId u, ColorId c) {
    PC_EXPECTS(u < packed_.size());
    PC_EXPECTS(c < num_colors_);
    const ColorId old = packed_.get(u);
    if (old == c) return;
    packed_.set(u, c);
    if (--support_[old] == 0) --surviving_;
    if (support_[c]++ == 0) ++surviving_;
    if (support_[c] > max_support_) max_support_ = support_[c];
    // max_support_ may now overestimate if `old` held the maximum; it is
    // only used as a monotone lower-bound accelerator for plurality
    // scans, never for correctness decisions (see plurality_color()).
  }

  /// Bulk merge for the sharded engine: `changed` lists the nodes a
  /// shard recolored during an epoch (duplicates allowed), `live` is the
  /// engine's full n-entry packed color array (same width as the table)
  /// holding their final colors, and `delta` is the shard's per-color
  /// net support change over the epoch. Updates colors, supports,
  /// survivor count and max support in O(|changed| + num_colors).
  /// Requires the deltas to sum to zero and to keep every support
  /// non-negative.
  void merge_shard_deltas(std::span<const NodeId> changed,
                          const PackedColors& live,
                          std::span<const std::int64_t> delta);

  std::uint64_t support(ColorId c) const {
    PC_EXPECTS(c < num_colors_);
    return support_[c];
  }

  /// Number of colors with at least one supporter.
  ColorId surviving_colors() const noexcept { return surviving_; }

  /// True iff every node holds the same color.
  bool has_consensus() const noexcept { return surviving_ == 1; }

  /// The consensus color. Requires has_consensus().
  ColorId consensus_color() const;

  /// A color of maximum support (lowest index wins ties); O(k) scan.
  ColorId plurality_color() const;

  /// Supports of all colors (index = color).
  std::span<const std::uint64_t> supports() const noexcept {
    return support_;
  }

  /// The packed per-node color array (index = node) — the engines'
  /// bulk-copy source for live/snapshot buffers.
  const PackedColors& packed_colors() const noexcept { return packed_; }

  /// Widens every node's color into `out` (resized to n): the
  /// previous-round buffer of the synchronous protocols and the test
  /// helpers' view. O(n) — never call per tick.
  void copy_colors_into(std::vector<ColorId>& out) const {
    packed_.unpack_into(out);
  }

  /// Bytes of hot state per node held by the table itself (packed color
  /// array + support counters); the engines add their own buffers on
  /// top (see bench::run's bytes_per_node attribution).
  double state_bytes_per_node() const noexcept {
    const double n = static_cast<double>(packed_.size());
    return (static_cast<double>(packed_.storage_bytes()) +
            static_cast<double>(support_.size() * sizeof(std::uint64_t))) /
           n;
  }

 private:
  PackedColors packed_;
  std::vector<std::uint64_t> support_;
  ColorId num_colors_;
  ColorId surviving_ = 0;
  std::uint64_t max_support_ = 0;
};

}  // namespace plurality
