#pragma once

/// \file packed.hpp
/// Packed SoA storage for the opinion hot path. A plurality run at k
/// colors needs ceil(log2 k) bits of state per node (Becchetti et al.'s
/// gossip-model bound), so storing a 4-byte ColorId per node wastes 4x
/// (k <= 256) of the memory bandwidth the big-n engines are bound by.
/// PackedColors selects the narrowest of u8/u16/u32 that holds
/// num_colors - 1 at construction time and keeps the whole array in one
/// 64-byte-aligned slab; OpinionTable and the sharded engine's
/// live/snapshot buffers are built on it.
///
/// Width selection never touches the RNG stream, so a run's trajectory
/// is bit-identical across forced widths for a fixed (seed, shards) —
/// the equivalence tests/test_packed_table.cpp pins.
///
/// ShardDeltaSlab is the companion for the epoch merges: one per-shard
/// support-delta row per shard, each row starting on its own cache line
/// so concurrent shard workers never false-share counter updates.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <vector>

#ifdef __linux__
#include <sys/mman.h>
#endif

#include "graph/graph.hpp"
#include "support/assert.hpp"

namespace plurality {

/// Storage width of one packed color entry, in bytes.
enum class ColorWidth : std::uint8_t { kU8 = 1, kU16 = 2, kU32 = 4 };

constexpr std::size_t color_width_bytes(ColorWidth width) noexcept {
  return static_cast<std::size_t>(width);
}

constexpr const char* color_width_name(ColorWidth width) noexcept {
  switch (width) {
    case ColorWidth::kU8: return "u8";
    case ColorWidth::kU16: return "u16";
    case ColorWidth::kU32: return "u32";
  }
  return "unknown";
}

/// The narrowest width that holds every color of a universe of
/// `num_colors` (stored values are < num_colors): 255 colors still fit
/// u8, 256 colors store values up to 255 and also fit u8; 257 colors
/// need u16. Requires num_colors >= 1.
constexpr ColorWidth color_width_for(ColorId num_colors) noexcept {
  if (num_colors <= (1u << 8)) return ColorWidth::kU8;
  if (num_colors <= (1u << 16)) return ColorWidth::kU16;
  return ColorWidth::kU32;
}

namespace detail {

/// 64-byte-aligned slab allocation: one cache line of alignment so the
/// hot arrays never straddle a line at their base and SIMD loads in the
/// batch kernels stay aligned.
inline constexpr std::align_val_t kSlabAlign{64};

struct SlabDeleter {
  void operator()(std::byte* p) const noexcept {
    ::operator delete[](p, kSlabAlign);
  }
};

using Slab = std::unique_ptr<std::byte[], SlabDeleter>;

/// Allocates `bytes` of 64-byte-aligned, *uninitialized* storage. Large
/// allocations come from the OS untouched, which is what makes the
/// sharded engine's NUMA first-touch initialization meaningful: the
/// owning worker's first write places each page. Slabs big enough to
/// span several huge pages additionally request transparent-huge-page
/// backing (Linux madvise; kernels in `madvise` THP mode never promote
/// heap pages unasked): at 10^8+ nodes the tick loop is one random
/// access per tick over the slab, and 4 KiB pages overrun the dTLB
/// long before the LLC is exhausted. Best-effort — placement, NUMA
/// first-touch, and determinism are unaffected when the madvise is
/// refused.
inline Slab allocate_slab(std::size_t bytes) {
  if (bytes == 0) return Slab{};
  auto* p = static_cast<std::byte*>(::operator new[](bytes, kSlabAlign));
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr std::size_t kHugePage = 2u << 20;
  if (bytes >= 4 * kHugePage) {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t lo = (addr + kHugePage - 1) & ~(kHugePage - 1);
    const std::uintptr_t hi = (addr + bytes) & ~(kHugePage - 1);
    if (hi > lo) {
      (void)madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
    }
  }
#endif
  return Slab(p);
}

}  // namespace detail

/// A packed array of node colors: n entries of u8/u16/u32 (fixed at
/// construction) in one 64-byte-aligned slab. Move-only like the CSR
/// view; copies are explicit via clone() so a gigabyte buffer can never
/// be duplicated by accident.
class PackedColors {
 public:
  PackedColors() = default;

  /// Packs `colors` at the given width. Every entry must fit the width.
  PackedColors(std::span<const ColorId> colors, ColorWidth width)
      : PackedColors(uninitialized(colors.size(), width)) {
    fill_from(colors);
  }

  /// An *uninitialized* packed array: the caller owns the first write
  /// to every entry (the NUMA first-touch contract; see
  /// sim/sharded_engine.hpp).
  static PackedColors uninitialized(std::uint64_t n, ColorWidth width) {
    PackedColors out;
    out.n_ = n;
    out.width_ = width;
    out.data_ = detail::allocate_slab(n * color_width_bytes(width));
    return out;
  }

  PackedColors(PackedColors&&) noexcept = default;
  PackedColors& operator=(PackedColors&&) noexcept = default;
  PackedColors(const PackedColors&) = delete;
  PackedColors& operator=(const PackedColors&) = delete;

  /// An explicit deep copy (same width, same contents).
  PackedColors clone() const {
    PackedColors out = uninitialized(n_, width_);
    std::memcpy(out.data_.get(), data_.get(), storage_bytes());
    return out;
  }

  std::uint64_t size() const noexcept { return n_; }
  ColorWidth width() const noexcept { return width_; }
  std::size_t storage_bytes() const noexcept {
    return n_ * color_width_bytes(width_);
  }

  ColorId get(NodeId u) const noexcept {
    switch (width_) {
      case ColorWidth::kU8: return data<std::uint8_t>()[u];
      case ColorWidth::kU16: return data<std::uint16_t>()[u];
      case ColorWidth::kU32: return data<std::uint32_t>()[u];
    }
    return 0;  // unreachable
  }

  void set(NodeId u, ColorId c) noexcept {
    switch (width_) {
      case ColorWidth::kU8:
        data<std::uint8_t>()[u] = static_cast<std::uint8_t>(c);
        return;
      case ColorWidth::kU16:
        data<std::uint16_t>()[u] = static_cast<std::uint16_t>(c);
        return;
      case ColorWidth::kU32:
        data<std::uint32_t>()[u] = c;
        return;
    }
  }

  /// The typed element array. T must match the runtime width — the
  /// sharded engine dispatches once per run and keeps typed pointers
  /// through the epoch loop.
  template <typename T>
  T* data() noexcept {
    PC_EXPECTS(sizeof(T) == color_width_bytes(width_));
    return reinterpret_cast<T*>(data_.get());
  }

  template <typename T>
  const T* data() const noexcept {
    PC_EXPECTS(sizeof(T) == color_width_bytes(width_));
    return reinterpret_cast<const T*>(data_.get());
  }

  /// Packs `colors` (entry count must match) into this array.
  void fill_from(std::span<const ColorId> colors) {
    PC_EXPECTS(colors.size() == n_);
    fill_range_from(colors, 0, n_);
  }

  /// Packs entries [lo, hi) of `colors` — the per-shard form the NUMA
  /// first-touch init epoch uses so each range's pages are first
  /// written by their owning worker.
  void fill_range_from(std::span<const ColorId> colors, std::uint64_t lo,
                       std::uint64_t hi) {
    PC_EXPECTS(lo <= hi && hi <= n_ && colors.size() >= hi);
    switch (width_) {
      case ColorWidth::kU8: {
        auto* out = data<std::uint8_t>();
        for (std::uint64_t u = lo; u < hi; ++u) {
          out[u] = static_cast<std::uint8_t>(colors[u]);
        }
        return;
      }
      case ColorWidth::kU16: {
        auto* out = data<std::uint16_t>();
        for (std::uint64_t u = lo; u < hi; ++u) {
          out[u] = static_cast<std::uint16_t>(colors[u]);
        }
        return;
      }
      case ColorWidth::kU32: {
        auto* out = data<std::uint32_t>();
        for (std::uint64_t u = lo; u < hi; ++u) out[u] = colors[u];
        return;
      }
    }
  }

  /// Copies entries [lo, hi) from `src` (same n, same width); the
  /// first-touch form of clone().
  void copy_range_from(const PackedColors& src, std::uint64_t lo,
                       std::uint64_t hi) {
    PC_EXPECTS(src.n_ == n_ && src.width_ == width_);
    PC_EXPECTS(lo <= hi && hi <= n_);
    const std::size_t w = color_width_bytes(width_);
    std::memcpy(data_.get() + lo * w, src.data_.get() + lo * w,
                (hi - lo) * w);
  }

  /// Widens the whole array back to ColorId entries (tests, sync
  /// protocols' previous-round buffers).
  void unpack_into(std::vector<ColorId>& out) const {
    out.resize(n_);
    switch (width_) {
      case ColorWidth::kU8: {
        const auto* in = data<std::uint8_t>();
        for (std::uint64_t u = 0; u < n_; ++u) out[u] = in[u];
        return;
      }
      case ColorWidth::kU16: {
        const auto* in = data<std::uint16_t>();
        for (std::uint64_t u = 0; u < n_; ++u) out[u] = in[u];
        return;
      }
      case ColorWidth::kU32: {
        const auto* in = data<std::uint32_t>();
        for (std::uint64_t u = 0; u < n_; ++u) out[u] = in[u];
        return;
      }
    }
  }

 private:
  detail::Slab data_;
  std::uint64_t n_ = 0;
  ColorWidth width_ = ColorWidth::kU32;
};

/// Per-shard support-delta counters for the epoch merge path: one row
/// of num_colors int64 counters per shard, each row padded up to a
/// 64-byte boundary in one aligned slab, so concurrent workers
/// incrementing adjacent shards' counters never share a cache line.
class ShardDeltaSlab {
 public:
  /// With `deferred_init` the rows come back *unzeroed* and each owner
  /// must clear(s) its own row before use — the NUMA first-touch form.
  ShardDeltaSlab(std::uint64_t shards, ColorId num_colors,
                 bool deferred_init = false)
      : shards_(shards),
        num_colors_(num_colors),
        stride_((static_cast<std::uint64_t>(num_colors) + kPerLine - 1) /
                kPerLine * kPerLine) {
    PC_EXPECTS(shards >= 1);
    PC_EXPECTS(num_colors >= 1);
    slab_ = detail::allocate_slab(shards_ * stride_ * sizeof(std::int64_t));
    if (!deferred_init) {
      for (std::uint64_t s = 0; s < shards_; ++s) clear(s);
    }
  }

  /// Shard s's counter row (num_colors entries, cache-line aligned).
  std::span<std::int64_t> shard(std::uint64_t s) noexcept {
    PC_EXPECTS(s < shards_);
    return {reinterpret_cast<std::int64_t*>(slab_.get()) + s * stride_,
            num_colors_};
  }

  std::span<const std::int64_t> shard(std::uint64_t s) const noexcept {
    PC_EXPECTS(s < shards_);
    return {reinterpret_cast<const std::int64_t*>(slab_.get()) + s * stride_,
            num_colors_};
  }

  /// Zeroes shard s's row (after each epoch merge; also the first-touch
  /// initialization hook — call it from the owning worker).
  void clear(std::uint64_t s) noexcept {
    auto row = shard(s);
    std::memset(row.data(), 0, row.size() * sizeof(std::int64_t));
  }

  std::uint64_t shards() const noexcept { return shards_; }
  ColorId num_colors() const noexcept { return num_colors_; }

 private:
  static constexpr std::uint64_t kPerLine = 64 / sizeof(std::int64_t);

  std::uint64_t shards_;
  ColorId num_colors_;
  std::uint64_t stride_;  // row pitch in int64 entries (cache-line padded)
  detail::Slab slab_;
};

}  // namespace plurality
