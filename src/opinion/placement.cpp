#include "opinion/placement.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/distributions.hpp"

namespace plurality {

namespace {

std::uint64_t total_of(const std::vector<std::uint64_t>& counts) {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

/// Fisher–Yates, same sweep direction as assignment.cpp's materialize
/// so "uniformly shuffled" means the same thing everywhere.
template <typename T>
void shuffle(std::vector<T>& values, Xoshiro256& rng) {
  for (std::size_t i = values.size(); i-- > 1;) {
    const auto j = static_cast<std::size_t>(uniform_below(rng, i + 1));
    std::swap(values[i], values[j]);
  }
}

/// The color pool for `counts`, minus `fewer_c1` withheld color-0
/// entries: one entry per still-unplaced node.
std::vector<ColorId> color_pool(const std::vector<std::uint64_t>& counts,
                                std::uint64_t fewer_c1) {
  std::vector<ColorId> pool;
  pool.reserve(total_of(counts) - fewer_c1);
  for (ColorId c = 0; c < counts.size(); ++c) {
    const std::uint64_t copies = c == 0 ? counts[c] - fewer_c1 : counts[c];
    pool.insert(pool.end(), copies, c);
  }
  return pool;
}

Assignment finalize(std::vector<ColorId> colors,
                    std::vector<std::uint64_t> counts) {
  Assignment out;
  out.colors = std::move(colors);
  out.num_colors = static_cast<ColorId>(counts.size());
  out.counts = std::move(counts);
  return out;
}

}  // namespace

PlacementKind parse_placement_kind(const std::string& name) {
  if (name == "uniform") return PlacementKind::kUniform;
  if (name == "community") return PlacementKind::kCommunityAligned;
  if (name == "adversarial_boundary") {
    return PlacementKind::kAdversarialBoundary;
  }
  if (name == "clustered_bfs") return PlacementKind::kClusteredBfs;
  throw ContractViolation(
      "--placement=" + name +
      " is not one of uniform|community|adversarial_boundary|clustered_bfs");
}

void PlacementSpec::validate() const {
  if (!(fraction > 0.0 && fraction <= 1.0)) {
    throw ContractViolation(
        "--placement-fraction expects a fraction in (0, 1], got " +
        std::to_string(fraction));
  }
}

Assignment place_uniform(std::vector<std::uint64_t> counts, Xoshiro256& rng) {
  return assign_exact(std::move(counts), rng);
}

Assignment place_community_aligned(
    std::vector<std::uint64_t> counts,
    const std::vector<std::vector<NodeId>>& communities, double fraction,
    Xoshiro256& rng) {
  PC_EXPECTS(!counts.empty());
  PC_EXPECTS(!communities.empty());
  PC_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  const std::uint64_t n = total_of(counts);
  std::uint64_t covered = 0;
  for (const auto& block : communities) covered += block.size();
  PC_EXPECTS(covered == n);

  // Target block: the largest community (first on ties).
  std::size_t target = 0;
  for (std::size_t b = 1; b < communities.size(); ++b) {
    if (communities[b].size() > communities[target].size()) target = b;
  }

  const std::uint64_t c1 = counts[0];
  const auto want = static_cast<std::uint64_t>(
      std::ceil(fraction * static_cast<double>(c1)));
  const std::uint64_t q = std::min({c1, want, communities[target].size()});

  // q random slots of the target block hold color 0; every remaining
  // slot (target leftover + other blocks) draws from the shuffled rest
  // of the pool, so the residual placement is uniform.
  std::vector<NodeId> target_nodes = communities[target];
  shuffle(target_nodes, rng);
  std::vector<ColorId> pool = color_pool(counts, q);
  shuffle(pool, rng);

  std::vector<ColorId> colors(n);
  std::size_t next = 0;
  for (std::size_t i = 0; i < target_nodes.size(); ++i) {
    colors[target_nodes[i]] = i < q ? 0 : pool[next++];
  }
  for (std::size_t b = 0; b < communities.size(); ++b) {
    if (b == target) continue;
    for (const NodeId u : communities[b]) colors[u] = pool[next++];
  }
  PC_ASSERT(next == pool.size());
  return finalize(std::move(colors), std::move(counts));
}

Assignment place_adversarial_boundary(
    std::vector<std::uint64_t> counts, const NeighborView& view,
    const std::vector<std::vector<NodeId>>& communities, Xoshiro256& rng) {
  PC_EXPECTS(!counts.empty());
  const std::uint64_t n = view.num_nodes();
  PC_EXPECTS(total_of(counts) == n);

  // Block labels if a (non-trivial) partition is known; the heuristic
  // works without one, falling back to pure low-degree ranking.
  std::vector<std::uint32_t> block(n, 0);
  const bool has_blocks = communities.size() >= 2;
  if (has_blocks) {
    for (std::uint32_t b = 0; b < communities.size(); ++b) {
      for (const NodeId u : communities[b]) {
        PC_EXPECTS(u < n);
        block[u] = b;
      }
    }
  }

  // Boundary score: fraction of a node's edges that cross the cut.
  std::vector<double> cross_frac(n, 0.0);
  if (has_blocks) {
    std::vector<NodeId> scratch;
    for (NodeId u = 0; u < n; ++u) {
      scratch.clear();
      view.append_neighbors(u, scratch);
      if (scratch.empty()) continue;
      std::uint64_t cross = 0;
      for (const NodeId v : scratch) cross += block[v] != block[u] ? 1 : 0;
      cross_frac[u] =
          static_cast<double>(cross) / static_cast<double>(scratch.size());
    }
  }

  // Rank: most boundary-exposed first, then lowest degree (fewest
  // interior edges to defend with), random among ties.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  shuffle(order, rng);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (cross_frac[a] != cross_frac[b]) return cross_frac[a] > cross_frac[b];
    return view.degree(a) < view.degree(b);
  });

  // Minorities claim the top of the ranking in color order (the
  // strongest minority gets the strongest cut positions); the
  // plurality is pushed into the interior remainder.
  std::vector<ColorId> colors(n, 0);
  std::size_t pos = 0;
  for (ColorId c = 1; c < counts.size(); ++c) {
    for (std::uint64_t i = 0; i < counts[c]; ++i) colors[order[pos++]] = c;
  }
  return finalize(std::move(colors), std::move(counts));
}

Assignment place_clustered_bfs(std::vector<std::uint64_t> counts,
                               const NeighborView& view, Xoshiro256& rng) {
  PC_EXPECTS(!counts.empty());
  const std::uint64_t n = view.num_nodes();
  PC_EXPECTS(total_of(counts) == n);

  // Seed preference order: one shuffle up front keeps the whole
  // placement a deterministic function of the stream.
  std::vector<NodeId> seed_order(n);
  std::iota(seed_order.begin(), seed_order.end(), NodeId{0});
  shuffle(seed_order, rng);
  std::size_t seed_cursor = 0;

  // Colors grow in descending count order so the plurality carves a
  // genuine ball before the minorities tile what is left.
  std::vector<ColorId> by_size(counts.size());
  std::iota(by_size.begin(), by_size.end(), ColorId{0});
  std::stable_sort(by_size.begin(), by_size.end(), [&](ColorId a, ColorId b) {
    return counts[a] > counts[b];
  });

  std::vector<ColorId> colors(n, 0);
  std::vector<bool> claimed(n, false);
  std::vector<NodeId> queue;
  std::vector<NodeId> scratch;
  for (const ColorId c : by_size) {
    std::uint64_t quota = counts[c];
    queue.clear();
    std::size_t head = 0;
    while (quota > 0) {
      if (head == queue.size()) {
        // Frontier exhausted (or first node of this color): restart
        // from the next unclaimed seed.
        while (claimed[seed_order[seed_cursor]]) ++seed_cursor;
        const NodeId seed = seed_order[seed_cursor];
        claimed[seed] = true;
        colors[seed] = c;
        --quota;
        queue.push_back(seed);
        continue;
      }
      const NodeId u = queue[head++];
      scratch.clear();
      view.append_neighbors(u, scratch);
      for (const NodeId v : scratch) {
        if (quota == 0) break;
        if (claimed[v]) continue;
        claimed[v] = true;
        colors[v] = c;
        --quota;
        queue.push_back(v);
      }
    }
  }
  return finalize(std::move(colors), std::move(counts));
}

}  // namespace plurality
