#pragma once

/// \file assignment.hpp
/// Initial-opinion workload generators. Each generator returns an
/// Assignment whose counts are *exact* (deterministic in the requested
/// parameters); randomness only permutes which node gets which color.
/// Color 0 always denotes the plurality color C1 of the paper when the
/// generator creates a biased configuration.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/xoshiro256.hpp"

namespace plurality {

/// An initial configuration: per-node colors plus the color-universe
/// size and the realized support counts.
struct Assignment {
  std::vector<ColorId> colors;        ///< colors[u] for each node u
  ColorId num_colors = 0;             ///< size of the color universe
  std::vector<std::uint64_t> counts;  ///< realized support per color

  /// Realized additive bias c1 - c2 (largest minus second-largest
  /// support). Requires num_colors >= 2.
  std::int64_t bias() const;
};

/// Exact counts, randomly shuffled over nodes. Requires counts non-empty
/// and a positive total. Takes counts by value and moves them into the
/// Assignment — pass std::move(counts) when the profile is no longer
/// needed to avoid copying a k-sized vector per repetition.
Assignment assign_exact(std::vector<std::uint64_t> counts, Xoshiro256& rng);

/// Count-profile builders: the deterministic support vectors behind the
/// assign_* generators, exposed separately so the placement layer
/// (opinion/placement.hpp) can position the same exact counts
/// non-uniformly. assign_x(args, rng) == a uniform placement of
/// counts_x(args).
std::vector<std::uint64_t> counts_equal(std::uint64_t n, ColorId k);
std::vector<std::uint64_t> counts_plurality_bias(std::uint64_t n, ColorId k,
                                                 std::uint64_t bias);
std::vector<std::uint64_t> counts_two_colors(std::uint64_t n,
                                             std::uint64_t c1);

/// As-equal-as-possible split of n nodes over k colors (remainder goes
/// to the *highest* color indices so that color 0 is never favored by
/// rounding). Requires k >= 1, n >= k.
Assignment assign_equal(std::uint64_t n, ColorId k, Xoshiro256& rng);

/// The theorem workload: c2 = ... = ck as equal as possible and
/// c1 = c2 + bias (up to +k-1 rounding, reported exactly in counts).
/// This is simultaneously the upper-bound workload of Theorem 1.1 and —
/// because all minorities tie — its lower-bound workload.
/// Requires k >= 2, n >= k + bias.
Assignment assign_plurality_bias(std::uint64_t n, ColorId k,
                                 std::uint64_t bias, Xoshiro256& rng);

/// Two colors with c1 = n/2 + bias_half and c2 = n - c1 (bias = 2*bias_half
/// up to parity). Requires n >= 2 and 2*bias_half <= n - 2... concretely
/// c1 <= n - 1 so that both colors are present.
Assignment assign_two_colors(std::uint64_t n, std::uint64_t c1,
                             Xoshiro256& rng);

/// Geometric support profile c_j proportional to ratio^j (ratio in
/// (0,1)), exactly normalized to sum n; a "many small minorities"
/// workload. Requires k >= 1, ratio in (0,1), n >= k.
Assignment assign_geometric(std::uint64_t n, ColorId k, double ratio,
                            Xoshiro256& rng);

/// Random proportions from a symmetric Dirichlet(alpha) prior, then the
/// largest realized color is relabeled to 0 so C1 keeps its meaning.
/// Requires k >= 1, alpha > 0, n >= k.
Assignment assign_dirichlet(std::uint64_t n, ColorId k, double alpha,
                            Xoshiro256& rng);

}  // namespace plurality
