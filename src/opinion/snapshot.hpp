#pragma once

/// \file snapshot.hpp
/// Read-only views of an opinion configuration used by observers and
/// experiment reports: sorted supports, bias, plurality fraction,
/// normalized Shannon entropy.

#include <cstdint>
#include <vector>

#include "opinion/table.hpp"

namespace plurality {

struct OpinionSnapshot {
  std::uint64_t n = 0;
  std::vector<std::uint64_t> sorted_supports;  ///< descending
  ColorId surviving = 0;

  /// c1 - c2 (0 if fewer than two colors survive).
  std::int64_t bias() const;
  /// c1 / n.
  double plurality_fraction() const;
  /// c1 / c2 (infinity if c2 == 0).
  double top_ratio() const;
  /// Shannon entropy of the support distribution, normalized by log k of
  /// the number of *surviving* colors (0 when one color remains).
  double normalized_entropy() const;
};

/// Captures the aggregate state of a table.
OpinionSnapshot snapshot_of(const OpinionTable& table);

}  // namespace plurality
