#pragma once

/// \file sync_gadget.hpp
/// Per-node sample storage for the Sync Gadget (paper §3.1, "Weak
/// Perpetual Synchronization").
///
/// During the gadget's sampling sub-phase a node u records, for each
/// sampled neighbor v, the *offset* d = T_v - T_u between v's real time
/// (tick count) and its own. The paper phrases this as storing T_v and
/// incrementing every stored sample by one per subsequent own tick;
/// since u's own real time also advances by one per tick, the two
/// formulations agree:  stored-and-incremented value at the jump step
/// = T_v(collect) + (T_u(jump) - T_u(collect)) = T_u(jump) + d.
/// Storing offsets keeps the buffers small (int32 per sample) and makes
/// the jump target simply  T_u(jump) + median(offsets).
///
/// Buffers are flat (n * capacity) for cache friendliness.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"

namespace plurality {

class SyncGadgetStore {
 public:
  /// `capacity` = samples per node per phase (the schedule's S).
  SyncGadgetStore(std::uint64_t num_nodes, std::uint32_t capacity)
      : capacity_(capacity) {
    PC_EXPECTS(num_nodes >= 1);
    PC_EXPECTS(capacity >= 1);
    offsets_.assign(num_nodes * capacity, 0);
    counts_.assign(num_nodes, 0);
  }

  /// Records one offset sample for node u; ignores overflow beyond
  /// capacity (possible only when a node replays a phase after a
  /// backward jump).
  void record(NodeId u, std::int64_t offset) {
    PC_EXPECTS(u < counts_.size());
    if (counts_[u] >= capacity_) return;
    const std::int64_t clamped =
        std::min<std::int64_t>(std::max<std::int64_t>(offset, INT32_MIN),
                               INT32_MAX);
    offsets_[static_cast<std::size_t>(u) * capacity_ + counts_[u]] =
        static_cast<std::int32_t>(clamped);
    ++counts_[u];
  }

  std::uint32_t count(NodeId u) const {
    PC_EXPECTS(u < counts_.size());
    return counts_[u];
  }

  /// Lower median of u's collected offsets. Requires count(u) > 0.
  /// Reorders the buffer (the buffer is cleared right after anyway).
  std::int64_t median_offset(NodeId u) {
    PC_EXPECTS(u < counts_.size());
    PC_EXPECTS(counts_[u] > 0);
    const std::span<std::int32_t> window(
        offsets_.data() + static_cast<std::size_t>(u) * capacity_,
        counts_[u]);
    return median_inplace(window);
  }

  void clear(NodeId u) {
    PC_EXPECTS(u < counts_.size());
    counts_[u] = 0;
  }

  std::uint32_t capacity() const noexcept { return capacity_; }

 private:
  std::uint32_t capacity_;
  std::vector<std::int32_t> offsets_;
  std::vector<std::uint32_t> counts_;
};

}  // namespace plurality
