#pragma once

/// \file one_extra_bit.hpp
/// The synchronous OneExtraBit protocol (paper §2): phases combining one
/// Two-Choices round with a Bit-Propagation sub-phase in the "memory
/// model" (one extra transmittable bit per node).
///
/// Phase structure:
///   * Two-Choices round: node u samples v, w; iff their colors coincide
///     u adopts that color AND sets its bit. Otherwise the bit is
///     cleared. The bit-set support of color Cj then concentrates around
///     cj^2 / n.
///   * Bit-Propagation rounds (Theta(log k + log log n) of them): a
///     bit-less node samples one node per round and copies (color, bit)
///     from any bit-set node it hits. This broadcasts the two-choices
///     outcome to everyone while preserving the color distribution among
///     bit-set nodes, so the support ratio c1/cj grows quadratically per
///     phase (experiment E5 verifies; Theorem 1.2 gives the run time).

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "opinion/assignment.hpp"
#include "opinion/table.hpp"
#include "rng/xoshiro256.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"

namespace plurality {

/// Tuning for OneExtraBitSync; zeros mean "derive from n and k".
struct OneExtraBitParams {
  /// Bit-Propagation rounds per phase. Default: ceil(log2 k) +
  /// ceil(log2 ln n) + 4, the doubling time from n/k bit-set nodes to n
  /// plus tail slack.
  std::uint64_t bp_rounds = 0;
};

template <GraphTopology G>
class OneExtraBitSync {
 public:
  OneExtraBitSync(const G& graph, Assignment assignment,
                  OneExtraBitParams params = {})
      : graph_(&graph),
        table_(std::move(assignment.colors), assignment.num_colors) {
    PC_EXPECTS(graph.num_nodes() == table_.num_nodes());
    const auto n = static_cast<double>(table_.num_nodes());
    const auto k = static_cast<double>(table_.num_colors());
    bp_rounds_ = params.bp_rounds > 0
                     ? params.bp_rounds
                     : ceil_at_least(std::log2(std::max(k, 2.0))) +
                           ceil_at_least(std::log2(std::max(
                               safe_ln(std::max(n, 3.0)), 2.0))) +
                           4;
    bit_.assign(table_.num_nodes(), 0);
  }

  /// One synchronous round; alternates per the phase machine.
  void execute_round(Xoshiro256& rng) {
    if (round_in_phase_ == 0) {
      two_choices_round(rng);
    } else {
      bit_propagation_round(rng);
    }
    ++round_in_phase_;
    if (round_in_phase_ > bp_rounds_) {
      round_in_phase_ = 0;
      ++phases_completed_;
    }
    ++rounds_;
  }

  /// Convenience: runs exactly one whole phase (used by E5).
  void execute_phase(Xoshiro256& rng) {
    PC_EXPECTS(round_in_phase_ == 0);
    for (std::uint64_t r = 0; r <= bp_rounds_; ++r) execute_round(rng);
    PC_ENSURES(round_in_phase_ == 0);
  }

  bool done() const noexcept { return table_.has_consensus(); }
  const OpinionTable& table() const noexcept { return table_; }

  std::uint64_t rounds() const noexcept { return rounds_; }
  std::uint64_t phases_completed() const noexcept {
    return phases_completed_;
  }
  std::uint64_t bp_rounds_per_phase() const noexcept { return bp_rounds_; }
  bool at_phase_start() const noexcept { return round_in_phase_ == 0; }

  /// Number of nodes whose extra bit is currently set.
  std::uint64_t bits_set() const noexcept {
    std::uint64_t total = 0;
    for (const auto b : bit_) total += b;
    return total;
  }

 private:
  void two_choices_round(Xoshiro256& rng) {
    const auto n = static_cast<NodeId>(table_.num_nodes());
    table_.copy_colors_into(prev_colors_);
    for (NodeId u = 0; u < n; ++u) {
      const NodeId v = graph_->sample_neighbor(u, rng);
      const NodeId w = graph_->sample_neighbor(u, rng);
      if (prev_colors_[v] == prev_colors_[w]) {
        table_.set_color(u, prev_colors_[v]);
        bit_[u] = 1;
      } else {
        bit_[u] = 0;
      }
    }
  }

  void bit_propagation_round(Xoshiro256& rng) {
    const auto n = static_cast<NodeId>(table_.num_nodes());
    table_.copy_colors_into(prev_colors_);
    prev_bits_ = bit_;
    for (NodeId u = 0; u < n; ++u) {
      if (prev_bits_[u]) continue;
      const NodeId v = graph_->sample_neighbor(u, rng);
      if (prev_bits_[v]) {
        table_.set_color(u, prev_colors_[v]);
        bit_[u] = 1;
      }
    }
  }

  const G* graph_;
  OpinionTable table_;
  std::vector<std::uint8_t> bit_;
  std::vector<ColorId> prev_colors_;
  std::vector<std::uint8_t> prev_bits_;
  std::uint64_t bp_rounds_ = 0;
  std::uint64_t round_in_phase_ = 0;
  std::uint64_t phases_completed_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace plurality
