#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "support/math.hpp"

namespace plurality {

AsyncSchedule::AsyncSchedule(std::uint64_t n, std::uint32_t k,
                             AsyncParams params) {
  PC_EXPECTS(n >= 3);
  PC_EXPECTS(k >= 1);
  PC_EXPECTS(params.delta_mult > 0.0);
  PC_EXPECTS(params.bp_mult > 0.0);
  PC_EXPECTS(params.sync_mult > 0.0);
  PC_EXPECTS(params.phase_mult > 0.0);
  PC_EXPECTS(params.extra_phases >= 0);
  PC_EXPECTS(params.endgame_mult > 0.0);

  const auto dn = static_cast<double>(n);
  const double ln_n = safe_ln(dn);
  const double lnln_n = ln_ln(dn);

  delta_ = ceil_at_least(params.delta_mult * ln_n / lnln_n);
  // B = Theta(ln n / ln ln n); the max with log2(k)+4 keeps the doubling
  // argument valid for small n paired with large k (the theorem's regime
  // k <= exp(log n / log log n) makes the first term dominate anyway).
  bp_ticks_ = std::max(
      ceil_at_least(params.bp_mult * ln_n / lnln_n),
      ceil_at_least(std::log2(std::max<double>(k, 2.0))) + 4);
  sync_ticks_ = ceil_at_least(params.sync_mult * lnln_n * lnln_n * lnln_n);
  num_phases_ = ceil_at_least(params.phase_mult * lnln_n) +
                static_cast<std::uint64_t>(params.extra_phases);
  phase_length_ = 6 * delta_ + bp_ticks_ + sync_ticks_ + 1;
  part1_length_ = num_phases_ * phase_length_;
  endgame_ticks_ = ceil_at_least(params.endgame_mult * ln_n);
  sync_enabled_ = params.sync_gadget_enabled;

  PC_ENSURES(delta_ >= 1);
  PC_ENSURES(phase_length_ > 6 * delta_);
  PC_ENSURES(part1_length_ >= phase_length_);
}

}  // namespace plurality
