#pragma once

/// \file voter.hpp
/// The classic voter model (single choice): adopt the color of one
/// uniformly sampled neighbor. It solves consensus but not *plurality*
/// consensus — the winner is proportional to initial support, and the
/// run time on the clique is Theta(n). Included as the canonical
/// baseline the Two-Choices literature (paper ref [2]) improves on.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "opinion/assignment.hpp"
#include "opinion/table.hpp"
#include "rng/xoshiro256.hpp"

namespace plurality {

/// Synchronous voter: every node simultaneously copies a random
/// neighbor's (pre-round) color.
template <GraphTopology G>
class VoterSync {
 public:
  VoterSync(const G& graph, Assignment assignment)
      : graph_(&graph),
        table_(std::move(assignment.colors), assignment.num_colors) {
    PC_EXPECTS(graph.num_nodes() == table_.num_nodes());
  }

  void execute_round(Xoshiro256& rng) {
    const auto n = static_cast<NodeId>(table_.num_nodes());
    table_.copy_colors_into(prev_);
    for (NodeId u = 0; u < n; ++u) {
      const NodeId v = graph_->sample_neighbor(u, rng);
      table_.set_color(u, prev_[v]);
    }
    ++rounds_;
  }

  bool done() const noexcept { return table_.has_consensus(); }
  const OpinionTable& table() const noexcept { return table_; }
  std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  const G* graph_;
  OpinionTable table_;
  std::vector<ColorId> prev_;
  std::uint64_t rounds_ = 0;
};

/// Asynchronous voter: a ticking node copies a random neighbor's color.
template <GraphTopology G>
class VoterAsync {
 public:
  VoterAsync(const G& graph, Assignment assignment)
      : graph_(&graph),
        table_(std::move(assignment.colors), assignment.num_colors) {
    PC_EXPECTS(graph.num_nodes() == table_.num_nodes());
  }

  void on_tick(NodeId u, Xoshiro256& rng) {
    const NodeId v = graph_->sample_neighbor(u, rng);
    table_.set_color(u, table_.color(v));
  }

  /// Sharded-engine form of on_tick: the same update as a pure color
  /// proposal off a read view (see sim/sharded_engine.hpp).
  template <typename View>
  ColorId propose(NodeId u, const View& view, Xoshiro256& rng) const {
    return view.color(graph_->sample_neighbor(u, rng));
  }

  /// Delayed form of the tick, split at the query/response boundary for
  /// the sharded engine's delivery queues (run_sharded_queued): query()
  /// samples the neighbor's color at query time, apply_query() resolves
  /// the update when the answer is delivered.
  struct Query {
    ColorId sampled;
  };

  template <typename View>
  Query query(NodeId u, const View& view, Xoshiro256& rng) const {
    return Query{view.color(graph_->sample_neighbor(u, rng))};
  }

  template <typename View>
  ColorId apply_query(NodeId /*u*/, const Query& q,
                      const View& /*view*/) const {
    return q.sampled;
  }

  std::uint64_t num_nodes() const noexcept { return table_.num_nodes(); }
  bool done() const noexcept { return table_.has_consensus(); }
  const OpinionTable& table() const noexcept { return table_; }
  OpinionTable& mutable_table() noexcept { return table_; }

 private:
  const G* graph_;
  OpinionTable table_;
};

}  // namespace plurality
