#pragma once

/// \file three_majority.hpp
/// The 3-Majority dynamics: sample three uniform random neighbors and
/// adopt the majority color among them; if all three differ, adopt the
/// first sample. A standard comparison point in the plurality-consensus
/// literature (Becchetti et al., SODA'16) with behavior close to
/// Two-Choices on the clique; included as an extra baseline for the
/// head-to-head experiments.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "opinion/assignment.hpp"
#include "opinion/table.hpp"
#include "rng/xoshiro256.hpp"

namespace plurality {

namespace detail {

/// Majority of three colors; falls back to `a` when all three differ.
inline ColorId majority_of_three(ColorId a, ColorId b, ColorId c) noexcept {
  if (b == c) return b;
  return a;  // covers a==b, a==c, and the all-distinct fallback
}

}  // namespace detail

/// Synchronous 3-Majority.
template <GraphTopology G>
class ThreeMajoritySync {
 public:
  ThreeMajoritySync(const G& graph, Assignment assignment)
      : graph_(&graph),
        table_(std::move(assignment.colors), assignment.num_colors) {
    PC_EXPECTS(graph.num_nodes() == table_.num_nodes());
  }

  void execute_round(Xoshiro256& rng) {
    const auto n = static_cast<NodeId>(table_.num_nodes());
    table_.copy_colors_into(prev_);
    for (NodeId u = 0; u < n; ++u) {
      const ColorId a = prev_[graph_->sample_neighbor(u, rng)];
      const ColorId b = prev_[graph_->sample_neighbor(u, rng)];
      const ColorId c = prev_[graph_->sample_neighbor(u, rng)];
      table_.set_color(u, detail::majority_of_three(a, b, c));
    }
    ++rounds_;
  }

  bool done() const noexcept { return table_.has_consensus(); }
  const OpinionTable& table() const noexcept { return table_; }
  std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  const G* graph_;
  OpinionTable table_;
  std::vector<ColorId> prev_;
  std::uint64_t rounds_ = 0;
};

/// Asynchronous 3-Majority.
template <GraphTopology G>
class ThreeMajorityAsync {
 public:
  ThreeMajorityAsync(const G& graph, Assignment assignment)
      : graph_(&graph),
        table_(std::move(assignment.colors), assignment.num_colors) {
    PC_EXPECTS(graph.num_nodes() == table_.num_nodes());
  }

  void on_tick(NodeId u, Xoshiro256& rng) {
    const ColorId a = table_.color(graph_->sample_neighbor(u, rng));
    const ColorId b = table_.color(graph_->sample_neighbor(u, rng));
    const ColorId c = table_.color(graph_->sample_neighbor(u, rng));
    table_.set_color(u, detail::majority_of_three(a, b, c));
  }

  /// Sharded-engine form of on_tick: the same update as a pure color
  /// proposal off a read view (see sim/sharded_engine.hpp).
  template <typename View>
  ColorId propose(NodeId u, const View& view, Xoshiro256& rng) const {
    const ColorId a = view.color(graph_->sample_neighbor(u, rng));
    const ColorId b = view.color(graph_->sample_neighbor(u, rng));
    const ColorId c = view.color(graph_->sample_neighbor(u, rng));
    return detail::majority_of_three(a, b, c);
  }

  /// Delayed form of the tick, split at the query/response boundary for
  /// the sharded engine's delivery queues (run_sharded_queued): the
  /// three neighbor colors are read at query time (matching the
  /// ThreeMajorityAsyncDelayed message semantics), the majority rule is
  /// resolved at delivery.
  struct Query {
    ColorId a;
    ColorId b;
    ColorId c;
  };

  template <typename View>
  Query query(NodeId u, const View& view, Xoshiro256& rng) const {
    return Query{view.color(graph_->sample_neighbor(u, rng)),
                 view.color(graph_->sample_neighbor(u, rng)),
                 view.color(graph_->sample_neighbor(u, rng))};
  }

  template <typename View>
  ColorId apply_query(NodeId /*u*/, const Query& q,
                      const View& /*view*/) const {
    return detail::majority_of_three(q.a, q.b, q.c);
  }

  std::uint64_t num_nodes() const noexcept { return table_.num_nodes(); }
  bool done() const noexcept { return table_.has_consensus(); }
  const OpinionTable& table() const noexcept { return table_; }
  OpinionTable& mutable_table() noexcept { return table_; }

 private:
  const G* graph_;
  OpinionTable table_;
};

}  // namespace plurality
