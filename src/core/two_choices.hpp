#pragma once

/// \file two_choices.hpp
/// The Two-Choices protocol (Cooper, Elsässer & Radzik, paper ref [2]):
/// sample two uniform random neighbors with replacement; adopt their
/// color iff the two samples coincide. Theorem 1.1 gives the clique
/// run time O(n/c1 * log n) under bias z*sqrt(n log n) — which is
/// Omega(k) when all minorities tie — and experiments E1–E3 reproduce
/// both sides.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "opinion/assignment.hpp"
#include "opinion/table.hpp"
#include "rng/xoshiro256.hpp"

namespace plurality {

/// Synchronous Two-Choices: all nodes sample off the pre-round snapshot
/// and update simultaneously.
template <GraphTopology G>
class TwoChoicesSync {
 public:
  TwoChoicesSync(const G& graph, Assignment assignment)
      : graph_(&graph),
        table_(std::move(assignment.colors), assignment.num_colors) {
    PC_EXPECTS(graph.num_nodes() == table_.num_nodes());
  }

  void execute_round(Xoshiro256& rng) {
    const auto n = static_cast<NodeId>(table_.num_nodes());
    table_.copy_colors_into(prev_);
    for (NodeId u = 0; u < n; ++u) {
      const NodeId v = graph_->sample_neighbor(u, rng);
      const NodeId w = graph_->sample_neighbor(u, rng);
      if (prev_[v] == prev_[w]) table_.set_color(u, prev_[v]);
    }
    ++rounds_;
  }

  bool done() const noexcept { return table_.has_consensus(); }
  const OpinionTable& table() const noexcept { return table_; }
  std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  const G* graph_;
  OpinionTable table_;
  std::vector<ColorId> prev_;
  std::uint64_t rounds_ = 0;
};

/// Asynchronous Two-Choices: a ticking node samples two neighbors and
/// adopts on coincidence. Also serves as the endgame (part 2) of the
/// paper's main asynchronous protocol.
template <GraphTopology G>
class TwoChoicesAsync {
 public:
  TwoChoicesAsync(const G& graph, Assignment assignment)
      : graph_(&graph),
        table_(std::move(assignment.colors), assignment.num_colors) {
    PC_EXPECTS(graph.num_nodes() == table_.num_nodes());
  }

  void on_tick(NodeId u, Xoshiro256& rng) {
    const NodeId v = graph_->sample_neighbor(u, rng);
    const NodeId w = graph_->sample_neighbor(u, rng);
    const ColorId cv = table_.color(v);
    if (cv == table_.color(w)) table_.set_color(u, cv);
  }

  /// Sharded-engine form of on_tick: the same update as a pure color
  /// proposal off a read view (see sim/sharded_engine.hpp).
  template <typename View>
  ColorId propose(NodeId u, const View& view, Xoshiro256& rng) const {
    const ColorId cv = view.color(graph_->sample_neighbor(u, rng));
    const ColorId cw = view.color(graph_->sample_neighbor(u, rng));
    return cv == cw ? cv : view.color(u);
  }

  /// Delayed form of the tick, split at the query/response boundary for
  /// the sharded engine's delivery queues (run_sharded_queued): the two
  /// neighbor colors are read at query time (matching the
  /// TwoChoicesAsyncDelayed message semantics), and the
  /// adopt-on-coincidence rule is resolved against the node's *current*
  /// color when the answer is delivered.
  struct Query {
    ColorId first;
    ColorId second;
  };

  template <typename View>
  Query query(NodeId u, const View& view, Xoshiro256& rng) const {
    return Query{view.color(graph_->sample_neighbor(u, rng)),
                 view.color(graph_->sample_neighbor(u, rng))};
  }

  template <typename View>
  ColorId apply_query(NodeId u, const Query& q, const View& view) const {
    return q.first == q.second ? q.first : view.color(u);
  }

  std::uint64_t num_nodes() const noexcept { return table_.num_nodes(); }
  bool done() const noexcept { return table_.has_consensus(); }
  const OpinionTable& table() const noexcept { return table_; }
  OpinionTable& mutable_table() noexcept { return table_; }

 private:
  const G* graph_;
  OpinionTable table_;
};

}  // namespace plurality
