#pragma once

/// \file async_one_extra_bit.hpp
/// The paper's main contribution (§3): OneExtraBit adapted to the
/// asynchronous model via weak synchronicity.
///
/// Every node keeps a *real time* (count of its own ticks) and a
/// *working time* (program counter into the AsyncSchedule). On a tick
/// the node executes the instruction its working time points at, then
/// advances it. The Sync Gadget sub-phase re-anchors working times to
/// the median of sampled real times, keeping all but o(n) nodes within
/// O(Delta) of each other so the Two-Choices / commit / Bit-Propagation
/// steps interleave correctly despite Poisson clock jitter.
///
/// Part 1 (num_phases phases) drives the plurality color to support
/// (1 - eps) n; part 2 (the endgame, §3.2) is plain asynchronous
/// Two-Choices run for Theta(log n) working-time units.
///
/// Engineering guard, documented deviation from the paper's text: a
/// node jumps at most once per phase (tracked in last_jump_phase_), so
/// a median landing *before* the node's own jump step cannot cause a
/// jump-replay loop. On the typical path the median lands just past the
/// phase end and the guard never binds.
///
/// Bit representation: the paper defines the bit as "set iff the node
/// changed its opinion in the (current phase's) Two-Choices sub-phase".
/// We store it as a phase tag (bit_phase_[u] == phase+1 means "set in
/// `phase`", 0 means unset) rather than a boolean: a plain boolean
/// relies on every node executing its commit step each phase to clear
/// staleness, and a straggler that skips a commit (a forward jump, or a
/// persistently slow clock) would otherwise serve *last phase's* color
/// as a fresh bit during Bit-Propagation, poisoning the amplification.
/// Phase-tagged bits make cross-phase reads inert, which is exactly the
/// paper's semantics under desynchronization.

#include <cstdint>
#include <utility>
#include <vector>

#include "core/schedule.hpp"
#include "core/sync_gadget.hpp"
#include "graph/graph.hpp"
#include "opinion/assignment.hpp"
#include "opinion/table.hpp"
#include "rng/xoshiro256.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"

namespace plurality {

template <GraphTopology G>
class AsyncOneExtraBit {
 public:
  /// `schedule` must have been built for this n and k (or stricter).
  AsyncOneExtraBit(const G& graph, Assignment assignment,
                   AsyncSchedule schedule)
      : graph_(&graph),
        schedule_(std::move(schedule)),
        table_(std::move(assignment.colors), assignment.num_colors),
        gadget_(table_.num_nodes(),
                static_cast<std::uint32_t>(
                    std::max<std::uint64_t>(schedule_.sync_ticks(), 1))) {
    PC_EXPECTS(graph.num_nodes() == table_.num_nodes());
    PC_EXPECTS(table_.num_nodes() > 0);
    const std::uint64_t n = table_.num_nodes();
    working_time_.assign(n, 0);
    real_ticks_.assign(n, 0);
    intermediate_.assign(n, 0);
    has_intermediate_.assign(n, 0);
    bit_phase_.assign(n, 0);
    finished_.assign(n, 0);
    last_jump_phase_.assign(n, kNoJump);
  }

  /// Convenience factory deriving the schedule from the assignment.
  static AsyncOneExtraBit make(const G& graph, Assignment assignment,
                               AsyncParams params = {}) {
    AsyncSchedule schedule(graph.num_nodes(), assignment.num_colors, params);
    return AsyncOneExtraBit(graph, std::move(assignment), schedule);
  }

  void on_tick(NodeId u, Xoshiro256& rng) {
    ++real_ticks_[u];
    const std::uint64_t wt = working_time_[u];
    switch (schedule_.op_at(wt)) {
      case AsyncSchedule::Op::kTwoChoicesSample: {
        const NodeId v = graph_->sample_neighbor(u, rng);
        const NodeId w = graph_->sample_neighbor(u, rng);
        const ColorId cv = table_.color(v);
        if (cv == table_.color(w)) {
          intermediate_[u] = cv;
          has_intermediate_[u] = 1;
        } else {
          has_intermediate_[u] = 0;
        }
        break;
      }
      case AsyncSchedule::Op::kCommit: {
        const auto tag =
            static_cast<std::uint32_t>(schedule_.phase_of(wt)) + 1;
        if (has_intermediate_[u]) {
          table_.set_color(u, intermediate_[u]);
          bit_phase_[u] = tag;
          has_intermediate_[u] = 0;
        } else {
          bit_phase_[u] = 0;
        }
        break;
      }
      case AsyncSchedule::Op::kBitProp: {
        const auto tag =
            static_cast<std::uint32_t>(schedule_.phase_of(wt)) + 1;
        if (bit_phase_[u] != tag) {
          const NodeId v = graph_->sample_neighbor(u, rng);
          if (bit_phase_[v] == tag) {
            table_.set_color(u, table_.color(v));
            bit_phase_[u] = tag;
          }
        }
        break;
      }
      case AsyncSchedule::Op::kSyncSample: {
        const NodeId v = graph_->sample_neighbor(u, rng);
        gadget_.record(u, static_cast<std::int64_t>(real_ticks_[v]) -
                              static_cast<std::int64_t>(real_ticks_[u]));
        break;
      }
      case AsyncSchedule::Op::kJump: {
        const std::uint64_t phase = schedule_.phase_of(wt);
        if (last_jump_phase_[u] != phase && gadget_.count(u) > 0) {
          const std::int64_t target =
              static_cast<std::int64_t>(real_ticks_[u]) +
              gadget_.median_offset(u);
          const auto new_wt =
              static_cast<std::uint64_t>(std::max<std::int64_t>(target, 0));
          jump_distance_total_ +=
              new_wt >= wt ? new_wt - wt : wt - new_wt;
          ++jumps_performed_;
          working_time_[u] = new_wt;
          last_jump_phase_[u] = static_cast<std::uint32_t>(phase);
          gadget_.clear(u);
          return;  // the jump set the program counter; do not advance it
        }
        gadget_.clear(u);
        break;
      }
      case AsyncSchedule::Op::kEndgame: {
        const NodeId v = graph_->sample_neighbor(u, rng);
        const NodeId w = graph_->sample_neighbor(u, rng);
        const ColorId cv = table_.color(v);
        if (cv == table_.color(w)) table_.set_color(u, cv);
        break;
      }
      case AsyncSchedule::Op::kDone: {
        if (!finished_[u]) {
          finished_[u] = 1;
          ++finished_count_;
        }
        break;
      }
      case AsyncSchedule::Op::kWait:
        break;
    }
    ++working_time_[u];
  }

  std::uint64_t num_nodes() const noexcept { return table_.num_nodes(); }

  /// Done on consensus (success) or when every node ran off the end of
  /// its program (failure — the engine reports consensus=false).
  bool done() const noexcept {
    return table_.has_consensus() || finished_count_ == table_.num_nodes();
  }

  const OpinionTable& table() const noexcept { return table_; }
  const AsyncSchedule& schedule() const noexcept { return schedule_; }

  // --- diagnostics for experiments E7 / E11 and tests ------------------

  /// max - min of node working times (O(n)); 0 for an empty population.
  std::uint64_t working_time_spread() const noexcept {
    if (working_time_.empty()) return 0;
    std::uint64_t lo = working_time_[0];
    std::uint64_t hi = working_time_[0];
    for (const auto wt : working_time_) {
      lo = std::min(lo, wt);
      hi = std::max(hi, wt);
    }
    return hi - lo;
  }

  /// Median node working time (O(n)). Requires a non-empty population
  /// (guaranteed by the constructor).
  std::uint64_t median_working_time() const {
    PC_EXPECTS(!working_time_.empty());
    std::vector<std::uint64_t> copy = working_time_;
    return median_inplace(std::span<std::uint64_t>(copy));
  }

  /// Fraction of nodes whose working time is more than `window` from
  /// the median — the paper's "poorly synchronized" nodes (O(n)).
  double fraction_poorly_synced(std::uint64_t window) const {
    const std::uint64_t med = median_working_time();
    std::uint64_t bad = 0;
    for (const auto wt : working_time_) {
      const std::uint64_t dev = wt >= med ? wt - med : med - wt;
      if (dev > window) ++bad;
    }
    return static_cast<double>(bad) /
           static_cast<double>(working_time_.size());
  }

  std::uint64_t working_time_of(NodeId u) const {
    PC_EXPECTS(u < working_time_.size());
    return working_time_[u];
  }

  std::uint64_t real_ticks_of(NodeId u) const {
    PC_EXPECTS(u < real_ticks_.size());
    return real_ticks_[u];
  }

  /// True iff u's bit is set for *some* phase (diagnostics only; the
  /// protocol itself always compares against the current phase tag).
  bool bit_of(NodeId u) const {
    PC_EXPECTS(u < bit_phase_.size());
    return bit_phase_[u] != 0;
  }

  std::uint64_t bits_set() const noexcept {
    std::uint64_t total = 0;
    for (const auto b : bit_phase_) total += (b != 0);
    return total;
  }

  std::uint64_t nodes_finished() const noexcept { return finished_count_; }
  std::uint64_t jumps_performed() const noexcept { return jumps_performed_; }

  /// Mean absolute working-time displacement per executed jump.
  double mean_jump_distance() const noexcept {
    return jumps_performed_ == 0
               ? 0.0
               : static_cast<double>(jump_distance_total_) /
                     static_cast<double>(jumps_performed_);
  }

 private:
  static constexpr std::uint32_t kNoJump = ~std::uint32_t{0};

  const G* graph_;
  AsyncSchedule schedule_;
  OpinionTable table_;
  SyncGadgetStore gadget_;
  std::vector<std::uint64_t> working_time_;
  std::vector<std::uint64_t> real_ticks_;
  std::vector<ColorId> intermediate_;
  std::vector<std::uint8_t> has_intermediate_;
  std::vector<std::uint32_t> bit_phase_;
  std::vector<std::uint8_t> finished_;
  std::vector<std::uint32_t> last_jump_phase_;
  std::uint64_t finished_count_ = 0;
  std::uint64_t jumps_performed_ = 0;
  std::uint64_t jump_distance_total_ = 0;
};

}  // namespace plurality
