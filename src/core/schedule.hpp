#pragma once

/// \file schedule.hpp
/// The working-time program of the asynchronous protocol (paper §3.1).
/// A node's working time is an index into this fixed schedule; the
/// schedule maps it to the instruction to perform. Phases consist of
/// three sub-phases — Two-Choices, Bit-Propagation, Sync Gadget — padded
/// with do-nothing blocks of length Delta that absorb clock jitter so
/// that (all but o(n)) nodes execute the critical steps almost
/// simultaneously ("weak synchronicity").
///
/// In-phase layout (offsets in working-time units, Delta = block length,
/// B = bit-propagation ticks, S = sync-gadget sampling ticks):
///
///   [0, Delta)                 wait (jump landing zone — see below)
///   [Delta]                    Two-Choices sample step
///   (Delta, 3*Delta)           wait
///   [3*Delta]                  commit step
///   (3*Delta, 4*Delta)         wait
///   [4*Delta, 4*Delta+B)       bit-propagation (one sample per tick)
///   [4*Delta+B, 5*Delta+B)     wait
///   [5*Delta+B, 5*Delta+B+S)   sync-gadget sampling (one per tick)
///   [5*Delta+B+S, 6*Delta+B+S) wait ("proper waiting time")
///   [6*Delta+B+S]              jump step
///
/// so phase_length = 6*Delta + B + S + 1. After `num_phases` phases
/// (part 1) the node runs `endgame_ticks` of plain asynchronous
/// Two-Choices (part 2, §3.2), then idles.
///
/// The leading wait block exists because the jump step sets the working
/// time to (approximately) the population-median real time, which for a
/// well-synchronized node lands just past the phase boundary: landing
/// inside a wait block costs nothing, whereas a phase that opened with
/// the Two-Choices sample would make every slightly-overshooting jump
/// skip the critical instruction. This is precisely the "tactical
/// waiting" role §3.1 assigns to the do-nothing blocks.

#include <cstdint>

#include "support/assert.hpp"

namespace plurality {

/// Multipliers for the Theta(.) expressions of the paper; defaults are
/// the constants DESIGN.md documents (chosen so every experiment
/// converges at laptop scales). The ablation experiment A1 sweeps them.
struct AsyncParams {
  double delta_mult = 1.0;    ///< Delta = delta_mult * ln n / ln ln n
  double bp_mult = 3.0;       ///< B = bp_mult * ln n / ln ln n
  double sync_mult = 1.0;     ///< S = sync_mult * (ln ln n)^3
  double phase_mult = 2.0;    ///< phases = phase_mult * ln ln n + extra
  int extra_phases = 4;       ///< additive slack absorbing small n
  double endgame_mult = 8.0;  ///< endgame = endgame_mult * ln n
  bool sync_gadget_enabled = true;  ///< ablation switch (experiment E7)
};

class AsyncSchedule {
 public:
  /// The instruction a working time maps to.
  enum class Op : std::uint8_t {
    kTwoChoicesSample,  ///< sample two neighbors, set intermediate color
    kCommit,            ///< adopt intermediate color, set bit accordingly
    kBitProp,           ///< if bit unset: sample; copy from bit-set node
    kSyncSample,        ///< sample a neighbor's real time
    kJump,              ///< set working time to median of samples
    kWait,              ///< do nothing (tactical waiting)
    kEndgame,           ///< plain async two-choices tick (part 2)
    kDone               ///< program finished; idle
  };

  /// Derives all lengths from n (>= 3) and the number of colors k (>= 1).
  AsyncSchedule(std::uint64_t n, std::uint32_t k, AsyncParams params = {});

  Op op_at(std::uint64_t working_time) const noexcept {
    if (working_time >= part1_length_) {
      return working_time < part1_length_ + endgame_ticks_ ? Op::kEndgame
                                                           : Op::kDone;
    }
    const std::uint64_t off = working_time % phase_length_;
    if (off < delta_) return Op::kWait;  // jump landing zone
    if (off == delta_) return Op::kTwoChoicesSample;
    if (off < 3 * delta_) return Op::kWait;
    if (off == 3 * delta_) return Op::kCommit;
    if (off < 4 * delta_) return Op::kWait;
    if (off < 4 * delta_ + bp_ticks_) return Op::kBitProp;
    if (off < 5 * delta_ + bp_ticks_) return Op::kWait;
    if (off < 5 * delta_ + bp_ticks_ + sync_ticks_) {
      return sync_enabled_ ? Op::kSyncSample : Op::kWait;
    }
    if (off < 6 * delta_ + bp_ticks_ + sync_ticks_) return Op::kWait;
    return sync_enabled_ ? Op::kJump : Op::kWait;
  }

  /// Phase index of a part-1 working time; num_phases() once beyond.
  std::uint64_t phase_of(std::uint64_t working_time) const noexcept {
    if (working_time >= part1_length_) return num_phases_;
    return working_time / phase_length_;
  }

  std::uint64_t delta() const noexcept { return delta_; }
  std::uint64_t bp_ticks() const noexcept { return bp_ticks_; }
  std::uint64_t sync_ticks() const noexcept { return sync_ticks_; }
  std::uint64_t phase_length() const noexcept { return phase_length_; }
  std::uint64_t num_phases() const noexcept { return num_phases_; }
  std::uint64_t part1_length() const noexcept { return part1_length_; }
  std::uint64_t endgame_ticks() const noexcept { return endgame_ticks_; }
  /// Total program length (part 1 + endgame).
  std::uint64_t total_length() const noexcept {
    return part1_length_ + endgame_ticks_;
  }
  bool sync_gadget_enabled() const noexcept { return sync_enabled_; }

 private:
  std::uint64_t delta_ = 0;
  std::uint64_t bp_ticks_ = 0;
  std::uint64_t sync_ticks_ = 0;
  std::uint64_t phase_length_ = 0;
  std::uint64_t num_phases_ = 0;
  std::uint64_t part1_length_ = 0;
  std::uint64_t endgame_ticks_ = 0;
  bool sync_enabled_ = true;
};

}  // namespace plurality
