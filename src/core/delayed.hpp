#pragma once

/// \file delayed.hpp
/// Delayed-response protocol variants: the response-delay extension of
/// the source paper (§4) generalized to arbitrary edge-latency models
/// (sim/latency.hpp, after Bankhamer et al.).
///
/// Model implemented here: contacting a peer is instantaneous and the
/// peer answers immediately, but the answer travels back for a random
/// time drawn from the driver's LatencyModel. The answer therefore
/// carries the peer's state *as of the query tick* and is applied on
/// delivery. Answers arriving after the relevant step's deadline (e.g.
/// a two-choices answer arriving after the node already committed,
/// detected via a phase tag) are dropped — exactly the kind of
/// straggler the paper's tactical waiting blocks absorb.
///
/// None of these protocols samples a delay itself: every message is
/// posted via the delay-less Outbox::post, and the messaging driver
/// draws the latency from its model at enqueue time (the RNG-ownership
/// invariant in continuous_engine.hpp). Run them with
/// run_continuous_messaging(proto, latency_model, ...). Under
/// ZeroLatency they reproduce the instant-response protocols'
/// consensus-time distribution (enforced by
/// tests/test_model_equivalence.cpp); experiment E10 shows constant
/// mean delays leave the Theta(log n) run time intact, and experiment
/// L1 compares the latency families head to head.

#include <cstdint>
#include <utility>
#include <vector>

#include "core/schedule.hpp"
#include "core/sync_gadget.hpp"
#include "core/three_majority.hpp"
#include "graph/graph.hpp"
#include "opinion/assignment.hpp"
#include "opinion/table.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/continuous_engine.hpp"
#include "support/assert.hpp"

namespace plurality {

// QueryDiscipline (kBlocking | kFireAndForget) lives in sim/latency.hpp
// now: the sharded engine's delivery-queue driver implements the same
// disciplines, and sim/ must not depend on core/.

/// Asynchronous Two-Choices with delayed responses; the smallest
/// protocol exercising the messaging driver end to end. On each
/// (non-suppressed) tick the node samples two neighbors — read at
/// query time — and the matched pair travels back under the driver's
/// latency model; the update applies on delivery.
template <GraphTopology G>
class TwoChoicesAsyncDelayed {
 public:
  struct Message {
    ColorId first;
    ColorId second;
  };

  TwoChoicesAsyncDelayed(const G& graph, Assignment assignment,
                         QueryDiscipline discipline =
                             QueryDiscipline::kBlocking)
      : graph_(&graph),
        table_(std::move(assignment.colors), assignment.num_colors),
        discipline_(discipline) {
    PC_EXPECTS(graph.num_nodes() == table_.num_nodes());
    pending_.assign(table_.num_nodes(), 0);
  }

  void on_tick(NodeId u, Xoshiro256& rng, double /*now*/,
               Outbox<Message>& out) {
    if (discipline_ == QueryDiscipline::kBlocking && pending_[u]) return;
    const NodeId v = graph_->sample_neighbor(u, rng);
    const NodeId w = graph_->sample_neighbor(u, rng);
    pending_[u] = 1;
    out.post(u, Message{table_.color(v), table_.color(w)});
  }

  void on_message(NodeId u, const Message& m, Xoshiro256& /*rng*/,
                  double /*now*/, Outbox<Message>& /*out*/) {
    pending_[u] = 0;
    if (m.first == m.second) table_.set_color(u, m.first);
  }

  std::uint64_t num_nodes() const noexcept { return table_.num_nodes(); }
  bool done() const noexcept { return table_.has_consensus(); }
  const OpinionTable& table() const noexcept { return table_; }

 private:
  const G* graph_;
  OpinionTable table_;
  QueryDiscipline discipline_;
  std::vector<std::uint8_t> pending_;
};

/// Asynchronous 3-Majority with delayed responses: the tick samples
/// three neighbors at query time; the majority rule is applied when
/// the answer arrives. Same query disciplines as
/// TwoChoicesAsyncDelayed. The second baseline of experiment L1.
template <GraphTopology G>
class ThreeMajorityAsyncDelayed {
 public:
  struct Message {
    ColorId a;
    ColorId b;
    ColorId c;
  };

  ThreeMajorityAsyncDelayed(const G& graph, Assignment assignment,
                            QueryDiscipline discipline =
                                QueryDiscipline::kBlocking)
      : graph_(&graph),
        table_(std::move(assignment.colors), assignment.num_colors),
        discipline_(discipline) {
    PC_EXPECTS(graph.num_nodes() == table_.num_nodes());
    pending_.assign(table_.num_nodes(), 0);
  }

  void on_tick(NodeId u, Xoshiro256& rng, double /*now*/,
               Outbox<Message>& out) {
    if (discipline_ == QueryDiscipline::kBlocking && pending_[u]) return;
    const ColorId a = table_.color(graph_->sample_neighbor(u, rng));
    const ColorId b = table_.color(graph_->sample_neighbor(u, rng));
    const ColorId c = table_.color(graph_->sample_neighbor(u, rng));
    pending_[u] = 1;
    out.post(u, Message{a, b, c});
  }

  void on_message(NodeId u, const Message& m, Xoshiro256& /*rng*/,
                  double /*now*/, Outbox<Message>& /*out*/) {
    pending_[u] = 0;
    table_.set_color(u, detail::majority_of_three(m.a, m.b, m.c));
  }

  std::uint64_t num_nodes() const noexcept { return table_.num_nodes(); }
  bool done() const noexcept { return table_.has_consensus(); }
  const OpinionTable& table() const noexcept { return table_; }

 private:
  const G* graph_;
  OpinionTable table_;
  QueryDiscipline discipline_;
  std::vector<std::uint8_t> pending_;
};

/// The full asynchronous OneExtraBit protocol under delayed responses.
/// Identical working-time program to AsyncOneExtraBit; the sample steps
/// post delayed answers instead of reading peers synchronously.
template <GraphTopology G>
class AsyncOneExtraBitDelayed {
 public:
  enum class Kind : std::uint8_t { kTwoChoices, kBitProp, kSync, kEndgame };

  struct Message {
    Kind kind;
    std::uint32_t phase;      ///< phase tag at query time (staleness check)
    ColorId color_a;          ///< first sampled color (or copied color)
    ColorId color_b;          ///< second sampled color (two-choices only)
    std::uint8_t peer_bit;    ///< peer's bit (bit-propagation only)
    std::int64_t peer_ticks;  ///< peer's real time (sync samples only)
  };

  AsyncOneExtraBitDelayed(const G& graph, Assignment assignment,
                          AsyncSchedule schedule)
      : graph_(&graph),
        schedule_(schedule),
        table_(std::move(assignment.colors), assignment.num_colors),
        gadget_(table_.num_nodes(),
                static_cast<std::uint32_t>(
                    std::max<std::uint64_t>(schedule.sync_ticks(), 1))) {
    PC_EXPECTS(graph.num_nodes() == table_.num_nodes());
    const std::uint64_t n = table_.num_nodes();
    working_time_.assign(n, 0);
    real_ticks_.assign(n, 0);
    intermediate_.assign(n, 0);
    has_intermediate_.assign(n, 0);
    bit_phase_.assign(n, 0);
    finished_.assign(n, 0);
    last_jump_phase_.assign(n, kNoJump);
  }

  static AsyncOneExtraBitDelayed make(const G& graph, Assignment assignment,
                                      AsyncParams params = {}) {
    AsyncSchedule schedule(graph.num_nodes(), assignment.num_colors, params);
    return AsyncOneExtraBitDelayed(graph, std::move(assignment), schedule);
  }

  void on_tick(NodeId u, Xoshiro256& rng, double /*now*/,
               Outbox<Message>& out) {
    ++real_ticks_[u];
    const std::uint64_t wt = working_time_[u];
    const auto phase = static_cast<std::uint32_t>(schedule_.phase_of(wt));
    switch (schedule_.op_at(wt)) {
      case AsyncSchedule::Op::kTwoChoicesSample: {
        const NodeId v = graph_->sample_neighbor(u, rng);
        const NodeId w = graph_->sample_neighbor(u, rng);
        out.post(u, Message{Kind::kTwoChoices, phase, table_.color(v),
                            table_.color(w), 0, 0});
        has_intermediate_[u] = 0;  // reset; the answer may re-arm it
        break;
      }
      case AsyncSchedule::Op::kCommit: {
        if (has_intermediate_[u]) {
          table_.set_color(u, intermediate_[u]);
          bit_phase_[u] = phase + 1;
          has_intermediate_[u] = 0;
        } else {
          bit_phase_[u] = 0;
        }
        break;
      }
      case AsyncSchedule::Op::kBitProp: {
        if (bit_phase_[u] != phase + 1) {
          const NodeId v = graph_->sample_neighbor(u, rng);
          // Phase-tagged bit (see async_one_extra_bit.hpp): v's bit only
          // counts if it was set in the querier's current phase.
          const std::uint8_t fresh = bit_phase_[v] == phase + 1 ? 1 : 0;
          out.post(u, Message{Kind::kBitProp, phase, table_.color(v), 0,
                              fresh, 0});
        }
        break;
      }
      case AsyncSchedule::Op::kSyncSample: {
        const NodeId v = graph_->sample_neighbor(u, rng);
        out.post(u, Message{Kind::kSync, phase, 0, 0, 0,
                            static_cast<std::int64_t>(real_ticks_[v])});
        break;
      }
      case AsyncSchedule::Op::kJump: {
        if (last_jump_phase_[u] != phase && gadget_.count(u) > 0) {
          const std::int64_t target =
              static_cast<std::int64_t>(real_ticks_[u]) +
              gadget_.median_offset(u);
          working_time_[u] =
              static_cast<std::uint64_t>(std::max<std::int64_t>(target, 0));
          last_jump_phase_[u] = phase;
          gadget_.clear(u);
          return;
        }
        gadget_.clear(u);
        break;
      }
      case AsyncSchedule::Op::kEndgame: {
        const NodeId v = graph_->sample_neighbor(u, rng);
        const NodeId w = graph_->sample_neighbor(u, rng);
        out.post(u, Message{Kind::kEndgame, phase, table_.color(v),
                            table_.color(w), 0, 0});
        break;
      }
      case AsyncSchedule::Op::kDone: {
        if (!finished_[u]) {
          finished_[u] = 1;
          ++finished_count_;
        }
        break;
      }
      case AsyncSchedule::Op::kWait:
        break;
    }
    ++working_time_[u];
  }

  void on_message(NodeId u, const Message& m, Xoshiro256& /*rng*/,
                  double /*now*/, Outbox<Message>& /*out*/) {
    const std::uint64_t wt = working_time_[u];
    const auto current_phase =
        static_cast<std::uint32_t>(schedule_.phase_of(wt));
    switch (m.kind) {
      case Kind::kTwoChoices: {
        // Usable only until this phase's commit step (offset 3*Delta).
        if (m.phase != current_phase) return;
        if (wt % schedule_.phase_length() > 3 * schedule_.delta()) return;
        if (m.color_a == m.color_b) {
          intermediate_[u] = m.color_a;
          has_intermediate_[u] = 1;
        }
        break;
      }
      case Kind::kBitProp: {
        if (m.phase != current_phase) return;  // stale answer: drop
        if (bit_phase_[u] != current_phase + 1 && m.peer_bit) {
          table_.set_color(u, m.color_a);
          bit_phase_[u] = current_phase + 1;
        }
        break;
      }
      case Kind::kSync: {
        if (m.phase != current_phase) return;
        gadget_.record(u, m.peer_ticks -
                              static_cast<std::int64_t>(real_ticks_[u]));
        break;
      }
      case Kind::kEndgame: {
        if (m.color_a == m.color_b) table_.set_color(u, m.color_a);
        break;
      }
    }
  }

  std::uint64_t num_nodes() const noexcept { return table_.num_nodes(); }

  bool done() const noexcept {
    return table_.has_consensus() || finished_count_ == table_.num_nodes();
  }

  const OpinionTable& table() const noexcept { return table_; }
  const AsyncSchedule& schedule() const noexcept { return schedule_; }
  std::uint64_t nodes_finished() const noexcept { return finished_count_; }

 private:
  static constexpr std::uint32_t kNoJump = ~std::uint32_t{0};

  const G* graph_;
  AsyncSchedule schedule_;
  OpinionTable table_;
  SyncGadgetStore gadget_;
  std::vector<std::uint64_t> working_time_;
  std::vector<std::uint64_t> real_ticks_;
  std::vector<ColorId> intermediate_;
  std::vector<std::uint8_t> has_intermediate_;
  std::vector<std::uint32_t> bit_phase_;
  std::vector<std::uint8_t> finished_;
  std::vector<std::uint32_t> last_jump_phase_;
  std::uint64_t finished_count_ = 0;
};

}  // namespace plurality
