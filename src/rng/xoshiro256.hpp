#pragma once

/// \file xoshiro256.hpp
/// xoshiro256++ (Blackman & Vigna, 2019): the library's workhorse
/// generator. 256-bit state, period 2^256 - 1, passes BigCrush, and is
/// faster than std::mt19937_64. jump()/long_jump() provide 2^128 / 2^192
/// step skips for constructing provably non-overlapping parallel streams.

#include <cstdint>

#include "rng/splitmix64.hpp"

namespace plurality {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by expanding a 64-bit seed with SplitMix64
  /// (the seeding procedure recommended by the xoshiro authors).
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Advances the state by 2^128 steps; equivalent to 2^128 next() calls.
  void jump() noexcept;

  /// Advances the state by 2^192 steps.
  void long_jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  void apply_jump(const std::uint64_t (&table)[4]) noexcept;

  std::uint64_t state_[4];
};

}  // namespace plurality
