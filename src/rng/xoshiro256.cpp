#include "rng/xoshiro256.hpp"

namespace plurality {

void Xoshiro256::apply_jump(const std::uint64_t (&table)[4]) noexcept {
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : table) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      next();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[4] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  apply_jump(kJump);
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kLongJump[4] = {
      0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL, 0x77710069854EE241ULL,
      0x39109BB02ACBE635ULL};
  apply_jump(kLongJump);
}

}  // namespace plurality
