#include "rng/alias_table.hpp"

#include <numeric>

#include "support/assert.hpp"

namespace plurality {

AliasTable::AliasTable(std::span<const double> weights) {
  PC_EXPECTS(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  PC_EXPECTS(total > 0.0);
  for (const double w : weights) PC_EXPECTS(w >= 0.0);

  const std::size_t n = weights.size();
  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Vose's stable partition into under-full and over-full columns.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = normalized_[i] * static_cast<double>(n);

  probability_.assign(n, 1.0);
  alias_.resize(n);
  std::iota(alias_.begin(), alias_.end(), std::size_t{0});

  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers are full columns.
  for (const std::size_t i : small) probability_[i] = 1.0;
  for (const std::size_t i : large) probability_[i] = 1.0;
}

double AliasTable::probability_of(std::size_t i) const {
  PC_EXPECTS(i < normalized_.size());
  return normalized_[i];
}

}  // namespace plurality
