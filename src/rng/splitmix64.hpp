#pragma once

/// \file splitmix64.hpp
/// SplitMix64: a tiny, statistically solid 64-bit generator (Steele,
/// Lea & Flood, OOPSLA'14 mixing function). We use it to expand 64-bit
/// seeds into the larger states of xoshiro256++ and to derive independent
/// per-repetition streams — its full-period, equidistributed output makes
/// it a safe seeding source.

#include <cstdint>

namespace plurality {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit output; advances the state.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t state_;
};

}  // namespace plurality
