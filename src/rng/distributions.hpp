#pragma once

/// \file distributions.hpp
/// Sampling primitives built on any 64-bit uniform bit generator.
/// Implemented in-library (not via <random> distributions) so that
/// results are identical across standard-library implementations, which
/// the reproducibility guarantees in docs/EXPERIMENTS.md rely on.

#include <cmath>
#include <concepts>
#include <cstdint>
#include <limits>
#include <random>

#include "support/assert.hpp"

namespace plurality {

/// Any generator producing full-width uniform 64-bit words.
template <typename G>
concept BitGenerator64 =
    std::uniform_random_bit_generator<G> &&
    std::same_as<typename G::result_type, std::uint64_t> &&
    G::min() == 0 && G::max() == std::numeric_limits<std::uint64_t>::max();

/// Uniform integer in [0, bound) by Lemire's multiply-shift method with
/// rejection — unbiased and branch-light. Requires bound > 0.
///
/// The 128-bit multiply is a localized GCC/Clang extension (Core
/// Guidelines P.2: encapsulate necessary extensions behind an interface).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
template <BitGenerator64 G>
inline std::uint64_t uniform_below(G& gen, std::uint64_t bound) {
  PC_EXPECTS(bound > 0);
  using u128 = unsigned __int128;
  std::uint64_t x = gen();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = gen();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}
#pragma GCC diagnostic pop

/// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
template <BitGenerator64 G>
inline std::int64_t uniform_range(G& gen, std::int64_t lo, std::int64_t hi) {
  PC_EXPECTS(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<std::int64_t>(gen());
  return lo + static_cast<std::int64_t>(uniform_below(gen, span));
}

/// Uniform double in [0, 1) with 53 random bits.
template <BitGenerator64 G>
inline double uniform_unit(G& gen) {
  return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1]; safe to pass to log().
template <BitGenerator64 G>
inline double uniform_open(G& gen) {
  return static_cast<double>((gen() >> 11) + 1) * 0x1.0p-53;
}

/// Bernoulli(p). Requires p in [0, 1].
template <BitGenerator64 G>
inline bool bernoulli(G& gen, double p) {
  PC_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform_unit(gen) < p;
}

/// Exp(1) draw with no rate division: engines on the hot path hoist the
/// 1/rate scale out of the tick loop and multiply the unit draw instead.
template <BitGenerator64 G>
inline double exponential_unit(G& gen) {
  return -std::log(uniform_open(gen));
}

/// Exponential with the given rate (mean 1/rate). Requires rate > 0.
/// This is the inter-tick law of the paper's Poisson clocks (lambda = 1)
/// and of the response-delay extension.
template <BitGenerator64 G>
inline double exponential(G& gen, double rate) {
  PC_EXPECTS(rate > 0.0);
  return exponential_unit(gen) / rate;
}

namespace detail {

/// Knuth's product method; exact but O(mean), so reserved for small means.
template <BitGenerator64 G>
inline std::uint64_t poisson_knuth(G& gen, double mean) {
  const double limit = std::exp(-mean);
  std::uint64_t count = 0;
  double product = uniform_unit(gen);
  while (product > limit) {
    ++count;
    product *= uniform_unit(gen);
  }
  return count;
}

}  // namespace detail

/// Poisson(mean). Exact for every mean: small means use Knuth's method;
/// large means split recursively using the additivity of the Poisson law
/// (Poisson(a) + Poisson(b) ~ Poisson(a + b)). Requires mean >= 0.
template <BitGenerator64 G>
inline std::uint64_t poisson(G& gen, double mean) {
  PC_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean <= 32.0) return detail::poisson_knuth(gen, mean);
  const double half = mean / 2.0;
  return poisson(gen, half) + poisson(gen, mean - half);
}

/// Gamma(shape, 1) by Marsaglia & Tsang's squeeze method (2000), with the
/// standard boosting transform for shape < 1. Requires shape > 0.
template <BitGenerator64 G>
inline double gamma(G& gen, double shape) {
  PC_EXPECTS(shape > 0.0);
  if (shape < 1.0) {
    const double u = uniform_open(gen);
    return gamma(gen, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      // Normal(0,1) via Marsaglia polar method.
      double a = 0.0;
      double b = 0.0;
      double s = 0.0;
      do {
        a = 2.0 * uniform_unit(gen) - 1.0;
        b = 2.0 * uniform_unit(gen) - 1.0;
        s = a * a + b * b;
      } while (s >= 1.0 || s == 0.0);
      x = a * std::sqrt(-2.0 * std::log(s) / s);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform_open(gen);
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

/// Standard normal via Marsaglia polar method.
template <BitGenerator64 G>
inline double standard_normal(G& gen) {
  double a = 0.0;
  double b = 0.0;
  double s = 0.0;
  do {
    a = 2.0 * uniform_unit(gen) - 1.0;
    b = 2.0 * uniform_unit(gen) - 1.0;
    s = a * a + b * b;
  } while (s >= 1.0 || s == 0.0);
  return a * std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace plurality
