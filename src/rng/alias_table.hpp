#pragma once

/// \file alias_table.hpp
/// Walker/Vose alias method: O(n) preprocessing, O(1) sampling from an
/// arbitrary discrete distribution. Used by the workload generators
/// (geometric / Dirichlet opinion assignments) and reusable on its own.

#include <cstdint>
#include <span>
#include <vector>

#include "rng/distributions.hpp"

namespace plurality {

class AliasTable {
 public:
  /// Builds the table from non-negative weights (not necessarily
  /// normalized). Requires at least one weight and a positive total.
  explicit AliasTable(std::span<const double> weights);

  /// Index in [0, size()) with probability proportional to its weight.
  template <BitGenerator64 G>
  std::size_t sample(G& gen) const {
    const auto column = static_cast<std::size_t>(
        uniform_below(gen, static_cast<std::uint64_t>(probability_.size())));
    return uniform_unit(gen) < probability_[column] ? column : alias_[column];
  }

  std::size_t size() const noexcept { return probability_.size(); }

  /// Normalized probability of outcome i (for tests / inspection).
  double probability_of(std::size_t i) const;

 private:
  std::vector<double> probability_;  // acceptance threshold per column
  std::vector<std::size_t> alias_;   // fallback outcome per column
  std::vector<double> normalized_;   // original weights, normalized
};

}  // namespace plurality
