#pragma once

/// \file seed.hpp
/// Deterministic seed derivation. A single 64-bit master seed expands
/// into arbitrarily many independent streams (one per experiment
/// repetition, per node pool, ...), so every experiment in
/// docs/EXPERIMENTS.md is reproducible bit-for-bit from one number, and
/// running repetitions on different thread counts cannot change
/// results.

#include <cstdint>

#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace plurality {

class SeedSequence {
 public:
  explicit constexpr SeedSequence(std::uint64_t master) noexcept
      : master_(master) {}

  /// The 64-bit seed of stream `index`. Streams are decorrelated by
  /// running the SplitMix64 mixer over (master, index) — distinct indices
  /// give independent-quality seeds.
  constexpr std::uint64_t stream(std::uint64_t index) const noexcept {
    SplitMix64 sm(master_ ^ (0xD1B54A32D192ED03ULL * (index + 1)));
    sm.next();
    return sm.next();
  }

  /// A ready-to-use generator for stream `index`.
  Xoshiro256 make_rng(std::uint64_t index) const noexcept {
    return Xoshiro256(stream(index));
  }

  constexpr std::uint64_t master() const noexcept { return master_; }

  /// A sub-sequence rooted at stream `index`, for hierarchical
  /// derivation (experiment -> sweep point -> repetition).
  constexpr SeedSequence child(std::uint64_t index) const noexcept {
    return SeedSequence(stream(index));
  }

 private:
  std::uint64_t master_;
};

}  // namespace plurality
