#pragma once

/// \file batch.hpp
/// SIMD-friendly batch sampling on top of xoshiro256++. The scalar
/// generator's data dependency (each next() consumes the previous
/// state) caps it at one word per ~4 cycles; Xoshiro256Block runs
/// kLanes independent xoshiro256++ streams in lockstep with the state
/// stored lane-major (SoA), so the compiler vectorizes the refill loop
/// across lanes and raw words stream out of one aligned buffer.
///
/// Xoshiro256Block satisfies BitGenerator64, so every transform in
/// rng/distributions.hpp (Lemire uniform_below, exponential_unit,
/// poisson, ...) runs on it unchanged — the fill_* kernels below are
/// exactly those scalar transforms over the block-refilled word stream.
/// That makes batch draws *distribution-identical* to scalar draws by
/// construction (same transforms, same-quality words), but NOT
/// bit-identical for a given seed: the block interleaves kLanes
/// SplitMix64-expanded streams where the scalar path consumes one.
/// Engines therefore only use the block behind the opt-in
/// --sampling=batch knob, and the equivalence is pinned statistically
/// (KS/moment gates in tests/test_batch_rng.cpp).
///
/// Stream independence: lane l is seeded like SeedSequence::stream(l)
/// seeds shard streams — SplitMix64 expansion of a distinct 64-bit
/// lane seed — so the lanes are as independent as the engine's
/// per-shard streams.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "graph/graph.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "support/assert.hpp"

namespace plurality {

/// How engines draw their per-tick randomness: one scalar draw per tick
/// (the historical, bit-stable default) or block-refilled batches.
enum class SamplingMode : std::uint8_t {
  kScalar,  ///< scalar per-tick draws; bit-identical to every baseline
  kBatch,   ///< Xoshiro256Block kernels; statistically equivalent
};

inline const char* sampling_mode_name(SamplingMode mode) noexcept {
  switch (mode) {
    case SamplingMode::kScalar: return "scalar";
    case SamplingMode::kBatch: return "batch";
  }
  return "unknown";
}

/// Parses a `--sampling=` value; throws ContractViolation (naming the
/// flag) on anything unrecognized.
inline SamplingMode parse_sampling_mode(const std::string& name) {
  if (name == "scalar") return SamplingMode::kScalar;
  if (name == "batch") return SamplingMode::kBatch;
  throw ContractViolation("--sampling=" + name +
                          " is not one of scalar|batch");
}

/// kLanes interleaved xoshiro256++ streams advanced in lockstep, state
/// lane-major so the per-word loop in refill() vectorizes. Serves raw
/// words through a 64-byte-aligned buffer; satisfies BitGenerator64 so
/// the scalar distribution transforms run on it unchanged.
class Xoshiro256Block {
 public:
  using result_type = std::uint64_t;

  static constexpr std::size_t kLanes = 8;
  static constexpr std::size_t kBuffer = 256;  // words per refill

  /// Seeds lane l by SplitMix64-expanding seed ^ (phi64 * (l + 1)) —
  /// the SeedSequence::stream derivation, so lanes relate to each other
  /// exactly like the sharded engine's per-shard streams.
  explicit Xoshiro256Block(std::uint64_t seed) noexcept {
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      SplitMix64 sm(seed ^ (kLaneSalt * (static_cast<std::uint64_t>(lane) +
                                         1)));
      for (std::size_t word = 0; word < 4; ++word) {
        state_[word][lane] = sm.next();
      }
    }
  }

  std::uint64_t next() noexcept {
    if (pos_ == kBuffer) refill();
    return buffer_[pos_++];
  }

  std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Fills `out` with raw uniform 64-bit words.
  void fill_raw(std::span<std::uint64_t> out) noexcept {
    for (auto& word : out) word = next();
  }

  /// Fills `out` with unbiased uniform draws in [0, bound): the node
  /// batch of one sharded epoch or superposition block. Same
  /// multiply-shift + rejection transform as the scalar uniform_below.
  void fill_uniform_below(std::uint64_t bound, std::span<NodeId> out) {
    PC_EXPECTS(bound > 0);
    for (auto& draw : out) {
      draw = static_cast<NodeId>(uniform_below(*this, bound));
    }
  }

  /// Fills the (a, b) arrays with independent uniform draws in
  /// [0, bound) — the two-neighbor batch of a two-choices tick block.
  /// a[i] is drawn before b[i], matching the scalar propose() order.
  void fill_uniform_pairs(std::uint64_t bound, std::span<NodeId> a,
                          std::span<NodeId> b) {
    PC_EXPECTS(bound > 0);
    PC_EXPECTS(a.size() == b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<NodeId>(uniform_below(*this, bound));
      b[i] = static_cast<NodeId>(uniform_below(*this, bound));
    }
  }

  /// Fills `out` with Exp(1) draws (engines scale by 1/rate outside the
  /// loop): the tick-gap block of the batched superposition engine.
  void fill_exponential_unit(std::span<double> out) noexcept {
    for (auto& draw : out) draw = exponential_unit(*this);
  }

  /// Fills `out` with Poisson(mean) draws: per-epoch tick counts for a
  /// block of shards or sub-intervals.
  void fill_poisson(double mean, std::span<std::uint64_t> out) {
    PC_EXPECTS(mean >= 0.0);
    for (auto& draw : out) draw = poisson(*this, mean);
  }

 private:
  // SeedSequence's stream salt (rng/seed.hpp): keep the two derivations
  // identical so "lane k of block(seed)" and "stream k of seed" are the
  // same family of SplitMix64 expansions.
  static constexpr std::uint64_t kLaneSalt = 0xD1B54A32D192ED03ULL;

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  /// One lockstep advance of all lanes per output word: the inner lane
  /// loop has no cross-lane dependency, so it vectorizes over the
  /// lane-major state (SSE2: 2 lanes/op; AVX2: 4).
  void refill() noexcept {
    for (std::size_t base = 0; base < kBuffer; base += kLanes) {
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        const std::uint64_t s0 = state_[0][lane];
        const std::uint64_t s1 = state_[1][lane];
        const std::uint64_t s3 = state_[3][lane];
        buffer_[base + lane] = rotl(s0 + s3, 23) + s0;
        const std::uint64_t t = s1 << 17;
        state_[2][lane] ^= s0;
        state_[3][lane] ^= s1;
        state_[1][lane] ^= state_[2][lane];
        state_[0][lane] ^= state_[3][lane];
        state_[2][lane] ^= t;
        state_[3][lane] = rotl(state_[3][lane], 45);
      }
    }
    pos_ = 0;
  }

  alignas(64) std::uint64_t state_[4][kLanes];
  alignas(64) std::uint64_t buffer_[kBuffer];
  std::size_t pos_ = kBuffer;
};

static_assert(BitGenerator64<Xoshiro256Block>);

}  // namespace plurality
