#include "experiment/registry.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "stats/welford.hpp"
#include "support/assert.hpp"

namespace plurality {

namespace {

/// Harness plumbing flags that select/route experiments but do not
/// parameterize the measurement; echoing them into the record would
/// make otherwise-identical trajectories diff on invocation details.
/// --jobs= is plumbing by the determinism contract — results are
/// bit-identical for every worker count — and its resolved value is
/// recorded separately as jobs_effective. --trace= is plumbing for the
/// same reason: tracing observes the schedule without touching any
/// trajectory, and the resolved mode lands in record["trace"].mode.
bool is_plumbing_key(const std::string& key) {
  return key == "exp" || key == "all" || key == "list" || key == "json" ||
         key == "out-dir" || key == "no-json" || key == "csv" ||
         key == "jobs" || key == "trace" || key == "numa";
}

/// The process's peak resident set in bytes (Linux ru_maxrss is KiB,
/// macOS is bytes); 0 where getrusage is unavailable. A schedule/host
/// property like wall_clock_seconds — recorded in every BENCH record,
/// stripped by the determinism tests and skipped by bench diffing.
std::uint64_t peak_rss_bytes() {
#if defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<std::uint64_t>(usage.ru_maxrss);
  }
#elif defined(__unix__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
  }
#endif
  return 0;
}

/// Raw CLI values are strings; type them in the record (bare flag ->
/// true, numeric text -> number) so params diff cleanly across PRs and
/// match the numeric sweep params inside series entries.
std::string join_comma(const std::set<std::string>& names) {
  std::string joined;
  for (const auto& name : names) {
    if (!joined.empty()) joined += ",";
    joined += name;
  }
  return joined;
}

JsonValue typed_param(const std::string& value) {
  if (value.empty()) return JsonValue(true);
  errno = 0;
  char* end = nullptr;
  if (value[0] != '-' && value[0] != '+') {
    const unsigned long long u = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() + value.size() && errno != ERANGE) {
      return JsonValue(u);
    }
  }
  errno = 0;
  const double d = std::strtod(value.c_str(), &end);
  if (end == value.c_str() + value.size() && errno != ERANGE) {
    return JsonValue(d);
  }
  return JsonValue(value);
}

}  // namespace

void ExperimentContext::record(
    const std::string& series,
    std::initializer_list<std::pair<const char*, JsonValue>> params,
    std::span<const double> samples) {
  PC_EXPECTS(!series.empty());
  PC_EXPECTS(!samples.empty());
  JsonValue entry = JsonValue::object();
  entry["name"] = series;
  JsonValue param_obj = JsonValue::object();
  for (const auto& [key, value] : params) param_obj[key] = value;
  entry["params"] = std::move(param_obj);
  JsonValue sample_array = JsonValue::array();
  Welford acc;
  for (const double s : samples) {
    sample_array.push_back(s);
    acc.add(s);
  }
  entry["samples"] = std::move(sample_array);
  entry["count"] = acc.count();
  entry["mean"] = acc.mean();
  entry["stddev"] = acc.count() >= 2 ? acc.stddev() : 0.0;
  entry["stderr"] = acc.count() >= 2 ? acc.std_error() : 0.0;
  entry["min"] = acc.min();
  entry["max"] = acc.max();
  series_.push_back(std::move(entry));
}

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(Experiment experiment) {
  PC_EXPECTS(!experiment.name.empty());
  PC_EXPECTS(static_cast<bool>(experiment.run));
  PC_EXPECTS(experiments_.count(experiment.name) == 0);
  experiments_.emplace(experiment.name, std::move(experiment));
}

const Experiment* ExperimentRegistry::find(const std::string& name) const {
  const auto it = experiments_.find(name);
  return it == experiments_.end() ? nullptr : &it->second;
}

std::vector<const Experiment*> ExperimentRegistry::list() const {
  std::vector<const Experiment*> out;
  out.reserve(experiments_.size());
  for (const auto& [name, experiment] : experiments_) {
    out.push_back(&experiment);
  }
  return out;  // std::map iteration is already name-sorted
}

JsonValue ExperimentRegistry::run_to_record(const Experiment& experiment,
                                            const Args& args) const {
  ExperimentContext ctx(args, experiment.default_reps);
  // Arm the trace registry for exactly this run: fresh sinks, the
  // requested mode gating every hot path. Shard pools are per-run and
  // executor workers are parked between runs, so configure/drain happen
  // with the instrumented threads quiescent.
  trace::Registry::instance().configure(ctx.trace_spec);

  const auto start = std::chrono::steady_clock::now();
  const int exit_code = experiment.run(ctx);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Drain the trace: merge every sink's aggregates, fold the summary
  // into the record (below), and append the contention series the
  // bench trajectory gates. The queue-depth quantiles are trajectory
  // properties (deterministic for a fixed seed/shards), so they ride
  // the strict --series-z gate; wait fractions and steal counts are
  // schedule properties and are skip-listed in tools/bench_diff.py.
  const trace::TraceSummary tsum = trace::Registry::instance().summarize();
  if (tsum.depth_samples > 0) {
    const double p50[] = {static_cast<double>(tsum.depth_p50)};
    const double p99[] = {static_cast<double>(tsum.depth_p99)};
    ctx.record("trace_queue_depth_p50", {{"source", "trace"}}, p50);
    ctx.record("trace_queue_depth_p99", {{"source", "trace"}}, p99);
  }
  if (tsum.barrier_wait_count > 0) {
    const double frac[] = {tsum.barrier_wait_frac()};
    ctx.record("trace_barrier_wait_frac", {{"source", "trace"}}, frac);
  }
  if (tsum.steal_count > 0) {
    const double steals[] = {static_cast<double>(tsum.steal_count)};
    ctx.record("trace_steal_count", {{"source", "trace"}}, steals);
  }
  if (ctx.trace_spec.mode == trace::Mode::kTimeline) {
    trace::Registry::instance().write_timeline(ctx.trace_spec.path);
  }

  JsonValue record = JsonValue::object();
  record["schema_version"] = 1;
  record["experiment"] = experiment.name;
  record["description"] = experiment.description;

  JsonValue params = JsonValue::object();
  params["seed"] = ctx.master_seed;
  params["reps"] = ctx.reps;
  params["threads"] = ctx.threads;
  // Explicit --latency/--latency-mean/--latency-shape flags reach the
  // record through the raw-args echo below; the resolved shape default
  // is only interesting when a model was requested by kind.
  if (args.has_flag("latency")) {
    params["latency-shape"] = ctx.latency.shape;
  }
  // Same policy for the graph axis: when a topology was requested by
  // kind, echo the resolved family parameters (not just the explicitly
  // passed ones) so the record is replayable without knowing the
  // defaults of this build.
  if (args.has_flag("graph")) {
    switch (ctx.graph.kind) {
      case GraphKind::kErdosRenyi:
        params["graph-p"] = ctx.graph.er_p;
        break;
      case GraphKind::kRandomRegular:
        params["graph-degree"] = ctx.graph.degree;
        break;
      case GraphKind::kSbm:
        params["graph-blocks"] = ctx.graph.blocks;
        params["graph-pin"] = ctx.graph.p_in;
        params["graph-pout"] = ctx.graph.p_out;
        break;
      default:
        break;
    }
  }
  for (const auto& [key, value] : args.raw()) {
    if (!params.has(key) && !is_plumbing_key(key)) {
      params[key] = typed_param(value);
    }
  }
  // Resolved parameters the experiment body noted (crash fractions,
  // injection horizons, ...): defaults the raw-args echo cannot see.
  // Explicitly passed flags above win on key collision — what the user
  // typed outranks what the body reports it resolved to.
  for (const auto& [key, value] : ctx.noted_params()) {
    if (!params.has(key)) params[key] = value;
  }
  // The engines that actually ran (a sharded request can fall back per
  // protocol), so the record stays truthful even when it differs from
  // the requested --engine=.
  if (const auto engines = ctx.effective_engines(); !engines.empty()) {
    params["engine_effective"] = join_comma(engines);
  }
  // The resolved worker count, in *every* record: --shards=0 picks the
  // host's core count, sharded trajectories are keyed on it, and a
  // baseline recorded on a 64-core box must be distinguishable from
  // one recorded on a laptop even for experiments that happened to run
  // single-stream engines this time.
  params["shards_effective"] = ctx.shards;
  // The resolved --jobs= thread cap, in *every* record: by the
  // determinism contract it never changes a trajectory, but a wall
  // clock recorded at --jobs=64 must be distinguishable from one
  // recorded serially.
  params["jobs_effective"] = ctx.jobs;
  // The resolved --numa= mode, in *every* record, for the same reason:
  // placement is trajectory-neutral plumbing, but a wall clock measured
  // under first-touch/bind placement must be distinguishable from one
  // measured without it.
  params["numa_effective"] = numa_mode_name(ctx.tuning.numa);
  // The per-node memory footprint of the largest run (resolved color
  // width + support counters + engine copies + CSR share), when any run
  // noted its state: deterministic for a fixed invocation, and the
  // acceptance handle for the packed-width claim (a 1e8-node voter run
  // must report bytes_per_node <= 6).
  if (const double bpn = ctx.bytes_per_node(); bpn > 0.0) {
    params["bytes_per_node"] = bpn;
  }
  // Peak RSS, in *every* record: the observed counterpart of
  // bytes_per_node. A host/schedule property like wall_clock_seconds —
  // stripped by the determinism tests, never diffed.
  params["peak_rss_bytes"] = peak_rss_bytes();
  // The latency models that actually drove runs (mirroring
  // engine_effective): most experiments ignore --latency, and a record
  // claiming a model its samples never used would misattribute them.
  if (const auto latencies = ctx.effective_latencies();
      !latencies.empty()) {
    params["latency_effective"] = join_comma(latencies);
  }
  // The placements that actually produced workloads (mirroring
  // engine_effective): a community-aligned request can fall back to
  // uniform on a topology without communities, and records must not
  // claim an adversarial start their samples never had.
  if (const auto placements = ctx.effective_placements();
      !placements.empty()) {
    params["placement_effective"] = join_comma(placements);
  }
  // The topology families actually built (same policy): clique-pinned
  // experiments echo a --graph= request like any unconsumed override,
  // and the absence of graph_effective is what says it was ignored.
  if (const auto graphs = ctx.effective_graphs(); !graphs.empty()) {
    params["graph_effective"] = join_comma(graphs);
  }
  // The perturbation kinds that actually drained events, in *every*
  // record: "none" is a positive assertion that the samples ran
  // unperturbed, so robustness baselines and perturbed runs are
  // distinguishable without knowing which flags the invocation passed.
  const auto perturbs = ctx.effective_perturbs();
  params["perturb_effective"] =
      perturbs.empty() ? std::string("none") : join_comma(perturbs);
  record["params"] = std::move(params);

  record["series"] = ctx.take_series();

  // The contention summary, in *every* record: like wall_clock_seconds
  // it documents the schedule, not the trajectory, so diff tooling and
  // determinism tests treat it as non-trajectory metadata.
  JsonValue trace_obj = JsonValue::object();
  trace_obj["mode"] = trace::mode_name(ctx.trace_spec.mode);
  trace_obj["barrier_wait_frac"] = tsum.barrier_wait_frac();
  trace_obj["barrier_wait_ns"] = tsum.barrier_wait_ns;
  trace_obj["barrier_wait_count"] = tsum.barrier_wait_count;
  trace_obj["work_ns"] = tsum.work_ns;
  trace_obj["ticks"] = tsum.ticks;
  trace_obj["queue_drained"] = tsum.queue_drained;
  trace_obj["queue_depth_p50"] = tsum.depth_p50;
  trace_obj["queue_depth_p99"] = tsum.depth_p99;
  trace_obj["queue_depth_samples"] = tsum.depth_samples;
  trace_obj["steal_count"] = tsum.steal_count;
  trace_obj["park_count"] = tsum.park_count;
  trace_obj["park_ns"] = tsum.park_ns;
  trace_obj["events_recorded"] = tsum.events_recorded;
  trace_obj["trace_dropped"] = tsum.dropped;
  record["trace"] = std::move(trace_obj);

  record["exit_code"] = exit_code;
  record["wall_clock_seconds"] = wall_seconds;
  return record;
}

ExperimentRegistrar::ExperimentRegistrar(
    std::string name, std::string description, std::string describe,
    std::uint64_t default_reps, std::function<int(ExperimentContext&)> run) {
  ExperimentRegistry::instance().add(
      Experiment{std::move(name), std::move(description),
                 std::move(describe), default_reps, std::move(run)});
}

}  // namespace plurality
