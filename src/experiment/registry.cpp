#include "experiment/registry.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>

#include "stats/welford.hpp"
#include "support/assert.hpp"

namespace plurality {

namespace {

/// Harness plumbing flags that select/route experiments but do not
/// parameterize the measurement; echoing them into the record would
/// make otherwise-identical trajectories diff on invocation details.
/// --jobs= is plumbing by the determinism contract — results are
/// bit-identical for every worker count — and its resolved value is
/// recorded separately as jobs_effective.
bool is_plumbing_key(const std::string& key) {
  return key == "exp" || key == "all" || key == "list" || key == "json" ||
         key == "out-dir" || key == "no-json" || key == "csv" ||
         key == "jobs";
}

/// Raw CLI values are strings; type them in the record (bare flag ->
/// true, numeric text -> number) so params diff cleanly across PRs and
/// match the numeric sweep params inside series entries.
std::string join_comma(const std::set<std::string>& names) {
  std::string joined;
  for (const auto& name : names) {
    if (!joined.empty()) joined += ",";
    joined += name;
  }
  return joined;
}

JsonValue typed_param(const std::string& value) {
  if (value.empty()) return JsonValue(true);
  errno = 0;
  char* end = nullptr;
  if (value[0] != '-' && value[0] != '+') {
    const unsigned long long u = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() + value.size() && errno != ERANGE) {
      return JsonValue(u);
    }
  }
  errno = 0;
  const double d = std::strtod(value.c_str(), &end);
  if (end == value.c_str() + value.size() && errno != ERANGE) {
    return JsonValue(d);
  }
  return JsonValue(value);
}

}  // namespace

void ExperimentContext::record(
    const std::string& series,
    std::initializer_list<std::pair<const char*, JsonValue>> params,
    std::span<const double> samples) {
  PC_EXPECTS(!series.empty());
  PC_EXPECTS(!samples.empty());
  JsonValue entry = JsonValue::object();
  entry["name"] = series;
  JsonValue param_obj = JsonValue::object();
  for (const auto& [key, value] : params) param_obj[key] = value;
  entry["params"] = std::move(param_obj);
  JsonValue sample_array = JsonValue::array();
  Welford acc;
  for (const double s : samples) {
    sample_array.push_back(s);
    acc.add(s);
  }
  entry["samples"] = std::move(sample_array);
  entry["count"] = acc.count();
  entry["mean"] = acc.mean();
  entry["stddev"] = acc.count() >= 2 ? acc.stddev() : 0.0;
  entry["stderr"] = acc.count() >= 2 ? acc.std_error() : 0.0;
  entry["min"] = acc.min();
  entry["max"] = acc.max();
  series_.push_back(std::move(entry));
}

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(Experiment experiment) {
  PC_EXPECTS(!experiment.name.empty());
  PC_EXPECTS(static_cast<bool>(experiment.run));
  PC_EXPECTS(experiments_.count(experiment.name) == 0);
  experiments_.emplace(experiment.name, std::move(experiment));
}

const Experiment* ExperimentRegistry::find(const std::string& name) const {
  const auto it = experiments_.find(name);
  return it == experiments_.end() ? nullptr : &it->second;
}

std::vector<const Experiment*> ExperimentRegistry::list() const {
  std::vector<const Experiment*> out;
  out.reserve(experiments_.size());
  for (const auto& [name, experiment] : experiments_) {
    out.push_back(&experiment);
  }
  return out;  // std::map iteration is already name-sorted
}

JsonValue ExperimentRegistry::run_to_record(const Experiment& experiment,
                                            const Args& args) const {
  ExperimentContext ctx(args, experiment.default_reps);

  const auto start = std::chrono::steady_clock::now();
  const int exit_code = experiment.run(ctx);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  JsonValue record = JsonValue::object();
  record["schema_version"] = 1;
  record["experiment"] = experiment.name;
  record["description"] = experiment.description;

  JsonValue params = JsonValue::object();
  params["seed"] = ctx.master_seed;
  params["reps"] = ctx.reps;
  params["threads"] = ctx.threads;
  // Explicit --latency/--latency-mean/--latency-shape flags reach the
  // record through the raw-args echo below; the resolved shape default
  // is only interesting when a model was requested by kind.
  if (args.has_flag("latency")) {
    params["latency-shape"] = ctx.latency.shape;
  }
  // Same policy for the graph axis: when a topology was requested by
  // kind, echo the resolved family parameters (not just the explicitly
  // passed ones) so the record is replayable without knowing the
  // defaults of this build.
  if (args.has_flag("graph")) {
    switch (ctx.graph.kind) {
      case GraphKind::kErdosRenyi:
        params["graph-p"] = ctx.graph.er_p;
        break;
      case GraphKind::kRandomRegular:
        params["graph-degree"] = ctx.graph.degree;
        break;
      case GraphKind::kSbm:
        params["graph-blocks"] = ctx.graph.blocks;
        params["graph-pin"] = ctx.graph.p_in;
        params["graph-pout"] = ctx.graph.p_out;
        break;
      default:
        break;
    }
  }
  for (const auto& [key, value] : args.raw()) {
    if (!params.has(key) && !is_plumbing_key(key)) {
      params[key] = typed_param(value);
    }
  }
  // Resolved parameters the experiment body noted (crash fractions,
  // injection horizons, ...): defaults the raw-args echo cannot see.
  // Explicitly passed flags above win on key collision — what the user
  // typed outranks what the body reports it resolved to.
  for (const auto& [key, value] : ctx.noted_params()) {
    if (!params.has(key)) params[key] = value;
  }
  // The engines that actually ran (a sharded request can fall back per
  // protocol), so the record stays truthful even when it differs from
  // the requested --engine=.
  if (const auto engines = ctx.effective_engines(); !engines.empty()) {
    params["engine_effective"] = join_comma(engines);
  }
  // The resolved worker count, in *every* record: --shards=0 picks the
  // host's core count, sharded trajectories are keyed on it, and a
  // baseline recorded on a 64-core box must be distinguishable from
  // one recorded on a laptop even for experiments that happened to run
  // single-stream engines this time.
  params["shards_effective"] = ctx.shards;
  // The resolved --jobs= thread cap, in *every* record: by the
  // determinism contract it never changes a trajectory, but a wall
  // clock recorded at --jobs=64 must be distinguishable from one
  // recorded serially.
  params["jobs_effective"] = ctx.jobs;
  // The latency models that actually drove runs (mirroring
  // engine_effective): most experiments ignore --latency, and a record
  // claiming a model its samples never used would misattribute them.
  if (const auto latencies = ctx.effective_latencies();
      !latencies.empty()) {
    params["latency_effective"] = join_comma(latencies);
  }
  // The placements that actually produced workloads (mirroring
  // engine_effective): a community-aligned request can fall back to
  // uniform on a topology without communities, and records must not
  // claim an adversarial start their samples never had.
  if (const auto placements = ctx.effective_placements();
      !placements.empty()) {
    params["placement_effective"] = join_comma(placements);
  }
  // The topology families actually built (same policy): clique-pinned
  // experiments echo a --graph= request like any unconsumed override,
  // and the absence of graph_effective is what says it was ignored.
  if (const auto graphs = ctx.effective_graphs(); !graphs.empty()) {
    params["graph_effective"] = join_comma(graphs);
  }
  // The perturbation kinds that actually drained events, in *every*
  // record: "none" is a positive assertion that the samples ran
  // unperturbed, so robustness baselines and perturbed runs are
  // distinguishable without knowing which flags the invocation passed.
  const auto perturbs = ctx.effective_perturbs();
  params["perturb_effective"] =
      perturbs.empty() ? std::string("none") : join_comma(perturbs);
  record["params"] = std::move(params);

  record["series"] = ctx.take_series();
  record["exit_code"] = exit_code;
  record["wall_clock_seconds"] = wall_seconds;
  return record;
}

ExperimentRegistrar::ExperimentRegistrar(
    std::string name, std::string description, std::string describe,
    std::uint64_t default_reps, std::function<int(ExperimentContext&)> run) {
  ExperimentRegistry::instance().add(
      Experiment{std::move(name), std::move(description),
                 std::move(describe), default_reps, std::move(run)});
}

}  // namespace plurality
