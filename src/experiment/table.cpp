#include "experiment/table.hpp"

#include <cstdio>
#include <ostream>

#include "support/assert.hpp"

namespace plurality {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  PC_EXPECTS(!columns_.empty());
}

Table& Table::row() {
  PC_EXPECTS(rows_.empty() || rows_.back().size() == columns_.size());
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  PC_EXPECTS(!rows_.empty());
  PC_EXPECTS(rows_.back().size() < columns_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(std::uint64_t value) {
  return cell(std::to_string(value));
}

Table& Table::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return cell(std::string(buf));
}

void Table::print(std::ostream& os, bool csv) const {
  PC_EXPECTS(rows_.empty() || rows_.back().size() == columns_.size());
  if (csv) {
    os << "# " << title_ << '\n';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << row[c] << (c + 1 < row.size() ? "," : "\n");
      }
    }
    return;
  }

  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  ";
      os.width(static_cast<std::streamsize>(width[c]));
      os << cells[c];
    }
    os << '\n';
  };
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += "  " + std::string(width[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace plurality
