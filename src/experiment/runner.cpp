#include "experiment/runner.hpp"

#include <utility>

#include "jobs/executor.hpp"

namespace plurality {

namespace {

/// per_rep[rep][slot] -> by_slot[slot][rep], validating row shape.
std::vector<std::vector<double>> transpose_rows(
    const std::vector<std::vector<double>>& per_rep, std::size_t slots) {
  std::vector<std::vector<double>> by_slot(
      slots, std::vector<double>(per_rep.size(), 0.0));
  for (std::size_t rep = 0; rep < per_rep.size(); ++rep) {
    PC_ASSERT(per_rep[rep].size() == slots);
    for (std::size_t s = 0; s < slots; ++s) {
      by_slot[s][rep] = per_rep[rep][s];
    }
  }
  return by_slot;
}

}  // namespace

std::vector<std::vector<double>> run_repetitions_multi(
    std::uint64_t reps, std::size_t slots, const SeedSequence& seeds,
    const std::function<std::vector<double>(std::uint64_t, Xoshiro256&)>&
        body,
    unsigned threads) {
  PC_EXPECTS(reps >= 1);
  PC_EXPECTS(slots >= 1);

  // results[rep][slot]; each repetition writes its own row, so no locks.
  std::vector<std::vector<double>> per_rep(reps);

  if (threads == 1) {
    // Pure serial on the caller: the baseline the determinism tests
    // compare every parallel schedule against.
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      Xoshiro256 rng = seeds.make_rng(rep);
      per_rep[rep] = body(rep, rng);
    }
    return transpose_rows(per_rep, slots);
  }

  jobs::JobGraph graph;
  std::vector<jobs::JobGraph::JobId> leaves;
  leaves.reserve(reps);
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    leaves.push_back(graph.add([&seeds, &body, &per_rep, rep] {
      Xoshiro256 rng = seeds.make_rng(rep);
      per_rep[rep] = body(rep, rng);
    }));
    // A chain to leaf rep - threads caps in-flight repetitions at
    // `threads` without a shared counter (threads == 0: no cap; the
    // executor's --jobs= worker budget is then the only limit).
    if (threads != 0 && rep >= threads) {
      graph.depend(leaves[rep], leaves[rep - threads]);
    }
  }
  jobs::Executor::process().run(graph);
  return transpose_rows(per_rep, slots);
}

std::vector<double> run_repetitions(
    std::uint64_t reps, const SeedSequence& seeds,
    const std::function<double(std::uint64_t, Xoshiro256&)>& body,
    unsigned threads) {
  auto multi = run_repetitions_multi(
      reps, 1, seeds,
      [&body](std::uint64_t rep, Xoshiro256& rng) {
        return std::vector<double>{body(rep, rng)};
      },
      threads);
  return std::move(multi[0]);
}

void SweepRunner::add_point(std::uint64_t reps, std::size_t slots,
                            SeedSequence seeds, Body body, Finish finish) {
  PC_EXPECTS(!ran_);
  PC_EXPECTS(reps >= 1);
  PC_EXPECTS(slots >= 1);
  PC_EXPECTS(static_cast<bool>(body));
  PC_EXPECTS(static_cast<bool>(finish));
  Point point{reps,        slots,
              seeds,       std::move(body),
              std::move(finish), std::vector<std::vector<double>>(reps)};
  points_.push_back(std::move(point));
}

void SweepRunner::run() {
  PC_EXPECTS(!ran_);
  ran_ = true;

  if (threads_ == 1) {
    // Serial inline: execute and finish each point in declaration
    // order — the reference schedule.
    for (Point& point : points_) {
      for (std::uint64_t rep = 0; rep < point.reps; ++rep) {
        Xoshiro256 rng = point.seeds.make_rng(rep);
        point.per_rep[rep] = point.body(rep, rng);
      }
      point.finish(transpose_rows(point.per_rep, point.slots));
    }
    return;
  }

  // One graph over the whole sweep: leaves in declaration order, the
  // in-flight cap as chain dependencies across point boundaries.
  jobs::JobGraph graph;
  std::vector<jobs::JobGraph::JobId> leaves;
  for (Point& point : points_) {
    for (std::uint64_t rep = 0; rep < point.reps; ++rep) {
      leaves.push_back(graph.add([&point, rep] {
        Xoshiro256 rng = point.seeds.make_rng(rep);
        point.per_rep[rep] = point.body(rep, rng);
      }));
      const std::size_t j = leaves.size() - 1;
      if (threads_ != 0 && j >= threads_) {
        graph.depend(leaves[j], leaves[j - threads_]);
      }
    }
  }
  jobs::Executor::process().run(graph);

  for (Point& point : points_) {
    point.finish(transpose_rows(point.per_rep, point.slots));
  }
}

}  // namespace plurality
