#include "experiment/runner.hpp"

#include <atomic>

namespace plurality {

std::vector<std::vector<double>> run_repetitions_multi(
    std::uint64_t reps, std::size_t slots, const SeedSequence& seeds,
    const std::function<std::vector<double>(std::uint64_t, Xoshiro256&)>&
        body,
    unsigned threads) {
  PC_EXPECTS(reps >= 1);
  PC_EXPECTS(slots >= 1);
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, reps));

  // results[rep][slot]; each repetition writes its own row, so no locks.
  std::vector<std::vector<double>> per_rep(reps);
  std::atomic<std::uint64_t> next{0};

  auto worker = [&]() {
    for (;;) {
      const std::uint64_t rep = next.fetch_add(1);
      if (rep >= reps) return;
      Xoshiro256 rng = seeds.make_rng(rep);
      per_rep[rep] = body(rep, rng);
      PC_ASSERT(per_rep[rep].size() == slots);
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  std::vector<std::vector<double>> by_slot(
      slots, std::vector<double>(reps, 0.0));
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    for (std::size_t s = 0; s < slots; ++s) {
      by_slot[s][rep] = per_rep[rep][s];
    }
  }
  return by_slot;
}

std::vector<double> run_repetitions(
    std::uint64_t reps, const SeedSequence& seeds,
    const std::function<double(std::uint64_t, Xoshiro256&)>& body,
    unsigned threads) {
  auto multi = run_repetitions_multi(
      reps, 1, seeds,
      [&body](std::uint64_t rep, Xoshiro256& rng) {
        return std::vector<double>{body(rep, rng)};
      },
      threads);
  return std::move(multi[0]);
}

}  // namespace plurality
