#pragma once

/// \file args.hpp
/// Minimal --key=value command-line parsing for the experiment binaries.
/// Every bench accepts overrides (e.g. --n=65536 --reps=20 --seed=42
/// --csv) so tables can be regenerated at other scales; defaults keep
/// each binary's full run in the tens of seconds on a laptop.

#include <cstdint>
#include <map>
#include <string>

namespace plurality {

class Args {
 public:
  /// Parses argv entries of the form --key=value or bare --flag.
  /// Unrecognized positional arguments are rejected with a thrown
  /// ContractViolation (catching typos in reproduce commands).
  Args(int argc, const char* const* argv);

  /// Numeric getters return `fallback` when the key is absent and throw
  /// ContractViolation (naming the flag and the offending text) when the
  /// value is present but malformed — "--reps=abc" must never silently
  /// become 0.
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool has_flag(const std::string& key) const;

  /// True when --csv was passed (tables print comma-separated).
  bool csv() const { return has_flag("csv"); }

  /// All parsed key/value pairs (flags map to ""), for echoing the full
  /// command line into experiment records.
  const std::map<std::string, std::string>& raw() const noexcept {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace plurality
