#pragma once

/// \file json_writer.hpp
/// Minimal JSON document type for the experiment harness. Every
/// experiment run emits one machine-readable record (params, per-rep
/// samples, aggregate statistics, wall clock) so BENCH_*.json
/// trajectories can be diffed across PRs. The type is deliberately
/// small: build, dump, and parse — enough to write records and to
/// validate them in tests, with zero external dependencies.
///
/// Numbers preserve integerness: a value built from (or parsed as) an
/// integer prints without a decimal point, and 64-bit seeds round-trip
/// exactly instead of being squeezed through a double.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace plurality {

/// Thrown by JsonValue::parse on malformed input.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kInt,     ///< signed 64-bit integer
    kUint,    ///< unsigned 64-bit integer (only when it exceeds int64)
    kDouble,
    kString,
    kArray,
    kObject
  };

  using Array = std::vector<JsonValue>;
  /// Insertion-ordered key/value pairs (records stay human-diffable).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() noexcept : type_(Type::kNull) {}
  JsonValue(bool b) noexcept : type_(Type::kBool), bool_(b) {}
  JsonValue(double d) noexcept : type_(Type::kDouble), double_(d) {}
  JsonValue(int v) noexcept : type_(Type::kInt), int_(v) {}
  JsonValue(long v) noexcept : type_(Type::kInt), int_(v) {}
  JsonValue(long long v) noexcept : type_(Type::kInt), int_(v) {}
  JsonValue(unsigned v) noexcept : type_(Type::kInt), int_(v) {}
  JsonValue(unsigned long v) noexcept { assign_unsigned(v); }
  JsonValue(unsigned long long v) noexcept { assign_unsigned(v); }
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept {
    return type_ == Type::kInt || type_ == Type::kUint ||
           type_ == Type::kDouble;
  }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Numeric value as double (requires is_number()).
  double as_double() const;
  /// Numeric value as u64 (requires a non-negative integer value).
  std::uint64_t as_u64() const;
  bool as_bool() const;
  const std::string& as_string() const;

  /// Element count of an array or object; 0 for scalars.
  std::size_t size() const noexcept;

  /// Array element access (requires is_array() and i < size()).
  const JsonValue& at(std::size_t i) const;

  /// Object member lookup; nullptr when absent (requires is_object()).
  const JsonValue* find(std::string_view key) const;
  /// True when the object has `key`.
  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Appends to an array (converts a null value into an array first).
  void push_back(JsonValue v);

  /// Object member insert-or-get (converts a null value into an object
  /// first).
  JsonValue& operator[](std::string_view key);

  /// Serializes the document. `indent` < 0 renders compact single-line
  /// JSON; otherwise nested levels indent by `indent` spaces.
  std::string dump(int indent = 2) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws JsonParseError with position information on malformed input.
  static JsonValue parse(std::string_view text);

 private:
  void assign_unsigned(unsigned long long v) noexcept {
    if (v <= static_cast<unsigned long long>(INT64_MAX)) {
      type_ = Type::kInt;
      int_ = static_cast<std::int64_t>(v);
    } else {
      type_ = Type::kUint;
      uint_ = v;
    }
  }

  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Writes `value` (pretty-printed, trailing newline) to `path`,
/// overwriting. Throws std::runtime_error when the file cannot be
/// written.
void write_json_file(const std::string& path, const JsonValue& value);

}  // namespace plurality
