#include "experiment/args.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "support/assert.hpp"

namespace plurality {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    PC_EXPECTS(arg.rfind("--", 0) == 0);
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(body)] = "";
    } else {
      values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
    }
  }
}

std::uint64_t Args::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Args::has_flag(const std::string& key) const {
  return values_.count(key) > 0;
}

}  // namespace plurality
