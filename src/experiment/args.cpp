#include "experiment/args.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "support/assert.hpp"

namespace plurality {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* expected) {
  throw ContractViolation("--" + key + " expects " + expected + ", got '" +
                          value + "'");
}

}  // namespace

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      throw ContractViolation(
          "unrecognized positional argument '" + std::string(arg) +
          "' (arguments must look like --key=value or --flag)");
    }
    const std::string_view body = arg.substr(2);
    if (body.empty()) {
      throw ContractViolation("empty option '--' is not a valid argument");
    }
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(body)] = "";
    } else if (eq == 0) {
      throw ContractViolation("argument '" + std::string(arg) +
                              "' is missing a key before '='");
    } else {
      values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
    }
  }
}

std::uint64_t Args::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  // strtoull silently wraps negative input and parses "" / "12x" as 0 /
  // 12; validate with endptr so typos fail loudly instead of becoming
  // surprising parameter values. Requiring a leading digit also blocks
  // strtoull's whitespace-then-sign path (" -3" would wrap to ~2^64).
  if (value.empty() || !std::isdigit(static_cast<unsigned char>(value[0]))) {
    bad_value(key, value, "an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || errno == ERANGE) {
    bad_value(key, value, "an unsigned integer");
  }
  return parsed;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  if (value.empty() ||
      std::isspace(static_cast<unsigned char>(value[0]))) {
    bad_value(key, value, "a number");
  }
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size()) {
    bad_value(key, value, "a number");
  }
  // Overflow text ("1e400") parses to +-inf, and strtod also accepts
  // the literals "inf"/"nan" — all of which would silently poison every
  // downstream sample. Gradual underflow (subnormals like 1e-320) is
  // representable and fine, so checking finiteness (not ERANGE, which
  // glibc also sets on underflow) is the right gate.
  if (!std::isfinite(parsed)) {
    bad_value(key, value, "a finite number");
  }
  return parsed;
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Args::has_flag(const std::string& key) const {
  return values_.count(key) > 0;
}

}  // namespace plurality
