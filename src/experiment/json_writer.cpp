#include "experiment/json_writer.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/assert.hpp"

namespace plurality {

namespace {

/// Shortest %g rendering that round-trips the double exactly.
std::string format_double(double d) {
  if (std::isnan(d) || std::isinf(d)) return "null";  // JSON has no IEEE specials
  char buf[32];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + why);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"': v = JsonValue(parse_string()); break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v = JsonValue(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v = JsonValue(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        break;
      default: v = parse_number(); break;
    }
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v[key] = parse_value();
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape character");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    // Encode the code point as UTF-8 (surrogate pairs are passed through
    // as two separate 3-byte sequences; the harness only emits ASCII).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    if (integral) {
      if (token[0] == '-') {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          return JsonValue(v);
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          return JsonValue(v);
        }
      }
      errno = 0;  // integer overflow: fall through to double
    }
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return JsonValue(d);
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

double JsonValue::as_double() const {
  PC_EXPECTS(is_number());
  switch (type_) {
    case Type::kInt: return static_cast<double>(int_);
    case Type::kUint: return static_cast<double>(uint_);
    default: return double_;
  }
}

std::uint64_t JsonValue::as_u64() const {
  PC_EXPECTS(is_number());
  if (type_ == Type::kUint) return uint_;
  if (type_ == Type::kInt) {
    PC_EXPECTS(int_ >= 0);
    return static_cast<std::uint64_t>(int_);
  }
  PC_EXPECTS(double_ >= 0.0 && double_ == std::floor(double_));
  return static_cast<std::uint64_t>(double_);
}

bool JsonValue::as_bool() const {
  PC_EXPECTS(is_bool());
  return bool_;
}

const std::string& JsonValue::as_string() const {
  PC_EXPECTS(is_string());
  return string_;
}

std::size_t JsonValue::size() const noexcept {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  PC_EXPECTS(is_array());
  PC_EXPECTS(i < array_.size());
  return array_[i];
}

const JsonValue* JsonValue::find(std::string_view key) const {
  PC_EXPECTS(is_object());
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  PC_EXPECTS(is_array());
  array_.push_back(std::move(v));
}

JsonValue& JsonValue::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  PC_EXPECTS(is_object());
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string(key), JsonValue());
  return object_.back().second;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_indent = [&](int level) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(level),
               ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kUint: out += std::to_string(uint_); break;
    case Type::kDouble: out += format_double(double_); break;
    case Type::kString: escape_string(string_, out); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      // Flat arrays of scalars (the samples vectors) stay on one line;
      // arrays of containers get one element per line.
      const bool multiline =
          indent >= 0 && (array_[0].is_array() || array_[0].is_object());
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += multiline ? "," : ", ";
        if (multiline) newline_indent(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (multiline) newline_indent(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(depth + 1);
        escape_string(object_[i].first, out);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void write_json_file(const std::string& path, const JsonValue& value) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << value.dump() << '\n';
  if (!out) throw std::runtime_error("failed writing " + path);
}

}  // namespace plurality
