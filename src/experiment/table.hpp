#pragma once

/// \file table.hpp
/// Aligned-column table printing for the experiment binaries, with an
/// optional CSV mode so results can be piped into plotting tools. Cells
/// are formatted eagerly into strings; the experiments' row counts are
/// tiny, so clarity beats cleverness here.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace plurality {

class Table {
 public:
  /// `title` is echoed above the table (and as a comment line in CSV).
  Table(std::string title, std::vector<std::string> columns);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  /// Doubles print with `precision` significant decimals.
  Table& cell(double value, int precision = 3);

  /// Renders to the stream. Requires every row to be exactly as wide as
  /// the header.
  void print(std::ostream& os, bool csv = false) const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace plurality
