#pragma once

/// \file registry.hpp
/// The experiment registry: every experiment in bench/ self-registers a
/// name, a one-line description, a default repetition count, and a run
/// entry point. One binary (`plurality_exp`) then exposes all of them
/// behind `--exp=<name>`, `--list`, and `--all`, with shared
/// `--seed/--reps/--threads/--csv` handling through ExperimentContext.
///
/// Besides the human-readable tables an experiment prints, every run
/// produces one structured JSON record (see run_to_record): the
/// resolved parameters, each recorded series with its raw per-rep
/// samples and Welford mean/stderr, and the wall-clock time. Those
/// records are the BENCH_*.json trajectory the ROADMAP tracks across
/// PRs.

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "experiment/args.hpp"
#include "experiment/json_writer.hpp"
#include "graph/factory.hpp"
#include "jobs/executor.hpp"
#include "opinion/placement.hpp"
#include "rng/seed.hpp"
#include "sim/engine_select.hpp"
#include "sim/latency.hpp"
#include "sim/perturb.hpp"
#include "trace/trace.hpp"

namespace plurality {

/// Per-run state handed to an experiment body: the parsed CLI plus the
/// shared knobs every experiment honors, and the sink for measured
/// series. Field names mirror the old per-binary bench::Context so the
/// experiment bodies read unchanged.
class ExperimentContext {
 public:
  ExperimentContext(Args arguments, std::uint64_t default_reps)
      : args(std::move(arguments)),
        master_seed(args.get_u64("seed", 42)),
        reps(args.get_u64("reps", default_reps)),
        threads(static_cast<unsigned>(args.get_u64("threads", 0))),
        engine(args.get_string("engine", "")),
        shards(static_cast<unsigned>(args.get_u64("shards", 0))),
        jobs(static_cast<unsigned>(args.get_u64("jobs", 0))),
        csv(args.csv()) {
    // Resolve --jobs=0 (hardware concurrency) up front and configure
    // the process-wide thread cap: the work-stealing executor gets
    // jobs - 1 workers (the main thread is the first thread) and every
    // shard pool draws its threads from the same budget, so `jobs` is
    // a hard ceiling on process concurrency. The resolved value lands
    // in every JSON record (jobs_effective); results are bit-identical
    // across --jobs= values by the determinism contract, so the record
    // field documents the schedule, not the trajectory.
    if (jobs == 0) {
      jobs = std::max(1u, std::thread::hardware_concurrency());
    }
    jobs::set_process_concurrency(jobs);
    // Validate --engine= here, on the main thread: experiment bodies
    // resolve it inside per-repetition lambdas that run on unguarded
    // worker threads, where a throw would std::terminate the process
    // instead of producing the parse error.
    if (!engine.empty()) parse_engine_kind(engine);
    // Resolve --shards=0 (hardware concurrency) to a concrete count
    // up front: sharded trajectories are deterministic for a fixed
    // (seed, shards), so the resolved value lands in every JSON record
    // (shards_effective) for the run to be replayable elsewhere.
    if (shards == 0) {
      shards = std::max(1u, std::thread::hardware_concurrency());
    }
    // Resolve and validate the --latency= triple on the main thread for
    // the same reason: minting a model checks the (mean, shape)
    // contracts, and latency.make() is later called from worker
    // lambdas, where a throw would terminate instead of reporting.
    latency.kind = parse_latency_kind(args.get_string("latency", "zero"));
    latency.mean = args.get_double("latency-mean", 1.0);
    latency.shape = args.get_double(
        "latency-shape", default_latency_shape(latency.kind));
    try {
      latency.make();
    } catch (const ContractViolation& e) {
      // Name the flags: the raw contract message points at
      // latency.hpp, not at what the user typed.
      throw ContractViolation(
          std::string("invalid --latency/--latency-mean/--latency-shape "
                      "combination: ") +
          e.what());
    }
    // Resolve and validate the --graph*/--placement* scenario axes on
    // the main thread too: unknown names and out-of-range rates must
    // fail loudly at parse time (naming the flag), never inside a
    // worker lambda and never by silently running the default scenario
    // under an adversarial-sounding label.
    graph.kind = parse_graph_kind(args.get_string("graph", "complete"));
    graph.er_p = args.get_double("graph-p", graph.er_p);
    // Range-check before narrowing: a u64 that wraps to a small u32
    // would silently run a different scenario than requested.
    const auto get_u32 = [&](const char* key, std::uint32_t fallback) {
      const std::uint64_t value = args.get_u64(key, fallback);
      if (value > 0xFFFFFFFFull) {
        throw ContractViolation(std::string("--") + key +
                                " expects a 32-bit value, got " +
                                std::to_string(value));
      }
      return static_cast<std::uint32_t>(value);
    };
    graph.degree = get_u32("graph-degree", graph.degree);
    graph.blocks = get_u32("graph-blocks", graph.blocks);
    graph.p_in = args.get_double("graph-pin", graph.p_in);
    graph.p_out = args.get_double("graph-pout", graph.p_out);
    graph.validate();
    placement.kind =
        parse_placement_kind(args.get_string("placement", "uniform"));
    placement.fraction =
        args.get_double("placement-fraction", placement.fraction);
    placement.validate();
    // Resolve and validate the --perturb* axis on the main thread for
    // the same reason as the axes above: unknown kinds and nonsensical
    // rates must fail at parse time naming the flag, never inside a
    // worker lambda.
    perturb.kind = parse_perturb_kind(args.get_string("perturb", "none"));
    perturb.rate = args.get_double("perturb-rate", perturb.rate);
    perturb.budget = args.get_u64("perturb-budget", perturb.budget);
    perturb.start = args.get_double("perturb-start", perturb.start);
    perturb.interval = args.get_double("perturb-interval", perturb.interval);
    perturb.target =
        parse_perturb_target(args.get_string("perturb-target", "uniform"));
    perturb.validate();
    // Resolve --trace= on the main thread too (same loud-failure policy
    // as the axes above). The default is summary mode: the aggregate
    // counters are cheap enough to leave on, and every BENCH record
    // carries the contention summary unless tracing is explicitly off.
    trace_spec = trace::parse_trace_spec(args.get_string("trace", "summary"));
    // Resolve the engine-tuning knobs on the main thread (same
    // loud-failure policy). --sampling= selects scalar per-tick draws
    // (the bit-stable default) or the batched block kernels;
    // --exact-reads switches the sharded engine to its
    // distribution-exact two-phase schedule; --numa= is trajectory-
    // neutral placement plumbing (recorded as numa_effective, never
    // echoed into params — like --jobs=).
    tuning.sampling =
        parse_sampling_mode(args.get_string("sampling", "scalar"));
    tuning.numa = parse_numa_mode(args.get_string("numa", "off"));
    tuning.exact_reads = args.has_flag("exact-reads");
    if (tuning.exact_reads && tuning.sampling == SamplingMode::kBatch) {
      throw ContractViolation(
          "--exact-reads cannot be combined with --sampling=batch: the "
          "exact schedule replays ticks serially and consumes no batched "
          "node draws");
    }
  }

  Args args;
  std::uint64_t master_seed;
  std::uint64_t reps;
  unsigned threads;
  std::string engine;  ///< --engine= override; empty = experiment default
  unsigned shards;     ///< --shards=, resolved (0 -> hardware concurrency)
  unsigned jobs;       ///< --jobs=, resolved (0 -> hardware concurrency);
                       ///< the process-wide thread cap
  bool csv;
  LatencySpec latency;  ///< resolved --latency/--latency-mean/--latency-shape
  GraphSpec graph;      ///< resolved --graph/--graph-p/--graph-degree/
                        ///< --graph-blocks/--graph-pin/--graph-pout
  PlacementSpec placement;  ///< resolved --placement/--placement-fraction
  PerturbSpec perturb;      ///< resolved --perturb/--perturb-rate/
                            ///< --perturb-budget/--perturb-start/
                            ///< --perturb-interval/--perturb-target
  trace::TraceSpec trace_spec;  ///< resolved --trace= (off|summary|FILE)
  EngineTuning tuning;  ///< resolved --sampling/--numa/--exact-reads

  /// Independent seed stream for one sweep point of the experiment.
  SeedSequence seeds_for(std::uint64_t sweep_point) const {
    return SeedSequence(master_seed).child(sweep_point);
  }

  /// Records one measured series: the per-repetition samples of one
  /// quantity at one sweep point, tagged with the sweep parameters.
  /// Aggregates (Welford mean/stderr, min/max) are computed here so the
  /// JSON record carries them next to the raw samples.
  void record(const std::string& series,
              std::initializer_list<std::pair<const char*, JsonValue>> params,
              std::span<const double> samples);

  /// Hands the accumulated series array to the registry runner.
  JsonValue take_series() { return std::exchange(series_, JsonValue::array()); }

  /// Called by the bench harness with the engine that actually drove a
  /// protocol (a --engine=sharded request falls back to superposition
  /// for non-shardable protocols); collected into the JSON record as
  /// params.engine_effective so records never silently misattribute
  /// their samples. Thread-safe (repetition bodies run on workers).
  void note_effective_engine(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    engines_used_.insert(name);
  }

  /// All engines noted during the run, sorted; empty when the
  /// experiment never drove an async engine.
  std::set<std::string> effective_engines() const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    return engines_used_;
  }

  /// Called by the bench harness with the name of a latency model that
  /// actually drove a run (bench_common::run_messaging and the sharded
  /// fold call sites); collected into the JSON record as
  /// params.latency_effective. Mirrors note_effective_engine: most
  /// experiments never consume `latency`, and stamping a model onto a
  /// record whose samples ignored it would misattribute them.
  /// Thread-safe (repetition bodies run on workers).
  void note_effective_latency(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    latencies_used_.insert(name);
  }

  /// All latency models noted during the run, sorted; empty when the
  /// experiment never drove a latency-model run.
  std::set<std::string> effective_latencies() const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    return latencies_used_;
  }

  /// Called by the bench harness with the placement that actually
  /// produced a workload (bench_common::place_on): a community-aligned
  /// request on a topology without communities falls back to uniform,
  /// and the record must say so. Collected into the JSON record as
  /// params.placement_effective, mirroring engine_effective /
  /// latency_effective. Thread-safe (repetition bodies run on workers).
  void note_effective_placement(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    placements_used_.insert(name);
  }

  /// Called by the bench harness with a topology family it actually
  /// built (bench_common::make_topology and the factory-driven
  /// sweeps). Collected as params.graph_effective: several experiments
  /// are pinned to the clique (the phased OneExtraBit family), so a
  /// --graph= request is echoed like any unconsumed override but must
  /// not read as "these samples ran on that graph" unless a build is
  /// attributed here. Thread-safe (repetition bodies run on workers).
  void note_effective_graph(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    graphs_used_.insert(name);
  }

  /// All topology families noted during the run, sorted; empty when
  /// the experiment never built a graph through the factory helpers.
  std::set<std::string> effective_graphs() const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    return graphs_used_;
  }

  /// All placements noted during the run, sorted; empty when the
  /// experiment never placed a workload through the placement layer.
  std::set<std::string> effective_placements() const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    return placements_used_;
  }

  /// Called by the bench harness with a perturbation kind that actually
  /// drained events into a run (bench::make_perturber). Collected as
  /// params.perturb_effective, which — unlike the other attribution
  /// axes — appears in *every* record ("none" when nothing was noted):
  /// a robustness baseline must assert positively that its samples ran
  /// unperturbed. Thread-safe (repetition bodies run on workers).
  void note_effective_perturb(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    perturbs_used_.insert(name);
  }

  /// All perturbation kinds noted during the run, sorted; empty when no
  /// perturber was attached to any run.
  std::set<std::string> effective_perturbs() const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    return perturbs_used_;
  }

  /// Records one resolved scalar parameter into the run's top-level
  /// params block (e.g. the crash fraction or injection horizon an
  /// experiment actually used, including defaults the CLI echo would
  /// miss). Explicitly passed flags win on key collision; see
  /// run_to_record. Thread-safe (repetition bodies run on workers).
  void note_param(const std::string& key, JsonValue value) const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    noted_params_.insert_or_assign(key, std::move(value));
  }

  /// All parameters noted during the run, keyed by name.
  std::map<std::string, JsonValue> noted_params() const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    return noted_params_;
  }

  /// Called by the bench harness with the per-node byte cost of one
  /// run's resident *opinion state* — packed colors + support counters
  /// + the sharded engine's live/snapshot copies (bench::run computes
  /// it from the table's resolved width). The maximum across runs is
  /// combined with the topology share into params.bytes_per_node, the
  /// memory-footprint half of the M1e LLC-crossing claim. Thread-safe
  /// (repetition bodies run on workers).
  void note_state_bytes_per_node(double bytes) const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    state_bytes_per_node_ = std::max(state_bytes_per_node_, bytes);
  }

  /// Same for the topology share (CSR offsets + edges per node; the
  /// implicit clique costs zero). Noted where graphs are built
  /// (bench_common::with_topology and the factory-driven sweeps).
  void note_topology_bytes_per_node(double bytes) const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    topology_bytes_per_node_ = std::max(topology_bytes_per_node_, bytes);
  }

  /// The combined per-node footprint of the largest run (0 when no run
  /// noted its state — e.g. unit-style experiments with no engine).
  double bytes_per_node() const {
    const std::lock_guard<std::mutex> lock(engines_mutex_);
    return state_bytes_per_node_ + topology_bytes_per_node_;
  }

 private:
  JsonValue series_ = JsonValue::array();
  mutable std::mutex engines_mutex_;
  mutable std::set<std::string> engines_used_;
  mutable std::set<std::string> latencies_used_;
  mutable std::set<std::string> placements_used_;
  mutable std::set<std::string> graphs_used_;
  mutable std::set<std::string> perturbs_used_;
  mutable std::map<std::string, JsonValue> noted_params_;
  mutable double state_bytes_per_node_ = 0.0;
  mutable double topology_bytes_per_node_ = 0.0;
};

/// A registered experiment.
struct Experiment {
  std::string name;         ///< CLI handle, e.g. "one_extra_bit"
  std::string description;  ///< one line: paper claim / what it measures
  std::string describe;     ///< catalog paragraph: setup, sweeps, flags,
                            ///< what the recorded series mean (feeds the
                            ///< generated docs/EXPERIMENTS.md)
  std::uint64_t default_reps = 10;
  std::function<int(ExperimentContext&)> run;
};

class ExperimentRegistry {
 public:
  /// The process-wide registry (Meyers singleton: safe to use from the
  /// static registrars in each experiment translation unit).
  static ExperimentRegistry& instance();

  /// Registers an experiment. Requires a unique, non-empty name and a
  /// callable entry point.
  void add(Experiment experiment);

  /// Looks up an experiment; nullptr when unknown.
  const Experiment* find(const std::string& name) const;

  /// All experiments, sorted by name.
  std::vector<const Experiment*> list() const;

  std::size_t size() const noexcept { return experiments_.size(); }

  /// Runs one experiment with the given CLI arguments and assembles its
  /// JSON record: name, description, resolved params, recorded series,
  /// exit code, and wall-clock seconds.
  JsonValue run_to_record(const Experiment& experiment,
                          const Args& args) const;

 private:
  std::map<std::string, Experiment> experiments_;
};

/// Registers an experiment at static-initialization time; define one
/// per experiment translation unit. `describe` is the experiment's
/// catalog entry (a paragraph on setup, sweep flags, and recorded
/// series) emitted into docs/EXPERIMENTS.md via `--describe-all`.
struct ExperimentRegistrar {
  ExperimentRegistrar(std::string name, std::string description,
                      std::string describe, std::uint64_t default_reps,
                      std::function<int(ExperimentContext&)> run);
};

}  // namespace plurality
