#pragma once

/// \file runner.hpp
/// Seeded repetition runner. Each repetition gets its own RNG stream
/// derived from (master seed, repetition index), so results are
/// identical regardless of the number of worker threads — determinism
/// is a property of the seed, parallelism only changes wall-clock time.

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "rng/seed.hpp"
#include "support/assert.hpp"

namespace plurality {

/// Runs `reps` repetitions of `body(rep_index, rng)` and collects the
/// returned doubles in repetition order. `threads` = 0 picks the
/// hardware concurrency. The body must be thread-safe with respect to
/// its captures (each call receives an independent RNG).
std::vector<double> run_repetitions(
    std::uint64_t reps, const SeedSequence& seeds,
    const std::function<double(std::uint64_t, Xoshiro256&)>& body,
    unsigned threads = 0);

/// As run_repetitions, but the body returns several named quantities;
/// returns one vector per slot, each in repetition order.
std::vector<std::vector<double>> run_repetitions_multi(
    std::uint64_t reps, std::size_t slots, const SeedSequence& seeds,
    const std::function<std::vector<double>(std::uint64_t, Xoshiro256&)>&
        body,
    unsigned threads = 0);

}  // namespace plurality
