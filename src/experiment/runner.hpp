#pragma once

/// \file runner.hpp
/// Seeded repetition runner on top of the process-wide work-stealing
/// executor (src/jobs/). Each repetition gets its own RNG stream
/// derived from (master seed, repetition index), so results are
/// identical regardless of the number of worker threads — determinism
/// is a property of the seed, parallelism only changes wall-clock time.
///
/// Two entry points:
///   - run_repetitions / run_repetitions_multi: one sweep point, reps
///     fanned out as executor jobs (the historical API, unchanged);
///   - SweepRunner: a whole sweep declared up front as a DAG of
///     (sweep-point, repetition) leaf jobs on ONE executor submission,
///     so short points at the end of a sweep fill the cores that long
///     early points leave idle. Per-point completion callbacks run on
///     the calling thread in declaration order after the DAG drains,
///     which keeps Welford aggregation, BENCH JSON records, and table
///     printing bit-identical to a serial run regardless of job
///     completion order.

#include <cstdint>
#include <functional>
#include <vector>

#include "rng/seed.hpp"
#include "support/assert.hpp"

namespace plurality {

/// Runs `reps` repetitions of `body(rep_index, rng)` and collects the
/// returned doubles in repetition order. `threads` caps how many
/// repetitions may be in flight at once; 0 = no cap (the executor's
/// worker count — the --jobs= budget — is then the only limit), 1 =
/// pure serial on the calling thread. The body must be thread-safe
/// with respect to its captures (each call receives an independent
/// RNG).
std::vector<double> run_repetitions(
    std::uint64_t reps, const SeedSequence& seeds,
    const std::function<double(std::uint64_t, Xoshiro256&)>& body,
    unsigned threads = 0);

/// As run_repetitions, but the body returns several named quantities;
/// returns one vector per slot, each in repetition order.
std::vector<std::vector<double>> run_repetitions_multi(
    std::uint64_t reps, std::size_t slots, const SeedSequence& seeds,
    const std::function<std::vector<double>(std::uint64_t, Xoshiro256&)>&
        body,
    unsigned threads = 0);

/// Declares a whole sweep as one job graph: call add_point() once per
/// sweep point (in the order rows should be recorded/printed), then
/// run(). Every (point, rep) pair becomes one leaf job with its RNG
/// stream drawn from that point's SeedSequence at the rep index, and
/// every leaf writes a pre-sized slot — so the transposed per-slot
/// sample vectors handed to `finish` are bit-identical to a serial
/// sweep for any worker count, including zero.
///
/// `threads` (0 = no cap, 1 = serial inline) bounds in-flight leaves
/// across the WHOLE sweep via chain dependencies: leaf j cannot start
/// before leaf j - threads completes. One SweepRunner is single-use.
class SweepRunner {
 public:
  using Body = std::function<std::vector<double>(std::uint64_t, Xoshiro256&)>;
  using Finish =
      std::function<void(const std::vector<std::vector<double>>&)>;

  explicit SweepRunner(unsigned threads = 0) : threads_(threads) {}
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Declares one sweep point: `reps` repetitions of `body`, each
  /// returning `slots` doubles, seeded from `seeds`. After the whole
  /// sweep completes, `finish(by_slot)` is invoked on the calling
  /// thread with by_slot[slot][rep], points in declaration order.
  void add_point(std::uint64_t reps, std::size_t slots, SeedSequence seeds,
                 Body body, Finish finish);

  /// Executes every declared point's repetitions (one executor
  /// submission), then the finish callbacks in declaration order.
  /// Rethrows the first exception any body threw; finish callbacks do
  /// not run in that case.
  void run();

 private:
  struct Point {
    std::uint64_t reps;
    std::size_t slots;
    SeedSequence seeds;
    Body body;
    Finish finish;
    std::vector<std::vector<double>> per_rep;  // pre-sized result rows
  };

  unsigned threads_;
  bool ran_ = false;
  std::vector<Point> points_;
};

}  // namespace plurality
