#pragma once

/// \file crash.hpp
/// Crash-stop fault injection. The paper assumes fault-free nodes; the
/// robustness probe (experiment B2) asks how the protocols degrade when
/// a fraction of nodes silently stops participating mid-run. A crashed
/// node keeps its current color (peers can still *read* it — its memory
/// is intact, its clock is dead), which is the adversarially
/// interesting case: stale minority colors stay visible forever.
///
/// CrashAdapter wraps any AsyncProtocol: each node has a crash deadline
/// measured in its own tick count; ticks after the deadline are
/// swallowed. Consensus *among live nodes* is tracked separately, since
/// global consensus may be unreachable once a crashed node pins a dead
/// color.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "opinion/table.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/concepts.hpp"
#include "support/assert.hpp"

namespace plurality {

/// Crash deadline meaning "this node never crashes".
inline constexpr std::uint64_t kNeverCrashes = ~std::uint64_t{0};

template <AsyncProtocol P>
class CrashAdapter {
 public:
  /// `crash_after_ticks[u]` = number of own ticks after which node u is
  /// dead (use kNeverCrashes for survivors). Requires one entry per
  /// node.
  CrashAdapter(P inner, std::vector<std::uint64_t> crash_after_ticks)
      : inner_(std::move(inner)),
        crash_after_(std::move(crash_after_ticks)),
        ticks_(inner_.num_nodes(), 0),
        crashed_support_(inner_.table().num_colors(), 0) {
    PC_EXPECTS(crash_after_.size() == inner_.num_nodes());
    // Deadline 0 means dead on arrival: count those up front so the
    // incremental counters start truthful.
    for (NodeId u = 0; u < crash_after_.size(); ++u) {
      if (crash_after_[u] == 0) mark_crashed(u);
    }
  }

  void on_tick(NodeId u, Xoshiro256& rng) {
    if (ticks_[u] >= crash_after_[u]) return;  // crashed: clock is dead
    ++ticks_[u];
    inner_.on_tick(u, rng);
    // Crash transition: the deadline tick just ran (the node dies
    // *after* it), so the color the tick left behind is the one frozen
    // forever — record it after inner_.on_tick, not before.
    if (ticks_[u] == crash_after_[u]) mark_crashed(u);
  }

  std::uint64_t num_nodes() const noexcept { return inner_.num_nodes(); }
  bool done() const noexcept { return inner_.done(); }
  const OpinionTable& table() const noexcept { return inner_.table(); }
  const P& inner() const noexcept { return inner_; }

  bool is_crashed(NodeId u) const {
    PC_EXPECTS(u < ticks_.size());
    return ticks_[u] >= crash_after_[u];
  }

  /// Number of currently crashed nodes (O(1): maintained on each crash
  /// transition; observers poll this every sample).
  std::uint64_t crashed_count() const noexcept { return crashed_count_; }

  /// Fraction of *live* nodes holding the live-plurality color; 1.0
  /// means the survivors agree even if crashed nodes pin others. O(k)
  /// in the number of colors, not O(n): a crashed node's color is
  /// frozen (its ticks are swallowed, nothing else writes through the
  /// adapter), so per-color crashed support only changes on crash
  /// transitions and live support is global minus crashed.
  double live_agreement() const {
    const std::uint64_t live = num_nodes() - crashed_count_;
    if (live == 0) return 1.0;  // vacuous: everyone crashed
    std::uint64_t best = 0;
    for (ColorId c = 0; c < crashed_support_.size(); ++c) {
      best = std::max(best, table().support(c) - crashed_support_[c]);
    }
    return static_cast<double>(best) / static_cast<double>(live);
  }

 private:
  void mark_crashed(NodeId u) {
    ++crashed_count_;
    ++crashed_support_[inner_.table().color(u)];
  }

  P inner_;
  std::vector<std::uint64_t> crash_after_;
  std::vector<std::uint64_t> ticks_;
  std::uint64_t crashed_count_ = 0;
  /// Support pinned by crashed nodes, per color (frozen at crash time).
  std::vector<std::uint64_t> crashed_support_;
};

/// Crash plan: a uniform random fraction of nodes dies after
/// `crash_after_ticks` own ticks; everyone else lives forever.
std::vector<std::uint64_t> crash_fraction_plan(std::uint64_t n,
                                               double fraction,
                                               std::uint64_t after_ticks,
                                               Xoshiro256& rng);

}  // namespace plurality
