#pragma once

/// \file sharded_engine.hpp
/// A parallel tick engine for big-n asynchronous runs: the node set is
/// partitioned into T contiguous shards, each driven by its own
/// xoshiro256 stream (SplitMix64-derived from the engine seed, so a run
/// is deterministic for a fixed seed and shard count regardless of
/// thread scheduling).
///
/// Time advances in *epochs* of length `epoch_length` (capped by the
/// next sample boundary). By superposition, the number of ticks a shard
/// of n_s nodes performs in an epoch of length dt is Poisson(n_s * dt),
/// and each tick hits a uniform node of the shard. Within an epoch
/// every shard:
///   - writes only its own nodes' colors (disjoint regions, no locks),
///   - reads its own nodes *live* and foreign nodes from the epoch-start
///     snapshot (at most one epoch stale),
///   - accumulates a per-color support delta and a changed-node log.
/// At the epoch barrier the deltas are merged into the shared
/// OpinionTable (O(changes + colors), see
/// OpinionTable::merge_shard_deltas), the snapshot absorbs the changes,
/// and done() is polled; the observer fires at `sample_every`
/// boundaries as in the other engines.
///
/// The foreign-read staleness is the one deliberate deviation from the
/// exact process; shrinking `epoch_length` shrinks it (at the cost of
/// more barriers), and the engine equivalence tests pin the
/// consensus-time agreement statistically.
///
/// Edge latencies (sim/latency.hpp): the engine can *fold* a constant
/// latency c into its epoch schedule by setting `epoch_length` = 2c
/// and enabling `snapshot_reads` — then every neighbor read
/// (same-shard included) comes from the epoch-start snapshot, i.e.
/// from state whose age is uniform on [0, 2c) with mean c, matching
/// the mean information age of reading peers one constant response
/// delay ago (the age is epoch-quantized, not constant, and updates
/// apply at tick time rather than tick + c — see run_sharded_latency
/// in engine_select.hpp for the precise claim). Only the ticking
/// node's *own* color stays live (its self-read is not an edge).
/// Random latency models cannot be folded this way — their draws
/// would cross epoch boundaries and break the deterministic merge —
/// so engine selection falls back to the messaging driver for them.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/seed.hpp"
#include "sim/concepts.hpp"
#include "sim/observers.hpp"
#include "sim/result.hpp"
#include "support/assert.hpp"

namespace plurality {

/// Read view handed to ShardableProtocol::propose: live colors for the
/// calling shard's own nodes, the epoch-start snapshot for everyone
/// else.
class ShardView {
 public:
  ShardView(const ColorId* live, const ColorId* snapshot, NodeId lo,
            NodeId hi) noexcept
      : live_(live), snapshot_(snapshot), lo_(lo), hi_(hi) {}

  ColorId color(NodeId v) const noexcept {
    return (v >= lo_ && v < hi_) ? live_[v] : snapshot_[v];
  }

 private:
  const ColorId* live_;
  const ColorId* snapshot_;
  NodeId lo_;
  NodeId hi_;
};

/// A protocol the sharded engine can drive: its tick must be expressible
/// as a pure color proposal off a read view (no side effects beyond the
/// returned color), and the engine needs write access to the table for
/// the epoch merges.
template <typename P>
concept ShardableProtocol =
    AsyncProtocol<P> &&
    requires(P p, const P cp, NodeId u, const ShardView& view,
             Xoshiro256& rng) {
      { cp.propose(u, view, rng) } -> std::convertible_to<ColorId>;
      { p.mutable_table() } -> std::same_as<OpinionTable&>;
    };

/// Runs `proto` under Poisson(1) clocks until done() or `max_time`,
/// spread across `num_shards` threads (0 picks the hardware
/// concurrency). Deterministic for a fixed (seed, num_shards,
/// epoch_length, snapshot_reads) tuple. done() is polled at epoch
/// boundaries only, so a run can overshoot consensus by up to one
/// epoch of ticks; when cut off by the horizon, result.time reports
/// `max_time`.
///
/// `snapshot_reads` = false (default): same-shard neighbor reads are
/// live, foreign reads are at most one epoch stale. `snapshot_reads` =
/// true: *all* neighbor reads come from the epoch-start snapshot and
/// only the node's own color is live — the constant-latency fold
/// described in the file header (pair it with `epoch_length` set to
/// the latency).
template <ShardableProtocol P, typename Obs = NullObserver>
AsyncRunResult run_sharded(P& proto, std::uint64_t seed, unsigned num_shards,
                           double max_time, Obs&& obs = Obs{},
                           double sample_every = 1.0,
                           double epoch_length = 0.25,
                           bool snapshot_reads = false) {
  PC_EXPECTS(max_time > 0.0);
  PC_EXPECTS(sample_every > 0.0);
  PC_EXPECTS(epoch_length > 0.0);
  const std::uint64_t n = proto.num_nodes();
  PC_EXPECTS(n >= 1);

  if (num_shards == 0) {
    num_shards = std::max(1u, std::thread::hardware_concurrency());
  }
  const auto shards =
      static_cast<std::uint64_t>(std::min<std::uint64_t>(num_shards, n));
  const ColorId num_colors = proto.table().num_colors();

  const auto initial = proto.table().colors();
  std::vector<ColorId> live(initial.begin(), initial.end());
  std::vector<ColorId> snapshot = live;

  struct Shard {
    NodeId lo = 0;
    NodeId hi = 0;
    Xoshiro256 rng{0};
    std::vector<NodeId> changed;
    std::vector<std::int64_t> delta;
    std::uint64_t ticks = 0;
    std::exception_ptr error;
  };
  const SeedSequence streams(seed);
  std::vector<Shard> pool(shards);
  for (std::uint64_t s = 0; s < shards; ++s) {
    pool[s].lo = static_cast<NodeId>(n * s / shards);
    pool[s].hi = static_cast<NodeId>(n * (s + 1) / shards);
    pool[s].rng = streams.make_rng(s);
    pool[s].delta.assign(num_colors, 0);
  }

  const auto run_epoch_in = [&](Shard& shard, double dt) {
    try {
      const std::uint64_t n_s = shard.hi - shard.lo;
      const std::uint64_t ticks =
          poisson(shard.rng, static_cast<double>(n_s) * dt);
      const ShardView shard_view(live.data(), snapshot.data(), shard.lo,
                                 shard.hi);
      ColorId* colors = live.data();
      for (std::uint64_t t = 0; t < ticks; ++t) {
        const auto u = static_cast<NodeId>(
            shard.lo + uniform_below(shard.rng, n_s));
        // In snapshot_reads mode only the ticking node itself is read
        // live; every neighbor read hits the epoch-start snapshot.
        const ShardView view =
            snapshot_reads
                ? ShardView(live.data(), snapshot.data(), u, u + 1)
                : shard_view;
        const ColorId next = proto.propose(u, view, shard.rng);
        const ColorId old = colors[u];
        if (next != old) {
          colors[u] = next;
          --shard.delta[old];
          ++shard.delta[next];
          shard.changed.push_back(u);
        }
      }
      shard.ticks += ticks;
    } catch (...) {
      shard.error = std::current_exception();
    }
  };

  // Persistent worker pool: one thread per shard for the whole run,
  // synchronized at epoch barriers via a generation counter — epochs
  // are short (default 0.25 time units), so spawning threads per epoch
  // would dominate the per-tick cost.
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  double epoch_dt = 0.0;
  std::uint64_t pending = 0;
  bool stopping = false;

  std::vector<std::thread> workers;
  if (shards > 1) {
    workers.reserve(shards);
    for (std::uint64_t s = 0; s < shards; ++s) {
      workers.emplace_back([&, shard = &pool[s]] {
        std::uint64_t seen = 0;
        for (;;) {
          double dt = 0.0;
          {
            std::unique_lock lock(mutex);
            work_cv.wait(lock,
                         [&] { return stopping || generation != seen; });
            if (stopping) return;
            seen = generation;
            dt = epoch_dt;
          }
          run_epoch_in(*shard, dt);  // never throws; errors land in *shard
          {
            std::lock_guard lock(mutex);
            if (--pending == 0) done_cv.notify_one();
          }
        }
      });
    }
  }
  const auto stop_workers = [&]() noexcept {
    if (workers.empty()) return;
    {
      std::lock_guard lock(mutex);
      stopping = true;
    }
    work_cv.notify_all();
    for (auto& worker : workers) worker.join();
    workers.clear();
  };

  AsyncRunResult result;
  const auto run_epoch = [&](double dt) {
    if (shards == 1) {
      run_epoch_in(pool[0], dt);
    } else {
      {
        std::lock_guard lock(mutex);
        epoch_dt = dt;
        pending = shards;
        ++generation;
      }
      work_cv.notify_all();
      std::unique_lock lock(mutex);
      done_cv.wait(lock, [&] { return pending == 0; });
    }
    for (auto& shard : pool) {
      if (shard.error) std::rethrow_exception(shard.error);
    }
    OpinionTable& table = proto.mutable_table();
    for (auto& shard : pool) {
      table.merge_shard_deltas(shard.changed, live, shard.delta);
      for (const NodeId u : shard.changed) snapshot[u] = live[u];
      shard.changed.clear();
      shard.delta.assign(num_colors, 0);
      result.ticks += shard.ticks;
      shard.ticks = 0;
    }
  };

  try {
    double now = 0.0;
    obs(now, proto);
    while (now < max_time && !proto.done()) {
      const double sample_end = std::min(now + sample_every, max_time);
      while (now < sample_end && !proto.done()) {
        const double dt = std::min(epoch_length, sample_end - now);
        if (!(dt > 0.0)) break;  // floating-point residue at the boundary
        run_epoch(dt);
        now += dt;
      }
      if (now < max_time && !proto.done()) obs(now, proto);
    }
    result.time = proto.done() ? now : max_time;
    obs(result.time, proto);
  } catch (...) {
    stop_workers();
    throw;
  }
  stop_workers();
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

}  // namespace plurality
