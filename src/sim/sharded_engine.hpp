#pragma once

/// \file sharded_engine.hpp
/// A parallel tick engine for big-n asynchronous runs: the node set is
/// partitioned into T contiguous shards, each driven by its own
/// xoshiro256 stream (SplitMix64-derived from the engine seed, so a run
/// is deterministic for a fixed seed and shard count regardless of
/// thread scheduling).
///
/// Time advances in *epochs* of length `epoch_length` (capped by the
/// next sample boundary). By superposition, the number of ticks a shard
/// of n_s nodes performs in an epoch of length dt is Poisson(n_s * dt),
/// and each tick hits a uniform node of the shard. Within an epoch
/// every shard:
///   - writes only its own nodes' colors (disjoint regions, no locks),
///   - reads its own nodes *live* and foreign nodes from the epoch-start
///     snapshot (at most one epoch stale),
///   - accumulates a per-color support delta and a changed-node log.
/// At the epoch barrier the deltas are merged into the shared
/// OpinionTable (O(changes + colors), see
/// OpinionTable::merge_shard_deltas), the snapshot absorbs the changes,
/// and done() is polled; the observer fires at `sample_every`
/// boundaries as in the other engines. The workers are a persistent
/// pool parked at the epoch barrier (detail::ShardWorkerPool) — epochs
/// are far too short to amortize a thread spawn. The pool draws its
/// threads from the process-wide --jobs= budget (src/jobs/budget.hpp):
/// it asks for shards - 1 workers and multiplexes the shards over
/// whatever lanes the budget grants plus the calling thread, so the
/// shard count (and with it the trajectory) never depends on how many
/// threads were actually available.
///
/// Topology: protocols sample neighbors themselves (propose/query take
/// the shard's RNG), so the engine runs on *any* GraphTopology — the
/// clique, and every factory family, ideally through the flat
/// graph/csr.hpp view, which shares one immutable structure across all
/// shard workers.
///
/// The foreign-read staleness is the one deliberate deviation from the
/// exact process; shrinking `epoch_length` shrinks it (at the cost of
/// more barriers), and the engine equivalence tests pin the
/// consensus-time agreement statistically.
///
/// Edge latencies (sim/latency.hpp) integrate in two ways:
///   - run_sharded can *fold* a constant latency c into its epoch
///     schedule by setting `epoch_length` = 2c and enabling
///     `snapshot_reads` — every neighbor read then comes from the
///     epoch-start snapshot, i.e. from state whose age is uniform on
///     [0, 2c) with mean c (the fire-and-forget approximation; see
///     run_sharded_latency in engine_select.hpp for the precise claim);
///   - run_sharded_queued runs *any* sampleable model (const, exp,
///     pareto, aging) exactly, via per-shard delivery queues: a query's
///     answer carries the colors read at query time and is applied at
///     query + delay, under the blocking or fire-and-forget discipline.
///     The querier and the recipient of the answer are the same node,
///     so deliveries never cross shards and the epoch merge stays
///     deterministic.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "jobs/budget.hpp"
#include "rng/distributions.hpp"
#include "rng/seed.hpp"
#include "sim/concepts.hpp"
#include "sim/event_queue.hpp"
#include "sim/latency.hpp"
#include "sim/observers.hpp"
#include "sim/perturb.hpp"
#include "sim/result.hpp"
#include "support/assert.hpp"
#include "trace/trace.hpp"

namespace plurality {

/// Read view handed to ShardableProtocol::propose: live colors for the
/// calling shard's own nodes, the epoch-start snapshot for everyone
/// else.
class ShardView {
 public:
  ShardView(const ColorId* live, const ColorId* snapshot, NodeId lo,
            NodeId hi) noexcept
      : live_(live), snapshot_(snapshot), lo_(lo), hi_(hi) {}

  ColorId color(NodeId v) const noexcept {
    return (v >= lo_ && v < hi_) ? live_[v] : snapshot_[v];
  }

 private:
  const ColorId* live_;
  const ColorId* snapshot_;
  NodeId lo_;
  NodeId hi_;
};

/// A protocol the sharded engine can drive: its tick must be expressible
/// as a pure color proposal off a read view (no side effects beyond the
/// returned color), and the engine needs write access to the table for
/// the epoch merges.
template <typename P>
concept ShardableProtocol =
    AsyncProtocol<P> &&
    requires(P p, const P cp, NodeId u, const ShardView& view,
             Xoshiro256& rng) {
      { cp.propose(u, view, rng) } -> std::convertible_to<ColorId>;
      { p.mutable_table() } -> std::same_as<OpinionTable&>;
    };

/// A shardable protocol whose tick additionally splits at the
/// query/response boundary, so the sharded engine can delay the answer
/// under a latency model (run_sharded_queued): query() reads the
/// sampled neighbors' colors at query time, apply_query() resolves the
/// update rule against the node's current color at delivery time.
template <typename P>
concept DelayedShardableProtocol =
    ShardableProtocol<P> &&
    requires(const P cp, NodeId u, const ShardView& view, Xoshiro256& rng,
             const typename P::Query& q) {
      typename P::Query;
      { cp.query(u, view, rng) } -> std::same_as<typename P::Query>;
      { cp.apply_query(u, q, view) } -> std::convertible_to<ColorId>;
    };

namespace detail {

/// The persistent worker pool behind both sharded drivers, parked at a
/// generation-counter barrier between epochs (epochs are short —
/// default 0.25 time units — so spawning threads per epoch would
/// dominate the per-tick cost). `work(shard_index)` is invoked once
/// per shard per run_epoch() call; it must not throw (the engines
/// capture errors into their per-shard state and rethrow after the
/// barrier).
///
/// Worker-budget handshake: at construction the pool acquires up to
/// `shards - 1` threads from the process-wide jobs::ThreadBudget and
/// multiplexes the shards over `granted + 1` lanes — the calling
/// thread always runs lane 0, worker thread k runs lane k, and lane L
/// executes shards L, L + lanes, L + 2*lanes, ... sequentially. The
/// shard count (which keys the trajectory: per-shard RNG streams,
/// ranges, merge order) is therefore decoupled from the thread count:
/// under an exhausted budget (--jobs=1, or every token held by the
/// executor) the pool degrades to running all shards on the caller,
/// bit-identically. With one shard — or zero granted lanes — the work
/// runs inline and no worker is spawned.
class ShardWorkerPool {
 public:
  ShardWorkerPool(std::uint64_t shards,
                  std::function<void(std::uint64_t)> work)
      : work_(std::move(work)), shards_(shards) {
    if (shards <= 1) return;
    granted_ = jobs::ThreadBudget::global().acquire(
        static_cast<unsigned>(shards - 1));
    lanes_ = granted_ + 1;
    if (granted_ == 0) return;  // caller multiplexes every shard
    workers_.reserve(granted_);
    for (unsigned lane = 1; lane <= granted_; ++lane) {
      workers_.emplace_back([this, lane] { worker_loop(lane); });
    }
  }

  ShardWorkerPool(const ShardWorkerPool&) = delete;
  ShardWorkerPool& operator=(const ShardWorkerPool&) = delete;

  ~ShardWorkerPool() {
    if (!workers_.empty()) {
      {
        const std::lock_guard lock(mutex_);
        stopping_ = true;
      }
      work_cv_.notify_all();
      for (auto& worker : workers_) worker.join();
    }
    jobs::ThreadBudget::global().release(granted_);
  }

  /// The number of lanes the shards are multiplexed over (granted
  /// workers + the calling thread); 1 when everything runs inline.
  unsigned lanes() const noexcept { return lanes_; }

  /// Runs the work on every shard and blocks until all are done. Any
  /// state the work reads (epoch length, buffers) must be written by
  /// the caller before this call; the barrier's mutex orders those
  /// writes before the workers' reads. The caller contributes lane 0
  /// while the workers run theirs.
  void run_epoch() {
    if (shards_ <= 1) {
      work_(0);
      return;
    }
    if (workers_.empty()) {
      for (std::uint64_t s = 0; s < shards_; ++s) work_(s);
      return;
    }
    {
      const std::lock_guard lock(mutex_);
      pending_ = workers_.size();
      ++generation_;
    }
    work_cv_.notify_all();
    run_lane(0);
    // The caller's barrier wait is the headline contention signal:
    // time lane 0 sits here is load imbalance across the lanes.
    const bool traced = trace::enabled();
    const std::int64_t wait_t0 = traced ? trace::now_ns() : 0;
    {
      std::unique_lock lock(mutex_);
      done_cv_.wait(lock, [&] { return pending_ == 0; });
    }
    if (traced) {
      trace::local_sink().barrier_wait(wait_t0,
                                       trace::now_ns() - wait_t0);
    }
  }

 private:
  void run_lane(unsigned lane) {
    for (std::uint64_t s = lane; s < shards_; s += lanes_) work_(s);
  }

  void worker_loop(unsigned lane) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        // Workers park here between epochs; the teardown wake
        // (stopping_) is shutdown, not contention, and is not recorded.
        const bool traced = trace::enabled();
        const std::int64_t wait_t0 = traced ? trace::now_ns() : 0;
        std::unique_lock lock(mutex_);
        work_cv_.wait(lock,
                      [&] { return stopping_ || generation_ != seen; });
        if (stopping_) return;
        seen = generation_;
        lock.unlock();
        if (traced) {
          trace::local_sink().barrier_wait(wait_t0,
                                           trace::now_ns() - wait_t0);
        }
      }
      run_lane(lane);  // work_ never throws; errors land in engine state
      {
        const std::lock_guard lock(mutex_);
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::function<void(std::uint64_t)> work_;
  std::uint64_t shards_ = 0;
  unsigned granted_ = 0;  // budget tokens held for the pool's lifetime
  unsigned lanes_ = 1;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::uint64_t pending_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Contiguous as-equal-as-possible shard ranges over n nodes.
inline std::pair<NodeId, NodeId> shard_range(std::uint64_t n,
                                             std::uint64_t shard,
                                             std::uint64_t shards) noexcept {
  return {static_cast<NodeId>(n * shard / shards),
          static_cast<NodeId>(n * (shard + 1) / shards)};
}

/// The resolved shard count: 0 picks the hardware concurrency, and the
/// count never exceeds the node count.
inline std::uint64_t resolve_shards(unsigned num_shards,
                                    std::uint64_t n) noexcept {
  if (num_shards == 0) {
    num_shards = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min<std::uint64_t>(num_shards, n);
}

}  // namespace detail

/// Runs `proto` under Poisson(1) clocks until done() or `max_time`,
/// spread across `num_shards` threads (0 picks the hardware
/// concurrency). Deterministic for a fixed (seed, num_shards,
/// epoch_length, snapshot_reads) tuple. done() is polled at epoch
/// boundaries only, so a run can overshoot consensus by up to one
/// epoch of ticks; when cut off by the horizon, result.time reports
/// `max_time`.
///
/// `snapshot_reads` = false (default): same-shard neighbor reads are
/// live, foreign reads are at most one epoch stale. `snapshot_reads` =
/// true: *all* neighbor reads come from the epoch-start snapshot and
/// only the node's own color is live — the constant-latency fold
/// described in the file header (pair it with `epoch_length` set to
/// the latency).
///
/// Perturbations (sim/perturb.hpp) drain on the *main thread at epoch
/// boundaries* with the workers parked: each event applies at the
/// first boundary at or after its time (epoch-quantized, never
/// reordered), writing table + live + snapshot together so the next
/// epoch's reads see it coherently. Crash suppression is a read-only
/// bitmap lookup in the worker tick loop, stable within an epoch. The
/// run continues past transient consensus until the driver is
/// exhausted. Determinism for a fixed (seed, num_shards) is preserved:
/// the driver owns its RNG stream and drains only between epochs.
template <ShardableProtocol P, typename Obs = NullObserver>
AsyncRunResult run_sharded(P& proto, std::uint64_t seed, unsigned num_shards,
                           double max_time, Obs&& obs = Obs{},
                           double sample_every = 1.0,
                           double epoch_length = 0.25,
                           bool snapshot_reads = false,
                           Perturber* perturb = nullptr) {
  PC_EXPECTS(max_time > 0.0);
  PC_EXPECTS(sample_every > 0.0);
  PC_EXPECTS(epoch_length > 0.0);
  const std::uint64_t n = proto.num_nodes();
  PC_EXPECTS(n >= 1);

  const std::uint64_t shards = detail::resolve_shards(num_shards, n);
  const ColorId num_colors = proto.table().num_colors();

  const auto initial = proto.table().colors();
  std::vector<ColorId> live(initial.begin(), initial.end());
  std::vector<ColorId> snapshot = live;

  struct Shard {
    NodeId lo = 0;
    NodeId hi = 0;
    Xoshiro256 rng{0};
    std::vector<NodeId> changed;
    std::vector<std::int64_t> delta;
    std::uint64_t ticks = 0;
    std::exception_ptr error;
  };
  const SeedSequence streams(seed);
  std::vector<Shard> pool(shards);
  for (std::uint64_t s = 0; s < shards; ++s) {
    std::tie(pool[s].lo, pool[s].hi) = detail::shard_range(n, s, shards);
    pool[s].rng = streams.make_rng(s);
    pool[s].delta.assign(num_colors, 0);
  }

  double epoch_dt = 0.0;  // written before each barrier, read by workers
  const auto run_epoch_in = [&](Shard& shard) {
    try {
      const bool traced = trace::enabled();
      const std::int64_t span_t0 = traced ? trace::now_ns() : 0;
      const double dt = epoch_dt;
      const std::uint64_t n_s = shard.hi - shard.lo;
      const std::uint64_t ticks =
          poisson(shard.rng, static_cast<double>(n_s) * dt);
      const ShardView shard_view(live.data(), snapshot.data(), shard.lo,
                                 shard.hi);
      ColorId* colors = live.data();
      for (std::uint64_t t = 0; t < ticks; ++t) {
        const auto u = static_cast<NodeId>(
            shard.lo + uniform_below(shard.rng, n_s));
        // Crashed nodes' clocks are dead: the tick is swallowed (the
        // bitmap is stable within an epoch — drains happen between
        // epochs on the main thread).
        if (perturb != nullptr && !perturb->allows_tick(u)) continue;
        // In snapshot_reads mode only the ticking node itself is read
        // live; every neighbor read hits the epoch-start snapshot.
        const ShardView view =
            snapshot_reads
                ? ShardView(live.data(), snapshot.data(), u, u + 1)
                : shard_view;
        const ColorId next = proto.propose(u, view, shard.rng);
        const ColorId old = colors[u];
        if (next != old) {
          colors[u] = next;
          --shard.delta[old];
          ++shard.delta[next];
          shard.changed.push_back(u);
        }
      }
      shard.ticks += ticks;
      if (traced) {
        trace::local_sink().shard_span(
            span_t0, trace::now_ns() - span_t0, ticks);
      }
    } catch (...) {
      shard.error = std::current_exception();
    }
  };

  detail::ShardWorkerPool workers(
      shards, [&](std::uint64_t s) { run_epoch_in(pool[s]); });

  AsyncRunResult result;
  const auto run_epoch = [&](double dt) {
    epoch_dt = dt;
    workers.run_epoch();
    for (auto& shard : pool) {
      if (shard.error) std::rethrow_exception(shard.error);
    }
    OpinionTable& table = proto.mutable_table();
    for (auto& shard : pool) {
      table.merge_shard_deltas(shard.changed, live, shard.delta);
      for (const NodeId u : shard.changed) snapshot[u] = live[u];
      shard.changed.clear();
      shard.delta.assign(num_colors, 0);
      result.ticks += shard.ticks;
      shard.ticks = 0;
    }
  };

  // Perturbation drains run here on the main thread, workers parked:
  // writes go to table + live + snapshot together so the next epoch's
  // live and snapshot reads agree.
  const auto apply_perturbations = [&](double t) {
    if (perturb == nullptr || perturb->next_time() > t) return;
    perturb->drain_until(t, proto.table(), [&](NodeId u, ColorId c) {
      proto.mutable_table().set_color(u, c);
      live[u] = c;
      snapshot[u] = c;
    });
  };
  const auto running = [&] {
    return !(proto.done() &&
             (perturb == nullptr || perturb->exhausted()));
  };

  double now = 0.0;
  obs(now, proto);
  while (now < max_time && running()) {
    const double sample_end = std::min(now + sample_every, max_time);
    while (now < sample_end && running()) {
      const double dt = std::min(epoch_length, sample_end - now);
      if (!(dt > 0.0)) break;  // floating-point residue at the boundary
      run_epoch(dt);
      now += dt;
      apply_perturbations(now);
    }
    if (now < max_time && running()) obs(now, proto);
  }
  result.time = proto.done() ? now : max_time;
  obs(result.time, proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

/// Runs `proto` under Poisson(1) clocks *and* a response-latency model,
/// spread across `num_shards` threads: every (non-suppressed) tick
/// issues a query whose sampled colors are read at query time; the
/// answer travels for latency.sample() time units on the shard's own
/// delivery queue (the querier receives its own answer, so deliveries
/// never cross shards) and the update rule is applied at delivery.
/// Under QueryDiscipline::kBlocking a node with an answer in flight
/// skips its ticks until the answer lands — the Bankhamer et al.
/// request/response regime; kFireAndForget queries on every tick.
///
/// This is the general latency path of the sharded engine: it handles
/// every sampleable model (const, exp, pareto, aging) exactly — delays
/// cross epoch (and sample) boundaries on the persistent per-shard
/// queues — leaving only the usual sharded-engine deviation, the
/// epoch-start snapshot for *foreign* neighbor reads. Within an epoch
/// each shard interleaves its superposition tick stream (sequential
/// Exp(1)/n_s gaps, exact by memorylessness across epoch boundaries)
/// with its queue head in nondecreasing event time, so a fixed
/// (seed, num_shards, epoch_length) tuple is deterministic regardless
/// of thread scheduling. done() is polled at epoch boundaries; when
/// the horizon cuts the run, queries still in flight are dropped and
/// result.time reports `max_time`.
///
/// Perturbations drain at epoch boundaries exactly as in run_sharded.
/// A crashed node additionally stops issuing queries, and answers
/// delivered to it are dropped (its in-flight flag still clears, so a
/// node crashed mid-flight does not wedge the blocking discipline's
/// bookkeeping).
template <DelayedShardableProtocol P, typename Obs = NullObserver>
AsyncRunResult run_sharded_queued(P& proto, const LatencyModel& latency,
                                  QueryDiscipline discipline,
                                  std::uint64_t seed, unsigned num_shards,
                                  double max_time, Obs&& obs = Obs{},
                                  double sample_every = 1.0,
                                  double epoch_length = 0.25,
                                  Perturber* perturb = nullptr) {
  PC_EXPECTS(max_time > 0.0);
  PC_EXPECTS(sample_every > 0.0);
  PC_EXPECTS(epoch_length > 0.0);
  const std::uint64_t n = proto.num_nodes();
  PC_EXPECTS(n >= 1);

  const std::uint64_t shards = detail::resolve_shards(num_shards, n);
  const ColorId num_colors = proto.table().num_colors();
  const bool blocking = discipline == QueryDiscipline::kBlocking;

  const auto initial = proto.table().colors();
  std::vector<ColorId> live(initial.begin(), initial.end());
  std::vector<ColorId> snapshot = live;

  struct Delivery {
    NodeId to;
    typename P::Query query;
  };
  struct Shard {
    NodeId lo = 0;
    NodeId hi = 0;
    Xoshiro256 rng{0};
    EventQueue<Delivery> deliveries;       // persists across epochs
    std::vector<std::uint8_t> pending;     // blocking: query in flight
    std::vector<NodeId> changed;
    std::vector<std::int64_t> delta;
    std::uint64_t ticks = 0;
    std::exception_ptr error;
  };
  const SeedSequence streams(seed);
  std::vector<Shard> pool(shards);
  for (std::uint64_t s = 0; s < shards; ++s) {
    std::tie(pool[s].lo, pool[s].hi) = detail::shard_range(n, s, shards);
    pool[s].rng = streams.make_rng(s);
    pool[s].delta.assign(num_colors, 0);
    if (blocking) pool[s].pending.assign(pool[s].hi - pool[s].lo, 0);
  }

  double epoch_t0 = 0.0;  // written before each barrier, read by workers
  double epoch_dt = 0.0;
  const auto run_epoch_in = [&](Shard& shard) {
    try {
      const bool traced = trace::enabled();
      const std::int64_t span_t0 = traced ? trace::now_ns() : 0;
      const std::uint64_t ticks_before = shard.ticks;
      std::uint64_t drained = 0;
      const std::uint64_t n_s = shard.hi - shard.lo;
      const double inv_rate = 1.0 / static_cast<double>(n_s);
      const double t_end = epoch_t0 + epoch_dt;
      const ShardView view(live.data(), snapshot.data(), shard.lo,
                           shard.hi);
      ColorId* colors = live.data();
      // Fresh first-gap draw each epoch: exact by memorylessness of the
      // shard's Poisson(n_s) tick process.
      double next_tick = epoch_t0 + exponential_unit(shard.rng) * inv_rate;
      for (;;) {
        const bool deliver = !shard.deliveries.empty() &&
                             shard.deliveries.next_time() <= next_tick;
        const double event_time =
            deliver ? shard.deliveries.next_time() : next_tick;
        if (event_time >= t_end) break;  // remainder handled next epoch
        if (deliver) {
          auto event = shard.deliveries.pop();
          ++drained;
          const NodeId u = event.payload.to;
          if (blocking) shard.pending[u - shard.lo] = 0;
          // Answers to crashed nodes are dropped (flag still cleared
          // above so the blocking bookkeeping cannot wedge).
          if (perturb != nullptr && !perturb->allows_tick(u)) continue;
          const ColorId next =
              proto.apply_query(u, event.payload.query, view);
          const ColorId old = colors[u];
          if (next != old) {
            colors[u] = next;
            --shard.delta[old];
            ++shard.delta[next];
            shard.changed.push_back(u);
          }
        } else {
          const auto u = static_cast<NodeId>(
              shard.lo + uniform_below(shard.rng, n_s));
          const bool alive =
              perturb == nullptr || perturb->allows_tick(u);
          if (alive && (!blocking || !shard.pending[u - shard.lo])) {
            auto query = proto.query(u, view, shard.rng);
            const double delay = latency.sample(shard.rng);
            shard.deliveries.push(next_tick + delay,
                                  Delivery{u, std::move(query)});
            if (blocking) shard.pending[u - shard.lo] = 1;
          }
          ++shard.ticks;
          next_tick += exponential_unit(shard.rng) * inv_rate;
        }
      }
      if (traced) {
        trace::Sink& sink = trace::local_sink();
        const std::int64_t span_end = trace::now_ns();
        sink.shard_span(span_t0, span_end - span_t0,
                        shard.ticks - ticks_before);
        if (drained > 0) sink.queue_drain(span_end, 0, drained);
        // Depth at the epoch boundary is a trajectory property (the
        // queue content is keyed on seed/shards/epoch_length), so the
        // derived quantiles are deterministic and bench-gateable.
        sink.queue_depth(span_end, shard.deliveries.size());
      }
    } catch (...) {
      shard.error = std::current_exception();
    }
  };

  detail::ShardWorkerPool workers(
      shards, [&](std::uint64_t s) { run_epoch_in(pool[s]); });

  AsyncRunResult result;
  const auto run_epoch = [&](double t0, double dt) {
    epoch_t0 = t0;
    epoch_dt = dt;
    workers.run_epoch();
    for (auto& shard : pool) {
      if (shard.error) std::rethrow_exception(shard.error);
    }
    OpinionTable& table = proto.mutable_table();
    for (auto& shard : pool) {
      table.merge_shard_deltas(shard.changed, live, shard.delta);
      for (const NodeId u : shard.changed) snapshot[u] = live[u];
      shard.changed.clear();
      shard.delta.assign(num_colors, 0);
      result.ticks += shard.ticks;
      shard.ticks = 0;
    }
  };

  const auto apply_perturbations = [&](double t) {
    if (perturb == nullptr || perturb->next_time() > t) return;
    perturb->drain_until(t, proto.table(), [&](NodeId u, ColorId c) {
      proto.mutable_table().set_color(u, c);
      live[u] = c;
      snapshot[u] = c;
    });
  };
  const auto running = [&] {
    return !(proto.done() &&
             (perturb == nullptr || perturb->exhausted()));
  };

  double now = 0.0;
  obs(now, proto);
  while (now < max_time && running()) {
    const double sample_end = std::min(now + sample_every, max_time);
    while (now < sample_end && running()) {
      const double dt = std::min(epoch_length, sample_end - now);
      if (!(dt > 0.0)) break;  // floating-point residue at the boundary
      run_epoch(now, dt);
      now += dt;
      apply_perturbations(now);
    }
    if (now < max_time && running()) obs(now, proto);
  }
  result.time = proto.done() ? now : max_time;
  obs(result.time, proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

}  // namespace plurality
