#pragma once

/// \file sharded_engine.hpp
/// A parallel tick engine for big-n asynchronous runs: the node set is
/// partitioned into T contiguous shards, each driven by its own
/// xoshiro256 stream (SplitMix64-derived from the engine seed, so a run
/// is deterministic for a fixed seed and shard count regardless of
/// thread scheduling).
///
/// Time advances in *epochs* of length `epoch_length` (capped by the
/// next sample boundary). By superposition, the number of ticks a shard
/// of n_s nodes performs in an epoch of length dt is Poisson(n_s * dt),
/// and each tick hits a uniform node of the shard. Within an epoch
/// every shard:
///   - writes only its own nodes' colors (disjoint regions, no locks),
///   - reads its own nodes *live* and foreign nodes from the epoch-start
///     snapshot (at most one epoch stale),
///   - accumulates a per-color support delta and a changed-node log.
/// At the epoch barrier the deltas are merged into the shared
/// OpinionTable (O(changes + colors), see
/// OpinionTable::merge_shard_deltas), the snapshot absorbs the changes,
/// and done() is polled; the observer fires at `sample_every`
/// boundaries as in the other engines. The workers are a persistent
/// pool parked at the epoch barrier (detail::ShardWorkerPool) — epochs
/// are far too short to amortize a thread spawn. The pool draws its
/// threads from the process-wide --jobs= budget (src/jobs/budget.hpp):
/// it asks for shards - 1 workers and multiplexes the shards over
/// whatever lanes the budget grants plus the calling thread, so the
/// shard count (and with it the trajectory) never depends on how many
/// threads were actually available.
///
/// Memory layout (opinion/packed.hpp): the engine's live and snapshot
/// color arrays are *packed* at the table's resolved u8/u16/u32 width
/// in 64-byte-aligned slabs, and the epoch body is instantiated once
/// per width with typed pointers — a k <= 256 run streams 1 byte per
/// node per array instead of 4. Per-shard support deltas live in one
/// cache-line-padded slab (ShardDeltaSlab) so workers never false-share
/// counter lines. Width never touches an RNG stream: trajectories are
/// bit-identical across widths for a fixed (seed, shards).
///
/// EngineTuning composes three orthogonal performance/exactness knobs:
///   - sampling (--sampling=scalar|batch): batch mode draws each
///     epoch's node indices through rng/batch.hpp's lane-parallel
///     Xoshiro256Block (a per-shard stream separate from the shard's
///     scalar stream, derived from the same SeedSequence) instead of
///     one scalar draw per tick. Statistically equivalent, not
///     bit-identical — the default stays scalar so baselines survive;
///   - numa (--numa=off|firsttouch|bind): first-touch initialization
///     of live/snapshot/delta arrays on the owning worker lane, and
///     optional explicit lane pinning (sim/numa.hpp). Trajectory-
///     neutral; off-Linux, bind degrades to firsttouch;
///   - exact_reads (--exact-reads): replaces the epoch-stale foreign
///     reads with a distribution-*exact* two-phase schedule — see
///     run_sharded_exact below — trading parallel tick application for
///     parallel randomness generation.
///
/// Topology: protocols sample neighbors themselves (propose/query take
/// the shard's RNG), so the engine runs on *any* GraphTopology — the
/// clique, and every factory family, ideally through the flat
/// graph/csr.hpp view, which shares one immutable structure across all
/// shard workers.
///
/// The foreign-read staleness is the one deliberate deviation from the
/// exact process; shrinking `epoch_length` shrinks it (at the cost of
/// more barriers), `exact_reads` removes it entirely, and the engine
/// equivalence tests pin the consensus-time agreement statistically.
///
/// Edge latencies (sim/latency.hpp) integrate in two ways:
///   - run_sharded can *fold* a constant latency c into its epoch
///     schedule by setting `epoch_length` = 2c and enabling
///     `snapshot_reads` — every neighbor read then comes from the
///     epoch-start snapshot, i.e. from state whose age is uniform on
///     [0, 2c) with mean c (the fire-and-forget approximation; see
///     run_sharded_latency in engine_select.hpp for the precise claim);
///   - run_sharded_queued runs *any* sampleable model (const, exp,
///     pareto, aging) exactly, via per-shard delivery queues: a query's
///     answer carries the colors read at query time and is applied at
///     query + delay, under the blocking or fire-and-forget discipline.
///     The querier and the recipient of the answer are the same node,
///     so deliveries never cross shards and the epoch merge stays
///     deterministic.

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "jobs/budget.hpp"
#include "opinion/packed.hpp"
#include "rng/batch.hpp"
#include "rng/distributions.hpp"
#include "rng/seed.hpp"
#include "sim/concepts.hpp"
#include "sim/event_queue.hpp"
#include "sim/latency.hpp"
#include "sim/numa.hpp"
#include "sim/observers.hpp"
#include "sim/perturb.hpp"
#include "sim/result.hpp"
#include "support/assert.hpp"
#include "trace/trace.hpp"

namespace plurality {

/// The sharded engine's performance/exactness knobs (see file header).
/// The default tuple is the historical engine: scalar draws, main-
/// thread allocation, epoch-stale foreign reads — bit-identical to
/// every checked-in baseline.
struct EngineTuning {
  SamplingMode sampling = SamplingMode::kScalar;
  NumaMode numa = NumaMode::kOff;
  bool exact_reads = false;
};

/// Read view handed to ShardableProtocol::propose: live colors for the
/// calling shard's own nodes, the epoch-start snapshot for everyone
/// else. Templated over the packed element width; protocols' propose()
/// is a template over the view type, so one protocol serves every
/// width.
template <typename T>
class PackedShardView {
 public:
  PackedShardView(const T* live, const T* snapshot, NodeId lo,
                  NodeId hi) noexcept
      : live_(live), snapshot_(snapshot), lo_(lo), hi_(hi) {}

  ColorId color(NodeId v) const noexcept {
    return (v >= lo_ && v < hi_) ? live_[v] : snapshot_[v];
  }

 private:
  const T* live_;
  const T* snapshot_;
  NodeId lo_;
  NodeId hi_;
};

/// The view type the concepts below are checked against (protocols take
/// the view as a template parameter, so satisfying the u32 form implies
/// the u8/u16 forms).
using ShardView = PackedShardView<ColorId>;

/// A protocol the sharded engine can drive: its tick must be expressible
/// as a pure color proposal off a read view (no side effects beyond the
/// returned color), and the engine needs write access to the table for
/// the epoch merges.
template <typename P>
concept ShardableProtocol =
    AsyncProtocol<P> &&
    requires(P p, const P cp, NodeId u, const ShardView& view,
             Xoshiro256& rng) {
      { cp.propose(u, view, rng) } -> std::convertible_to<ColorId>;
      { p.mutable_table() } -> std::same_as<OpinionTable&>;
    };

/// A shardable protocol whose tick additionally splits at the
/// query/response boundary, so the sharded engine can delay the answer
/// under a latency model (run_sharded_queued): query() reads the
/// sampled neighbors' colors at query time, apply_query() resolves the
/// update rule against the node's current color at delivery time.
template <typename P>
concept DelayedShardableProtocol =
    ShardableProtocol<P> &&
    requires(const P cp, NodeId u, const ShardView& view, Xoshiro256& rng,
             const typename P::Query& q) {
      typename P::Query;
      { cp.query(u, view, rng) } -> std::same_as<typename P::Query>;
      { cp.apply_query(u, q, view) } -> std::convertible_to<ColorId>;
    };

namespace detail {

/// The persistent worker pool behind both sharded drivers, parked at a
/// generation-counter barrier between epochs (epochs are short —
/// default 0.25 time units — so spawning threads per epoch would
/// dominate the per-tick cost). `work(shard_index)` is invoked once
/// per shard per run_epoch() call; it must not throw (the engines
/// capture errors into their per-shard state and rethrow after the
/// barrier).
///
/// Worker-budget handshake: at construction the pool acquires up to
/// `shards - 1` threads from the process-wide jobs::ThreadBudget and
/// multiplexes the shards over `granted + 1` lanes — the calling
/// thread always runs lane 0, worker thread k runs lane k, and lane L
/// executes shards L, L + lanes, L + 2*lanes, ... sequentially. The
/// shard count (which keys the trajectory: per-shard RNG streams,
/// ranges, merge order) is therefore decoupled from the thread count:
/// under an exhausted budget (--jobs=1, or every token held by the
/// executor) the pool degrades to running all shards on the caller,
/// bit-identically. With one shard — or zero granted lanes — the work
/// runs inline and no worker is spawned.
///
/// Under NumaMode::kBind each *worker* thread pins itself to one CPU
/// spread evenly over the box before first parking (numa::pin_lane);
/// the calling thread is never pinned — constraining the caller would
/// outlive the run. Pinning is trajectory-neutral.
class ShardWorkerPool {
 public:
  ShardWorkerPool(std::uint64_t shards,
                  std::function<void(std::uint64_t)> work,
                  NumaMode numa = NumaMode::kOff)
      : work_(std::move(work)), shards_(shards), numa_(numa) {
    if (shards <= 1) return;
    granted_ = jobs::ThreadBudget::global().acquire(
        static_cast<unsigned>(shards - 1));
    lanes_ = granted_ + 1;
    if (granted_ == 0) return;  // caller multiplexes every shard
    workers_.reserve(granted_);
    for (unsigned lane = 1; lane <= granted_; ++lane) {
      workers_.emplace_back([this, lane] { worker_loop(lane); });
    }
  }

  ShardWorkerPool(const ShardWorkerPool&) = delete;
  ShardWorkerPool& operator=(const ShardWorkerPool&) = delete;

  ~ShardWorkerPool() {
    if (!workers_.empty()) {
      {
        const std::lock_guard lock(mutex_);
        stopping_ = true;
      }
      work_cv_.notify_all();
      for (auto& worker : workers_) worker.join();
    }
    jobs::ThreadBudget::global().release(granted_);
  }

  /// The number of lanes the shards are multiplexed over (granted
  /// workers + the calling thread); 1 when everything runs inline.
  unsigned lanes() const noexcept { return lanes_; }

  /// Runs the work on every shard and blocks until all are done. Any
  /// state the work reads (epoch length, buffers) must be written by
  /// the caller before this call; the barrier's mutex orders those
  /// writes before the workers' reads. The caller contributes lane 0
  /// while the workers run theirs.
  void run_epoch() {
    if (shards_ <= 1) {
      work_(0);
      return;
    }
    if (workers_.empty()) {
      for (std::uint64_t s = 0; s < shards_; ++s) work_(s);
      return;
    }
    {
      const std::lock_guard lock(mutex_);
      pending_ = workers_.size();
      ++generation_;
    }
    work_cv_.notify_all();
    run_lane(0);
    // The caller's barrier wait is the headline contention signal:
    // time lane 0 sits here is load imbalance across the lanes.
    const bool traced = trace::enabled();
    const std::int64_t wait_t0 = traced ? trace::now_ns() : 0;
    {
      std::unique_lock lock(mutex_);
      done_cv_.wait(lock, [&] { return pending_ == 0; });
    }
    if (traced) {
      trace::local_sink().barrier_wait(wait_t0,
                                       trace::now_ns() - wait_t0);
    }
  }

 private:
  void run_lane(unsigned lane) {
    for (std::uint64_t s = lane; s < shards_; s += lanes_) work_(s);
  }

  void worker_loop(unsigned lane) {
    if (numa_ == NumaMode::kBind) numa::pin_lane(lane, lanes_);
    std::uint64_t seen = 0;
    for (;;) {
      {
        // Workers park here between epochs; the teardown wake
        // (stopping_) is shutdown, not contention, and is not recorded.
        const bool traced = trace::enabled();
        const std::int64_t wait_t0 = traced ? trace::now_ns() : 0;
        std::unique_lock lock(mutex_);
        work_cv_.wait(lock,
                      [&] { return stopping_ || generation_ != seen; });
        if (stopping_) return;
        seen = generation_;
        lock.unlock();
        if (traced) {
          trace::local_sink().barrier_wait(wait_t0,
                                           trace::now_ns() - wait_t0);
        }
      }
      run_lane(lane);  // work_ never throws; errors land in engine state
      {
        const std::lock_guard lock(mutex_);
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::function<void(std::uint64_t)> work_;
  std::uint64_t shards_ = 0;
  NumaMode numa_ = NumaMode::kOff;
  unsigned granted_ = 0;  // budget tokens held for the pool's lifetime
  unsigned lanes_ = 1;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::uint64_t pending_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Contiguous as-equal-as-possible shard ranges over n nodes.
inline std::pair<NodeId, NodeId> shard_range(std::uint64_t n,
                                             std::uint64_t shard,
                                             std::uint64_t shards) noexcept {
  return {static_cast<NodeId>(n * shard / shards),
          static_cast<NodeId>(n * (shard + 1) / shards)};
}

/// The resolved shard count: 0 picks the hardware concurrency, and the
/// count never exceeds the node count.
inline std::uint64_t resolve_shards(unsigned num_shards,
                                    std::uint64_t n) noexcept {
  if (num_shards == 0) {
    num_shards = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min<std::uint64_t>(num_shards, n);
}

/// Node draws for one epoch are pulled through a bounded per-shard
/// buffer in batch mode, so the resident cost is constant per shard
/// instead of one word per tick.
inline constexpr std::size_t kNodeBatch = 4096;

/// The live/snapshot pair of one sharded run, built according to the
/// NUMA mode: `off` packs both on the calling thread; the first-touch
/// modes return *uninitialized* slabs the caller must fill through an
/// init epoch on the worker pool (each lane packing its own shards'
/// ranges) before the first tick epoch.
struct EngineBuffers {
  PackedColors live;
  PackedColors snapshot;
};

inline EngineBuffers make_buffers(const PackedColors& source,
                                  NumaMode numa) {
  EngineBuffers out;
  if (numa == NumaMode::kOff) {
    out.live = source.clone();
    out.snapshot = source.clone();
  } else {
    out.live = PackedColors::uninitialized(source.size(), source.width());
    out.snapshot =
        PackedColors::uninitialized(source.size(), source.width());
  }
  return out;
}

/// The width-typed body of run_sharded (dispatched once per run on the
/// table's resolved width; see run_sharded below for the contract).
template <typename T, typename P, typename Obs>
AsyncRunResult run_sharded_impl(P& proto, std::uint64_t seed,
                                std::uint64_t shards, double max_time,
                                Obs&& obs, double sample_every,
                                double epoch_length, bool snapshot_reads,
                                Perturber* perturb,
                                const EngineTuning& tuning) {
  const std::uint64_t n = proto.num_nodes();
  const ColorId num_colors = proto.table().num_colors();
  const bool batch = tuning.sampling == SamplingMode::kBatch;
  const bool first_touch = tuning.numa != NumaMode::kOff;

  EngineBuffers buffers = make_buffers(proto.table().packed_colors(),
                                       tuning.numa);
  // Deltas stay zero-initialized by the owner lane under first-touch.
  ShardDeltaSlab deltas(shards, num_colors, /*deferred_init=*/first_touch);

  struct alignas(64) Shard {
    NodeId lo = 0;
    NodeId hi = 0;
    Xoshiro256 rng{0};
    std::vector<NodeId> changed;
    std::vector<NodeId> node_buf;  // batch mode: bounded draw buffer
    std::uint64_t ticks = 0;
    std::exception_ptr error;
  };
  const SeedSequence streams(seed);
  std::vector<Shard> pool(shards);
  std::vector<Xoshiro256Block> blocks;  // batch mode: per-shard streams
  if (batch) blocks.reserve(shards);
  for (std::uint64_t s = 0; s < shards; ++s) {
    std::tie(pool[s].lo, pool[s].hi) = detail::shard_range(n, s, shards);
    pool[s].rng = streams.make_rng(s);
    if (batch) {
      // A stream index disjoint from every shard's scalar stream: the
      // node-draw block and the protocol draws never share words.
      blocks.emplace_back(streams.stream(shards + s));
      pool[s].node_buf.resize(kNodeBatch);
    }
  }

  bool initializing = first_touch;
  double epoch_dt = 0.0;  // written before each barrier, read by workers
  const auto init_shard = [&](std::uint64_t s) {
    // First touch: the owning lane performs the first write to its
    // ranges of live, snapshot and the delta row, so their pages land
    // on the lane's NUMA node.
    try {
      const Shard& shard = pool[s];
      buffers.live.copy_range_from(proto.table().packed_colors(), shard.lo,
                                   shard.hi);
      buffers.snapshot.copy_range_from(buffers.live, shard.lo, shard.hi);
      deltas.clear(s);
    } catch (...) {
      pool[s].error = std::current_exception();
    }
  };
  const auto run_epoch_in = [&](std::uint64_t s) {
    Shard& shard = pool[s];
    try {
      const bool traced = trace::enabled();
      const std::int64_t span_t0 = traced ? trace::now_ns() : 0;
      const double dt = epoch_dt;
      const std::uint64_t n_s = shard.hi - shard.lo;
      const std::uint64_t ticks =
          poisson(shard.rng, static_cast<double>(n_s) * dt);
      T* colors = buffers.live.template data<T>();
      const T* snap = buffers.snapshot.template data<T>();
      const PackedShardView<T> shard_view(colors, snap, shard.lo, shard.hi);
      const std::span<std::int64_t> delta = deltas.shard(s);
      std::uint64_t done = 0;
      while (done < ticks) {
        // Scalar mode runs one full-epoch chunk with per-tick draws;
        // batch mode refills the node buffer through the lane-parallel
        // block stream and consumes it in the same tick loop.
        const std::uint64_t chunk =
            batch ? std::min<std::uint64_t>(kNodeBatch, ticks - done)
                  : ticks - done;
        if (batch) {
          blocks[s].fill_uniform_below(
              n_s, std::span<NodeId>(shard.node_buf.data(),
                                     static_cast<std::size_t>(chunk)));
        }
        for (std::uint64_t t = 0; t < chunk; ++t) {
          const auto u = static_cast<NodeId>(
              shard.lo + (batch ? shard.node_buf[t]
                                : static_cast<NodeId>(
                                      uniform_below(shard.rng, n_s))));
          // Crashed nodes' clocks are dead: the tick is swallowed (the
          // bitmap is stable within an epoch — drains happen between
          // epochs on the main thread).
          if (perturb != nullptr && !perturb->allows_tick(u)) continue;
          // In snapshot_reads mode only the ticking node itself is read
          // live; every neighbor read hits the epoch-start snapshot.
          const PackedShardView<T> view =
              snapshot_reads ? PackedShardView<T>(colors, snap, u, u + 1)
                             : shard_view;
          const ColorId next = proto.propose(u, view, shard.rng);
          const ColorId old = colors[u];
          if (next != old) {
            colors[u] = static_cast<T>(next);
            --delta[old];
            ++delta[next];
            shard.changed.push_back(u);
          }
        }
        done += chunk;
      }
      shard.ticks += ticks;
      if (traced) {
        trace::local_sink().shard_span(
            span_t0, trace::now_ns() - span_t0, ticks);
      }
    } catch (...) {
      shard.error = std::current_exception();
    }
  };

  detail::ShardWorkerPool workers(
      shards,
      [&](std::uint64_t s) {
        if (initializing) {
          init_shard(s);
        } else {
          run_epoch_in(s);
        }
      },
      tuning.numa);
  const auto rethrow_shard_errors = [&] {
    for (auto& shard : pool) {
      if (shard.error) std::rethrow_exception(shard.error);
    }
  };
  if (first_touch) {
    workers.run_epoch();  // the init epoch: pack ranges on owner lanes
    initializing = false;
    rethrow_shard_errors();
  }

  AsyncRunResult result;
  const auto run_epoch = [&](double dt) {
    epoch_dt = dt;
    workers.run_epoch();
    rethrow_shard_errors();
    OpinionTable& table = proto.mutable_table();
    T* live = buffers.live.template data<T>();
    T* snap = buffers.snapshot.template data<T>();
    for (std::uint64_t s = 0; s < shards; ++s) {
      Shard& shard = pool[s];
      table.merge_shard_deltas(shard.changed, buffers.live,
                               deltas.shard(s));
      for (const NodeId u : shard.changed) snap[u] = live[u];
      shard.changed.clear();
      deltas.clear(s);
      result.ticks += shard.ticks;
      shard.ticks = 0;
    }
  };

  // Perturbation drains run here on the main thread, workers parked:
  // writes go to table + live + snapshot together so the next epoch's
  // live and snapshot reads agree.
  const auto apply_perturbations = [&](double t) {
    if (perturb == nullptr || perturb->next_time() > t) return;
    perturb->drain_until(t, proto.table(), [&](NodeId u, ColorId c) {
      proto.mutable_table().set_color(u, c);
      buffers.live.set(u, c);
      buffers.snapshot.set(u, c);
    });
  };
  const auto running = [&] {
    return !(proto.done() &&
             (perturb == nullptr || perturb->exhausted()));
  };

  double now = 0.0;
  obs(now, proto);
  while (now < max_time && running()) {
    const double sample_end = std::min(now + sample_every, max_time);
    while (now < sample_end && running()) {
      const double dt = std::min(epoch_length, sample_end - now);
      if (!(dt > 0.0)) break;  // floating-point residue at the boundary
      run_epoch(dt);
      now += dt;
      apply_perturbations(now);
    }
    if (now < max_time && running()) obs(now, proto);
  }
  result.time = proto.done() ? now : max_time;
  obs(result.time, proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

/// The distribution-exact sharded schedule (EngineTuning::exact_reads):
/// every epoch splits into two phases.
///
///   Phase 1 (parallel, worker pool): each shard draws its Poisson
///   tick *count* for the epoch, then one (time, node) pair per tick —
///   time uniform on [t0, t0 + dt) (arrivals of a Poisson process
///   conditioned on their count are iid uniform), node uniform in the
///   shard — and sorts its pairs by time.
///
///   Phase 2 (serial, main thread): the per-shard streams are k-way
///   merged in nondecreasing time (ties broken by shard index;
///   probability zero) and each tick's propose() runs against the
///   *fully live* table — no snapshot, no staleness — drawing protocol
///   randomness from the owning shard's stream in replay order.
///
/// The realized process is exactly the sequential superposition
/// process: Poisson counts + iid-uniform times + uniform nodes is the
/// Poisson(n) superposition restricted to the epoch, and live replay
/// applies every update in event order. What remains parallel is the
/// randomness generation and sorting; tick application is serial, so
/// this mode is the *ground truth* the epoch-stale default is measured
/// against (KS gates in tests/test_sharded_engine.cpp), not a fast
/// path. Perturbations drain in exact event order, as on the
/// single-stream engines. Deterministic for a fixed (seed, shards,
/// epoch_length). Batch sampling does not compose with this mode (the
/// registry rejects the flag pair).
template <typename P, typename Obs>
AsyncRunResult run_sharded_exact(P& proto, std::uint64_t seed,
                                 std::uint64_t shards, double max_time,
                                 Obs&& obs, double sample_every,
                                 double epoch_length, Perturber* perturb,
                                 const EngineTuning& tuning) {
  const std::uint64_t n = proto.num_nodes();

  struct Event {
    double time;
    NodeId node;
  };
  struct alignas(64) Shard {
    NodeId lo = 0;
    NodeId hi = 0;
    Xoshiro256 rng{0};
    std::vector<Event> events;
    std::exception_ptr error;
  };
  const SeedSequence streams(seed);
  std::vector<Shard> pool(shards);
  for (std::uint64_t s = 0; s < shards; ++s) {
    std::tie(pool[s].lo, pool[s].hi) = detail::shard_range(n, s, shards);
    pool[s].rng = streams.make_rng(s);
  }

  double epoch_t0 = 0.0;  // written before each barrier, read by workers
  double epoch_dt = 0.0;
  const auto generate_in = [&](Shard& shard) {
    try {
      const bool traced = trace::enabled();
      const std::int64_t span_t0 = traced ? trace::now_ns() : 0;
      const double t0 = epoch_t0;
      const double dt = epoch_dt;
      const std::uint64_t n_s = shard.hi - shard.lo;
      const std::uint64_t ticks =
          poisson(shard.rng, static_cast<double>(n_s) * dt);
      shard.events.resize(ticks);
      for (auto& event : shard.events) {
        event.time = t0 + uniform_unit(shard.rng) * dt;
        event.node = static_cast<NodeId>(
            shard.lo + uniform_below(shard.rng, n_s));
      }
      // stable_sort: equal times (probability zero, but determinism
      // must not hinge on it) keep their generation order.
      std::stable_sort(
          shard.events.begin(), shard.events.end(),
          [](const Event& a, const Event& b) { return a.time < b.time; });
      if (traced) {
        trace::local_sink().shard_span(
            span_t0, trace::now_ns() - span_t0, ticks);
      }
    } catch (...) {
      shard.error = std::current_exception();
    }
  };

  detail::ShardWorkerPool workers(
      shards, [&](std::uint64_t s) { generate_in(pool[s]); }, tuning.numa);

  /// propose() reads through the live table: no staleness by design.
  struct LiveTableView {
    const OpinionTable* table;
    ColorId color(NodeId v) const { return table->color(v); }
  };

  AsyncRunResult result;
  std::vector<std::size_t> head(shards, 0);
  const auto run_epoch = [&](double t0, double dt) {
    epoch_t0 = t0;
    epoch_dt = dt;
    workers.run_epoch();
    for (auto& shard : pool) {
      if (shard.error) std::rethrow_exception(shard.error);
    }
    // Serial replay in event-time order against the live table.
    std::fill(head.begin(), head.end(), std::size_t{0});
    const LiveTableView view{&proto.table()};
    for (;;) {
      std::uint64_t next_shard = shards;
      double next_time = 0.0;
      for (std::uint64_t s = 0; s < shards; ++s) {
        if (head[s] == pool[s].events.size()) continue;
        const double t = pool[s].events[head[s]].time;
        if (next_shard == shards || t < next_time) {
          next_shard = s;
          next_time = t;
        }
      }
      if (next_shard == shards) break;
      const Event event = pool[next_shard].events[head[next_shard]++];
      ++result.ticks;
      if (perturb != nullptr && perturb->next_time() <= event.time) {
        perturb->drain_until(event.time, proto.table(),
                             [&](NodeId u, ColorId c) {
                               proto.mutable_table().set_color(u, c);
                             });
      }
      if (perturb != nullptr && !perturb->allows_tick(event.node)) continue;
      const ColorId next =
          proto.propose(event.node, view, pool[next_shard].rng);
      if (next != proto.table().color(event.node)) {
        proto.mutable_table().set_color(event.node, next);
      }
    }
    for (auto& shard : pool) shard.events.clear();
  };

  const auto apply_perturbations = [&](double t) {
    if (perturb == nullptr || perturb->next_time() > t) return;
    perturb->drain_until(t, proto.table(), [&](NodeId u, ColorId c) {
      proto.mutable_table().set_color(u, c);
    });
  };
  const auto running = [&] {
    return !(proto.done() &&
             (perturb == nullptr || perturb->exhausted()));
  };

  double now = 0.0;
  obs(now, proto);
  while (now < max_time && running()) {
    const double sample_end = std::min(now + sample_every, max_time);
    while (now < sample_end && running()) {
      const double dt = std::min(epoch_length, sample_end - now);
      if (!(dt > 0.0)) break;  // floating-point residue at the boundary
      run_epoch(now, dt);
      now += dt;
      apply_perturbations(now);
    }
    if (now < max_time && running()) obs(now, proto);
  }
  result.time = proto.done() ? now : max_time;
  obs(result.time, proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

}  // namespace detail

/// Runs `proto` under Poisson(1) clocks until done() or `max_time`,
/// spread across `num_shards` threads (0 picks the hardware
/// concurrency). Deterministic for a fixed (seed, num_shards,
/// epoch_length, snapshot_reads, tuning) tuple. done() is polled at
/// epoch boundaries only, so a run can overshoot consensus by up to one
/// epoch of ticks; when cut off by the horizon, result.time reports
/// `max_time`.
///
/// `snapshot_reads` = false (default): same-shard neighbor reads are
/// live, foreign reads are at most one epoch stale. `snapshot_reads` =
/// true: *all* neighbor reads come from the epoch-start snapshot and
/// only the node's own color is live — the constant-latency fold
/// described in the file header (pair it with `epoch_length` set to
/// the latency). `tuning.exact_reads` removes the staleness entirely
/// via the two-phase exact schedule (detail::run_sharded_exact); it
/// cannot be combined with snapshot_reads.
///
/// Perturbations (sim/perturb.hpp) drain on the *main thread at epoch
/// boundaries* with the workers parked: each event applies at the
/// first boundary at or after its time (epoch-quantized, never
/// reordered), writing table + live + snapshot together so the next
/// epoch's reads see it coherently. (In exact_reads mode they drain in
/// exact event order instead, like the single-stream engines.) Crash
/// suppression is a read-only bitmap lookup in the worker tick loop,
/// stable within an epoch. The run continues past transient consensus
/// until the driver is exhausted. Determinism for a fixed (seed,
/// num_shards) is preserved: the driver owns its RNG stream and drains
/// only between epochs.
template <ShardableProtocol P, typename Obs = NullObserver>
AsyncRunResult run_sharded(P& proto, std::uint64_t seed, unsigned num_shards,
                           double max_time, Obs&& obs = Obs{},
                           double sample_every = 1.0,
                           double epoch_length = 0.25,
                           bool snapshot_reads = false,
                           Perturber* perturb = nullptr,
                           const EngineTuning& tuning = {}) {
  PC_EXPECTS(max_time > 0.0);
  PC_EXPECTS(sample_every > 0.0);
  PC_EXPECTS(epoch_length > 0.0);
  PC_EXPECTS(!(tuning.exact_reads && snapshot_reads));
  const std::uint64_t n = proto.num_nodes();
  PC_EXPECTS(n >= 1);
  const std::uint64_t shards = detail::resolve_shards(num_shards, n);
  if (tuning.exact_reads) {
    return detail::run_sharded_exact(proto, seed, shards, max_time,
                                     std::forward<Obs>(obs), sample_every,
                                     epoch_length, perturb, tuning);
  }
  // One width dispatch per run: the epoch body runs on typed pointers.
  switch (proto.table().width()) {
    case ColorWidth::kU8:
      return detail::run_sharded_impl<std::uint8_t>(
          proto, seed, shards, max_time, std::forward<Obs>(obs),
          sample_every, epoch_length, snapshot_reads, perturb, tuning);
    case ColorWidth::kU16:
      return detail::run_sharded_impl<std::uint16_t>(
          proto, seed, shards, max_time, std::forward<Obs>(obs),
          sample_every, epoch_length, snapshot_reads, perturb, tuning);
    case ColorWidth::kU32:
      return detail::run_sharded_impl<std::uint32_t>(
          proto, seed, shards, max_time, std::forward<Obs>(obs),
          sample_every, epoch_length, snapshot_reads, perturb, tuning);
  }
  throw ContractViolation("unreachable color width");
}

namespace detail {

/// The width-typed body of run_sharded_queued (see below).
template <typename T, typename P, typename Obs>
AsyncRunResult run_sharded_queued_impl(P& proto, const LatencyModel& latency,
                                       QueryDiscipline discipline,
                                       std::uint64_t seed,
                                       std::uint64_t shards, double max_time,
                                       Obs&& obs, double sample_every,
                                       double epoch_length,
                                       Perturber* perturb,
                                       const EngineTuning& tuning) {
  const std::uint64_t n = proto.num_nodes();
  const ColorId num_colors = proto.table().num_colors();
  const bool blocking = discipline == QueryDiscipline::kBlocking;
  const bool first_touch = tuning.numa != NumaMode::kOff;

  EngineBuffers buffers = make_buffers(proto.table().packed_colors(),
                                       tuning.numa);
  ShardDeltaSlab deltas(shards, num_colors, /*deferred_init=*/first_touch);

  struct Delivery {
    NodeId to;
    typename P::Query query;
  };
  struct alignas(64) Shard {
    NodeId lo = 0;
    NodeId hi = 0;
    Xoshiro256 rng{0};
    EventQueue<Delivery> deliveries;       // persists across epochs
    std::vector<std::uint8_t> pending;     // blocking: query in flight
    std::vector<NodeId> changed;
    std::uint64_t ticks = 0;
    std::exception_ptr error;
  };
  const SeedSequence streams(seed);
  std::vector<Shard> pool(shards);
  for (std::uint64_t s = 0; s < shards; ++s) {
    std::tie(pool[s].lo, pool[s].hi) = detail::shard_range(n, s, shards);
    pool[s].rng = streams.make_rng(s);
    if (blocking && !first_touch) {
      pool[s].pending.assign(pool[s].hi - pool[s].lo, 0);
    }
  }

  bool initializing = first_touch;
  double epoch_t0 = 0.0;  // written before each barrier, read by workers
  double epoch_dt = 0.0;
  const auto init_shard = [&](std::uint64_t s) {
    try {
      Shard& shard = pool[s];
      buffers.live.copy_range_from(proto.table().packed_colors(), shard.lo,
                                   shard.hi);
      buffers.snapshot.copy_range_from(buffers.live, shard.lo, shard.hi);
      deltas.clear(s);
      if (blocking) shard.pending.assign(shard.hi - shard.lo, 0);
    } catch (...) {
      pool[s].error = std::current_exception();
    }
  };
  const auto run_epoch_in = [&](std::uint64_t s) {
    Shard& shard = pool[s];
    try {
      const bool traced = trace::enabled();
      const std::int64_t span_t0 = traced ? trace::now_ns() : 0;
      const std::uint64_t ticks_before = shard.ticks;
      std::uint64_t drained = 0;
      const std::uint64_t n_s = shard.hi - shard.lo;
      const double inv_rate = 1.0 / static_cast<double>(n_s);
      const double t_end = epoch_t0 + epoch_dt;
      T* colors = buffers.live.template data<T>();
      const T* snap = buffers.snapshot.template data<T>();
      const PackedShardView<T> view(colors, snap, shard.lo, shard.hi);
      const std::span<std::int64_t> delta = deltas.shard(s);
      // Fresh first-gap draw each epoch: exact by memorylessness of the
      // shard's Poisson(n_s) tick process.
      double next_tick = epoch_t0 + exponential_unit(shard.rng) * inv_rate;
      for (;;) {
        const bool deliver = !shard.deliveries.empty() &&
                             shard.deliveries.next_time() <= next_tick;
        const double event_time =
            deliver ? shard.deliveries.next_time() : next_tick;
        if (event_time >= t_end) break;  // remainder handled next epoch
        if (deliver) {
          auto event = shard.deliveries.pop();
          ++drained;
          const NodeId u = event.payload.to;
          if (blocking) shard.pending[u - shard.lo] = 0;
          // Answers to crashed nodes are dropped (flag still cleared
          // above so the blocking bookkeeping cannot wedge).
          if (perturb != nullptr && !perturb->allows_tick(u)) continue;
          const ColorId next =
              proto.apply_query(u, event.payload.query, view);
          const ColorId old = colors[u];
          if (next != old) {
            colors[u] = static_cast<T>(next);
            --delta[old];
            ++delta[next];
            shard.changed.push_back(u);
          }
        } else {
          const auto u = static_cast<NodeId>(
              shard.lo + uniform_below(shard.rng, n_s));
          const bool alive =
              perturb == nullptr || perturb->allows_tick(u);
          if (alive && (!blocking || !shard.pending[u - shard.lo])) {
            auto query = proto.query(u, view, shard.rng);
            const double delay = latency.sample(shard.rng);
            shard.deliveries.push(next_tick + delay,
                                  Delivery{u, std::move(query)});
            if (blocking) shard.pending[u - shard.lo] = 1;
          }
          ++shard.ticks;
          next_tick += exponential_unit(shard.rng) * inv_rate;
        }
      }
      if (traced) {
        trace::Sink& sink = trace::local_sink();
        const std::int64_t span_end = trace::now_ns();
        sink.shard_span(span_t0, span_end - span_t0,
                        shard.ticks - ticks_before);
        if (drained > 0) sink.queue_drain(span_end, 0, drained);
        // Depth at the epoch boundary is a trajectory property (the
        // queue content is keyed on seed/shards/epoch_length), so the
        // derived quantiles are deterministic and bench-gateable.
        sink.queue_depth(span_end, shard.deliveries.size());
      }
    } catch (...) {
      shard.error = std::current_exception();
    }
  };

  detail::ShardWorkerPool workers(
      shards,
      [&](std::uint64_t s) {
        if (initializing) {
          init_shard(s);
        } else {
          run_epoch_in(s);
        }
      },
      tuning.numa);
  const auto rethrow_shard_errors = [&] {
    for (auto& shard : pool) {
      if (shard.error) std::rethrow_exception(shard.error);
    }
  };
  if (first_touch) {
    workers.run_epoch();
    initializing = false;
    rethrow_shard_errors();
  }

  AsyncRunResult result;
  const auto run_epoch = [&](double t0, double dt) {
    epoch_t0 = t0;
    epoch_dt = dt;
    workers.run_epoch();
    rethrow_shard_errors();
    OpinionTable& table = proto.mutable_table();
    T* live = buffers.live.template data<T>();
    T* snap = buffers.snapshot.template data<T>();
    for (std::uint64_t s = 0; s < shards; ++s) {
      Shard& shard = pool[s];
      table.merge_shard_deltas(shard.changed, buffers.live,
                               deltas.shard(s));
      for (const NodeId u : shard.changed) snap[u] = live[u];
      shard.changed.clear();
      deltas.clear(s);
      result.ticks += shard.ticks;
      shard.ticks = 0;
    }
  };

  const auto apply_perturbations = [&](double t) {
    if (perturb == nullptr || perturb->next_time() > t) return;
    perturb->drain_until(t, proto.table(), [&](NodeId u, ColorId c) {
      proto.mutable_table().set_color(u, c);
      buffers.live.set(u, c);
      buffers.snapshot.set(u, c);
    });
  };
  const auto running = [&] {
    return !(proto.done() &&
             (perturb == nullptr || perturb->exhausted()));
  };

  double now = 0.0;
  obs(now, proto);
  while (now < max_time && running()) {
    const double sample_end = std::min(now + sample_every, max_time);
    while (now < sample_end && running()) {
      const double dt = std::min(epoch_length, sample_end - now);
      if (!(dt > 0.0)) break;  // floating-point residue at the boundary
      run_epoch(now, dt);
      now += dt;
      apply_perturbations(now);
    }
    if (now < max_time && running()) obs(now, proto);
  }
  result.time = proto.done() ? now : max_time;
  obs(result.time, proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

}  // namespace detail

/// Runs `proto` under Poisson(1) clocks *and* a response-latency model,
/// spread across `num_shards` threads: every (non-suppressed) tick
/// issues a query whose sampled colors are read at query time; the
/// answer travels for latency.sample() time units on the shard's own
/// delivery queue (the querier receives its own answer, so deliveries
/// never cross shards) and the update rule is applied at delivery.
/// Under QueryDiscipline::kBlocking a node with an answer in flight
/// skips its ticks until the answer lands — the Bankhamer et al.
/// request/response regime; kFireAndForget queries on every tick.
///
/// This is the general latency path of the sharded engine: it handles
/// every sampleable model (const, exp, pareto, aging) exactly — delays
/// cross epoch (and sample) boundaries on the persistent per-shard
/// queues — leaving only the usual sharded-engine deviation, the
/// epoch-start snapshot for *foreign* neighbor reads. Within an epoch
/// each shard interleaves its superposition tick stream (sequential
/// Exp(1)/n_s gaps, exact by memorylessness across epoch boundaries)
/// with its queue head in nondecreasing event time, so a fixed
/// (seed, num_shards, epoch_length) tuple is deterministic regardless
/// of thread scheduling. done() is polled at epoch boundaries; when
/// the horizon cuts the run, queries still in flight are dropped and
/// result.time reports `max_time`.
///
/// Of the tuning knobs only `numa` applies here: the sequential
/// tick/queue interleave cannot consume block-refilled draws
/// (--sampling=batch is silently scalar on this path), and
/// `exact_reads` names a zero-latency schedule, so requesting it with
/// a latency model is a contract violation.
///
/// Perturbations drain at epoch boundaries exactly as in run_sharded.
/// A crashed node additionally stops issuing queries, and answers
/// delivered to it are dropped (its in-flight flag still clears, so a
/// node crashed mid-flight does not wedge the blocking discipline's
/// bookkeeping).
template <DelayedShardableProtocol P, typename Obs = NullObserver>
AsyncRunResult run_sharded_queued(P& proto, const LatencyModel& latency,
                                  QueryDiscipline discipline,
                                  std::uint64_t seed, unsigned num_shards,
                                  double max_time, Obs&& obs = Obs{},
                                  double sample_every = 1.0,
                                  double epoch_length = 0.25,
                                  Perturber* perturb = nullptr,
                                  const EngineTuning& tuning = {}) {
  PC_EXPECTS(max_time > 0.0);
  PC_EXPECTS(sample_every > 0.0);
  PC_EXPECTS(epoch_length > 0.0);
  if (tuning.exact_reads) {
    throw ContractViolation(
        "--exact-reads names the zero-latency sharded schedule; it "
        "cannot be combined with a latency model's delivery queues");
  }
  const std::uint64_t n = proto.num_nodes();
  PC_EXPECTS(n >= 1);
  const std::uint64_t shards = detail::resolve_shards(num_shards, n);
  switch (proto.table().width()) {
    case ColorWidth::kU8:
      return detail::run_sharded_queued_impl<std::uint8_t>(
          proto, latency, discipline, seed, shards, max_time,
          std::forward<Obs>(obs), sample_every, epoch_length, perturb,
          tuning);
    case ColorWidth::kU16:
      return detail::run_sharded_queued_impl<std::uint16_t>(
          proto, latency, discipline, seed, shards, max_time,
          std::forward<Obs>(obs), sample_every, epoch_length, perturb,
          tuning);
    case ColorWidth::kU32:
      return detail::run_sharded_queued_impl<std::uint32_t>(
          proto, latency, discipline, seed, shards, max_time,
          std::forward<Obs>(obs), sample_every, epoch_length, perturb,
          tuning);
  }
  throw ContractViolation("unreachable color width");
}

}  // namespace plurality
