#pragma once

/// \file perturb.hpp
/// Mid-run perturbations: the robustness layer behind `--perturb=`.
/// The paper assumes a fault-free, static population; the live-service
/// question is what consensus looks like under sustained interference.
/// Four perturbation kinds share one event-driven driver (Perturber)
/// that every engine drains in event-time order:
///
///   - inject:    a Poisson(rate) arrival stream; each event re-colors
///                one live node (uniform by default, degree-weighted
///                under --perturb-target=hub) to a uniformly random
///                *different* color.
///   - crash:     crash-stop scheduled by *global time* — a
///                Poisson(rate) stream of single-node crash-stop events
///                starting at --perturb-start. Unlike CrashAdapter's
///                own-tick deadlines this composes with the sharded and
///                queued engines and with random latency, because the
///                schedule lives in global time, not per-node clocks.
///                A crashed node keeps its color readable (memory
///                intact, clock dead) and the engines suppress its
///                ticks via allows_tick().
///   - churn:     a Poisson(rate) stream of node replacements: the
///                departing node's slot is taken by a fresh arrival
///                with an independent uniform color, and its incident
///                edges are rewired degree-preservingly over the CSR
///                topology (double-edge swaps via ChurnableCsr). On the
///                implicit complete view the rewiring is the identity
///                (K_n is invariant under degree-preserving rewiring),
///                so churn degenerates to the color reset — truthfully.
///   - adversary: the late adversary of Robinson–Scheideler–Setzer
///                ("Breaking the Omega~(sqrt n) Barrier"): every
///                --perturb-interval time units it observes the
///                support counts and re-colors up to ceil(rate *
///                interval) of the highest-impact current-plurality
///                nodes to the runner-up color, until its
///                --perturb-budget is exhausted. "Highest-impact" =
///                most same-color neighbors (a stale seed deep in the
///                winner's bulk survives longest); without stored
///                adjacency (the clique) position is irrelevant by
///                vertex-transitivity and the picks are uniform.
///                Strictly stronger than the static
///                adversarial_boundary placement: it spends the same
///                corruption count *adaptively*, timed against the
///                observed run (experiment R2 measures the gap).
///
/// Determinism: the Perturber owns its RNG stream (seeded once at
/// construction), so for a fixed seed the generated event times and the
/// state-independent choices (inject/crash/churn victims, colors,
/// rewirings) are identical across engines and shard counts; the
/// adversary's victims are adaptive and deterministic per engine for a
/// fixed (seed, shards). Single-stream engines drain events at exact
/// event times; the sharded engines drain at epoch boundaries on the
/// main thread (workers parked), which quantizes application times to
/// epochs without breaking determinism.
///
/// Stop condition: perturbations can *break* consensus after it forms,
/// so engines keep running while the driver is not exhausted() — a run
/// ends at done() only once no further events can arrive (budget
/// spent / no live nodes left), else at the horizon.

#include <concepts>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "opinion/table.hpp"
#include "rng/xoshiro256.hpp"
#include "support/assert.hpp"

namespace plurality {

enum class PerturbKind : std::uint8_t {
  kNone,       ///< inert driver; the default
  kInject,     ///< Poisson opinion-injection stream
  kCrash,      ///< crash-stop by global time
  kChurn,      ///< node replacement + degree-preserving rewiring
  kAdversary,  ///< budgeted adaptive late adversary
};

inline const char* perturb_kind_name(PerturbKind kind) noexcept {
  switch (kind) {
    case PerturbKind::kNone: return "none";
    case PerturbKind::kInject: return "inject";
    case PerturbKind::kCrash: return "crash";
    case PerturbKind::kChurn: return "churn";
    case PerturbKind::kAdversary: return "adversary";
  }
  return "unknown";
}

/// Parses a `--perturb=` value; throws ContractViolation (naming the
/// offending text) on anything unrecognized.
PerturbKind parse_perturb_kind(const std::string& name);

/// How opinion injections pick their victims.
enum class PerturbTarget : std::uint8_t {
  kUniform,  ///< uniform over live nodes
  kHub,      ///< degree-weighted over live nodes (hits hubs)
};

PerturbTarget parse_perturb_target(const std::string& name);

inline const char* perturb_target_name(PerturbTarget target) noexcept {
  return target == PerturbTarget::kHub ? "hub" : "uniform";
}

/// The resolved `--perturb*` flag family. Parsed and validated on the
/// main thread by ExperimentContext (a throw from a worker lambda would
/// std::terminate instead of reporting).
struct PerturbSpec {
  PerturbKind kind = PerturbKind::kNone;
  double rate = 1.0;       ///< --perturb-rate: events per time unit
  std::uint64_t budget = 0;  ///< --perturb-budget: total events; 0 = unlimited
                             ///< (the adversary requires an explicit budget)
  double start = 0.0;      ///< --perturb-start: first possible event time
  double interval = 1.0;   ///< --perturb-interval: adversary observation cadence
  PerturbTarget target = PerturbTarget::kUniform;  ///< --perturb-target=

  /// Throws ContractViolation naming the offending flag(s).
  void validate() const;

  /// Short human label for banners: e.g. "inject(rate=2,budget=48)".
  std::string label() const;
};

/// One applied perturbation event (observation sweeps that corrupt m
/// nodes log m entries at the same time stamp).
struct PerturbEvent {
  double time = 0.0;
  PerturbKind kind = PerturbKind::kNone;
  NodeId node = 0;
  ColorId color = 0;  ///< new color (inject/churn/adversary); the frozen
                      ///< color for crash events
};

/// A mutable, degree-preserving copy of an explicit-adjacency CSR
/// topology, for churn. Owns its offsets/edges arrays plus a mirror
/// index (slot of u->v  <->  slot of v->u) so a double-edge swap is
/// O(1) bookkeeping + an O(deg) multi-edge check. The borrowed view()
/// aliases the owned arrays: protocols instantiated over it observe
/// rewires in place (degrees and offsets never change, so the spans
/// stay valid). Non-movable for that reason.
///
/// Contract: the source must have stored rows (not the implicit
/// complete view — K_n needs no rewiring; see the file header).
class ChurnableCsr {
 public:
  explicit ChurnableCsr(const CsrTopology& source);

  ChurnableCsr(const ChurnableCsr&) = delete;
  ChurnableCsr& operator=(const ChurnableCsr&) = delete;

  const CsrTopology& view() const noexcept { return view_; }

  std::uint64_t num_nodes() const noexcept { return offsets_.size() - 1; }
  std::uint64_t degree(NodeId u) const {
    PC_EXPECTS(u + 1 < offsets_.size());
    return offsets_[u + 1] - offsets_[u];
  }

  /// Replaces node u's incident edges by degree-preserving double-edge
  /// swaps against uniformly random partner slots (one attempted swap
  /// per incident edge, a few retries each; swaps that would create a
  /// self-loop or multi-edge are rejected). Degrees are invariant.
  void rewire_node(NodeId u, Xoshiro256& rng);

  /// Structural invariants: mirror involution, symmetry, and no *new*
  /// self-loops or duplicate edges beyond the source graph's. Sources
  /// from the configuration model (graph/random_regular.hpp) may carry
  /// defects; swaps only ever remove them. O(E log E); for tests.
  bool check_consistent() const;

 private:
  bool try_swap(std::uint64_t slot_a, std::uint64_t slot_b);
  bool has_edge(NodeId u, NodeId v) const;
  std::uint64_t count_defect_slots() const;

  std::vector<std::uint64_t> offsets_;
  std::vector<NodeId> edges_;
  std::vector<std::uint64_t> mirror_;  ///< slot -> slot of reverse edge
  std::vector<NodeId> owner_;          ///< slot -> source node
  std::uint64_t initial_defect_slots_ = 0;
  CsrTopology view_;
};

/// The runtime driver bound to one run: generates the event stream of
/// one PerturbSpec and applies events to whatever color representation
/// the engine keeps (via the set_color callback). Engines consult
/// next_time() to drain in event-time order, allows_tick() to suppress
/// crashed nodes, and exhausted() for the stop condition (see file
/// header).
class Perturber {
 public:
  using SetColor = std::function<void(NodeId, ColorId)>;

  /// `topology` (optional) powers the adversary's impact ranking and
  /// the hub-targeted injections; `churn` is required for kChurn unless
  /// the topology is the implicit complete view. Both must outlive the
  /// Perturber. `num_colors` is the color universe injections and the
  /// adversary draw replacement colors from (>= 2 for the mutating
  /// kinds).
  Perturber(const PerturbSpec& spec, std::uint64_t n, ColorId num_colors,
            std::uint64_t seed, const CsrTopology* topology = nullptr,
            ChurnableCsr* churn = nullptr);

  /// Time of the next pending event; +infinity when exhausted.
  double next_time() const noexcept { return next_time_; }

  /// False while events can still arrive (engines must keep running
  /// past transient consensus until this flips).
  bool exhausted() const noexcept { return remaining_ == 0; }

  /// False for crashed nodes: the engine must swallow their ticks
  /// (time still advances — the clock is dead, not the slot). Stable
  /// between drains, so sharded workers may read it concurrently
  /// within an epoch.
  bool allows_tick(NodeId u) const noexcept {
    return crashed_.empty() || !crashed_[u];
  }

  bool is_crashed(NodeId u) const {
    PC_EXPECTS(u < n_);
    return !crashed_.empty() && crashed_[u];
  }

  std::uint64_t crashed_count() const noexcept { return crashed_count_; }

  /// Every applied event, in application order.
  const std::vector<PerturbEvent>& events() const noexcept { return log_; }

  /// Applies all events with time <= now against `table` (reads) via
  /// `set_color` (writes — the engine's representation: the table
  /// alone for single-stream engines, table + live + snapshot for the
  /// sharded ones). Must be called from the engine's main thread with
  /// workers parked.
  void drain_until(double now, const OpinionTable& table,
                   const SetColor& set_color);

  /// Convenience for single-stream engines: writes through
  /// table.set_color directly.
  void drain_until(double now, OpinionTable& table);

  /// Fraction of live (non-crashed) nodes on the live-plurality color;
  /// 1.0 when everyone crashed (vacuous). O(num_colors): crashed
  /// nodes' colors are frozen, so per-color crashed support is
  /// maintained incrementally on crash transitions and live support is
  /// table.support(c) minus it.
  double live_agreement(const OpinionTable& table) const;

 private:
  void schedule_first();
  void advance_schedule();
  void apply_poisson_event(const OpinionTable& table,
                           const SetColor& set_color);
  void apply_adversary_sweep(const OpinionTable& table,
                             const SetColor& set_color);
  NodeId pick_live_uniform();
  NodeId pick_live_by_degree();
  ColorId different_color(ColorId current);
  void mark_crashed(NodeId u, const OpinionTable& table);

  PerturbSpec spec_;
  std::uint64_t n_;
  ColorId num_colors_;
  Xoshiro256 rng_;
  const CsrTopology* topo_;
  ChurnableCsr* churn_;
  double next_time_ = 0.0;
  std::uint64_t remaining_ = 0;  ///< events left; 0 = exhausted
  std::uint64_t crashed_count_ = 0;
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint64_t> crashed_support_;  ///< per frozen color
  std::vector<PerturbEvent> log_;
};

/// One point of the recovery time series.
struct AgreementPoint {
  double time = 0.0;
  double agreement = 0.0;  ///< live-plurality fraction among live nodes
};

/// Observer recording live agreement each sample — the recovery time
/// series of a perturbed run (pair with the run's Perturber so crashed
/// nodes are excluded). Works with any protocol exposing table().
class AgreementTrace {
 public:
  explicit AgreementTrace(const Perturber& perturb) : perturb_(&perturb) {}

  template <typename P>
  void operator()(double time, const P& proto) {
    points_.push_back({time, perturb_->live_agreement(proto.table())});
  }

  const std::vector<AgreementPoint>& points() const noexcept {
    return points_;
  }

 private:
  const Perturber* perturb_;
  std::vector<AgreementPoint> points_;
};

/// Time-to-reconverge after each perturbation event: for event i at
/// time t_i, the delay until the trace first reports agreement >=
/// `threshold` at some time >= t_i. Events the run never recovered
/// from are censored at the trace end (their entry is trace_end - t_i).
/// Requires a non-empty, time-sorted trace.
std::vector<double> recovery_times(const std::vector<PerturbEvent>& events,
                                   const std::vector<AgreementPoint>& trace,
                                   double threshold);

/// The trace's agreement at probe time `t`: the last point with time
/// <= t (the first point when t precedes the trace). Requires a
/// non-empty, time-sorted trace.
double agreement_at(const std::vector<AgreementPoint>& trace, double t);

namespace detail {

/// The single-stream engines' drain hook: perturbation writes go
/// through the protocol's own table, so the protocol must expose
/// mutable_table(). Protocols without it (stateful adapters like
/// CrashAdapter) cannot be perturbed — a loud contract violation, not
/// a silent no-op.
template <typename P>
void drain_perturbations(Perturber* perturb, double now, P& proto) {
  if (perturb == nullptr) return;
  if constexpr (requires(P p) {
                  { p.mutable_table() } -> std::same_as<OpinionTable&>;
                }) {
    perturb->drain_until(now, proto.mutable_table());
  } else {
    throw ContractViolation(
        "--perturb= requires a protocol exposing mutable_table(); this "
        "protocol keeps private per-node state the perturbation layer "
        "cannot re-color");
  }
}

}  // namespace detail

}  // namespace plurality
