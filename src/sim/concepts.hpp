#pragma once

/// \file concepts.hpp
/// The protocol interfaces the engines drive. Protocols own their state
/// (structure-of-arrays vectors plus an OpinionTable); engines are thin
/// generic drivers, so there is no virtual dispatch on the hot path.

#include <concepts>
#include <cstdint>

#include "graph/graph.hpp"
#include "opinion/table.hpp"
#include "rng/xoshiro256.hpp"

namespace plurality {

/// A protocol advanced one whole round at a time (all nodes update
/// simultaneously off a snapshot).
template <typename P>
concept SyncProtocol = requires(P p, const P cp, Xoshiro256& rng) {
  { p.execute_round(rng) };
  { cp.done() } -> std::convertible_to<bool>;
  { cp.table() } -> std::convertible_to<const OpinionTable&>;
};

/// A protocol advanced one node-tick at a time (the paper's sequential /
/// continuous asynchronous models).
template <typename P>
concept AsyncProtocol = requires(P p, const P cp, NodeId u, Xoshiro256& rng) {
  { p.on_tick(u, rng) };
  { cp.num_nodes() } -> std::convertible_to<std::uint64_t>;
  { cp.done() } -> std::convertible_to<bool>;
  { cp.table() } -> std::convertible_to<const OpinionTable&>;
};

}  // namespace plurality
