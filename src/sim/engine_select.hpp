#pragma once

/// \file engine_select.hpp
/// Runtime engine selection for asynchronous runs. Every experiment
/// accepts `--engine=sequential|heap|superposition|sharded` (plus
/// `--shards=T` for the sharded engine) so any scenario can be replayed
/// on any engine; run_async_engine dispatches a protocol to the chosen
/// driver and transparently falls back from `sharded` to
/// `superposition` for protocols that are not shardable (stateful tick
/// machines like AsyncOneExtraBit).
///
/// Engines sample the same stochastic process but consume the RNG
/// stream differently, so switching engines changes the realized
/// trajectory for a fixed seed while leaving every distribution intact
/// (see README, "Engine selection").
///
/// Edge latencies interact with engine selection as follows
/// (`--latency=` selects a model from sim/latency.hpp):
///   - zero latency leaves every engine untouched;
///   - a messaging (delayed-response) protocol always runs on the
///     superposition-based messaging driver — the only *single-stream*
///     engine with a delivery queue — so heap/sequential requests fall
///     back to it (the bench harness warns once);
///   - a *delayed-shardable* protocol (query/apply_query split) runs
///     any sampleable model on the sharded engine's per-shard delivery
///     queues (run_sharded_queued in sharded_engine.hpp) — the general
///     parallel latency path, dispatched by the bench layer's RunPlan;
///   - run_sharded_latency below additionally keeps the *constant*
///     epoch fold: a cheaper, queue-free approximation of constant
///     latency validated against the messaging driver.

#include <algorithm>
#include <cstdint>
#include <string>

#include "sim/continuous_engine.hpp"
#include "sim/latency.hpp"
#include "sim/observers.hpp"
#include "sim/result.hpp"
#include "sim/sequential_engine.hpp"
#include "sim/sharded_engine.hpp"
#include "support/assert.hpp"

namespace plurality {

enum class EngineKind {
  kSequential,     ///< uniform node per discrete step, time = steps/n
  kHeap,           ///< continuous clocks via the n-timer event queue
  kSuperposition,  ///< continuous clocks via O(1) superposition sampling
  kSharded,        ///< superposition split across per-shard threads
};

inline const char* engine_kind_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kSequential: return "sequential";
    case EngineKind::kHeap: return "heap";
    case EngineKind::kSuperposition: return "superposition";
    case EngineKind::kSharded: return "sharded";
  }
  return "unknown";
}

/// Parses an `--engine=` value; throws ContractViolation (naming the
/// offending text) on anything unrecognized.
inline EngineKind parse_engine_kind(const std::string& name) {
  if (name == "sequential") return EngineKind::kSequential;
  if (name == "heap") return EngineKind::kHeap;
  if (name == "superposition") return EngineKind::kSuperposition;
  if (name == "sharded") return EngineKind::kSharded;
  throw ContractViolation(
      "--engine=" + name +
      " is not one of sequential|heap|superposition|sharded");
}

/// The engine that will actually drive protocol P when `kind` is
/// requested: the single place the sharded-to-superposition fallback
/// for non-shardable protocols is decided. Callers that label runs
/// (e.g. the bench harness's params.engine_effective) must derive the
/// label from this same function.
template <typename P>
constexpr EngineKind effective_engine_kind(EngineKind kind) noexcept {
  if (kind == EngineKind::kSharded && !ShardableProtocol<P>) {
    return EngineKind::kSuperposition;
  }
  return kind;
}

/// Runs `proto` on the selected engine. `seed_for_shards` seeds the
/// sharded engine's per-shard streams (the other engines draw from
/// `rng`); `shards` = 0 picks the hardware concurrency. Protocols that
/// do not satisfy ShardableProtocol run `sharded` requests on the
/// superposition engine instead (see effective_engine_kind). An
/// optional Perturber (sim/perturb.hpp) is drained by whichever engine
/// runs — event-time order on the single-stream engines, epoch
/// boundaries on the sharded one.
///
/// `tuning` (sim/sharded_engine.hpp) maps onto the engines as follows:
/// the sharded engine honors all three knobs; the superposition engine
/// honors --sampling=batch via run_continuous_batch; exact_reads and
/// numa are sharded-engine concepts and are no-ops elsewhere (the
/// single-stream engines are already exact and single-threaded).
template <AsyncProtocol P, typename Obs = NullObserver>
AsyncRunResult run_async_engine(EngineKind kind, P& proto, Xoshiro256& rng,
                                std::uint64_t seed_for_shards,
                                unsigned shards, double max_time,
                                Obs&& obs = Obs{},
                                double sample_every = 1.0,
                                Perturber* perturb = nullptr,
                                const EngineTuning& tuning = {}) {
  switch (effective_engine_kind<P>(kind)) {
    case EngineKind::kSequential:
      return run_sequential(proto, rng, max_time, std::forward<Obs>(obs),
                            sample_every, perturb);
    case EngineKind::kHeap:
      return run_continuous_heap(proto, rng, max_time,
                                 std::forward<Obs>(obs), sample_every,
                                 perturb);
    case EngineKind::kSuperposition:
      if (tuning.sampling == SamplingMode::kBatch) {
        return run_continuous_batch(proto, rng, max_time,
                                    std::forward<Obs>(obs), sample_every,
                                    perturb);
      }
      return run_continuous(proto, rng, max_time, std::forward<Obs>(obs),
                            sample_every, perturb);
    case EngineKind::kSharded:
      // effective_engine_kind only yields kSharded for shardable P; the
      // if constexpr keeps run_sharded uninstantiated otherwise.
      if constexpr (ShardableProtocol<P>) {
        return run_sharded(proto, seed_for_shards, shards, max_time,
                           std::forward<Obs>(obs), sample_every,
                           /*epoch_length=*/0.25, /*snapshot_reads=*/false,
                           perturb, tuning);
      }
      break;
  }
  throw ContractViolation("unreachable engine kind");
}

/// Runs a shardable protocol on the sharded engine under a *foldable*
/// latency model (LatencySpec::foldable_into_sharded): ZeroLatency is
/// the plain sharded run; ConstantLatency(c) sets the epoch length to
/// 2c and switches all neighbor reads to the epoch-start snapshot, so
/// every edge read observes state whose age is uniform on [0, 2c) —
/// mean c, matching the constant information age c of the true
/// fire-and-forget process (which reads at the tick and applies at
/// tick + c). Two deliberate approximations remain: the age is
/// epoch-quantized rather than constant, and updates land at tick
/// time instead of tick + c, so folded consensus times run about one
/// latency earlier. Validated against the messaging driver in
/// tests/test_latency.cpp within those bounds. Requesting a
/// non-foldable model here is a contract violation; callers route
/// those to run_continuous_messaging instead.
template <ShardableProtocol P, typename Obs = NullObserver>
AsyncRunResult run_sharded_latency(P& proto, const LatencyModel& latency,
                                   std::uint64_t seed, unsigned shards,
                                   double max_time, Obs&& obs = Obs{},
                                   double sample_every = 1.0,
                                   double epoch_length = 0.25,
                                   const EngineTuning& tuning = {}) {
  switch (latency.kind()) {
    case LatencyKind::kZero:
      return run_sharded(proto, seed, shards, max_time,
                         std::forward<Obs>(obs), sample_every, epoch_length,
                         /*snapshot_reads=*/false, /*perturb=*/nullptr,
                         tuning);
    case LatencyKind::kConstant:
      // Sample boundaries truncate epochs (run_sharded caps dt at the
      // next boundary), which would silently shrink the fold's read
      // age below its 2c target; coarsen the observer cadence to the
      // epoch length when it is finer.
      return run_sharded(proto, seed, shards, max_time,
                         std::forward<Obs>(obs),
                         std::max(sample_every, 2.0 * latency.mean()),
                         /*epoch_length=*/2.0 * latency.mean(),
                         /*snapshot_reads=*/true);
    default:
      break;
  }
  throw ContractViolation(
      std::string("latency model '") + latency.name() +
      "' cannot be folded into the sharded engine's epoch schedule; "
      "run it on the messaging driver instead");
}

}  // namespace plurality
