#pragma once

/// \file result.hpp
/// Outcomes reported by the engine drivers.

#include <cstdint>

#include "graph/graph.hpp"

namespace plurality {

/// Outcome of a synchronous run.
struct SyncRunResult {
  std::uint64_t rounds = 0;  ///< rounds executed before stopping
  bool consensus = false;    ///< true iff all nodes agree
  ColorId winner = 0;        ///< the agreed color; valid iff consensus
};

/// Outcome of an asynchronous run (sequential or continuous).
struct AsyncRunResult {
  double time = 0.0;         ///< parallel time at stop (steps/n, or clock)
  std::uint64_t ticks = 0;   ///< total node activations executed
  bool consensus = false;    ///< true iff all nodes agree
  ColorId winner = 0;        ///< the agreed color; valid iff consensus
};

}  // namespace plurality
