#pragma once

/// \file event_queue.hpp
/// A stable discrete-event queue: events pop in (time, insertion order).
/// The sequence number tie-break makes continuous-engine runs fully
/// deterministic for a fixed seed even when events collide in time.
///
/// Implemented as a hand-rolled implicit 4-ary heap rather than
/// std::priority_queue: the shallower tree halves the levels touched per
/// pop (the hot operation in the messaging engine), reserve() removes
/// reallocation from the hot loop, and pop() moves the payload out
/// instead of copying heap_.top() — which std::priority_queue cannot do
/// because top() is const.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace plurality {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    double time;
    std::uint64_t seq;
    Payload payload;
  };

  /// Pre-allocates storage for `n` events (engines size this to the
  /// expected steady-state event count before the hot loop starts).
  void reserve(std::size_t n) { heap_.reserve(n); }

  void push(double time, Payload payload) {
    PC_EXPECTS(time >= 0.0);
    heap_.push_back(Event{time, next_seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// The earliest event time. Requires non-empty.
  double next_time() const {
    PC_EXPECTS(!heap_.empty());
    return heap_.front().time;
  }

  /// Removes and returns the earliest event; the payload is moved out,
  /// never copied. Requires non-empty.
  Event pop() {
    PC_EXPECTS(!heap_.empty());
    Event out = std::move(heap_.front());
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return out;
  }

 private:
  static constexpr std::size_t kArity = 4;

  static bool before(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    Event moving = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(moving, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(moving);
  }

  void sift_down(std::size_t i) {
    const std::size_t size = heap_.size();
    Event moving = std::move(heap_[i]);
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= size) break;
      const std::size_t last_child =
          std::min(first_child + kArity, size);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], moving)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(moving);
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace plurality
