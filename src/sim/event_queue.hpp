#pragma once

/// \file event_queue.hpp
/// A stable discrete-event queue: events pop in (time, insertion order).
/// The sequence number tie-break makes continuous-engine runs fully
/// deterministic for a fixed seed even when events collide in time.

#include <cstdint>
#include <queue>
#include <vector>

#include "support/assert.hpp"

namespace plurality {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    double time;
    std::uint64_t seq;
    Payload payload;
  };

  void push(double time, Payload payload) {
    PC_EXPECTS(time >= 0.0);
    heap_.push(Event{time, next_seq_++, std::move(payload)});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// The earliest event time. Requires non-empty.
  double next_time() const {
    PC_EXPECTS(!heap_.empty());
    return heap_.top().time;
  }

  /// Removes and returns the earliest event. Requires non-empty.
  Event pop() {
    PC_EXPECTS(!heap_.empty());
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace plurality
