#pragma once

/// \file sync_driver.hpp
/// Driver for synchronous protocols: runs rounds until the protocol
/// reports done() or the round budget is exhausted.

#include <cstdint>
#include <utility>

#include "rng/xoshiro256.hpp"
#include "sim/concepts.hpp"
#include "sim/observers.hpp"
#include "sim/result.hpp"
#include "support/assert.hpp"

namespace plurality {

/// Runs `proto` for at most `max_rounds` rounds. The observer is invoked
/// with the round index before every round and once after the final one.
template <SyncProtocol P, typename Obs = NullObserver>
SyncRunResult run_sync(P& proto, Xoshiro256& rng, std::uint64_t max_rounds,
                       Obs&& obs = Obs{}) {
  PC_EXPECTS(max_rounds > 0);
  SyncRunResult result;
  while (result.rounds < max_rounds && !proto.done()) {
    obs(static_cast<double>(result.rounds), proto);
    proto.execute_round(rng);
    ++result.rounds;
  }
  obs(static_cast<double>(result.rounds), proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

}  // namespace plurality
