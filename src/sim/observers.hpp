#pragma once

/// \file observers.hpp
/// Observers are callables `void(double time, const Protocol&)` sampled
/// by the engines at a fixed cadence in parallel time (synchronous runs
/// use the round index as time). They power the convergence traces in
/// the examples and the dispersion measurements in E7/E11.

#include <vector>

#include "opinion/snapshot.hpp"

namespace plurality {

/// The default observer: does nothing, optimizes away.
struct NullObserver {
  template <typename P>
  void operator()(double, const P&) const noexcept {}
};

/// One trace point of a run.
struct TracePoint {
  double time = 0.0;
  OpinionSnapshot snapshot;
};

/// Records an OpinionSnapshot per sample; works with any protocol that
/// exposes table().
class TraceObserver {
 public:
  template <typename P>
  void operator()(double time, const P& proto) {
    points_.push_back({time, snapshot_of(proto.table())});
  }

  const std::vector<TracePoint>& points() const noexcept { return points_; }

 private:
  std::vector<TracePoint> points_;
};

}  // namespace plurality
