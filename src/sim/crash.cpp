#include "sim/crash.hpp"

#include "rng/distributions.hpp"

namespace plurality {

std::vector<std::uint64_t> crash_fraction_plan(std::uint64_t n,
                                               double fraction,
                                               std::uint64_t after_ticks,
                                               Xoshiro256& rng) {
  PC_EXPECTS(n >= 1);
  PC_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  std::vector<std::uint64_t> plan(n, kNeverCrashes);
  const auto num_crash =
      static_cast<std::uint64_t>(fraction * static_cast<double>(n));
  std::vector<std::uint64_t> order(n);
  for (std::uint64_t i = 0; i < n; ++i) order[i] = i;
  for (std::uint64_t i = 0; i < num_crash; ++i) {
    const std::uint64_t j = i + uniform_below(rng, n - i);
    std::swap(order[i], order[j]);
    plan[order[i]] = after_ticks;
  }
  return plan;
}

}  // namespace plurality
