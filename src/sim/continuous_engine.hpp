#pragma once

/// \file continuous_engine.hpp
/// The paper's continuous asynchronous model: every node carries an
/// independent Poisson(1) clock; ticks are scheduled as discrete events
/// with Exp(1) inter-arrival times. The engine also supports protocols
/// that exchange *delayed messages* (the response-delay extension of
/// §4): a messaging protocol stages (recipient, delay, message) triples
/// in an Outbox, and the engine delivers them as events.

#include <cstdint>
#include <tuple>
#include <utility>
#include <variant>
#include <vector>

#include "rng/distributions.hpp"
#include "sim/concepts.hpp"
#include "sim/event_queue.hpp"
#include "sim/observers.hpp"
#include "sim/result.hpp"
#include "support/assert.hpp"

namespace plurality {

/// Staging area for outgoing delayed messages; the engine drains it into
/// the event queue after every protocol callback.
template <typename Message>
class Outbox {
 public:
  /// Schedules `message` for delivery to `to` after `delay` time units.
  /// Requires delay >= 0.
  void post(NodeId to, double delay, Message message) {
    PC_EXPECTS(delay >= 0.0);
    staged_.emplace_back(to, delay, std::move(message));
  }

  bool empty() const noexcept { return staged_.empty(); }

 private:
  template <typename, typename>
  friend class ContinuousMessagingDriver;  // engine drains staged_

  std::vector<std::tuple<NodeId, double, Message>> staged_;
};

/// A protocol that, in addition to ticking, receives delayed messages.
template <typename P>
concept MessagingProtocol =
    requires(P p, const P cp, NodeId u, typename P::Message m,
             Xoshiro256& rng, double now, Outbox<typename P::Message>& out) {
      typename P::Message;
      { p.on_tick(u, rng, now, out) };
      { p.on_message(u, m, rng, now, out) };
      { cp.num_nodes() } -> std::convertible_to<std::uint64_t>;
      { cp.done() } -> std::convertible_to<bool>;
      { cp.table() } -> std::convertible_to<const OpinionTable&>;
    };

/// Runs a plain (non-messaging) protocol under Poisson(1) clocks until
/// done() or `max_time`. Observer cadence as in run_sequential.
template <AsyncProtocol P, typename Obs = NullObserver>
AsyncRunResult run_continuous(P& proto, Xoshiro256& rng, double max_time,
                              Obs&& obs = Obs{}, double sample_every = 1.0) {
  PC_EXPECTS(max_time > 0.0);
  PC_EXPECTS(sample_every > 0.0);
  const std::uint64_t n = proto.num_nodes();
  PC_EXPECTS(n >= 1);

  EventQueue<NodeId> ticks;
  for (std::uint64_t u = 0; u < n; ++u) {
    ticks.push(exponential(rng, 1.0), static_cast<NodeId>(u));
  }

  AsyncRunResult result;
  double now = 0.0;
  double next_sample = 0.0;
  while (!ticks.empty() && !proto.done()) {
    if (ticks.next_time() > max_time) break;
    const auto event = ticks.pop();
    now = event.time;
    while (next_sample <= now) {
      obs(next_sample, proto);
      next_sample += sample_every;
    }
    proto.on_tick(event.payload, rng);
    ++result.ticks;
    ticks.push(now + exponential(rng, 1.0), event.payload);
  }
  result.time = now;
  obs(now, proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

/// Driver state for messaging protocols (kept as a class so Outbox can
/// befriend it). Constrained at the run_continuous_messaging entry point.
template <typename P, typename Obs>
class ContinuousMessagingDriver {
 public:
  ContinuousMessagingDriver(P& proto, Xoshiro256& rng, Obs obs)
      : proto_(proto), rng_(rng), obs_(std::move(obs)) {}

  AsyncRunResult run(double max_time, double sample_every = 1.0) {
    PC_EXPECTS(max_time > 0.0);
    PC_EXPECTS(sample_every > 0.0);
    const std::uint64_t n = proto_.num_nodes();
    PC_EXPECTS(n >= 1);

    using Message = typename P::Message;
    struct TickEvent {
      NodeId node;
    };
    struct DeliveryEvent {
      NodeId to;
      Message message;
    };
    using Payload = std::variant<TickEvent, DeliveryEvent>;

    EventQueue<Payload> queue;
    for (std::uint64_t u = 0; u < n; ++u) {
      queue.push(exponential(rng_, 1.0),
                 Payload{TickEvent{static_cast<NodeId>(u)}});
    }

    Outbox<Message> outbox;
    AsyncRunResult result;
    double now = 0.0;
    double next_sample = 0.0;
    while (!queue.empty() && !proto_.done()) {
      if (queue.next_time() > max_time) break;
      auto event = queue.pop();
      now = event.time;
      while (next_sample <= now) {
        obs_(next_sample, proto_);
        next_sample += sample_every;
      }
      if (std::holds_alternative<TickEvent>(event.payload)) {
        const NodeId u = std::get<TickEvent>(event.payload).node;
        proto_.on_tick(u, rng_, now, outbox);
        ++result.ticks;
        queue.push(now + exponential(rng_, 1.0), Payload{TickEvent{u}});
      } else {
        auto& delivery = std::get<DeliveryEvent>(event.payload);
        proto_.on_message(delivery.to, delivery.message, rng_, now, outbox);
      }
      for (auto& [to, delay, message] : outbox.staged_) {
        queue.push(now + delay, Payload{DeliveryEvent{to, std::move(message)}});
      }
      outbox.staged_.clear();
    }
    result.time = now;
    obs_(now, proto_);
    result.consensus = proto_.table().has_consensus();
    if (result.consensus) result.winner = proto_.table().consensus_color();
    return result;
  }

 private:
  P& proto_;
  Xoshiro256& rng_;
  Obs obs_;
};

/// Convenience wrapper for messaging protocols.
template <MessagingProtocol P, typename Obs = NullObserver>
AsyncRunResult run_continuous_messaging(P& proto, Xoshiro256& rng,
                                        double max_time, Obs&& obs = Obs{},
                                        double sample_every = 1.0) {
  ContinuousMessagingDriver<P, std::decay_t<Obs>> driver(
      proto, rng, std::forward<Obs>(obs));
  return driver.run(max_time, sample_every);
}

}  // namespace plurality
