#pragma once

/// \file continuous_engine.hpp
/// The paper's continuous asynchronous model: every node carries an
/// independent Poisson(1) clock. Two exact simulations are provided:
///
/// - run_continuous (default): *superposition sampling*. The union of n
///   independent Poisson(1) processes is one Poisson(n) process whose
///   arrivals are attributed to nodes independently and uniformly (the
///   equivalence the paper leans on via Mosk-Aoyama & Shah, ref [4]).
///   So the engine draws the ticking node Uniform(n) and advances one
///   global clock by Exp(n) — O(1) per tick, no per-node timer state.
///
/// - run_continuous_heap: the literal n-timer event-queue simulation
///   (each node keeps its own next-tick time in a priority queue).
///   O(log n) per tick plus the O(n) queue build; kept as the reference
///   implementation the superposition engine is validated against.
///
/// Both are exact samplers of the same process, but they consume the
/// RNG stream differently: a fixed seed gives *statistically identical*
/// runs across engines, not bit-identical trajectories (see README,
/// "Engine selection").
///
/// The engine also supports protocols that exchange *delayed messages*
/// (the response-delay extension of §4 and the edge-latency models of
/// Bankhamer et al., see sim/latency.hpp): a messaging protocol stages
/// (recipient, message) pairs — optionally with an explicit delay — in
/// an Outbox; the engine keeps a queue only for pending deliveries and
/// races its head against the superposition-generated tick stream.
///
/// Invariants of the messaging driver:
///   - Delivery ordering: events are processed in nondecreasing time;
///     when a pending delivery and the next generated tick carry the
///     same timestamp, the delivery goes first (ties between the two
///     streams have probability zero for continuous latencies; with
///     ZeroLatency this makes an answer land before any later tick, so
///     the zero-latency messaging run is the instant-response process).
///     Deliveries among themselves keep (time, post order).
///   - Latency-draw RNG ownership: when the driver is constructed with
///     a LatencyModel, *the driver* draws one latency per message from
///     its own RNG stream at enqueue time (the moment the outbox is
///     drained). Protocols never sample delays themselves, so the same
///     protocol code runs unchanged under every latency model and a
///     fixed (seed, model) pair is deterministic.

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "rng/batch.hpp"
#include "rng/distributions.hpp"
#include "sim/concepts.hpp"
#include "sim/event_queue.hpp"
#include "sim/latency.hpp"
#include "sim/observers.hpp"
#include "sim/perturb.hpp"
#include "sim/result.hpp"
#include "support/assert.hpp"

namespace plurality {

/// Staging area for outgoing delayed messages; the engine drains it into
/// the event queue after every protocol callback.
template <typename Message>
class Outbox {
 public:
  /// Schedules `message` for delivery to `to` after `delay` time units.
  /// Requires delay >= 0. Prefer the delay-less overload: it lets the
  /// driver's LatencyModel own the draw so the protocol is reusable
  /// under every latency family.
  void post(NodeId to, double delay, Message message) {
    PC_EXPECTS(delay >= 0.0);
    staged_.emplace_back(to, delay, std::move(message));
  }

  /// Schedules `message` for delivery to `to` after a latency the
  /// *driver* draws from its LatencyModel when the outbox is drained.
  /// Running such a protocol requires a driver constructed with a
  /// model (run_continuous_messaging's LatencyModel overload).
  void post(NodeId to, Message message) {
    staged_.emplace_back(to, kDrawFromModel, std::move(message));
  }

  bool empty() const noexcept { return staged_.empty(); }

 private:
  template <typename, typename>
  friend class ContinuousMessagingDriver;  // engine drains staged_

  /// Sentinel delay marking "draw from the driver's latency model".
  static constexpr double kDrawFromModel = -1.0;

  std::vector<std::tuple<NodeId, double, Message>> staged_;
};

/// A protocol that, in addition to ticking, receives delayed messages.
template <typename P>
concept MessagingProtocol =
    requires(P p, const P cp, NodeId u, typename P::Message m,
             Xoshiro256& rng, double now, Outbox<typename P::Message>& out) {
      typename P::Message;
      { p.on_tick(u, rng, now, out) };
      { p.on_message(u, m, rng, now, out) };
      { cp.num_nodes() } -> std::convertible_to<std::uint64_t>;
      { cp.done() } -> std::convertible_to<bool>;
      { cp.table() } -> std::convertible_to<const OpinionTable&>;
    };

namespace detail {

/// Pre-drawn (node, unit-exponential) pairs for the superposition
/// engine. Refilling in two tight loops keeps the uniform_below and log
/// pipelines independent, which measurably beats drawing the pair
/// inside the tick loop.
struct TickBatch {
  static constexpr std::size_t kSize = 64;

  std::uint64_t nodes[kSize];
  double waits[kSize];  // Exp(1) draws; caller scales by 1/n
  std::size_t next = kSize;

  void refill(Xoshiro256& rng, std::uint64_t n) {
    for (std::size_t i = 0; i < kSize; ++i) nodes[i] = uniform_below(rng, n);
    for (std::size_t i = 0; i < kSize; ++i) waits[i] = exponential_unit(rng);
    next = 0;
  }
};

}  // namespace detail

/// Runs a plain (non-messaging) protocol under Poisson(1) clocks until
/// done() or `max_time`, by exact superposition sampling (see file
/// header). Observer cadence as in run_sequential. When the run is cut
/// off by the horizon, result.time reports `max_time` — the simulated
/// time actually reached — not the timestamp of the last event.
///
/// Perturbations (sim/perturb.hpp) drain at exact event-time order —
/// every pending event with time <= the next tick applies before that
/// tick — crashed nodes' ticks are swallowed, and the run continues
/// past transient consensus until the driver is exhausted.
template <AsyncProtocol P, typename Obs = NullObserver>
AsyncRunResult run_continuous(P& proto, Xoshiro256& rng, double max_time,
                              Obs&& obs = Obs{}, double sample_every = 1.0,
                              Perturber* perturb = nullptr) {
  PC_EXPECTS(max_time > 0.0);
  PC_EXPECTS(sample_every > 0.0);
  const std::uint64_t n = proto.num_nodes();
  PC_EXPECTS(n >= 1);
  const double inv_n = 1.0 / static_cast<double>(n);

  detail::TickBatch batch;
  AsyncRunResult result;
  double now = 0.0;
  double next_sample = 0.0;
  while (!(proto.done() &&
           (perturb == nullptr || perturb->exhausted()))) {
    if (batch.next == detail::TickBatch::kSize) batch.refill(rng, n);
    const double tick_time = now + batch.waits[batch.next] * inv_n;
    if (tick_time > max_time) break;
    if (perturb != nullptr && perturb->next_time() <= tick_time) {
      detail::drain_perturbations(perturb, tick_time, proto);
    }
    now = tick_time;
    while (next_sample <= now) {
      obs(next_sample, proto);
      next_sample += sample_every;
    }
    const auto u = static_cast<NodeId>(batch.nodes[batch.next]);
    if (perturb == nullptr || perturb->allows_tick(u)) {
      proto.on_tick(u, rng);
    }
    ++batch.next;
    ++result.ticks;
  }
  result.time = proto.done() ? now : max_time;
  obs(result.time, proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

/// The batched-sampling variant of run_continuous (--sampling=batch):
/// the per-tick (node, wait) pairs come from a lane-parallel
/// Xoshiro256Block (rng/batch.hpp) in blocks of kBlockTicks, while the
/// protocol's own draws stay on the scalar `rng` stream. Same exact
/// superposition process and the same observer/perturbation semantics
/// as run_continuous; NOT bit-identical to it for a fixed seed (the
/// block interleaves eight expanded streams where the scalar path
/// consumes one), which is why the scalar engine stays the default.
/// The block is seeded by one draw from `rng`, so a fixed seed is still
/// fully deterministic. Equivalence is pinned by the KS/moment gates in
/// tests/test_batch_rng.cpp.
template <AsyncProtocol P, typename Obs = NullObserver>
AsyncRunResult run_continuous_batch(P& proto, Xoshiro256& rng,
                                    double max_time, Obs&& obs = Obs{},
                                    double sample_every = 1.0,
                                    Perturber* perturb = nullptr) {
  PC_EXPECTS(max_time > 0.0);
  PC_EXPECTS(sample_every > 0.0);
  const std::uint64_t n = proto.num_nodes();
  PC_EXPECTS(n >= 1);
  const double inv_n = 1.0 / static_cast<double>(n);

  constexpr std::size_t kBlockTicks = 256;
  Xoshiro256Block block(rng());
  NodeId nodes[kBlockTicks];
  double waits[kBlockTicks];
  std::size_t next = kBlockTicks;

  AsyncRunResult result;
  double now = 0.0;
  double next_sample = 0.0;
  while (!(proto.done() &&
           (perturb == nullptr || perturb->exhausted()))) {
    if (next == kBlockTicks) {
      block.fill_uniform_below(n, nodes);
      block.fill_exponential_unit(waits);
      next = 0;
    }
    const double tick_time = now + waits[next] * inv_n;
    if (tick_time > max_time) break;
    if (perturb != nullptr && perturb->next_time() <= tick_time) {
      detail::drain_perturbations(perturb, tick_time, proto);
    }
    now = tick_time;
    while (next_sample <= now) {
      obs(next_sample, proto);
      next_sample += sample_every;
    }
    const NodeId u = nodes[next];
    if (perturb == nullptr || perturb->allows_tick(u)) {
      proto.on_tick(u, rng);
    }
    ++next;
    ++result.ticks;
  }
  result.time = proto.done() ? now : max_time;
  obs(result.time, proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

/// The reference n-timer simulation: every node's next tick sits in an
/// event queue. Same process as run_continuous, O(log n) per tick.
/// Perturbations integrate exactly as in run_continuous: drained in
/// event-time order against the tick queue's head.
template <AsyncProtocol P, typename Obs = NullObserver>
AsyncRunResult run_continuous_heap(P& proto, Xoshiro256& rng, double max_time,
                                   Obs&& obs = Obs{},
                                   double sample_every = 1.0,
                                   Perturber* perturb = nullptr) {
  PC_EXPECTS(max_time > 0.0);
  PC_EXPECTS(sample_every > 0.0);
  const std::uint64_t n = proto.num_nodes();
  PC_EXPECTS(n >= 1);

  EventQueue<NodeId> ticks;
  ticks.reserve(n + 1);
  for (std::uint64_t u = 0; u < n; ++u) {
    ticks.push(exponential_unit(rng), static_cast<NodeId>(u));
  }

  AsyncRunResult result;
  double now = 0.0;
  double next_sample = 0.0;
  while (!(proto.done() &&
           (perturb == nullptr || perturb->exhausted()))) {
    if (ticks.next_time() > max_time) break;
    const auto event = ticks.pop();
    if (perturb != nullptr && perturb->next_time() <= event.time) {
      detail::drain_perturbations(perturb, event.time, proto);
    }
    now = event.time;
    while (next_sample <= now) {
      obs(next_sample, proto);
      next_sample += sample_every;
    }
    if (perturb == nullptr || perturb->allows_tick(event.payload)) {
      proto.on_tick(event.payload, rng);
    }
    ++result.ticks;
    ticks.push(now + exponential_unit(rng), event.payload);
  }
  result.time = proto.done() ? now : max_time;
  obs(result.time, proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

/// Driver state for messaging protocols (kept as a class so Outbox can
/// befriend it). Constrained at the run_continuous_messaging entry point.
///
/// Ticks come from the superposition stream (no per-node timers); only
/// *deliveries* live in an event queue, and the queue head races the
/// next generated tick. A delivery that lands exactly on a tick time is
/// processed first (ties between the two streams have probability zero;
/// deliveries among themselves keep their (time, post order) sequence).
///
/// When constructed with a LatencyModel the driver draws one latency
/// per model-posted message (Outbox::post without a delay) from `rng`
/// at drain time; see the file header for the ownership invariant.
/// Posting without a delay on a driver that has no model is a contract
/// violation.
template <typename P, typename Obs>
class ContinuousMessagingDriver {
 public:
  ContinuousMessagingDriver(P& proto, Xoshiro256& rng, Obs obs,
                            const LatencyModel* latency = nullptr)
      : proto_(proto), rng_(rng), obs_(std::move(obs)), latency_(latency) {}

  AsyncRunResult run(double max_time, double sample_every = 1.0) {
    PC_EXPECTS(max_time > 0.0);
    PC_EXPECTS(sample_every > 0.0);
    const std::uint64_t n = proto_.num_nodes();
    PC_EXPECTS(n >= 1);
    const double inv_n = 1.0 / static_cast<double>(n);

    using Message = typename P::Message;
    struct Delivery {
      NodeId to;
      Message message;
    };

    EventQueue<Delivery> deliveries;
    deliveries.reserve(n);
    Outbox<Message> outbox;
    AsyncRunResult result;
    double now = 0.0;
    double next_sample = 0.0;
    double next_tick = exponential_unit(rng_) * inv_n;
    while (!proto_.done()) {
      const bool deliver =
          !deliveries.empty() && deliveries.next_time() <= next_tick;
      const double event_time = deliver ? deliveries.next_time() : next_tick;
      if (event_time > max_time) break;
      now = event_time;
      while (next_sample <= now) {
        obs_(next_sample, proto_);
        next_sample += sample_every;
      }
      if (deliver) {
        auto event = deliveries.pop();
        proto_.on_message(event.payload.to, std::move(event.payload.message),
                          rng_, now, outbox);
      } else {
        const auto u = static_cast<NodeId>(uniform_below(rng_, n));
        proto_.on_tick(u, rng_, now, outbox);
        ++result.ticks;
        next_tick = now + exponential_unit(rng_) * inv_n;
      }
      for (auto& [to, delay, message] : outbox.staged_) {
        double resolved = delay;
        if (resolved == Outbox<Message>::kDrawFromModel) {
          PC_EXPECTS(latency_ != nullptr);
          resolved = latency_->sample(rng_);
        }
        deliveries.push(now + resolved, Delivery{to, std::move(message)});
      }
      outbox.staged_.clear();
    }
    result.time = proto_.done() ? now : max_time;
    obs_(result.time, proto_);
    result.consensus = proto_.table().has_consensus();
    if (result.consensus) result.winner = proto_.table().consensus_color();
    return result;
  }

 private:
  P& proto_;
  Xoshiro256& rng_;
  Obs obs_;
  const LatencyModel* latency_;
};

/// Convenience wrapper for messaging protocols whose posts carry
/// explicit delays.
template <MessagingProtocol P, typename Obs = NullObserver>
AsyncRunResult run_continuous_messaging(P& proto, Xoshiro256& rng,
                                        double max_time, Obs&& obs = Obs{},
                                        double sample_every = 1.0) {
  ContinuousMessagingDriver<P, std::decay_t<Obs>> driver(
      proto, rng, std::forward<Obs>(obs));
  return driver.run(max_time, sample_every);
}

/// Runs a messaging protocol under the given edge-latency model: the
/// driver stamps every model-posted message with a latency drawn from
/// `latency` (see sim/latency.hpp). The model must outlive the call.
template <MessagingProtocol P, typename Obs = NullObserver>
AsyncRunResult run_continuous_messaging(P& proto, const LatencyModel& latency,
                                        Xoshiro256& rng, double max_time,
                                        Obs&& obs = Obs{},
                                        double sample_every = 1.0) {
  ContinuousMessagingDriver<P, std::decay_t<Obs>> driver(
      proto, rng, std::forward<Obs>(obs), &latency);
  return driver.run(max_time, sample_every);
}

}  // namespace plurality
