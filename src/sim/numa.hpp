#pragma once

/// \file numa.hpp
/// NUMA-aware placement for the sharded engine's hot arrays, behind the
/// `--numa=` knob:
///
///   - off        — historical behavior: the main thread allocates and
///                  initializes live/snapshot, so on a multi-socket box
///                  every page lands on the allocating thread's node;
///   - firsttouch — live/snapshot (and each shard's delta row) are
///                  allocated *uninitialized* and first written by the
///                  worker lane that owns the shard range, so the OS
///                  places each page on the node that will hammer it;
///   - bind       — firsttouch plus explicit worker pinning: lane k is
///                  pinned to CPU floor(k * ncpu / lanes), spreading
///                  lanes evenly across the topology so first-touch
///                  placement stays stable for the whole run.
///
/// All three modes are trajectory-neutral: placement and pinning never
/// touch an RNG stream, so results stay bit-identical across modes (the
/// same contract --jobs= has). Pinning uses sched_setaffinity and is
/// Linux-only; off-Linux, bind degrades to firsttouch with no error —
/// the knob is a performance hint, not a correctness switch.

#include <cstdint>
#include <string>

#include "support/assert.hpp"

namespace plurality {

enum class NumaMode : std::uint8_t {
  kOff,         ///< main-thread allocation + initialization (historical)
  kFirstTouch,  ///< shard-local arrays first written by the owning lane
  kBind,        ///< first-touch + explicit lane-to-CPU pinning (Linux)
};

inline const char* numa_mode_name(NumaMode mode) noexcept {
  switch (mode) {
    case NumaMode::kOff: return "off";
    case NumaMode::kFirstTouch: return "firsttouch";
    case NumaMode::kBind: return "bind";
  }
  return "unknown";
}

/// Parses a `--numa=` value; throws ContractViolation (naming the flag)
/// on anything unrecognized.
inline NumaMode parse_numa_mode(const std::string& name) {
  if (name == "off") return NumaMode::kOff;
  if (name == "firsttouch") return NumaMode::kFirstTouch;
  if (name == "bind") return NumaMode::kBind;
  throw ContractViolation("--numa=" + name +
                          " is not one of off|firsttouch|bind");
}

namespace numa {

/// True when explicit thread pinning is available on this platform
/// (Linux). `bind` silently behaves like `firsttouch` elsewhere.
bool bind_supported() noexcept;

/// Pins the calling thread to one CPU chosen by spreading `lanes`
/// evenly over the online CPUs (lane k -> CPU floor(k * ncpu / lanes)).
/// No-op off-Linux or when pinning fails (a restricted affinity mask is
/// not an error — the knob is best-effort).
void pin_lane(unsigned lane, unsigned lanes) noexcept;

}  // namespace numa

}  // namespace plurality
