#pragma once

/// \file latency.hpp
/// Pluggable edge-latency models for the asynchronous engines.
///
/// The source paper's model delivers a contacted peer's response
/// instantaneously; its successor — Bankhamer, Elsässer, Kaaser & Krnc,
/// "Fast Consensus Protocols in the Asynchronous Poisson Clock Model
/// with Edge Latencies" — studies the regime where every response
/// travels for a random time drawn from a latency distribution, and
/// shows that the *shape* of that distribution (not just its mean)
/// decides whether consensus stays fast: distributions with
/// non-decreasing hazard rate ("positive aging") admit fast plurality
/// consensus, while heavy tails slow the endgame down.
///
/// A LatencyModel is a sampler for the response-travel time. Concrete
/// models, all parameterized by their *mean* so experiments compare
/// distributions at matched expected delay:
///
///   - ZeroLatency           the paper's instant-response baseline
///   - ConstantLatency       every response takes exactly `mean`
///   - ExponentialLatency    Exp(1/mean) — constant hazard, the §4
///                           response-delay extension
///   - ParetoLatency         Lomax (Pareto type II), heavy-tailed —
///                           *decreasing* hazard, the adversarial
///                           contrast to positive aging
///   - PositiveAgingLatency  Weibull with shape >= 1 — non-decreasing
///                           hazard, the Bankhamer et al. family
///
/// RNG-stream ownership: a model never owns a generator. The component
/// that schedules deliveries (the messaging driver in
/// continuous_engine.hpp) draws every latency from *its own* stream at
/// the moment the message is enqueued, so protocols stay
/// latency-agnostic and a fixed (seed, model) pair is deterministic.

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "support/assert.hpp"

namespace plurality {

/// How a protocol running under a latency model issues queries.
///
/// kBlocking (default) is the Bankhamer et al. request/response model:
/// a node keeps at most ONE query in flight, ticks on a waiting node
/// are suppressed, and the answer re-arms it. This is what makes the
/// latency *shape* matter: under a decreasing-hazard (heavy-tailed)
/// model the residual wait of an in-flight query grows the longer it
/// has been outstanding (the waiting-time paradox), so the endgame is
/// gated by stragglers, while positive aging keeps every round trip
/// concentrated around the mean.
///
/// kFireAndForget posts a fresh query on every tick regardless of
/// outstanding answers — the §4-style semantics, and the discipline
/// the sharded engine's constant-latency epoch fold approximates
/// (updates at full tick rate from c-stale reads).
///
/// Lives here (not in core/delayed.hpp) because both the delayed
/// protocol variants and the sharded engine's delivery-queue driver
/// (run_sharded_queued) implement it, and sim/ must not depend on
/// core/.
enum class QueryDiscipline : std::uint8_t { kBlocking, kFireAndForget };

/// The registered latency families, as selected by `--latency=`.
enum class LatencyKind : std::uint8_t {
  kZero,         ///< instant responses (paper baseline)
  kConstant,     ///< degenerate: always exactly the mean
  kExponential,  ///< constant hazard (memoryless)
  kPareto,       ///< Lomax heavy tail: decreasing hazard
  kAging,        ///< Weibull shape >= 1: non-decreasing hazard
};

inline const char* latency_kind_name(LatencyKind kind) noexcept {
  switch (kind) {
    case LatencyKind::kZero: return "zero";
    case LatencyKind::kConstant: return "const";
    case LatencyKind::kExponential: return "exp";
    case LatencyKind::kPareto: return "pareto";
    case LatencyKind::kAging: return "aging";
  }
  return "unknown";
}

/// Parses a `--latency=` value; throws ContractViolation (naming the
/// offending text) on anything unrecognized.
inline LatencyKind parse_latency_kind(const std::string& name) {
  if (name == "zero") return LatencyKind::kZero;
  if (name == "const") return LatencyKind::kConstant;
  if (name == "exp") return LatencyKind::kExponential;
  if (name == "pareto") return LatencyKind::kPareto;
  if (name == "aging") return LatencyKind::kAging;
  throw ContractViolation("--latency=" + name +
                          " is not one of zero|const|exp|pareto|aging");
}

/// A response-latency sampler. sample() must return a finite value
/// >= 0; mean() is the analytic expectation (0 only for ZeroLatency).
/// Virtual dispatch is fine here: draws happen once per *message*, on
/// the delivery-queue path, never in the tick-generation hot loop.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One latency draw. The caller (the messaging driver) owns `rng`.
  virtual double sample(Xoshiro256& rng) const = 0;

  /// The analytic mean delay the model was parameterized with.
  virtual double mean() const noexcept = 0;

  virtual LatencyKind kind() const noexcept = 0;

  const char* name() const noexcept { return latency_kind_name(kind()); }
};

/// Instant responses: the source paper's base model. Draws no RNG.
class ZeroLatency final : public LatencyModel {
 public:
  double sample(Xoshiro256&) const override { return 0.0; }
  double mean() const noexcept override { return 0.0; }
  LatencyKind kind() const noexcept override { return LatencyKind::kZero; }
};

/// Every response takes exactly `mean` time units. The degenerate
/// endpoint of the positive-aging family (all mass at one point); also
/// the model the sharded engine can fold into its epoch schedule
/// exactly (see sharded_engine.hpp). Draws no RNG.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(double mean) : mean_(mean) {
    PC_EXPECTS(mean > 0.0);
  }
  double sample(Xoshiro256&) const override { return mean_; }
  double mean() const noexcept override { return mean_; }
  LatencyKind kind() const noexcept override { return LatencyKind::kConstant; }

 private:
  double mean_;
};

/// Exp(1/mean): the §4 response-delay extension of the source paper.
/// Constant hazard 1/mean — the boundary case of positive aging.
class ExponentialLatency final : public LatencyModel {
 public:
  explicit ExponentialLatency(double mean) : mean_(mean) {
    PC_EXPECTS(mean > 0.0);
  }
  double sample(Xoshiro256& rng) const override {
    return exponential_unit(rng) * mean_;
  }
  double mean() const noexcept override { return mean_; }
  LatencyKind kind() const noexcept override {
    return LatencyKind::kExponential;
  }

  /// h(t) = 1/mean for all t >= 0.
  double hazard(double) const noexcept { return 1.0 / mean_; }

 private:
  double mean_;
};

/// Lomax (Pareto type II shifted to start at 0): survival
/// S(t) = (1 + t/sigma)^(-shape). Heavy-tailed with *decreasing*
/// hazard shape/(sigma + t) — the "negative aging" contrast whose
/// stragglers keep reinjecting stale opinions into the endgame.
/// Requires shape > 1 so the mean sigma/(shape-1) exists; the scale is
/// derived from the requested mean.
class ParetoLatency final : public LatencyModel {
 public:
  ParetoLatency(double mean, double shape) : mean_(mean), shape_(shape) {
    PC_EXPECTS(mean > 0.0);
    PC_EXPECTS(shape > 1.0);
    sigma_ = mean * (shape - 1.0);
  }
  double sample(Xoshiro256& rng) const override {
    // Inverse-survival sampling: S^{-1}(u) with u uniform in (0, 1].
    return sigma_ * (std::pow(uniform_open(rng), -1.0 / shape_) - 1.0);
  }
  double mean() const noexcept override { return mean_; }
  LatencyKind kind() const noexcept override { return LatencyKind::kPareto; }

  /// h(t) = shape/(sigma + t): strictly decreasing.
  double hazard(double t) const noexcept { return shape_ / (sigma_ + t); }
  double sigma() const noexcept { return sigma_; }
  double shape() const noexcept { return shape_; }

 private:
  double mean_;
  double shape_;
  double sigma_;
};

/// The positive-aging family of Bankhamer et al.: Weibull with shape
/// k >= 1, whose hazard (k/scale)(t/scale)^(k-1) is non-decreasing.
/// k = 1 degenerates to ExponentialLatency; larger k concentrates the
/// distribution around its mean (lighter tail than exponential), which
/// is exactly the property that keeps the consensus endgame free of
/// extreme stragglers. The scale is derived from the requested mean via
/// E[T] = scale * Gamma(1 + 1/k).
class PositiveAgingLatency final : public LatencyModel {
 public:
  PositiveAgingLatency(double mean, double shape)
      : mean_(mean), shape_(shape) {
    PC_EXPECTS(mean > 0.0);
    PC_EXPECTS(shape >= 1.0);
    scale_ = mean / std::tgamma(1.0 + 1.0 / shape);
  }
  double sample(Xoshiro256& rng) const override {
    // T = scale * E^(1/k) for E ~ Exp(1) (inverse-CDF of the Weibull).
    return scale_ * std::pow(exponential_unit(rng), 1.0 / shape_);
  }
  double mean() const noexcept override { return mean_; }
  LatencyKind kind() const noexcept override { return LatencyKind::kAging; }

  /// h(t) = (k/scale)(t/scale)^(k-1): non-decreasing for k >= 1.
  double hazard(double t) const noexcept {
    return (shape_ / scale_) * std::pow(t / scale_, shape_ - 1.0);
  }
  double scale() const noexcept { return scale_; }
  double shape() const noexcept { return shape_; }

 private:
  double mean_;
  double shape_;
  double scale_;
};

/// Default `--latency-shape` per family: Pareto wants a visibly heavy
/// tail with a finite mean (and, at 2.5, finite variance so moment
/// tests stay meaningful); aging wants to sit clearly inside the
/// increasing-hazard regime, well away from the exponential boundary.
inline double default_latency_shape(LatencyKind kind) noexcept {
  switch (kind) {
    case LatencyKind::kPareto: return 2.5;
    case LatencyKind::kAging: return 4.0;
    default: return 1.0;
  }
}

/// Builds the model selected by (kind, mean, shape). `mean` is ignored
/// for kZero; `shape` only applies to kPareto (> 1) and kAging (>= 1).
/// Parameter violations throw ContractViolation.
inline std::unique_ptr<LatencyModel> make_latency_model(LatencyKind kind,
                                                        double mean,
                                                        double shape) {
  switch (kind) {
    case LatencyKind::kZero:
      return std::make_unique<ZeroLatency>();
    case LatencyKind::kConstant:
      return std::make_unique<ConstantLatency>(mean);
    case LatencyKind::kExponential:
      return std::make_unique<ExponentialLatency>(mean);
    case LatencyKind::kPareto:
      return std::make_unique<ParetoLatency>(mean, shape);
    case LatencyKind::kAging:
      return std::make_unique<PositiveAgingLatency>(mean, shape);
  }
  throw ContractViolation("unreachable latency kind");
}

/// The resolved `--latency=` / `--latency-mean=` / `--latency-shape=`
/// triple an ExperimentContext carries: a value type so it can be
/// validated once on the main thread and then used to mint models
/// inside per-repetition worker lambdas.
struct LatencySpec {
  LatencyKind kind = LatencyKind::kZero;
  double mean = 1.0;
  double shape = 1.0;

  std::unique_ptr<LatencyModel> make() const {
    return make_latency_model(kind, mean, shape);
  }

  /// True when the sharded engine can fold this model into its epoch
  /// schedule instead of falling back to the messaging driver (see
  /// run_sharded_latency in engine_select.hpp).
  bool foldable_into_sharded() const noexcept {
    return kind == LatencyKind::kZero || kind == LatencyKind::kConstant;
  }
};

}  // namespace plurality
