#pragma once

/// \file sequential_engine.hpp
/// The paper's sequential asynchronous model: at every discrete step a
/// node chosen uniformly at random performs one tick; parallel time is
/// steps / n. By Mosk-Aoyama & Shah (paper ref [4]) run times in this
/// model match the continuous Poisson-clock model; experiment E9 checks
/// that against our continuous engine.

#include <cmath>
#include <cstdint>
#include <utility>

#include "rng/distributions.hpp"
#include "sim/concepts.hpp"
#include "sim/observers.hpp"
#include "sim/perturb.hpp"
#include "sim/result.hpp"
#include "support/assert.hpp"

namespace plurality {

namespace detail {

/// First step index at or after parallel time `t` (steps / n >= t);
/// `sentinel` for "never" (infinite next event time).
inline std::uint64_t step_of_time(double t, std::uint64_t n,
                                  std::uint64_t sentinel) noexcept {
  if (!(t < static_cast<double>(sentinel) / static_cast<double>(n))) {
    return sentinel;
  }
  if (t <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::ceil(t * static_cast<double>(n)));
}

}  // namespace detail

/// Runs `proto` until done() or until parallel time reaches `max_time`.
/// The observer fires every `sample_every` time units (and once at the
/// end). When the run is cut off by the step budget, result.time reports
/// `max_time` — the simulated horizon actually reached — not the
/// (floored) step count over n. Requires max_time > 0 and
/// sample_every > 0.
///
/// With a Perturber the engine drains its events at exact event times
/// (the step boundary at or after each event), swallows ticks of
/// crashed nodes (time still advances), and keeps running past
/// transient consensus until the driver is exhausted (perturbations
/// can break consensus after it forms).
template <AsyncProtocol P, typename Obs = NullObserver>
AsyncRunResult run_sequential(P& proto, Xoshiro256& rng, double max_time,
                              Obs&& obs = Obs{}, double sample_every = 1.0,
                              Perturber* perturb = nullptr) {
  PC_EXPECTS(max_time > 0.0);
  PC_EXPECTS(sample_every > 0.0);
  const std::uint64_t n = proto.num_nodes();
  PC_EXPECTS(n >= 1);

  const auto max_steps =
      static_cast<std::uint64_t>(max_time * static_cast<double>(n));
  const auto sample_steps = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(sample_every * static_cast<double>(n)));
  const std::uint64_t never = max_steps + 1;

  AsyncRunResult result;
  std::uint64_t steps = 0;
  // Countdown to the next observer sample: one decrement per step
  // instead of a 64-bit modulo in the hot loop.
  std::uint64_t until_sample = 0;
  std::uint64_t next_perturb_step =
      perturb == nullptr
          ? never
          : detail::step_of_time(perturb->next_time(), n, never);
  while (steps < max_steps &&
         !(proto.done() &&
           (perturb == nullptr || perturb->exhausted()))) {
    if (steps >= next_perturb_step) {
      detail::drain_perturbations(
          perturb, static_cast<double>(steps) / static_cast<double>(n),
          proto);
      next_perturb_step =
          detail::step_of_time(perturb->next_time(), n, never);
    }
    if (until_sample == 0) {
      obs(static_cast<double>(steps) / static_cast<double>(n), proto);
      until_sample = sample_steps;
    }
    --until_sample;
    const auto u = static_cast<NodeId>(uniform_below(rng, n));
    if (perturb == nullptr || perturb->allows_tick(u)) {
      proto.on_tick(u, rng);
    }
    ++steps;
  }
  result.ticks = steps;
  result.time = proto.done()
                    ? static_cast<double>(steps) / static_cast<double>(n)
                    : max_time;
  obs(result.time, proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

}  // namespace plurality
