#include "sim/heterogeneous.hpp"

#include <cmath>
#include <vector>

namespace plurality::clock_rates {

std::vector<double> uniform(std::uint64_t n) {
  PC_EXPECTS(n >= 1);
  return std::vector<double>(n, 1.0);
}

std::vector<double> two_speed(std::uint64_t n, double slow_fraction,
                              double slow_rate, Xoshiro256& rng) {
  PC_EXPECTS(n >= 1);
  PC_EXPECTS(slow_fraction >= 0.0 && slow_fraction < 1.0);
  PC_EXPECTS(slow_rate > 0.0 && slow_rate < 1.0);
  const double fast_rate =
      (1.0 - slow_fraction * slow_rate) / (1.0 - slow_fraction);
  std::vector<double> rates(n, fast_rate);
  const auto num_slow = static_cast<std::uint64_t>(
      slow_fraction * static_cast<double>(n));
  // Slow nodes are a uniform random subset (partial Fisher-Yates over
  // node indices).
  std::vector<std::uint64_t> order(n);
  for (std::uint64_t i = 0; i < n; ++i) order[i] = i;
  for (std::uint64_t i = 0; i < num_slow; ++i) {
    const std::uint64_t j = i + uniform_below(rng, n - i);
    std::swap(order[i], order[j]);
    rates[order[i]] = slow_rate;
  }
  return rates;
}

std::vector<double> log_normal(std::uint64_t n, double sigma,
                               Xoshiro256& rng) {
  PC_EXPECTS(n >= 1);
  PC_EXPECTS(sigma >= 0.0);
  // E[exp(sigma Z)] = exp(sigma^2/2); divide it out for mean 1.
  const double normalizer = std::exp(sigma * sigma / 2.0);
  std::vector<double> rates(n);
  for (auto& r : rates) {
    r = std::exp(sigma * standard_normal(rng)) / normalizer;
  }
  return rates;
}

}  // namespace plurality::clock_rates
