#include "sim/perturb.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <utility>

#include "rng/distributions.hpp"

namespace plurality {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();
constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

}  // namespace

PerturbKind parse_perturb_kind(const std::string& name) {
  if (name == "none") return PerturbKind::kNone;
  if (name == "inject") return PerturbKind::kInject;
  if (name == "crash") return PerturbKind::kCrash;
  if (name == "churn") return PerturbKind::kChurn;
  if (name == "adversary") return PerturbKind::kAdversary;
  throw ContractViolation("--perturb=" + name +
                          " is not one of none|inject|crash|churn|adversary");
}

PerturbTarget parse_perturb_target(const std::string& name) {
  if (name == "uniform") return PerturbTarget::kUniform;
  if (name == "hub") return PerturbTarget::kHub;
  throw ContractViolation("--perturb-target=" + name +
                          " is not one of uniform|hub");
}

void PerturbSpec::validate() const {
  if (kind == PerturbKind::kNone) return;
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw ContractViolation(
        "--perturb-rate expects a finite value > 0, got " +
        std::to_string(rate));
  }
  if (!(start >= 0.0) || !std::isfinite(start)) {
    throw ContractViolation(
        "--perturb-start expects a finite value >= 0, got " +
        std::to_string(start));
  }
  if (kind == PerturbKind::kAdversary) {
    if (budget == 0) {
      throw ContractViolation(
          "--perturb=adversary requires an explicit corruption budget: "
          "pass --perturb-budget= >= 1");
    }
    if (!(interval > 0.0) || !std::isfinite(interval)) {
      throw ContractViolation(
          "--perturb-interval expects a finite value > 0, got " +
          std::to_string(interval));
    }
  }
}

std::string PerturbSpec::label() const {
  std::string out = perturb_kind_name(kind);
  if (kind == PerturbKind::kNone) return out;
  out += "(rate=" + fmt(rate);
  if (budget != 0) out += ",budget=" + std::to_string(budget);
  if (start != 0.0) out += ",start=" + fmt(start);
  if (kind == PerturbKind::kAdversary) {
    out += ",interval=" + fmt(interval);
  }
  out += ")";
  return out;
}

// ---------------------------------------------------------------------------
// ChurnableCsr

namespace {

std::vector<std::uint64_t> copy_offsets(const CsrTopology& source) {
  PC_EXPECTS(!source.is_implicit_complete());
  const std::uint64_t n = source.num_nodes();
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets[u + 1] = offsets[u] + source.degree(u);
  }
  return offsets;
}

std::vector<NodeId> copy_edges(const CsrTopology& source) {
  const std::uint64_t n = source.num_nodes();
  std::vector<NodeId> edges;
  for (NodeId u = 0; u < n; ++u) {
    const auto row = source.neighbors(u);
    edges.insert(edges.end(), row.begin(), row.end());
  }
  return edges;
}

}  // namespace

ChurnableCsr::ChurnableCsr(const CsrTopology& source)
    : offsets_(copy_offsets(source)),
      edges_(copy_edges(source)),
      view_(CsrTopology::borrowed(offsets_, edges_)) {
  const std::uint64_t n = offsets_.size() - 1;
  const std::uint64_t slots = edges_.size();
  owner_.resize(slots);
  for (NodeId u = 0; u < n; ++u) {
    for (std::uint64_t s = offsets_[u]; s < offsets_[u + 1]; ++s) {
      owner_[s] = u;
    }
  }
  // Pair each directed slot with its reverse: sort slot indices by the
  // undirected edge key, then by owner so a key held k times lists its
  // k min-endpoint slots before its k max-endpoint slots. Configuration
  // -model sources (graph/random_regular.hpp) may carry multi-edges and
  // self-loops, so a key group can be longer than two.
  std::vector<std::uint64_t> order(slots);
  std::iota(order.begin(), order.end(), 0);
  const auto key = [&](std::uint64_t s) {
    const std::uint64_t a = owner_[s];
    const std::uint64_t b = edges_[s];
    return (std::min(a, b) << 32) | std::max(a, b);
  };
  std::sort(order.begin(), order.end(),
            [&](std::uint64_t a, std::uint64_t b) {
              if (key(a) != key(b)) return key(a) < key(b);
              if (owner_[a] != owner_[b]) return owner_[a] < owner_[b];
              return a < b;
            });
  mirror_.assign(slots, 0);
  PC_EXPECTS(slots % 2 == 0);
  for (std::uint64_t i = 0; i < slots;) {
    std::uint64_t end = i;
    while (end < slots && key(order[end]) == key(order[i])) ++end;
    const std::uint64_t len = end - i;
    PC_EXPECTS(len % 2 == 0);
    if (owner_[order[i]] == edges_[order[i]]) {
      // Self-loop bundle: every slot is u -> u, pair them up in order.
      for (std::uint64_t s = i; s < end; s += 2) {
        mirror_[order[s]] = order[s + 1];
        mirror_[order[s + 1]] = order[s];
      }
    } else {
      // k copies of {u,v}: slots i..i+k-1 are u -> v, the rest v -> u.
      const std::uint64_t half = len / 2;
      for (std::uint64_t s = 0; s < half; ++s) {
        const std::uint64_t a = order[i + s];
        const std::uint64_t b = order[i + half + s];
        PC_EXPECTS(owner_[a] == edges_[b] && owner_[b] == edges_[a]);
        mirror_[a] = b;
        mirror_[b] = a;
      }
    }
    i = end;
  }
  initial_defect_slots_ = count_defect_slots();
}

std::uint64_t ChurnableCsr::count_defect_slots() const {
  // Self-loop slots plus the per-row excess beyond edge multiplicity 1.
  // try_swap never creates either (shared endpoints and existing edges
  // are rejected), so this count is non-increasing under rewiring.
  std::uint64_t defects = 0;
  const std::uint64_t n = offsets_.size() - 1;
  std::vector<NodeId> row;
  for (NodeId u = 0; u < n; ++u) {
    row.assign(edges_.begin() + offsets_[u], edges_.begin() + offsets_[u + 1]);
    std::sort(row.begin(), row.end());
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] == u || (i > 0 && row[i] == row[i - 1])) ++defects;
    }
  }
  return defects;
}

bool ChurnableCsr::has_edge(NodeId u, NodeId v) const {
  for (std::uint64_t s = offsets_[u]; s < offsets_[u + 1]; ++s) {
    if (edges_[s] == v) return true;
  }
  return false;
}

bool ChurnableCsr::try_swap(std::uint64_t slot_a, std::uint64_t slot_b) {
  const NodeId u = owner_[slot_a];
  const NodeId v = edges_[slot_a];
  const NodeId a = owner_[slot_b];
  const NodeId b = edges_[slot_b];
  // {u,v},{a,b} -> {u,b},{a,v}: reject shared endpoints (self-loops /
  // degenerate overlap) and swaps that would duplicate an edge.
  if (u == a || u == b || v == a || v == b) return false;
  if (has_edge(u, b) || has_edge(a, v)) return false;
  const std::uint64_t rev_a = mirror_[slot_a];  // v -> u
  const std::uint64_t rev_b = mirror_[slot_b];  // b -> a
  edges_[slot_a] = b;  // u -> b
  edges_[rev_b] = u;   // b -> u
  edges_[slot_b] = v;  // a -> v
  edges_[rev_a] = a;   // v -> a
  mirror_[slot_a] = rev_b;
  mirror_[rev_b] = slot_a;
  mirror_[slot_b] = rev_a;
  mirror_[rev_a] = slot_b;
  return true;
}

void ChurnableCsr::rewire_node(NodeId u, Xoshiro256& rng) {
  PC_EXPECTS(u + 1 < offsets_.size());
  const std::uint64_t slots = edges_.size();
  for (std::uint64_t s = offsets_[u]; s < offsets_[u + 1]; ++s) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t partner = uniform_below(rng, slots);
      if (try_swap(s, partner)) break;
    }
  }
}

bool ChurnableCsr::check_consistent() const {
  for (std::uint64_t s = 0; s < edges_.size(); ++s) {
    if (mirror_[mirror_[s]] != s) return false;
    if (owner_[mirror_[s]] != edges_[s]) return false;
    if (edges_[mirror_[s]] != owner_[s]) return false;
  }
  // Rewiring may *heal* source defects but must never add any.
  return count_defect_slots() <= initial_defect_slots_;
}

// ---------------------------------------------------------------------------
// Perturber

Perturber::Perturber(const PerturbSpec& spec, std::uint64_t n,
                     ColorId num_colors, std::uint64_t seed,
                     const CsrTopology* topology, ChurnableCsr* churn)
    : spec_(spec),
      n_(n),
      num_colors_(num_colors),
      rng_(seed),
      topo_(topology),
      churn_(churn) {
  PC_EXPECTS(n_ >= 1);
  PC_EXPECTS(num_colors_ >= 1);
  spec_.validate();
  if (spec_.kind == PerturbKind::kChurn && churn_ == nullptr) {
    // K_n is invariant under degree-preserving rewiring, so churn on
    // the implicit complete view degenerates to the color reset; any
    // other topology needs a mutable adjacency to rewire.
    PC_EXPECTS(topo_ == nullptr || topo_->is_implicit_complete());
  }
  if (churn_ != nullptr) PC_EXPECTS(churn_->num_nodes() == n_);
  schedule_first();
}

void Perturber::schedule_first() {
  switch (spec_.kind) {
    case PerturbKind::kNone:
      remaining_ = 0;
      next_time_ = kInfinity;
      return;
    case PerturbKind::kAdversary:
      remaining_ = spec_.budget;  // validate() guarantees >= 1
      next_time_ = spec_.start;
      return;
    case PerturbKind::kInject:
    case PerturbKind::kCrash:
    case PerturbKind::kChurn:
      remaining_ = spec_.budget == 0 ? kUnlimited : spec_.budget;
      next_time_ = spec_.start + exponential_unit(rng_) / spec_.rate;
      return;
  }
}

void Perturber::advance_schedule() {
  if (remaining_ == 0) {
    next_time_ = kInfinity;
    return;
  }
  if (spec_.kind == PerturbKind::kAdversary) {
    next_time_ += spec_.interval;
  } else {
    next_time_ += exponential_unit(rng_) / spec_.rate;
  }
}

void Perturber::drain_until(double now, const OpinionTable& table,
                            const SetColor& set_color) {
  while (remaining_ > 0 && next_time_ <= now) {
    if (spec_.kind == PerturbKind::kAdversary) {
      apply_adversary_sweep(table, set_color);
    } else {
      apply_poisson_event(table, set_color);
    }
    advance_schedule();
  }
}

void Perturber::drain_until(double now, OpinionTable& table) {
  drain_until(now, table,
              [&table](NodeId u, ColorId c) { table.set_color(u, c); });
}

NodeId Perturber::pick_live_uniform() {
  // Callers guarantee at least one live node.
  for (;;) {
    const auto u = static_cast<NodeId>(uniform_below(rng_, n_));
    if (allows_tick(u)) return u;
  }
}

NodeId Perturber::pick_live_by_degree() {
  if (topo_ == nullptr || topo_->is_implicit_complete()) {
    return pick_live_uniform();  // equal degrees: hub == uniform
  }
  // O(n) prefix walk per event; injections are rare relative to ticks.
  std::uint64_t total = 0;
  for (NodeId u = 0; u < n_; ++u) {
    if (allows_tick(u)) total += topo_->degree(u);
  }
  PC_EXPECTS(total > 0);
  std::uint64_t r = uniform_below(rng_, total);
  for (NodeId u = 0; u < n_; ++u) {
    if (!allows_tick(u)) continue;
    const std::uint64_t deg = topo_->degree(u);
    if (r < deg) return u;
    r -= deg;
  }
  return static_cast<NodeId>(n_ - 1);  // unreachable: r < total
}

ColorId Perturber::different_color(ColorId current) {
  if (num_colors_ <= 1) return current;
  const auto draw =
      static_cast<ColorId>(uniform_below(rng_, num_colors_ - 1));
  return draw < current ? draw : draw + 1;
}

void Perturber::mark_crashed(NodeId u, const OpinionTable& table) {
  if (crashed_.empty()) {
    crashed_.assign(n_, 0);
    crashed_support_.assign(table.num_colors(), 0);
  }
  PC_EXPECTS(!crashed_[u]);
  crashed_[u] = 1;
  ++crashed_count_;
  ++crashed_support_[table.color(u)];
}

void Perturber::apply_poisson_event(const OpinionTable& table,
                                    const SetColor& set_color) {
  if (crashed_count_ >= n_) {  // nobody left to perturb
    remaining_ = 0;
    return;
  }
  const double when = next_time_;
  switch (spec_.kind) {
    case PerturbKind::kInject: {
      const NodeId u = spec_.target == PerturbTarget::kHub
                           ? pick_live_by_degree()
                           : pick_live_uniform();
      const ColorId c = different_color(table.color(u));
      set_color(u, c);
      log_.push_back({when, PerturbKind::kInject, u, c});
      break;
    }
    case PerturbKind::kCrash: {
      const NodeId u = pick_live_uniform();
      mark_crashed(u, table);
      log_.push_back({when, PerturbKind::kCrash, u, table.color(u)});
      break;
    }
    case PerturbKind::kChurn: {
      const NodeId u = pick_live_uniform();
      // A fresh arrival takes the slot: independent uniform opinion,
      // incident edges rewired degree-preservingly.
      const auto c = static_cast<ColorId>(uniform_below(rng_, num_colors_));
      set_color(u, c);
      if (churn_ != nullptr) churn_->rewire_node(u, rng_);
      log_.push_back({when, PerturbKind::kChurn, u, c});
      break;
    }
    default:
      PC_EXPECTS(false);
  }
  --remaining_;
}

void Perturber::apply_adversary_sweep(const OpinionTable& table,
                                      const SetColor& set_color) {
  const std::uint64_t live_total = n_ - crashed_count_;
  if (live_total == 0) {
    remaining_ = 0;
    return;
  }
  // Live support = table support minus the frozen crashed holders.
  const auto live_support = [&](ColorId c) {
    const std::uint64_t held = table.support(c);
    return crashed_support_.empty() ? held : held - crashed_support_[c];
  };
  ColorId leading = 0;
  std::uint64_t best = 0;
  for (ColorId c = 0; c < table.num_colors(); ++c) {
    if (live_support(c) > best) {
      best = live_support(c);
      leading = c;
    }
  }
  // Target color: the strongest live challenger; when consensus briefly
  // holds every challenger is at 0 and the lowest-indexed other color
  // is revived — the RSS move that keeps the minority alive.
  ColorId runner_up = leading;
  std::uint64_t second = 0;
  for (ColorId c = 0; c < table.num_colors(); ++c) {
    if (c == leading) continue;
    if (runner_up == leading || live_support(c) > second) {
      second = live_support(c);
      runner_up = c;
    }
  }
  if (runner_up == leading) {  // one-color universe: nothing to flip to
    remaining_ = 0;
    return;
  }
  std::vector<NodeId> candidates;
  candidates.reserve(best);
  for (NodeId u = 0; u < n_; ++u) {
    if (allows_tick(u) && table.color(u) == leading) {
      candidates.push_back(u);
    }
  }
  if (candidates.empty()) return;  // observe again next interval
  const auto quota = static_cast<std::uint64_t>(
      std::ceil(spec_.rate * spec_.interval));
  const std::uint64_t m =
      std::min({remaining_, std::max<std::uint64_t>(quota, 1),
                static_cast<std::uint64_t>(candidates.size())});
  if (topo_ != nullptr && !topo_->is_implicit_complete()) {
    // Highest impact first: corrupt plurality holders with the most
    // same-color neighbors — the seed peers keep reinforcing.
    std::vector<std::pair<std::uint64_t, NodeId>> scored;
    scored.reserve(candidates.size());
    for (const NodeId u : candidates) {
      std::uint64_t same = 0;
      for (const NodeId v : topo_->neighbors(u)) {
        same += (table.color(v) == leading);
      }
      scored.emplace_back(same, u);
    }
    std::partial_sort(scored.begin(), scored.begin() + m, scored.end(),
                      [](const auto& a, const auto& b) {
                        return a.first != b.first ? a.first > b.first
                                                  : a.second < b.second;
                      });
    candidates.clear();
    for (std::uint64_t i = 0; i < m; ++i) {
      candidates.push_back(scored[i].second);
    }
  } else {
    // No stored adjacency (the clique): position is irrelevant by
    // vertex-transitivity, pick uniformly (partial Fisher–Yates).
    for (std::uint64_t i = 0; i < m; ++i) {
      const std::uint64_t j =
          i + uniform_below(rng_, candidates.size() - i);
      std::swap(candidates[i], candidates[j]);
    }
    candidates.resize(m);
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    set_color(candidates[i], runner_up);
    log_.push_back(
        {next_time_, PerturbKind::kAdversary, candidates[i], runner_up});
  }
  remaining_ -= m;
}

double Perturber::live_agreement(const OpinionTable& table) const {
  const std::uint64_t live = n_ - crashed_count_;
  if (live == 0) return 1.0;  // vacuous: everyone crashed
  std::uint64_t best = 0;
  for (ColorId c = 0; c < table.num_colors(); ++c) {
    const std::uint64_t held = table.support(c);
    const std::uint64_t dead =
        crashed_support_.empty() ? 0 : crashed_support_[c];
    best = std::max(best, held - dead);
  }
  return static_cast<double>(best) / static_cast<double>(live);
}

// ---------------------------------------------------------------------------
// Recovery helpers

std::vector<double> recovery_times(const std::vector<PerturbEvent>& events,
                                   const std::vector<AgreementPoint>& trace,
                                   double threshold) {
  PC_EXPECTS(!trace.empty());
  std::vector<double> out;
  out.reserve(events.size());
  // Two-pointer sweep: events are in application order (nondecreasing
  // time), so the recovery cursor never moves backwards.
  std::size_t cursor = 0;
  for (const PerturbEvent& event : events) {
    while (cursor < trace.size() &&
           (trace[cursor].time < event.time ||
            trace[cursor].agreement < threshold)) {
      ++cursor;
    }
    if (cursor < trace.size()) {
      out.push_back(trace[cursor].time - event.time);
      // Later events may recover at the same or a later point; rewind
      // is never needed but the cursor must not advance past a point
      // that could serve the next event, so leave it in place.
    } else {
      // Censored: never recovered within the trace. Clamped at 0 for
      // events applied after the final sample.
      out.push_back(std::max(0.0, trace.back().time - event.time));
      cursor = trace.size();
    }
  }
  return out;
}

double agreement_at(const std::vector<AgreementPoint>& trace, double t) {
  PC_EXPECTS(!trace.empty());
  const auto after = std::upper_bound(
      trace.begin(), trace.end(), t,
      [](double value, const AgreementPoint& p) { return value < p.time; });
  if (after == trace.begin()) return trace.front().agreement;
  return std::prev(after)->agreement;
}

}  // namespace plurality
