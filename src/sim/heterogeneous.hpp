#pragma once

/// \file heterogeneous.hpp
/// Heterogeneous Poisson clocks. The paper's §4 notes: "We showed our
/// main result assuming independent Poisson clocks with parameter 1.
/// However, our techniques should carry over to a much more general
/// setting as well." This driver runs any AsyncProtocol under per-node
/// clock rates lambda_u, so the clock-skew experiment (B1) can probe
/// how much rate heterogeneity the protocol really tolerates.

#include <cstdint>
#include <span>
#include <utility>

#include "rng/distributions.hpp"
#include "sim/concepts.hpp"
#include "sim/event_queue.hpp"
#include "sim/observers.hpp"
#include "sim/result.hpp"
#include "support/assert.hpp"

namespace plurality {

/// Runs `proto` with node u ticking at rate `rates[u]` until done() or
/// `max_time`. Requires rates.size() == proto.num_nodes() and every
/// rate > 0.
template <AsyncProtocol P, typename Obs = NullObserver>
AsyncRunResult run_continuous_heterogeneous(P& proto, Xoshiro256& rng,
                                            std::span<const double> rates,
                                            double max_time,
                                            Obs&& obs = Obs{},
                                            double sample_every = 1.0) {
  PC_EXPECTS(max_time > 0.0);
  PC_EXPECTS(sample_every > 0.0);
  const std::uint64_t n = proto.num_nodes();
  PC_EXPECTS(rates.size() == n);
  for (const double r : rates) PC_EXPECTS(r > 0.0);

  EventQueue<NodeId> ticks;
  for (std::uint64_t u = 0; u < n; ++u) {
    ticks.push(exponential(rng, rates[u]), static_cast<NodeId>(u));
  }

  AsyncRunResult result;
  double now = 0.0;
  double next_sample = 0.0;
  while (!ticks.empty() && !proto.done()) {
    if (ticks.next_time() > max_time) break;
    const auto event = ticks.pop();
    now = event.time;
    while (next_sample <= now) {
      obs(next_sample, proto);
      next_sample += sample_every;
    }
    proto.on_tick(event.payload, rng);
    ++result.ticks;
    ticks.push(now + exponential(rng, rates[event.payload]),
               event.payload);
  }
  result.time = now;
  obs(now, proto);
  result.consensus = proto.table().has_consensus();
  if (result.consensus) result.winner = proto.table().consensus_color();
  return result;
}

/// Convenience rate profiles for the clock-skew experiment.
namespace clock_rates {

/// All nodes at rate 1 (the paper's base model).
std::vector<double> uniform(std::uint64_t n);

/// A fraction `slow_fraction` of nodes runs at `slow_rate`, the rest at
/// a compensating fast rate so the mean rate stays 1 (which keeps
/// parallel-time scales comparable across skew levels). Requires
/// slow_fraction in [0, 1) and 0 < slow_rate < 1.
std::vector<double> two_speed(std::uint64_t n, double slow_fraction,
                              double slow_rate, Xoshiro256& rng);

/// Log-normal rates with sigma, normalized to mean 1.
std::vector<double> log_normal(std::uint64_t n, double sigma,
                               Xoshiro256& rng);

}  // namespace clock_rates

}  // namespace plurality
