#include "sim/numa.hpp"

#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

namespace plurality::numa {

bool bind_supported() noexcept {
#ifdef __linux__
  return true;
#else
  return false;
#endif
}

void pin_lane([[maybe_unused]] unsigned lane,
              [[maybe_unused]] unsigned lanes) noexcept {
#ifdef __linux__
  if (lanes == 0) return;
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  const unsigned cpu =
      static_cast<unsigned>((static_cast<std::uint64_t>(lane) * ncpu) /
                            lanes) %
      ncpu;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(static_cast<int>(cpu), &mask);
  // Best-effort: a failure (restricted cgroup mask, exotic topology)
  // leaves the thread on the scheduler's choice, which is the `off`
  // behavior — never an error.
  (void)sched_setaffinity(0, sizeof(mask), &mask);
#endif
}

}  // namespace plurality::numa
