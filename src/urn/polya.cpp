#include "urn/polya.hpp"

#include <numeric>

namespace plurality {

namespace {

/// Draws a color index with probability proportional to counts.
/// Linear scan — urn color counts are tiny (k colors).
std::size_t draw_weighted(std::span<const std::uint64_t> counts,
                          std::uint64_t total, Xoshiro256& rng) {
  PC_EXPECTS(total > 0);
  std::uint64_t target = uniform_below(rng, total);
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (target < counts[c]) return c;
    target -= counts[c];
  }
  PC_ASSERT(false);  // unreachable: counts sum to total
  return counts.size() - 1;
}

}  // namespace

PolyaUrn::PolyaUrn(std::vector<std::uint64_t> initial_counts,
                   std::uint64_t reinforcement)
    : counts_(std::move(initial_counts)), reinforcement_(reinforcement) {
  PC_EXPECTS(!counts_.empty());
  PC_EXPECTS(reinforcement_ >= 1);
  total_ = std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
  PC_EXPECTS(total_ > 0);
}

std::size_t PolyaUrn::step(Xoshiro256& rng) {
  const std::size_t color = draw_weighted(counts_, total_, rng);
  counts_[color] += reinforcement_;
  total_ += reinforcement_;
  return color;
}

std::uint64_t PolyaUrn::count(std::size_t color) const {
  PC_EXPECTS(color < counts_.size());
  return counts_[color];
}

double PolyaUrn::fraction(std::size_t color) const {
  PC_EXPECTS(color < counts_.size());
  return static_cast<double>(counts_[color]) / static_cast<double>(total_);
}

GeneralizedUrn::GeneralizedUrn(
    std::vector<std::uint64_t> initial_counts,
    std::vector<std::vector<std::uint64_t>> replacement)
    : counts_(std::move(initial_counts)),
      replacement_(std::move(replacement)) {
  PC_EXPECTS(!counts_.empty());
  PC_EXPECTS(replacement_.size() == counts_.size());
  for (const auto& row : replacement_) {
    PC_EXPECTS(row.size() == counts_.size());
  }
  total_ = std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
  PC_EXPECTS(total_ > 0);
}

std::size_t GeneralizedUrn::step(Xoshiro256& rng) {
  const std::size_t color = draw_weighted(counts_, total_, rng);
  const auto& additions = replacement_[color];
  for (std::size_t c = 0; c < additions.size(); ++c) {
    counts_[c] += additions[c];
    total_ += additions[c];
  }
  return color;
}

std::uint64_t GeneralizedUrn::count(std::size_t color) const {
  PC_EXPECTS(color < counts_.size());
  return counts_[color];
}

double GeneralizedUrn::fraction(std::size_t color) const {
  PC_EXPECTS(color < counts_.size());
  return static_cast<double>(counts_[color]) / static_cast<double>(total_);
}

}  // namespace plurality
