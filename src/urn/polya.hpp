#pragma once

/// \file polya.hpp
/// Pólya urn processes. The paper's §3.1 analyzes the Bit-Propagation
/// sub-phase as a Pólya urn: when a bit-less node copies from a uniform
/// bit-set node, the bit-set population gains one ball of the drawn
/// color — exactly the classic draw-and-reinforce urn, whose color
/// fractions form a martingale. The urn module lets the tests verify
/// that property directly, both on the abstract urn and against the
/// protocol's realized dynamics.

#include <cstdint>
#include <span>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "support/assert.hpp"

namespace plurality {

/// The classic Eggenberger–Pólya urn: draw a ball uniformly, return it
/// together with `reinforcement` extra balls of the same color.
class PolyaUrn {
 public:
  /// Requires at least one color, a positive total, reinforcement >= 1.
  PolyaUrn(std::vector<std::uint64_t> initial_counts,
           std::uint64_t reinforcement = 1);

  /// One draw-and-reinforce step; returns the drawn color.
  std::size_t step(Xoshiro256& rng);

  std::uint64_t count(std::size_t color) const;
  std::uint64_t total() const noexcept { return total_; }
  std::size_t num_colors() const noexcept { return counts_.size(); }

  /// Fraction of `color` among all balls.
  double fraction(std::size_t color) const;

  std::span<const std::uint64_t> counts() const noexcept { return counts_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t reinforcement_;
};

/// Generalized urn with an arbitrary replacement matrix R: drawing color
/// i returns the ball and adds R[i][j] balls of each color j. The
/// identity matrix recovers PolyaUrn with reinforcement 1; off-diagonal
/// entries model cross-color feedback (e.g. Friedman urns).
class GeneralizedUrn {
 public:
  /// Requires square matrix matching initial_counts, positive total.
  GeneralizedUrn(std::vector<std::uint64_t> initial_counts,
                 std::vector<std::vector<std::uint64_t>> replacement);

  std::size_t step(Xoshiro256& rng);

  std::uint64_t count(std::size_t color) const;
  std::uint64_t total() const noexcept { return total_; }
  std::size_t num_colors() const noexcept { return counts_.size(); }
  double fraction(std::size_t color) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::vector<std::vector<std::uint64_t>> replacement_;
  std::uint64_t total_ = 0;
};

}  // namespace plurality
