#pragma once

/// \file assert.hpp
/// Contract checking (preconditions, postconditions, invariants).
///
/// Following the C++ Core Guidelines (I.5/I.6/I.7/I.8) every public
/// function states its contract with PC_EXPECTS / PC_ENSURES. Violations
/// throw plurality::ContractViolation rather than aborting, which keeps
/// contracts testable with EXPECT_THROW and gives callers a diagnosable
/// error instead of a core dump.

#include <stdexcept>
#include <string>

namespace plurality {

/// Thrown when a PC_EXPECTS / PC_ENSURES / PC_ASSERT condition fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {

/// Builds the diagnostic message and throws ContractViolation.
[[noreturn]] void contract_failure(const char* kind, const char* condition,
                                   const char* file, int line);

}  // namespace detail
}  // namespace plurality

/// Precondition check: argument and state requirements at function entry.
#define PC_EXPECTS(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::plurality::detail::contract_failure("precondition", #cond,       \
                                            __FILE__, __LINE__);         \
  } while (false)

/// Postcondition check: guarantees at function exit.
#define PC_ENSURES(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::plurality::detail::contract_failure("postcondition", #cond,      \
                                            __FILE__, __LINE__);         \
  } while (false)

/// Internal invariant check (mid-algorithm sanity).
#define PC_ASSERT(cond)                                                   \
  do {                                                                    \
    if (!(cond))                                                          \
      ::plurality::detail::contract_failure("invariant", #cond,          \
                                            __FILE__, __LINE__);         \
  } while (false)
