#include "support/assert.hpp"

#include <string>

namespace plurality::detail {

void contract_failure(const char* kind, const char* condition,
                      const char* file, int line) {
  std::string msg;
  msg.reserve(128);
  msg += kind;
  msg += " violated: ";
  msg += condition;
  msg += " at ";
  msg += file;
  msg += ':';
  msg += std::to_string(line);
  throw ContractViolation(msg);
}

}  // namespace plurality::detail
