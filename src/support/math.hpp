#pragma once

/// \file math.hpp
/// Small numeric helpers shared across the library: guarded logarithms
/// used by the protocol schedules, integer ceil-division, and medians.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace plurality {

/// Natural logarithm with a positivity precondition.
inline double safe_ln(double x) {
  PC_EXPECTS(x > 0.0);
  return std::log(x);
}

/// ln(ln(n)) floored at 1.0.
///
/// The paper's schedule lengths divide by log log n; for the small n used
/// in tests log log n dips below 1 and would inflate (or invert) block
/// lengths, so we floor the value. Requires n > 1.
inline double ln_ln(double n) {
  PC_EXPECTS(n > 1.0);
  const double inner = std::log(n);
  if (inner <= std::exp(1.0)) return 1.0;
  return std::max(1.0, std::log(inner));
}

/// ceil(a / b) for positive integers.
inline std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  PC_EXPECTS(b > 0);
  return (a + b - 1) / b;
}

/// ceil(x) as uint64, floored at `at_least` (default 1). Used to turn the
/// schedule's real-valued Theta(...) expressions into usable tick counts.
inline std::uint64_t ceil_at_least(double x, std::uint64_t at_least = 1) {
  PC_EXPECTS(x >= 0.0);
  const auto v = static_cast<std::uint64_t>(std::ceil(x));
  return std::max(v, at_least);
}

/// Lower median of a non-empty range; reorders the input (nth_element).
/// For even sizes this returns the lower of the two middle elements,
/// matching the tie-breaking the Sync Gadget tests assume.
template <typename T>
T median_inplace(std::span<T> values) {
  PC_EXPECTS(!values.empty());
  const std::size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

/// Median without mutating the caller's data (copies).
template <typename T>
T median_copy(std::span<const T> values) {
  std::vector<T> scratch(values.begin(), values.end());
  return median_inplace(std::span<T>(scratch));
}

/// |a - b| <= tol.
inline bool approx_equal(double a, double b, double tol) {
  return std::abs(a - b) <= tol;
}

}  // namespace plurality
