#include "graph/factory.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace plurality {

namespace {

[[noreturn]] void bad_flag(const std::string& flag, const std::string& value,
                           const char* expected) {
  throw ContractViolation(flag + " expects " + expected + ", got '" + value +
                          "'");
}

std::string trimmed(double value) {
  std::string s = std::to_string(value);
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

GraphKind parse_graph_kind(const std::string& name) {
  if (name == "complete") return GraphKind::kComplete;
  if (name == "ring") return GraphKind::kRing;
  if (name == "torus") return GraphKind::kTorus;
  if (name == "er") return GraphKind::kErdosRenyi;
  if (name == "regular") return GraphKind::kRandomRegular;
  if (name == "sbm") return GraphKind::kSbm;
  throw ContractViolation(
      "--graph=" + name +
      " is not one of complete|ring|torus|er|regular|sbm");
}

void GraphSpec::validate() const {
  if (!(er_p >= 0.0 && er_p <= 1.0)) {
    bad_flag("--graph-p", trimmed(er_p),
             "a probability in [0, 1] (0 = auto 3 ln n / n)");
  }
  if (degree < 1) {
    bad_flag("--graph-degree", std::to_string(degree), "an integer >= 1");
  }
  if (blocks < 1) {
    bad_flag("--graph-blocks", std::to_string(blocks), "an integer >= 1");
  }
  if (!(p_in > 0.0 && p_in <= 1.0)) {
    bad_flag("--graph-pin", trimmed(p_in), "a probability in (0, 1]");
  }
  if (!(p_out >= 0.0 && p_out <= 1.0)) {
    bad_flag("--graph-pout", trimmed(p_out), "a probability in [0, 1]");
  }
}

std::string GraphSpec::label() const {
  switch (kind) {
    case GraphKind::kComplete: return "complete";
    case GraphKind::kRing: return "ring";
    case GraphKind::kTorus: return "torus";
    case GraphKind::kErdosRenyi:
      return er_p > 0.0 ? "er(p=" + trimmed(er_p) + ")" : "er(p=3lnN/n)";
    case GraphKind::kRandomRegular:
      return "regular(d=" + std::to_string(degree) + ")";
    case GraphKind::kSbm:
      return "sbm(b=" + std::to_string(blocks) + ",pin=" + trimmed(p_in) +
             ",pout=" + trimmed(p_out) + ")";
  }
  return "unknown";
}

AnyGraph make_graph(const GraphSpec& spec, std::uint64_t n, Xoshiro256& rng) {
  spec.validate();
  switch (spec.kind) {
    case GraphKind::kComplete:
      return CompleteGraph(n);
    case GraphKind::kRing:
      return RingGraph(n);
    case GraphKind::kTorus: {
      const auto side = static_cast<std::uint32_t>(
          std::sqrt(static_cast<double>(n)));
      if (side < 3) {
        bad_flag("--graph", "torus",
                 "n >= 9 (the torus needs a side of at least 3)");
      }
      return TorusGraph(side, side);
    }
    case GraphKind::kErdosRenyi: {
      const double p =
          spec.er_p > 0.0
              ? spec.er_p
              : 3.0 * std::log(static_cast<double>(n)) /
                    static_cast<double>(n);
      ErdosRenyiGraph g(n, p, rng);
      // Protocols sample a neighbor of *every* node; an isolated node
      // would trip an opaque assert deep inside a worker repetition,
      // so reject the build here with the flag named instead.
      if (const std::uint64_t isolated = g.num_isolated(); isolated > 0) {
        throw ContractViolation(
            "--graph-p=" + trimmed(p) + " left " +
            std::to_string(isolated) + " of " + std::to_string(n) +
            " nodes isolated; protocols sample a neighbor of every node "
            "— use p >= ~3 ln n / n (the --graph-p=0 auto default)");
      }
      return g;
    }
    case GraphKind::kRandomRegular: {
      if (spec.degree >= n) {
        bad_flag("--graph-degree", std::to_string(spec.degree),
                 "a degree below n");
      }
      if ((n * spec.degree) % 2 != 0) {
        bad_flag("--graph-degree", std::to_string(spec.degree),
                 "n * degree to be even (handshake parity)");
      }
      return RandomRegularGraph(n, spec.degree, rng);
    }
    case GraphKind::kSbm: {
      if (spec.blocks > n) {
        bad_flag("--graph-blocks", std::to_string(spec.blocks),
                 "at most n blocks");
      }
      StochasticBlockModelGraph g(n, spec.blocks, spec.p_in, spec.p_out,
                                  rng);
      // Same policy as Erdős–Rényi: isolated nodes must fail loudly at
      // build time, naming the rates that caused them.
      if (const std::uint64_t isolated = g.num_isolated(); isolated > 0) {
        throw ContractViolation(
            "--graph-pin=" + trimmed(spec.p_in) + " with --graph-pout=" +
            trimmed(spec.p_out) + " left " + std::to_string(isolated) +
            " of " + std::to_string(n) +
            " nodes isolated; protocols sample a neighbor of every node "
            "— raise the rates or lower --graph-blocks");
      }
      return g;
    }
  }
  throw ContractViolation("unreachable graph kind");
}

std::uint64_t num_nodes(const AnyGraph& graph) {
  return std::visit([](const auto& g) { return g.num_nodes(); }, graph);
}

}  // namespace plurality
