#include "graph/erdos_renyi.hpp"

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "support/assert.hpp"

namespace plurality {

ErdosRenyiGraph::ErdosRenyiGraph(std::uint64_t n, double p, Xoshiro256& rng) {
  PC_EXPECTS(n >= 2);
  PC_EXPECTS(p > 0.0 && p <= 1.0);

  std::vector<std::vector<NodeId>> lists(n);
  if (p >= 1.0) {
    for (std::uint64_t u = 0; u < n; ++u) {
      lists[u].reserve(n - 1);
      for (std::uint64_t v = 0; v < n; ++v) {
        if (v != u) lists[u].push_back(static_cast<NodeId>(v));
      }
    }
  } else {
    // Geometric skipping over the n*(n-1)/2 candidate pairs: the gap to
    // the next present edge is Geometric(p).
    const double log_q = std::log1p(-p);
    std::int64_t v = 1;
    std::int64_t w = -1;
    const auto ni = static_cast<std::int64_t>(n);
    while (v < ni) {
      const double r = uniform_open(rng);
      w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log_q));
      while (w >= v && v < ni) {
        w -= v;
        ++v;
      }
      if (v < ni) {
        lists[static_cast<std::size_t>(v)].push_back(static_cast<NodeId>(w));
        lists[static_cast<std::size_t>(w)].push_back(static_cast<NodeId>(v));
      }
    }
  }

  for (const auto& row : lists) {
    if (row.empty()) ++isolated_;
  }
  adjacency_ = AdjacencyList(lists);
}

}  // namespace plurality
