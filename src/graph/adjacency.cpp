#include "graph/adjacency.hpp"

namespace plurality {

AdjacencyList::AdjacencyList(const std::vector<std::vector<NodeId>>& lists) {
  offsets_.reserve(lists.size() + 1);
  offsets_.push_back(0);
  std::uint64_t total = 0;
  for (const auto& row : lists) {
    total += row.size();
    offsets_.push_back(total);
  }
  edges_.reserve(total);
  for (const auto& row : lists) {
    edges_.insert(edges_.end(), row.begin(), row.end());
  }
}

}  // namespace plurality
