#pragma once

/// \file csr.hpp
/// One flat, cache-friendly topology view over every factory-built
/// graph. Protocols are templates over the GraphTopology concept, so
/// each experiment historically instantiated one protocol per concrete
/// family behind a `std::visit` — six instantiations per protocol per
/// experiment, and engine code (notably the sharded workers) touching a
/// different per-family structure depending on the sweep point.
/// CsrTopology collapses that: build it once per sweep point from any
/// AnyGraph and instantiate protocols a single time over the view.
///
/// Representation:
///   - the complete graph keeps its *implicit* no-storage form (a
///     neighbor of u is a uniform draw over [0, n-1) skipping u — the
///     identical draw sequence to CompleteGraph::sample_neighbor, so
///     converting clique experiments to the view is bit-stable);
///   - adjacency-backed families (Erdős–Rényi, random-regular, SBM)
///     *borrow* their AdjacencyList's CSR arrays — no copy, the source
///     graph must outlive the view;
///   - closed-form families (ring, torus) materialize their rows once
///     into owned CSR arrays (2n / 4n entries, built off the hot path).
///
/// Sampling is one uniform draw plus one indexed load in every case;
/// the view is immutable after construction and safe to share across
/// shard worker threads.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/factory.hpp"
#include "graph/graph.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "support/assert.hpp"

namespace plurality {

class CsrTopology {
 public:
  /// The implicit complete-graph view on n >= 2 nodes (no storage).
  static CsrTopology implicit_complete(std::uint64_t n) {
    PC_EXPECTS(n >= 2);
    CsrTopology view;
    view.n_ = n;
    view.complete_ = true;
    return view;
  }

  /// A view borrowing existing CSR storage (offsets.size() == n + 1).
  /// The storage must outlive the view.
  static CsrTopology borrowed(std::span<const std::uint64_t> offsets,
                              std::span<const NodeId> edges) {
    PC_EXPECTS(!offsets.empty());
    CsrTopology view;
    view.n_ = offsets.size() - 1;
    view.offsets_ = offsets;
    view.edges_ = edges;
    return view;
  }

  /// A view owning freshly materialized CSR storage (ring/torus rows).
  static CsrTopology owned(std::vector<std::uint64_t> offsets,
                           std::vector<NodeId> edges) {
    PC_EXPECTS(!offsets.empty());
    CsrTopology view;
    view.owned_offsets_ = std::move(offsets);
    view.owned_edges_ = std::move(edges);
    view.n_ = view.owned_offsets_.size() - 1;
    view.offsets_ = view.owned_offsets_;
    view.edges_ = view.owned_edges_;
    return view;
  }

  // Move-only: a copy of the owned form would either alias the source's
  // buffers or need a deep copy nothing wants; vector moves keep their
  // heap buffer, so the spans survive a move intact.
  CsrTopology(CsrTopology&&) noexcept = default;
  CsrTopology& operator=(CsrTopology&&) noexcept = default;
  CsrTopology(const CsrTopology&) = delete;
  CsrTopology& operator=(const CsrTopology&) = delete;

  std::uint64_t num_nodes() const noexcept { return n_; }

  bool is_implicit_complete() const noexcept { return complete_; }

  std::uint64_t degree(NodeId u) const {
    if (complete_) return n_ - 1;
    PC_EXPECTS(u + 1 < offsets_.size());
    return offsets_[u + 1] - offsets_[u];
  }

  /// Uniform random neighbor of u. Requires degree(u) > 0 (the factory
  /// rejects builds with isolated nodes).
  NodeId sample_neighbor(NodeId u, Xoshiro256& rng) const {
    if (complete_) {
      // Bit-identical to CompleteGraph::sample_neighbor: a uniform draw
      // over the other n-1 nodes, skipping over u.
      PC_EXPECTS(u < n_);
      const std::uint64_t draw = uniform_below(rng, n_ - 1);
      return static_cast<NodeId>(draw < u ? draw : draw + 1);
    }
    PC_EXPECTS(u + 1 < offsets_.size());
    const std::uint64_t lo = offsets_[u];
    const std::uint64_t deg = offsets_[u + 1] - lo;
    PC_EXPECTS(deg > 0);
    return edges_[lo + uniform_below(rng, deg)];
  }

  /// The stored neighbor row of u. Contract: not available for the
  /// implicit complete view (it has no rows by design — enumerate via
  /// CompleteGraph::append_neighbors on the source graph instead).
  std::span<const NodeId> neighbors(NodeId u) const {
    PC_EXPECTS(!complete_);
    PC_EXPECTS(u + 1 < offsets_.size());
    return edges_.subspan(offsets_[u], offsets_[u + 1] - offsets_[u]);
  }

  /// The bytes of CSR structure behind this view — offsets + edge
  /// entries whether borrowed or owned, 0 for the implicit clique.
  /// Feeds the bytes_per_node accounting in every BENCH record.
  std::size_t storage_bytes() const noexcept {
    return offsets_.size() * sizeof(std::uint64_t) +
           edges_.size() * sizeof(NodeId);
  }

 private:
  CsrTopology() = default;

  std::uint64_t n_ = 0;
  bool complete_ = false;
  std::span<const std::uint64_t> offsets_;
  std::span<const NodeId> edges_;
  std::vector<std::uint64_t> owned_offsets_;
  std::vector<NodeId> owned_edges_;
};

static_assert(GraphTopology<CsrTopology>);

/// Builds the flat view of any factory-built topology. Borrows the
/// adjacency storage of Erdős–Rényi / random-regular / SBM graphs (the
/// AnyGraph must outlive the view), materializes ring/torus rows, and
/// keeps the complete graph implicit.
CsrTopology make_csr_view(const AnyGraph& graph);

/// The bytes of topology structure a factory-built graph holds: 0 for
/// the implicit complete graph, CSR offsets + edges for the
/// adjacency-backed and materialized families. The record-level
/// counterpart of CsrTopology::storage_bytes for graphs used directly.
std::size_t graph_storage_bytes(const AnyGraph& graph);

}  // namespace plurality
