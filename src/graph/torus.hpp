#pragma once

/// \file torus.hpp
/// 2D torus (width x height grid with wrap-around, 4-neighborhood).
/// Mid-expansion topology for the extension experiment (A2).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/distributions.hpp"
#include "support/assert.hpp"

namespace plurality {

class TorusGraph {
 public:
  /// Requires width >= 3 and height >= 3 so all four neighbors are
  /// distinct nodes.
  TorusGraph(std::uint32_t width, std::uint32_t height)
      : width_(width), height_(height) {
    PC_EXPECTS(width >= 3 && height >= 3);
  }

  std::uint64_t num_nodes() const noexcept {
    return std::uint64_t{width_} * height_;
  }

  std::uint64_t degree(NodeId) const noexcept { return 4; }

  std::uint32_t width() const noexcept { return width_; }
  std::uint32_t height() const noexcept { return height_; }

  NodeId sample_neighbor(NodeId u, Xoshiro256& rng) const {
    PC_EXPECTS(u < num_nodes());
    const std::uint32_t x = u % width_;
    const std::uint32_t y = u / width_;
    switch (rng.next() & 3) {
      case 0:  // east
        return node_at(x + 1 == width_ ? 0 : x + 1, y);
      case 1:  // west
        return node_at(x == 0 ? width_ - 1 : x - 1, y);
      case 2:  // south
        return node_at(x, y + 1 == height_ ? 0 : y + 1);
      default:  // north
        return node_at(x, y == 0 ? height_ - 1 : y - 1);
    }
  }

  /// Appends the four grid neighbors of u (for the placement layer).
  void append_neighbors(NodeId u, std::vector<NodeId>& out) const {
    PC_EXPECTS(u < num_nodes());
    const std::uint32_t x = u % width_;
    const std::uint32_t y = u / width_;
    out.push_back(node_at(x + 1 == width_ ? 0 : x + 1, y));
    out.push_back(node_at(x == 0 ? width_ - 1 : x - 1, y));
    out.push_back(node_at(x, y + 1 == height_ ? 0 : y + 1));
    out.push_back(node_at(x, y == 0 ? height_ - 1 : y - 1));
  }

 private:
  NodeId node_at(std::uint32_t x, std::uint32_t y) const noexcept {
    return static_cast<NodeId>(y * width_ + x);
  }

  std::uint32_t width_;
  std::uint32_t height_;
};

}  // namespace plurality
