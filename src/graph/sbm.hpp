#pragma once

/// \file sbm.hpp
/// Stochastic block model G(n; B, p_in, p_out): n nodes split into B
/// contiguous, as-equal-as-possible blocks; each within-block pair is
/// an edge with probability p_in, each cross-block pair with p_out.
/// With p_in >> p_out this is the canonical community-structured
/// topology: dense local mixing separated by sparse, low-conductance
/// cuts — exactly the regime where *where* an opinion starts matters
/// as much as *how many* nodes hold it (Becchetti et al.'s
/// monochromatic-distance analysis, arXiv:1407.2565). Generated with
/// the same geometric edge skipping as Erdős–Rényi, in expected
/// O(n + m) time.
///
/// Blocks are contiguous node ranges, so `block_of(u)` is one indexed
/// load and the placement generators (opinion/placement.hpp) can treat
/// `communities()` as the ground-truth partition.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/adjacency.hpp"
#include "graph/graph.hpp"
#include "rng/xoshiro256.hpp"

namespace plurality {

class StochasticBlockModelGraph {
 public:
  /// Samples the model. Requires n >= 2, 1 <= blocks <= n,
  /// p_in in (0, 1], and p_out in [0, 1].
  StochasticBlockModelGraph(std::uint64_t n, std::uint32_t blocks,
                            double p_in, double p_out, Xoshiro256& rng);

  std::uint64_t num_nodes() const noexcept { return adjacency_.num_nodes(); }
  std::uint64_t num_edges() const noexcept { return adjacency_.num_edges(); }
  std::uint64_t degree(NodeId u) const { return adjacency_.degree(u); }

  /// Uniform random neighbor. Requires degree(u) > 0.
  NodeId sample_neighbor(NodeId u, Xoshiro256& rng) const {
    return adjacency_.sample_neighbor(u, rng);
  }

  std::span<const NodeId> neighbors(NodeId u) const {
    return adjacency_.neighbors(u);
  }

  /// The backing CSR storage (for graph/csr.hpp's borrowed flat view).
  const AdjacencyList& adjacency() const noexcept { return adjacency_; }

  std::uint32_t num_blocks() const noexcept {
    return static_cast<std::uint32_t>(communities_.size());
  }

  /// The block holding node u.
  std::uint32_t block_of(NodeId u) const {
    PC_EXPECTS(u < block_of_.size());
    return block_of_[u];
  }

  /// The ground-truth partition, one member list per block (members are
  /// contiguous, ascending node ids).
  const std::vector<std::vector<NodeId>>& communities() const noexcept {
    return communities_;
  }

  /// Edges with both endpoints in one block / spanning two blocks.
  std::uint64_t num_within_edges() const noexcept { return within_edges_; }
  std::uint64_t num_between_edges() const noexcept { return between_edges_; }

  /// Vertices that drew no edge at all (callers that need every node to
  /// have a neighbor should check this is zero, or keep p_in above the
  /// per-block connectivity threshold).
  std::uint64_t num_isolated() const noexcept { return isolated_; }

 private:
  AdjacencyList adjacency_;
  std::vector<std::vector<NodeId>> communities_;
  std::vector<std::uint32_t> block_of_;
  std::uint64_t within_edges_ = 0;
  std::uint64_t between_edges_ = 0;
  std::uint64_t isolated_ = 0;
};

}  // namespace plurality
