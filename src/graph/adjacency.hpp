#pragma once

/// \file adjacency.hpp
/// Compressed sparse adjacency storage shared by the random-graph
/// topologies (Erdős–Rényi, random regular). Rows are contiguous, so
/// neighbor sampling is one uniform draw plus one indexed load.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "rng/distributions.hpp"
#include "support/assert.hpp"

namespace plurality {

class AdjacencyList {
 public:
  AdjacencyList() = default;

  /// Builds CSR storage from per-node neighbor lists.
  explicit AdjacencyList(const std::vector<std::vector<NodeId>>& lists);

  std::uint64_t num_nodes() const noexcept { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  std::uint64_t degree(NodeId u) const {
    PC_EXPECTS(u + 1 < offsets_.size());
    return offsets_[u + 1] - offsets_[u];
  }

  std::span<const NodeId> neighbors(NodeId u) const {
    PC_EXPECTS(u + 1 < offsets_.size());
    return {edges_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// Uniform random neighbor. Requires degree(u) > 0.
  NodeId sample_neighbor(NodeId u, Xoshiro256& rng) const {
    const auto row = neighbors(u);
    PC_EXPECTS(!row.empty());
    return row[uniform_below(rng, row.size())];
  }

  std::uint64_t num_edges() const noexcept { return edges_.size() / 2; }

  /// The raw CSR arrays (n+1 row offsets, concatenated neighbor rows),
  /// for components that want one flat view over every adjacency-backed
  /// family (graph/csr.hpp) without re-materializing the storage. The
  /// spans borrow this list's buffers and are invalidated with it.
  std::span<const std::uint64_t> row_offsets() const noexcept {
    return offsets_;
  }
  std::span<const NodeId> flat_edges() const noexcept { return edges_; }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<NodeId> edges_;
};

}  // namespace plurality
