#pragma once

/// \file graph.hpp
/// The Graph concept every protocol is generic over, plus the shared
/// node-id vocabulary. The paper's protocols only ever *sample a uniform
/// random neighbor*, so that single operation (plus sizes/degrees) is the
/// whole interface — topologies never enumerate edges on the hot path.

#include <concepts>
#include <cstdint>

#include "rng/xoshiro256.hpp"

namespace plurality {

/// Node index. 32 bits covers every laptop-scale population (n < 2^32)
/// and halves the memory traffic of the per-node state vectors.
using NodeId = std::uint32_t;

/// Opinion / color index, 0-based; color 0 is C1 in the paper's ordering
/// whenever a workload generator produced the assignment.
using ColorId = std::uint32_t;

/// A topology usable by the protocols: knows its size and can sample a
/// uniform random neighbor of a node.
template <typename G>
concept GraphTopology = requires(const G g, NodeId u, Xoshiro256& rng) {
  { g.num_nodes() } -> std::convertible_to<std::uint64_t>;
  { g.sample_neighbor(u, rng) } -> std::convertible_to<NodeId>;
  { g.degree(u) } -> std::convertible_to<std::uint64_t>;
};

}  // namespace plurality
