#pragma once

/// \file factory.hpp
/// The graph factory: every sampled topology behind one registry-
/// selectable axis. A GraphSpec is the parsed, validated form of the
/// shared `--graph=` / `--graph-p=` / `--graph-degree=` /
/// `--graph-blocks=` / `--graph-pin=` / `--graph-pout=` flags;
/// `make_graph(spec, n, rng)` builds the topology as an AnyGraph
/// variant so experiments stay generic over the GraphTopology concept
/// (protocols are templates — one `std::visit` at the sweep-point level
/// instantiates them per concrete topology, and the tick path keeps
/// zero virtual dispatch).
///
/// Validation policy (matching Args' numeric validation): unknown
/// `--graph=` names and out-of-range parameters throw ContractViolation
/// messages that name the flag, never silently fall back.

#include <cstdint>
#include <string>
#include <variant>

#include "graph/complete.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"
#include "graph/random_regular.hpp"
#include "graph/ring.hpp"
#include "graph/sbm.hpp"
#include "graph/torus.hpp"
#include "rng/xoshiro256.hpp"

namespace plurality {

/// The registered topology families, as selected by `--graph=`.
enum class GraphKind : std::uint8_t {
  kComplete,       ///< K_n, the paper's topology
  kRing,           ///< cycle C_n (extreme low expansion)
  kTorus,          ///< 2D torus on floor(sqrt n)^2 nodes
  kErdosRenyi,     ///< G(n, p) (sparse expander above ln n / n)
  kRandomRegular,  ///< random d-regular (configuration model)
  kSbm,            ///< stochastic block model (community structure)
};

inline const char* graph_kind_name(GraphKind kind) noexcept {
  switch (kind) {
    case GraphKind::kComplete: return "complete";
    case GraphKind::kRing: return "ring";
    case GraphKind::kTorus: return "torus";
    case GraphKind::kErdosRenyi: return "er";
    case GraphKind::kRandomRegular: return "regular";
    case GraphKind::kSbm: return "sbm";
  }
  return "unknown";
}

/// Parses a `--graph=` value; throws ContractViolation (naming the
/// offending text) on anything unrecognized.
GraphKind parse_graph_kind(const std::string& name);

/// The resolved `--graph*` flag family: which topology to build and the
/// per-family parameters. A value type so it can be validated once on
/// the main thread and then used to build graphs anywhere (including
/// worker lambdas, where a throw would terminate instead of reporting).
struct GraphSpec {
  GraphKind kind = GraphKind::kComplete;
  double er_p = 0.0;          ///< --graph-p; 0 = auto 3 ln(n) / n
  std::uint32_t degree = 8;   ///< --graph-degree (random regular)
  std::uint32_t blocks = 4;   ///< --graph-blocks (sbm)
  double p_in = 0.3;          ///< --graph-pin (sbm within-block rate)
  double p_out = 0.01;        ///< --graph-pout (sbm cross-block rate)

  /// Range checks with messages naming the flag; throws
  /// ContractViolation. n-dependent feasibility (e.g. degree < n,
  /// handshake parity) is checked by make_graph, which knows n.
  void validate() const;

  /// Human-readable label for tables: "complete", "er(p=3lnN/n)",
  /// "sbm(b=4,pin=0.3,pout=0.01)", ...
  std::string label() const;
};

/// Every topology the factory can build. Protocols are generic over the
/// GraphTopology concept, so one std::visit per sweep point dispatches
/// to the concrete type with no per-tick indirection.
using AnyGraph = std::variant<CompleteGraph, RingGraph, TorusGraph,
                              ErdosRenyiGraph, RandomRegularGraph,
                              StochasticBlockModelGraph>;

/// Builds the topology selected by `spec` on (about) n nodes; the torus
/// rounds n down to floor(sqrt n)^2, everything else uses n exactly —
/// read the node count back via num_nodes(). Random families draw their
/// edges from `rng`. Infeasible (spec, n) combinations throw
/// ContractViolation naming the offending flag — including in-range
/// rates that happen to leave a node isolated (protocols sample a
/// neighbor of every node, so such a build could only crash later).
AnyGraph make_graph(const GraphSpec& spec, std::uint64_t n, Xoshiro256& rng);

/// The realized node count of any factory-built topology.
std::uint64_t num_nodes(const AnyGraph& graph);

}  // namespace plurality
