#pragma once

/// \file random_regular.hpp
/// Random d-regular multigraph via the configuration model (stub
/// matching). Self-loops and duplicate edges are resampled a bounded
/// number of times; any survivors are kept as parallel stubs, which
/// keeps sampling well-defined (a neighbor is drawn per-stub) at the
/// cost of a vanishing deviation from simplicity — standard practice
/// for simulation workloads.

#include <cstdint>

#include "graph/adjacency.hpp"
#include "graph/graph.hpp"
#include "rng/xoshiro256.hpp"

namespace plurality {

class RandomRegularGraph {
 public:
  /// Samples a d-regular multigraph on n nodes. Requires n >= 2,
  /// d >= 1, d < n, and n*d even (handshake parity).
  RandomRegularGraph(std::uint64_t n, std::uint32_t d, Xoshiro256& rng);

  std::uint64_t num_nodes() const noexcept { return adjacency_.num_nodes(); }
  std::uint64_t degree(NodeId u) const { return adjacency_.degree(u); }

  /// Stubs that remained self-loops/duplicates after retries (0 almost
  /// always for d << n).
  std::uint64_t defects() const noexcept { return defects_; }

  NodeId sample_neighbor(NodeId u, Xoshiro256& rng) const {
    return adjacency_.sample_neighbor(u, rng);
  }

  std::span<const NodeId> neighbors(NodeId u) const {
    return adjacency_.neighbors(u);
  }

  /// The backing CSR storage (for graph/csr.hpp's borrowed flat view).
  const AdjacencyList& adjacency() const noexcept { return adjacency_; }

 private:
  AdjacencyList adjacency_;
  std::uint64_t defects_ = 0;
};

}  // namespace plurality
