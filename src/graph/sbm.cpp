#include "graph/sbm.hpp"

#include <cmath>

#include "rng/distributions.hpp"
#include "support/assert.hpp"

namespace plurality {

namespace {

/// Calls fn(t) for every selected index t in [0, count): each index is
/// included independently with probability p, visited via geometric
/// gap skipping (Batagelj & Brandes 2005) so the cost is proportional
/// to the number of selected indices, not to count.
template <typename Fn>
void sample_indices(std::uint64_t count, double p, Xoshiro256& rng, Fn fn) {
  if (count == 0 || p <= 0.0) return;
  if (p >= 1.0) {
    for (std::uint64_t t = 0; t < count; ++t) fn(t);
    return;
  }
  const double log_q = std::log1p(-p);
  double t = -1.0;
  const auto limit = static_cast<double>(count);
  while (true) {
    const double r = uniform_open(rng);
    t += 1.0 + std::floor(std::log(r) / log_q);
    if (t >= limit) return;
    fn(static_cast<std::uint64_t>(t));
  }
}

}  // namespace

StochasticBlockModelGraph::StochasticBlockModelGraph(std::uint64_t n,
                                                     std::uint32_t blocks,
                                                     double p_in, double p_out,
                                                     Xoshiro256& rng) {
  PC_EXPECTS(n >= 2);
  PC_EXPECTS(blocks >= 1 && blocks <= n);
  PC_EXPECTS(p_in > 0.0 && p_in <= 1.0);
  PC_EXPECTS(p_out >= 0.0 && p_out <= 1.0);

  // Contiguous as-equal-as-possible blocks: the first n % B blocks get
  // one extra node, mirroring assign_equal's rounding discipline.
  std::vector<NodeId> starts(blocks + 1, 0);
  {
    const std::uint64_t base = n / blocks;
    const std::uint64_t extra = n % blocks;
    NodeId next = 0;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      starts[b] = next;
      next += static_cast<NodeId>(base + (b < extra ? 1 : 0));
    }
    starts[blocks] = next;
  }
  communities_.resize(blocks);
  block_of_.resize(n);
  for (std::uint32_t b = 0; b < blocks; ++b) {
    communities_[b].reserve(starts[b + 1] - starts[b]);
    for (NodeId u = starts[b]; u < starts[b + 1]; ++u) {
      communities_[b].push_back(u);
      block_of_[u] = b;
    }
  }

  std::vector<std::vector<NodeId>> lists(n);
  const auto add_edge = [&](NodeId u, NodeId v) {
    lists[u].push_back(v);
    lists[v].push_back(u);
  };

  // Within-block pairs: index t over the s*(s-1)/2 unordered pairs of
  // block b, decoded with the same triangular sweep Erdős–Rényi uses.
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const std::uint64_t s = starts[b + 1] - starts[b];
    if (s < 2) continue;
    const NodeId base = starts[b];
    std::uint64_t v = 1;       // local row of the triangular index sweep
    std::uint64_t row_start = 0;  // first linear index of row v
    sample_indices(s * (s - 1) / 2, p_in, rng, [&](std::uint64_t t) {
      while (t >= row_start + v) {
        row_start += v;
        ++v;
      }
      const std::uint64_t w = t - row_start;
      add_edge(base + static_cast<NodeId>(v), base + static_cast<NodeId>(w));
      ++within_edges_;
    });
  }

  // Cross-block pairs: each ordered block pair (a < b) is an s_a x s_b
  // grid; index t decodes as (t / s_b, t % s_b).
  for (std::uint32_t a = 0; a + 1 < blocks; ++a) {
    const std::uint64_t sa = starts[a + 1] - starts[a];
    for (std::uint32_t b = a + 1; b < blocks; ++b) {
      const std::uint64_t sb = starts[b + 1] - starts[b];
      sample_indices(sa * sb, p_out, rng, [&](std::uint64_t t) {
        add_edge(starts[a] + static_cast<NodeId>(t / sb),
                 starts[b] + static_cast<NodeId>(t % sb));
        ++between_edges_;
      });
    }
  }

  for (const auto& row : lists) {
    if (row.empty()) ++isolated_;
  }
  adjacency_ = AdjacencyList(lists);
}

}  // namespace plurality
