#include "graph/random_regular.hpp"

#include <unordered_set>
#include <vector>

#include "rng/distributions.hpp"
#include "support/assert.hpp"

namespace plurality {

RandomRegularGraph::RandomRegularGraph(std::uint64_t n, std::uint32_t d,
                                       Xoshiro256& rng) {
  PC_EXPECTS(n >= 2);
  PC_EXPECTS(d >= 1);
  PC_EXPECTS(d < n);
  PC_EXPECTS((n * d) % 2 == 0);

  // One entry per stub; a uniform random perfect matching of the stubs is
  // a Fisher-Yates shuffle paired off in order.
  std::vector<NodeId> stubs;
  stubs.reserve(n * d);
  for (std::uint64_t u = 0; u < n; ++u) {
    for (std::uint32_t j = 0; j < d; ++j)
      stubs.push_back(static_cast<NodeId>(u));
  }

  constexpr int kMaxAttempts = 50;
  std::vector<std::vector<NodeId>> lists;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    for (std::size_t i = stubs.size() - 1; i > 0; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_below(rng, i + 1));
      std::swap(stubs[i], stubs[j]);
    }
    lists.assign(n, {});
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(stubs.size());
    std::uint64_t bad = 0;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const NodeId a = stubs[i];
      const NodeId b = stubs[i + 1];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
      if (a == b || !seen.insert(key).second) ++bad;
      lists[a].push_back(b);
      lists[b].push_back(a);
    }
    if (bad == 0 || attempt == kMaxAttempts - 1) {
      defects_ = bad;
      break;
    }
  }
  adjacency_ = AdjacencyList(lists);
}

}  // namespace plurality
