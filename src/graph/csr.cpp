#include "graph/csr.hpp"

#include <utility>
#include <variant>

namespace plurality {

namespace {

/// Materializes the rows of a closed-form family (ring, torus) into
/// owned CSR arrays via its append_neighbors enumeration.
template <typename G>
CsrTopology materialize(const G& graph) {
  const std::uint64_t n = graph.num_nodes();
  std::vector<std::uint64_t> offsets;
  offsets.reserve(n + 1);
  std::vector<NodeId> edges;
  edges.reserve(n * graph.degree(0));
  offsets.push_back(0);
  for (std::uint64_t u = 0; u < n; ++u) {
    graph.append_neighbors(static_cast<NodeId>(u), edges);
    offsets.push_back(edges.size());
  }
  return CsrTopology::owned(std::move(offsets), std::move(edges));
}

CsrTopology borrow(const AdjacencyList& adjacency) {
  return CsrTopology::borrowed(adjacency.row_offsets(),
                               adjacency.flat_edges());
}

}  // namespace

CsrTopology make_csr_view(const AnyGraph& graph) {
  return std::visit(
      [](const auto& g) -> CsrTopology {
        using G = std::decay_t<decltype(g)>;
        if constexpr (std::is_same_v<G, CompleteGraph>) {
          return CsrTopology::implicit_complete(g.num_nodes());
        } else if constexpr (std::is_same_v<G, RingGraph> ||
                             std::is_same_v<G, TorusGraph>) {
          return materialize(g);
        } else {
          return borrow(g.adjacency());
        }
      },
      graph);
}

std::size_t graph_storage_bytes(const AnyGraph& graph) {
  return std::visit(
      [](const auto& g) -> std::size_t {
        using G = std::decay_t<decltype(g)>;
        if constexpr (std::is_same_v<G, CompleteGraph>) {
          return 0;
        } else if constexpr (std::is_same_v<G, RingGraph> ||
                             std::is_same_v<G, TorusGraph>) {
          // Closed-form rows: what make_csr_view would materialize
          // (degree d per node plus the offset column), whether or not
          // a view was actually built — the resident cost of running
          // these families through the flat view.
          const std::uint64_t n = g.num_nodes();
          return (n + 1) * sizeof(std::uint64_t) +
                 n * g.degree(0) * sizeof(NodeId);
        } else {
          const AdjacencyList& adjacency = g.adjacency();
          return adjacency.row_offsets().size() * sizeof(std::uint64_t) +
                 adjacency.flat_edges().size() * sizeof(NodeId);
        }
      },
      graph);
}

}  // namespace plurality
