#pragma once

/// \file complete.hpp
/// The complete graph K_n — the paper's topology. Neighbor sampling is
/// O(1) with no stored edges: draw from [0, n-1) and skip over self.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/distributions.hpp"
#include "support/assert.hpp"

namespace plurality {

class CompleteGraph {
 public:
  /// Requires n >= 2 (a single node has no neighbor to sample).
  explicit CompleteGraph(std::uint64_t n) : n_(n) { PC_EXPECTS(n >= 2); }

  std::uint64_t num_nodes() const noexcept { return n_; }

  std::uint64_t degree(NodeId) const noexcept { return n_ - 1; }

  /// Uniform neighbor of u, i.e. a uniform node != u.
  NodeId sample_neighbor(NodeId u, Xoshiro256& rng) const {
    PC_EXPECTS(u < n_);
    const std::uint64_t draw = uniform_below(rng, n_ - 1);
    return static_cast<NodeId>(draw < u ? draw : draw + 1);
  }

  /// Appends all n-1 neighbors of u (everyone else). O(n) — for the
  /// placement generators, which enumerate off the hot path.
  void append_neighbors(NodeId u, std::vector<NodeId>& out) const {
    PC_EXPECTS(u < n_);
    for (std::uint64_t v = 0; v < n_; ++v) {
      if (v != u) out.push_back(static_cast<NodeId>(v));
    }
  }

 private:
  std::uint64_t n_;
};

}  // namespace plurality
