#pragma once

/// \file ring.hpp
/// Cycle graph C_n: node u's neighbors are u-1 and u+1 (mod n). Used by
/// the topology-extension experiment (A2) as the extreme low-expansion
/// contrast to the clique.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/distributions.hpp"
#include "support/assert.hpp"

namespace plurality {

class RingGraph {
 public:
  /// Requires n >= 3 so that the two neighbors are distinct.
  explicit RingGraph(std::uint64_t n) : n_(n) { PC_EXPECTS(n >= 3); }

  std::uint64_t num_nodes() const noexcept { return n_; }

  std::uint64_t degree(NodeId) const noexcept { return 2; }

  NodeId sample_neighbor(NodeId u, Xoshiro256& rng) const {
    PC_EXPECTS(u < n_);
    const bool forward = (rng.next() & 1) != 0;
    if (forward) {
      const std::uint64_t v = u + 1;
      return static_cast<NodeId>(v == n_ ? 0 : v);
    }
    return static_cast<NodeId>(u == 0 ? n_ - 1 : u - 1);
  }

  /// Appends the two ring neighbors of u (for the placement layer).
  void append_neighbors(NodeId u, std::vector<NodeId>& out) const {
    PC_EXPECTS(u < n_);
    out.push_back(static_cast<NodeId>(u == 0 ? n_ - 1 : u - 1));
    const std::uint64_t v = u + 1;
    out.push_back(static_cast<NodeId>(v == n_ ? 0 : v));
  }

 private:
  std::uint64_t n_;
};

}  // namespace plurality
