#pragma once

/// \file erdos_renyi.hpp
/// G(n, p) random graph, generated with geometric edge skipping
/// (Batagelj & Brandes 2005) in expected O(n + m) time. Above the
/// connectivity threshold p ~ ln n / n it behaves like a sparse
/// expander, which experiment A2 contrasts against the clique.

#include <cstdint>

#include "graph/adjacency.hpp"
#include "graph/graph.hpp"
#include "rng/xoshiro256.hpp"

namespace plurality {

class ErdosRenyiGraph {
 public:
  /// Samples G(n, p). Requires n >= 2 and p in (0, 1].
  ErdosRenyiGraph(std::uint64_t n, double p, Xoshiro256& rng);

  std::uint64_t num_nodes() const noexcept { return adjacency_.num_nodes(); }
  std::uint64_t num_edges() const noexcept { return adjacency_.num_edges(); }
  std::uint64_t degree(NodeId u) const { return adjacency_.degree(u); }

  /// Number of isolated vertices (callers that need every node to have a
  /// neighbor should check this is zero, or choose p >= c ln n / n).
  std::uint64_t num_isolated() const noexcept { return isolated_; }

  /// Uniform random neighbor. Requires degree(u) > 0.
  NodeId sample_neighbor(NodeId u, Xoshiro256& rng) const {
    return adjacency_.sample_neighbor(u, rng);
  }

  std::span<const NodeId> neighbors(NodeId u) const {
    return adjacency_.neighbors(u);
  }

  /// The backing CSR storage (for graph/csr.hpp's borrowed flat view).
  const AdjacencyList& adjacency() const noexcept { return adjacency_; }

 private:
  AdjacencyList adjacency_;
  std::uint64_t isolated_ = 0;
};

}  // namespace plurality
