// Cross-topology integration tests: the protocols are generic over
// GraphTopology, and on dense expanders (Erdős–Rényi above the
// connectivity threshold, random d-regular) neighbor sampling
// approximates uniform sampling well enough that the clique results
// carry over. Low-expansion graphs (ring) are exercised as the
// negative control.

#include <gtest/gtest.h>

#include <cmath>

#include "core/async_one_extra_bit.hpp"
#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/random_regular.hpp"
#include "graph/ring.hpp"
#include "graph/torus.hpp"
#include "opinion/assignment.hpp"
#include "rng/seed.hpp"
#include "sim/sequential_engine.hpp"
#include "sim/sync_driver.hpp"

namespace plurality {
namespace {

TEST(Topology, TwoChoicesConvergesOnDenseErdosRenyi) {
  const std::uint64_t n = 2048;
  Xoshiro256 rng(1);
  const double p = 5.0 * std::log(static_cast<double>(n)) /
                   static_cast<double>(n);
  const ErdosRenyiGraph g(n, p, rng);
  ASSERT_EQ(g.num_isolated(), 0u);
  TwoChoicesAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
  const auto result = run_sequential(proto, rng, 1e4);
  ASSERT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
}

TEST(Topology, TwoChoicesConvergesOnRandomRegular) {
  const std::uint64_t n = 2048;
  Xoshiro256 rng(2);
  const RandomRegularGraph g(n, 16, rng);
  TwoChoicesAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
  const auto result = run_sequential(proto, rng, 1e4);
  ASSERT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
}

TEST(Topology, AsyncOneExtraBitWorksOnDenseExpander) {
  // The phased protocol only needs near-uniform neighbor samples; a
  // dense ER graph provides them. (Sparser graphs skew the two-choices
  // coincidence probabilities and void the analysis.)
  const std::uint64_t n = 2048;
  Xoshiro256 rng(3);
  const double p = 0.05;  // mean degree ~ 100
  const ErdosRenyiGraph g(n, p, rng);
  ASSERT_EQ(g.num_isolated(), 0u);
  auto proto = AsyncOneExtraBit<ErdosRenyiGraph>::make(
      g, assign_plurality_bias(n, 4, n / 4, rng));
  const auto result = run_sequential(proto, rng, 1e5);
  ASSERT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
}

TEST(Topology, ExpanderTimeTracksCliqueTime) {
  const std::uint64_t n = 2048;
  const SeedSequence seeds(4);
  auto mean_time = [&](auto make_graph) {
    double total = 0.0;
    for (std::uint64_t rep = 0; rep < 5; ++rep) {
      Xoshiro256 rng = seeds.make_rng(rep);
      const auto& g = make_graph();
      TwoChoicesAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
      const auto result = run_sequential(proto, rng, 1e4);
      EXPECT_TRUE(result.consensus);
      total += result.time;
    }
    return total / 5.0;
  };
  const CompleteGraph clique(n);
  Xoshiro256 build_rng(5);
  const RandomRegularGraph regular(n, 12, build_rng);
  const double clique_time =
      mean_time([&]() -> const CompleteGraph& { return clique; });
  const double regular_time =
      mean_time([&]() -> const RandomRegularGraph& { return regular; });
  EXPECT_LT(regular_time, 4.0 * clique_time);
  EXPECT_LT(clique_time, 4.0 * regular_time);
}

TEST(Topology, RingIsDramaticallySlowerThanClique) {
  const std::uint64_t n = 512;
  Xoshiro256 rng(6);
  const RingGraph ring(n);
  const CompleteGraph clique(n);

  TwoChoicesAsync on_clique(clique, assign_two_colors(n, (n * 3) / 4, rng));
  const auto clique_result = run_sequential(on_clique, rng, 1e4);
  ASSERT_TRUE(clique_result.consensus);

  TwoChoicesAsync on_ring(ring, assign_two_colors(n, (n * 3) / 4, rng));
  const auto ring_result =
      run_sequential(on_ring, rng, 20.0 * clique_result.time);
  // Within 20x the clique's time the ring should still be divided.
  EXPECT_FALSE(ring_result.consensus);
}

TEST(Topology, TorusVoterKeepsSupportInvariant) {
  const TorusGraph g(16, 16);
  Xoshiro256 rng(7);
  VoterAsync proto(g, assign_equal(256, 4, rng));
  run_sequential(proto, rng, 50.0);
  std::uint64_t sum = 0;
  for (const auto s : proto.table().supports()) sum += s;
  EXPECT_EQ(sum, 256u);
}

TEST(Topology, SyncProtocolsRunOnEveryTopology) {
  Xoshiro256 rng(8);
  const std::uint64_t n = 256;
  auto check = [&](const auto& g) {
    TwoChoicesSync tc(g, assign_two_colors(n, (n * 7) / 8, rng));
    const auto result = run_sync(tc, rng, 4000);
    EXPECT_TRUE(result.consensus);
    ThreeMajoritySync tm(g, assign_two_colors(n, (n * 7) / 8, rng));
    EXPECT_NO_THROW(run_sync(tm, rng, 50));
  };
  check(CompleteGraph(n));
  check(TorusGraph(16, 16));
  Xoshiro256 build_rng(9);
  check(RandomRegularGraph(n, 8, build_rng));
}

}  // namespace
}  // namespace plurality
