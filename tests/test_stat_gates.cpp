// Tests OF the shared statistical gates (tests/stat_gates.hpp): the
// KS statistic's exact values on hand-built samples, the critical-value
// bracketing that justifies kKsGate = 0.45, and — the part that keeps
// the gates honest — measured operating characteristics: known-same
// distributions pass essentially always (false-positive rate at the
// documented alpha ~ 0.001), and shifted distributions fail at the
// documented power. Everything is seeded, so the measured rates are
// fixed numbers, not flaky estimates.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/seed.hpp"
#include "stat_gates.hpp"
#include "stats/quantiles.hpp"

namespace plurality {
namespace {

using stat_gates::kKsGate;
using stat_gates::kMeanZGate;
using stat_gates::ks_critical;
using stat_gates::ks_statistic;
using stat_gates::mean_tolerance;
using stat_gates::mean_z;

std::vector<double> exp_sample(Xoshiro256& rng, std::size_t n,
                               double rate, double shift = 0.0) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(shift + exponential(rng, rate));
  }
  return xs;
}

TEST(StatGates, KsStatisticHandlesTiesAndDisjointSupports) {
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 1.0, 2.0}, {1.0, 2.0, 2.0}),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 2.0}, {5.0, 6.0}), 1.0);
  // Symmetric in its arguments.
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 4.0}, {2.0, 3.0}),
                   ks_statistic({2.0, 3.0}, {1.0, 4.0}));
}

TEST(StatGates, KsGateSitsAtTheDocumentedCriticalValue) {
  // kKsGate = 0.45 is the alpha ~ 0.001 critical value for the sample
  // sizes the equivalence suites use (30v30 to 40v40): above the exact
  // 40v40 value, below the 30v30 one — i.e. conservative for 30v30 and
  // marginally tighter than 0.001 at 40v40.
  EXPECT_GT(kKsGate, ks_critical(40, 40, 0.001));
  EXPECT_LT(kKsGate, ks_critical(30, 30, 0.001));
  // Monotone in alpha and in the sample sizes.
  EXPECT_GT(ks_critical(40, 40, 0.001), ks_critical(40, 40, 0.05));
  EXPECT_GT(ks_critical(30, 30, 0.001), ks_critical(120, 120, 0.001));
}

TEST(StatGates, SameDistributionPassesTheKsGate) {
  // 200 seeded trials of 40-vs-40 draws from the same Exp(1): at
  // alpha ~ 0.001 the expected number of false rejections is ~0.2, so
  // demand at most 1.
  const SeedSequence seeds(4242);
  int rejections = 0;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    Xoshiro256 rng = seeds.make_rng(trial);
    const auto a = exp_sample(rng, 40, 1.0);
    const auto b = exp_sample(rng, 40, 1.0);
    rejections += ks_statistic(a, b) >= kKsGate;
  }
  EXPECT_LE(rejections, 1);
}

TEST(StatGates, ShiftedDistributionFailsTheKsGateAtDocumentedPower) {
  // Exp(1) vs 1.0 + Exp(1): the population KS distance is
  // F(1) = 1 - e^-1 ~ 0.63, well past the 0.45 gate, so 40-vs-40
  // samples must reject nearly always. Documented power: >= 95%
  // (measured over 200 seeded trials; the seeded run is a fixed
  // number, the bound leaves margin for retuning sample sizes).
  const SeedSequence seeds(8484);
  int rejections = 0;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    Xoshiro256 rng = seeds.make_rng(trial);
    const auto a = exp_sample(rng, 40, 1.0);
    const auto b = exp_sample(rng, 40, 1.0, /*shift=*/1.0);
    rejections += ks_statistic(a, b) >= kKsGate;
  }
  EXPECT_GE(rejections, 190);
}

TEST(StatGates, SameMeanPassesTheMomentGates) {
  // 200 seeded trials of 40-vs-40 same-distribution draws: the CI-sum
  // tolerance (with its quantization slack) should essentially never
  // reject, and the z-score form stays under kMeanZGate = 4 in all but
  // at most ~6e-5 of trials — demand zero across 200.
  const SeedSequence seeds(1717);
  int near_failures = 0;
  int z_failures = 0;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    Xoshiro256 rng = seeds.make_rng(trial);
    const auto a = summarize(exp_sample(rng, 40, 1.0));
    const auto b = summarize(exp_sample(rng, 40, 1.0));
    near_failures += std::abs(a.mean - b.mean) > mean_tolerance(a, b);
    z_failures += mean_z(a, b) >= kMeanZGate;
  }
  EXPECT_EQ(near_failures, 0);
  EXPECT_EQ(z_failures, 0);
}

TEST(StatGates, ShiftedMeanFailsTheZGateAtDocumentedPower) {
  // Exp(1) vs 2.0 + Exp(1): the mean gap is ~8.9 pooled standard
  // errors at n=40 (se ~ sqrt(2)/sqrt(40)), so the z gate at 4 must
  // reject nearly always. Documented power: >= 95% over 200 seeded
  // trials. (mean_tolerance adds a 1.0 absolute slack for grid
  // quantization — by design it only flags shifts beyond that slack,
  // which a 2.0 shift is.)
  const SeedSequence seeds(2626);
  int z_rejections = 0;
  int near_rejections = 0;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    Xoshiro256 rng = seeds.make_rng(trial);
    const auto a = summarize(exp_sample(rng, 40, 1.0));
    const auto b = summarize(exp_sample(rng, 40, 1.0, /*shift=*/2.0));
    z_rejections += mean_z(a, b) >= kMeanZGate;
    near_rejections += std::abs(a.mean - b.mean) > mean_tolerance(a, b);
  }
  EXPECT_GE(z_rejections, 190);
  EXPECT_GE(near_rejections, 190);
}

TEST(StatGates, MeanZEdgeCases) {
  const Summary equal_a = summarize(std::vector<double>{1.0, 1.0, 1.0});
  const Summary equal_b = summarize(std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_EQ(mean_z(equal_a, equal_b), 0.0);
  // Zero spread on both sides with different means: infinite z.
  const Summary other = summarize(std::vector<double>{2.0, 2.0, 2.0});
  EXPECT_TRUE(std::isinf(mean_z(equal_a, other)));
}

TEST(StatGates, MomentsMatchHandComputation) {
  const auto m = stat_gates::moments({1.0, 2.0, 3.0, 6.0});
  EXPECT_DOUBLE_EQ(m.mean, 3.0);
  EXPECT_DOUBLE_EQ(m.variance, (4.0 + 1.0 + 0.0 + 9.0) / 4.0);
  EXPECT_DOUBLE_EQ(m.min, 1.0);
}

}  // namespace
}  // namespace plurality
