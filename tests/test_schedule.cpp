// Unit tests for the async working-time schedule (§3.1 program layout).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/schedule.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

using Op = AsyncSchedule::Op;

TEST(Schedule, PhaseLayoutExactOffsets) {
  const AsyncSchedule s(1 << 16, 8);
  const std::uint64_t d = s.delta();
  const std::uint64_t b = s.bp_ticks();
  const std::uint64_t y = s.sync_ticks();

  EXPECT_EQ(s.op_at(0), Op::kWait);  // landing zone
  EXPECT_EQ(s.op_at(d - 1), Op::kWait);
  EXPECT_EQ(s.op_at(d), Op::kTwoChoicesSample);
  EXPECT_EQ(s.op_at(d + 1), Op::kWait);
  EXPECT_EQ(s.op_at(3 * d - 1), Op::kWait);
  EXPECT_EQ(s.op_at(3 * d), Op::kCommit);
  EXPECT_EQ(s.op_at(3 * d + 1), Op::kWait);
  EXPECT_EQ(s.op_at(4 * d - 1), Op::kWait);
  EXPECT_EQ(s.op_at(4 * d), Op::kBitProp);
  EXPECT_EQ(s.op_at(4 * d + b - 1), Op::kBitProp);
  EXPECT_EQ(s.op_at(4 * d + b), Op::kWait);
  EXPECT_EQ(s.op_at(5 * d + b), Op::kSyncSample);
  EXPECT_EQ(s.op_at(5 * d + b + y - 1), Op::kSyncSample);
  EXPECT_EQ(s.op_at(5 * d + b + y), Op::kWait);
  EXPECT_EQ(s.op_at(6 * d + b + y - 1), Op::kWait);
  EXPECT_EQ(s.op_at(6 * d + b + y), Op::kJump);
  EXPECT_EQ(s.phase_length(), 6 * d + b + y + 1);
}

TEST(Schedule, LayoutRepeatsEveryPhase) {
  const AsyncSchedule s(1 << 14, 4);
  const std::uint64_t len = s.phase_length();
  for (std::uint64_t phase = 1; phase < s.num_phases(); ++phase) {
    for (std::uint64_t off = 0; off < len; ++off) {
      ASSERT_EQ(s.op_at(phase * len + off), s.op_at(off))
          << "phase " << phase << " offset " << off;
    }
  }
}

TEST(Schedule, EndgameThenDone) {
  const AsyncSchedule s(4096, 4);
  const std::uint64_t p1 = s.part1_length();
  EXPECT_EQ(s.op_at(p1), Op::kEndgame);
  EXPECT_EQ(s.op_at(p1 + s.endgame_ticks() - 1), Op::kEndgame);
  EXPECT_EQ(s.op_at(p1 + s.endgame_ticks()), Op::kDone);
  EXPECT_EQ(s.op_at(p1 + s.endgame_ticks() + 12345), Op::kDone);
  EXPECT_EQ(s.total_length(), p1 + s.endgame_ticks());
}

TEST(Schedule, PhaseOfMapsCorrectly) {
  const AsyncSchedule s(4096, 4);
  EXPECT_EQ(s.phase_of(0), 0u);
  EXPECT_EQ(s.phase_of(s.phase_length() - 1), 0u);
  EXPECT_EQ(s.phase_of(s.phase_length()), 1u);
  EXPECT_EQ(s.phase_of(s.part1_length()), s.num_phases());
  EXPECT_EQ(s.phase_of(s.part1_length() + 99), s.num_phases());
}

TEST(Schedule, OpCountsPerPhase) {
  const AsyncSchedule s(1 << 12, 8);
  std::map<Op, std::uint64_t> counts;
  for (std::uint64_t off = 0; off < s.phase_length(); ++off) {
    ++counts[s.op_at(off)];
  }
  EXPECT_EQ(counts[Op::kTwoChoicesSample], 1u);
  EXPECT_EQ(counts[Op::kCommit], 1u);
  EXPECT_EQ(counts[Op::kBitProp], s.bp_ticks());
  EXPECT_EQ(counts[Op::kSyncSample], s.sync_ticks());
  EXPECT_EQ(counts[Op::kJump], 1u);
  EXPECT_EQ(counts[Op::kWait], s.phase_length() - 3 - s.bp_ticks() -
                                   s.sync_ticks());
}

TEST(Schedule, DisabledGadgetTurnsSyncOpsIntoWaits) {
  AsyncParams params;
  params.sync_gadget_enabled = false;
  const AsyncSchedule s(1 << 14, 4, params);
  for (std::uint64_t off = 0; off < s.phase_length(); ++off) {
    const Op op = s.op_at(off);
    EXPECT_NE(op, Op::kSyncSample);
    EXPECT_NE(op, Op::kJump);
  }
  // Phase length unchanged, so ablation runs are time-comparable.
  const AsyncSchedule with(1 << 14, 4);
  EXPECT_EQ(s.phase_length(), with.phase_length());
}

TEST(Schedule, LengthsGrowWithN) {
  const AsyncSchedule small(1 << 10, 4);
  const AsyncSchedule large(1 << 20, 4);
  EXPECT_GT(large.delta(), small.delta());
  EXPECT_GT(large.bp_ticks(), small.bp_ticks());
  EXPECT_GE(large.num_phases(), small.num_phases());
  EXPECT_GT(large.endgame_ticks(), small.endgame_ticks());
}

TEST(Schedule, DeltaIsThetaLogOverLogLog) {
  // At n = 2^20: ln n ~ 13.86, ln ln n ~ 2.63 -> Delta = ceil(5.27) = 6.
  const AsyncSchedule s(1 << 20, 4);
  EXPECT_EQ(s.delta(), 6u);
}

TEST(Schedule, LargeKInflatesBitProp) {
  const AsyncSchedule small_k(1 << 12, 2);
  const AsyncSchedule large_k(1 << 12, 1 << 20);
  EXPECT_GT(large_k.bp_ticks(), small_k.bp_ticks());
  EXPECT_GE(large_k.bp_ticks(), 24u);  // log2(2^20) + 4
}

TEST(Schedule, TotalTimeIsOrderLogN) {
  // The whole program is O(log n) working-time units; check the ratio
  // total/ln(n) stays within a fixed band across three decades.
  for (const std::uint64_t n : {1u << 10, 1u << 15, 1u << 20}) {
    const AsyncSchedule s(n, 4);
    const double ratio = static_cast<double>(s.total_length()) /
                         std::log(static_cast<double>(n));
    EXPECT_GT(ratio, 10.0);
    EXPECT_LT(ratio, 120.0);
  }
}

TEST(Schedule, RejectsBadParameters) {
  EXPECT_THROW(AsyncSchedule(2, 4), ContractViolation);
  EXPECT_THROW(AsyncSchedule(100, 0), ContractViolation);
  AsyncParams bad;
  bad.delta_mult = 0.0;
  EXPECT_THROW(AsyncSchedule(100, 2, bad), ContractViolation);
  AsyncParams neg;
  neg.extra_phases = -1;
  EXPECT_THROW(AsyncSchedule(100, 2, neg), ContractViolation);
}

}  // namespace
}  // namespace plurality
