// Tests for the placement layer (opinion/placement.hpp): exact count
// preservation under every placement, the community-aligned fraction
// guarantee, boundary/BFS structure, fixed-seed determinism, and the
// strict parse/validate contracts behind --placement=.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/complete.hpp"
#include "graph/factory.hpp"
#include "graph/ring.hpp"
#include "graph/sbm.hpp"
#include "graph/torus.hpp"
#include "opinion/assignment.hpp"
#include "opinion/placement.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

std::vector<std::uint64_t> realized_counts(const Assignment& a) {
  std::vector<std::uint64_t> counts(a.num_colors, 0);
  for (const ColorId c : a.colors) {
    EXPECT_LT(c, a.num_colors);
    ++counts[c];
  }
  return counts;
}

void expect_exact(const Assignment& a,
                  const std::vector<std::uint64_t>& wanted) {
  EXPECT_EQ(a.counts, wanted);
  EXPECT_EQ(realized_counts(a), wanted);
}

StochasticBlockModelGraph make_sbm(std::uint64_t n = 400,
                                   std::uint32_t blocks = 4,
                                   double p_in = 0.3, double p_out = 0.05,
                                   std::uint64_t seed = 7) {
  Xoshiro256 rng(seed);
  return StochasticBlockModelGraph(n, blocks, p_in, p_out, rng);
}

TEST(Placement, UniformMatchesAssignExactDraws) {
  const std::vector<std::uint64_t> counts{30, 20, 14};
  Xoshiro256 a(11);
  Xoshiro256 b(11);
  const Assignment via_place = place_uniform(counts, a);
  const Assignment via_assign = assign_exact(counts, b);
  EXPECT_EQ(via_place.colors, via_assign.colors);
  expect_exact(via_place, counts);
}

TEST(Placement, EveryPlacementPreservesExactCountsOnSbm) {
  const auto g = make_sbm();
  const TopologyView<StochasticBlockModelGraph> view(g);
  const std::vector<std::uint64_t> counts{220, 100, 50, 30};

  Xoshiro256 rng(3);
  expect_exact(place_uniform(counts, rng), counts);
  expect_exact(place_community_aligned(counts, g.communities(), 1.0, rng),
               counts);
  expect_exact(place_adversarial_boundary(counts, view, g.communities(), rng),
               counts);
  expect_exact(place_clustered_bfs(counts, view, rng), counts);
}

TEST(Placement, EveryPlacementPreservesExactCountsOnClosedFormGraphs) {
  const CompleteGraph complete(64);
  const RingGraph ring(64);
  const TorusGraph torus(8, 8);
  const std::vector<std::uint64_t> counts{40, 16, 8};

  const auto check = [&](const NeighborView& view) {
    Xoshiro256 rng(5);
    expect_exact(place_adversarial_boundary(counts, view, {}, rng), counts);
    expect_exact(place_clustered_bfs(counts, view, rng), counts);
  };
  check(TopologyView<CompleteGraph>(complete));
  check(TopologyView<RingGraph>(ring));
  check(TopologyView<TorusGraph>(torus));
}

TEST(Placement, CommunityAlignedConcentratesTheRequestedFraction) {
  const auto g = make_sbm(400, 4);
  // Block capacity is 100; c1 = 120 with fraction 0.75 asks for >= 90
  // color-0 nodes inside the target block.
  const std::vector<std::uint64_t> counts{120, 280};
  for (const double fraction : {0.25, 0.5, 0.75}) {
    Xoshiro256 rng(23);
    const Assignment a =
        place_community_aligned(counts, g.communities(), fraction, rng);
    const auto want = static_cast<std::uint64_t>(
        std::ceil(fraction * static_cast<double>(counts[0])));
    std::uint64_t best = 0;
    for (const auto& block : g.communities()) {
      std::uint64_t in_block = 0;
      for (const NodeId u : block) in_block += a.colors[u] == 0 ? 1 : 0;
      best = std::max(best, in_block);
    }
    EXPECT_GE(best, want) << "fraction=" << fraction;
  }
}

TEST(Placement, CommunityAlignedCapsAtBlockCapacity) {
  const auto g = make_sbm(400, 4);
  // c1 = 220 exceeds the 100-node target block: the placement must fill
  // the block rather than violate the capacity or the counts.
  const std::vector<std::uint64_t> counts{220, 180};
  Xoshiro256 rng(29);
  const Assignment a =
      place_community_aligned(counts, g.communities(), 1.0, rng);
  expect_exact(a, counts);
  std::uint64_t best = 0;
  for (const auto& block : g.communities()) {
    std::uint64_t in_block = 0;
    for (const NodeId u : block) in_block += a.colors[u] == 0 ? 1 : 0;
    best = std::max(best, in_block);
  }
  EXPECT_EQ(best, 100u);
}

TEST(Placement, AdversarialBoundaryPrefersLowDegreeWithoutCommunities) {
  // A star-of-rings shape is overkill; a simple contrast suffices: on a
  // graph where node degrees differ (torus is regular, so build an SBM
  // with p_out=0 to get degree spread), minorities must land on the
  // lowest-degree nodes. Use a two-block SBM with no cross edges: the
  // heuristic sees no boundary, so it ranks purely by (degree, random).
  const auto g = make_sbm(200, 2, 0.5, 0.0, /*seed=*/13);
  const TopologyView<StochasticBlockModelGraph> view(g);
  const std::vector<std::uint64_t> counts{190, 10};
  Xoshiro256 rng(31);
  const Assignment a = place_adversarial_boundary(counts, view, {}, rng);
  // The 10 minority nodes must all have degree <= the median degree.
  std::vector<std::uint64_t> degrees;
  for (NodeId u = 0; u < 200; ++u) degrees.push_back(g.degree(u));
  std::vector<std::uint64_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t median = sorted[100];
  for (NodeId u = 0; u < 200; ++u) {
    if (a.colors[u] == 1) {
      EXPECT_LE(degrees[u], median);
    }
  }
}

TEST(Placement, AdversarialBoundarySeedsMinoritiesOnTheCut) {
  // Two cliques joined by few cross edges: the nodes with the highest
  // cross fraction are exactly the cut endpoints, so a small minority
  // must land on nodes that do have a cross edge.
  const auto g = make_sbm(200, 2, 1.0, 0.02, /*seed=*/17);
  const TopologyView<StochasticBlockModelGraph> view(g);
  const std::vector<std::uint64_t> counts{190, 10};
  Xoshiro256 rng(37);
  const Assignment a =
      place_adversarial_boundary(counts, view, g.communities(), rng);
  std::vector<NodeId> scratch;
  for (NodeId u = 0; u < 200; ++u) {
    if (a.colors[u] != 1) continue;
    scratch.clear();
    view.append_neighbors(u, scratch);
    std::uint64_t cross = 0;
    for (const NodeId v : scratch) {
      cross += g.block_of(v) != g.block_of(u) ? 1 : 0;
    }
    EXPECT_GT(cross, 0u) << "minority node " << u << " is not on the cut";
  }
}

TEST(Placement, ClusteredBfsGrowsConnectedBallsOnTheRing) {
  // On a ring, a BFS ball is a contiguous arc: every color class must
  // form one arc (it never needs to re-seed on a connected remainder).
  const RingGraph ring(60);
  const TopologyView<RingGraph> view(ring);
  const std::vector<std::uint64_t> counts{30, 20, 10};
  Xoshiro256 rng(41);
  const Assignment a = place_clustered_bfs(counts, view, rng);
  expect_exact(a, counts);
  // Each BFS ball is an arc, except that a later color may be split in
  // two by an earlier ball when its seed lands mid-remainder: with 3
  // colors that is between 3 and 4 maximal runs around the cycle
  // (uniform placement would give ~0.6 * n ~ 36 color changes).
  std::uint64_t changes = 0;
  for (NodeId u = 0; u < 60; ++u) {
    changes += a.colors[u] != a.colors[(u + 1) % 60] ? 1 : 0;
  }
  EXPECT_GE(changes, 3u);
  EXPECT_LE(changes, 4u);
}

TEST(Placement, FixedSeedIsDeterministic) {
  const auto g = make_sbm();
  const TopologyView<StochasticBlockModelGraph> view(g);
  const std::vector<std::uint64_t> counts{220, 100, 50, 30};
  const auto run_all = [&](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<std::vector<ColorId>> out;
    out.push_back(place_uniform(counts, rng).colors);
    out.push_back(
        place_community_aligned(counts, g.communities(), 0.8, rng).colors);
    out.push_back(
        place_adversarial_boundary(counts, view, g.communities(), rng)
            .colors);
    out.push_back(place_clustered_bfs(counts, view, rng).colors);
    return out;
  };
  EXPECT_EQ(run_all(123), run_all(123));
  EXPECT_NE(run_all(123), run_all(124));
}

TEST(Placement, ParseRejectsUnknownNames) {
  EXPECT_EQ(parse_placement_kind("uniform"), PlacementKind::kUniform);
  EXPECT_EQ(parse_placement_kind("community"),
            PlacementKind::kCommunityAligned);
  EXPECT_EQ(parse_placement_kind("adversarial_boundary"),
            PlacementKind::kAdversarialBoundary);
  EXPECT_EQ(parse_placement_kind("clustered_bfs"),
            PlacementKind::kClusteredBfs);
  EXPECT_THROW(parse_placement_kind("random"), ContractViolation);
  EXPECT_THROW(parse_placement_kind(""), ContractViolation);
  try {
    parse_placement_kind("bogus");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--placement"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
  }
}

TEST(Placement, SpecValidatesFraction) {
  PlacementSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.fraction = 0.0;
  EXPECT_THROW(spec.validate(), ContractViolation);
  spec.fraction = 1.5;
  EXPECT_THROW(spec.validate(), ContractViolation);
  try {
    spec.validate();
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--placement-fraction"),
              std::string::npos)
        << e.what();
  }
}

TEST(Placement, MismatchedTotalsViolateContracts) {
  const auto g = make_sbm(100, 2);
  const TopologyView<StochasticBlockModelGraph> view(g);
  Xoshiro256 rng(2);
  const std::vector<std::uint64_t> short_counts{40, 20};  // sums to 60
  EXPECT_THROW(
      place_community_aligned(short_counts, g.communities(), 1.0, rng),
      ContractViolation);
  EXPECT_THROW(place_adversarial_boundary(short_counts, view, {}, rng),
               ContractViolation);
  EXPECT_THROW(place_clustered_bfs(short_counts, view, rng),
               ContractViolation);
}

}  // namespace
}  // namespace plurality
