// Integration tests for the paper's main protocol: asynchronous
// OneExtraBit with weak synchronicity (Theorem 1.3).

#include <gtest/gtest.h>

#include <cmath>

#include "core/async_one_extra_bit.hpp"
#include "core/two_choices.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/seed.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/sequential_engine.hpp"
#include "stats/welford.hpp"

namespace plurality {
namespace {

static_assert(AsyncProtocol<AsyncOneExtraBit<CompleteGraph>>);

TEST(AsyncOEB, Theorem13RegimeConsensusOnC1) {
  // k = 8 colors, c1 >= (1 + eps) c2 with eps = 0.5: the theorem's
  // regime. The plurality color must win in every repetition.
  const std::uint64_t n = 1 << 13;
  const CompleteGraph g(n);
  const SeedSequence seeds(800);
  for (std::uint64_t rep = 0; rep < 8; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    // c1 = 1.5 * c2, minorities equal: c1 ~ 0.176n at k=8.
    const std::uint64_t c2 = n / 10;
    std::vector<std::uint64_t> counts(8, c2);
    counts[0] = n - 7 * c2;
    ASSERT_GE(counts[0], (c2 * 3) / 2);
    auto proto = AsyncOneExtraBit<CompleteGraph>::make(
        g, assign_exact(counts, rng));
    const auto result = run_sequential(proto, rng, 1e5);
    ASSERT_TRUE(result.consensus) << "rep " << rep;
    EXPECT_EQ(result.winner, 0u) << "rep " << rep;
  }
}

TEST(AsyncOEB, RunsOnContinuousEngineToo) {
  const std::uint64_t n = 4096;
  const CompleteGraph g(n);
  Xoshiro256 rng(2);
  auto proto = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_plurality_bias(n, 4, n / 8, rng));
  const auto result = run_continuous(proto, rng, 1e5);
  ASSERT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
}

TEST(AsyncOEB, TimeIsWithinTheScheduleBudget) {
  // Consensus must arrive within the program (part1 + endgame) plus the
  // straggler tail; in practice far earlier.
  const std::uint64_t n = 1 << 13;
  const CompleteGraph g(n);
  Xoshiro256 rng(3);
  auto proto = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_plurality_bias(n, 8, n / 4, rng));
  const double budget =
      2.0 * static_cast<double>(proto.schedule().total_length());
  const auto result = run_sequential(proto, rng, budget);
  ASSERT_TRUE(result.consensus);
  EXPECT_LT(result.time, budget);
}

TEST(AsyncOEB, BitsResetEachPhaseViaCommit) {
  const std::uint64_t n = 2048;
  const CompleteGraph g(n);
  Xoshiro256 rng(4);
  auto proto = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_equal(n, 4, rng));
  // Run one full phase: by the end of bit-propagation nearly all nodes
  // have bits; after the next phase's commit they are re-derived.
  const double one_phase =
      static_cast<double>(proto.schedule().phase_length());
  run_sequential(proto, rng, one_phase * 0.95);
  EXPECT_GT(proto.bits_set(), n / 2);
}

TEST(AsyncOEB, EqualSplitStillTerminates) {
  // No bias at all: the theorem does not apply, but the program must
  // still terminate (consensus by luck, or all nodes finish).
  const std::uint64_t n = 1024;
  const CompleteGraph g(n);
  Xoshiro256 rng(5);
  auto proto = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_equal(n, 2, rng));
  const auto result = run_sequential(proto, rng, 1e6);
  EXPECT_TRUE(result.consensus || proto.nodes_finished() == n);
}

TEST(AsyncOEB, WinnerIsAlwaysAValidColor) {
  const std::uint64_t n = 1024;
  const CompleteGraph g(n);
  const SeedSequence seeds(900);
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    auto proto = AsyncOneExtraBit<CompleteGraph>::make(
        g, assign_dirichlet(n, 6, 0.5, rng));
    const auto result = run_sequential(proto, rng, 1e6);
    if (result.consensus) {
      EXPECT_LT(result.winner, 6u);
    }
  }
}

TEST(AsyncOEB, RunTimeFlatInKWhileAsyncTwoChoicesGrowsLinearly) {
  // Theorem 1.3's content at laptop scale: the phased protocol's run
  // time is bounded by its Theta(log n) schedule *independently of k*,
  // while async Two-Choices pays ~linearly in k (Theorem 1.1 lower
  // bound). At n = 2^13 the absolute crossover sits beyond k ~ 500
  // (constants!), so we assert the growth shapes, not a point win;
  // experiment E6 charts both curves and the extrapolated crossover.
  const std::uint64_t n = 1 << 13;
  const CompleteGraph g(n);
  const SeedSequence seeds(1000);

  auto mean_time = [&](bool use_oeb, std::uint32_t k) {
    Welford times;
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      Xoshiro256 rng = seeds.make_rng(rep + k + (use_oeb ? 0 : 7777));
      auto workload = assign_plurality_bias(n, k, n / (k + 1), rng);
      if (use_oeb) {
        auto proto = AsyncOneExtraBit<CompleteGraph>::make(
            g, std::move(workload));
        const auto result = run_sequential(proto, rng, 1e5);
        EXPECT_TRUE(result.consensus);
        times.add(result.time);
      } else {
        TwoChoicesAsync proto(g, std::move(workload));
        const auto result = run_sequential(proto, rng, 1e5);
        EXPECT_TRUE(result.consensus);
        times.add(result.time);
      }
    }
    return times.mean();
  };

  const double oeb_small = mean_time(true, 4);
  const double oeb_large = mean_time(true, 64);
  const double tc_small = mean_time(false, 4);
  const double tc_large = mean_time(false, 64);

  EXPECT_LT(oeb_large, 2.0 * oeb_small)
      << "async OneExtraBit bounded by its k-independent schedule";
  EXPECT_GT(tc_large, 2.5 * tc_small)
      << "async Two-Choices should pay ~linearly in k";
}

TEST(AsyncOEB, NodesFinishCountingIsMonotone) {
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  Xoshiro256 rng(6);
  auto proto = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_equal(n, 2, rng));
  std::uint64_t prev = 0;
  bool ok = true;
  run_sequential(
      proto, rng, 1e6,
      [&](double, const AsyncOneExtraBit<CompleteGraph>& p) {
        ok = ok && p.nodes_finished() >= prev;
        prev = p.nodes_finished();
      },
      10.0);
  EXPECT_TRUE(ok);
}

TEST(AsyncOEB, MakeDerivesScheduleFromAssignment) {
  const CompleteGraph g(512);
  Xoshiro256 rng(7);
  auto proto = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_equal(512, 16, rng));
  EXPECT_EQ(proto.num_nodes(), 512u);
  EXPECT_GE(proto.schedule().bp_ticks(), 8u);  // log2(16)+4 floor
}

/// Minimal topology claiming zero nodes, for the empty-population guard.
struct EmptyGraph {
  std::uint64_t num_nodes() const noexcept { return 0; }
  std::uint64_t degree(NodeId) const noexcept { return 0; }
  NodeId sample_neighbor(NodeId, Xoshiro256&) const noexcept { return 0; }
};

TEST(AsyncOEB, RejectsEmptyPopulation) {
  // An n == 0 instance used to be constructible and made
  // working_time_spread() read working_time_[0] out of bounds; the
  // constructor must reject it outright.
  const EmptyGraph g;
  const AsyncSchedule schedule(8, 2);
  Assignment empty;
  empty.num_colors = 1;
  EXPECT_THROW(
      AsyncOneExtraBit<EmptyGraph>(g, std::move(empty), schedule),
      ContractViolation);
}

TEST(AsyncOEB, DiagnosticsAreSafeBeforeAnyTick) {
  const CompleteGraph g(16);
  Xoshiro256 rng(8);
  auto proto = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_equal(16, 2, rng));
  EXPECT_EQ(proto.working_time_spread(), 0u);
  EXPECT_EQ(proto.median_working_time(), 0u);
  EXPECT_DOUBLE_EQ(proto.fraction_poorly_synced(1), 0.0);
}

}  // namespace
}  // namespace plurality
