// Tests for the experiment registry and JSON record pipeline: the
// JsonValue build/parse/dump round-trip, registrar bookkeeping, and an
// end-to-end run of both a toy experiment and a real registered
// experiment through ExperimentRegistry::run_to_record, validating that
// the emitted JSON parses and carries the expected keys.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "experiment/args.hpp"
#include "experiment/json_writer.hpp"
#include "experiment/registry.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

Args make_args(std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

// ---- JsonValue -------------------------------------------------------

TEST(JsonValue, BuildsAndDumpsScalars) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(-7).dump(), "-7");
  EXPECT_EQ(JsonValue(std::uint64_t{18446744073709551615ull}).dump(),
            "18446744073709551615");
  EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(JsonValue, EscapesStrings) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj["zeta"] = 1;
  obj["alpha"] = 2;
  EXPECT_EQ(obj.dump(-1), "{\"zeta\":1,\"alpha\":2}");
}

TEST(JsonValue, ParsesRoundTrip) {
  const std::string text =
      R"({"name": "exp", "samples": [1, 2.5, -3e2], "ok": true,)"
      R"( "nested": {"k": [null, "sA"]}})";
  const JsonValue v = JsonValue::parse(text);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("name")->as_string(), "exp");
  ASSERT_TRUE(v.find("samples")->is_array());
  EXPECT_EQ(v.find("samples")->size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("samples")->at(2).as_double(), -300.0);
  EXPECT_TRUE(v.find("ok")->as_bool());
  EXPECT_EQ(v.find("nested")->find("k")->at(1).as_string(), "sA");

  // dump -> parse -> dump is a fixed point.
  const std::string dumped = v.dump();
  EXPECT_EQ(JsonValue::parse(dumped).dump(), dumped);
}

TEST(JsonValue, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("[1,]"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("nul"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("1.2.3"), JsonParseError);
}

TEST(JsonValue, IntegersSurviveRoundTripExactly) {
  const std::uint64_t big = 0xDEADBEEFCAFEBABEull;
  JsonValue v = JsonValue::object();
  v["seed"] = big;
  EXPECT_EQ(JsonValue::parse(v.dump()).find("seed")->as_u64(), big);
}

// ---- registry --------------------------------------------------------

int toy_experiment(ExperimentContext& ctx) {
  std::vector<double> samples;
  for (std::uint64_t rep = 0; rep < ctx.reps; ++rep) {
    samples.push_back(static_cast<double>(rep + 1));
  }
  ctx.record("toy_series", {{"n", 128}, {"label", "unit"}}, samples);
  return 0;
}

// Registered at static-init time, exactly like the bench/ experiments.
const ExperimentRegistrar kToyRegistrar{
    "test_toy", "toy experiment used by the registry unit tests",
    "Catalog paragraph of the toy experiment: records one fixed series "
    "so the registry tests can assert on the record schema.",
    /*default_reps=*/4, toy_experiment};

TEST(Registry, RegistrarMakesExperimentDiscoverable) {
  const auto& registry = ExperimentRegistry::instance();
  const Experiment* toy = registry.find("test_toy");
  ASSERT_NE(toy, nullptr);
  EXPECT_EQ(toy->default_reps, 4u);
  EXPECT_EQ(registry.find("no_such_experiment"), nullptr);

  // list() is name-sorted and contains the toy experiment.
  const auto all = registry.list();
  EXPECT_GE(all.size(), 1u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name, all[i]->name);
  }
}

TEST(Registry, RejectsDuplicateAndMalformedRegistrations) {
  auto& registry = ExperimentRegistry::instance();
  EXPECT_THROW(
      registry.add(Experiment{"test_toy", "dup", "", 1, toy_experiment}),
      ContractViolation);
  EXPECT_THROW(
      registry.add(Experiment{"", "anon", "", 1, toy_experiment}),
      ContractViolation);
  EXPECT_THROW(
      registry.add(Experiment{"test_norun", "no body", "", 1, nullptr}),
      ContractViolation);
}

TEST(Registry, ExperimentsCarryCatalogDescribe) {
  // The generated docs/EXPERIMENTS.md is only useful if every
  // registered experiment ships a catalog paragraph.
  for (const Experiment* e : ExperimentRegistry::instance().list()) {
    EXPECT_FALSE(e->describe.empty())
        << "experiment '" << e->name << "' has no describe() paragraph";
  }
}

TEST(Registry, RunToRecordEmitsSchemaValidJson) {
  const auto& registry = ExperimentRegistry::instance();
  const Experiment* toy = registry.find("test_toy");
  ASSERT_NE(toy, nullptr);

  const Args args = make_args({"--reps=3", "--seed=7"});
  const JsonValue record = registry.run_to_record(*toy, args);

  // The record must survive a dump -> parse round trip...
  const JsonValue parsed = JsonValue::parse(record.dump());
  ASSERT_TRUE(parsed.is_object());

  // ...and carry the schema keys.
  for (const char* key :
       {"schema_version", "experiment", "description", "params", "series",
        "exit_code", "wall_clock_seconds"}) {
    EXPECT_TRUE(parsed.has(key)) << "missing key: " << key;
  }
  EXPECT_EQ(parsed.find("experiment")->as_string(), "test_toy");
  EXPECT_EQ(parsed.find("exit_code")->as_u64(), 0u);
  EXPECT_GE(parsed.find("wall_clock_seconds")->as_double(), 0.0);

  // Shared knobs resolve from the CLI. No latency flag was passed and
  // the toy never drives a latency model, so the record carries
  // neither the flags nor a latency_effective claim.
  const JsonValue* params = parsed.find("params");
  ASSERT_TRUE(params->is_object());
  EXPECT_EQ(params->find("seed")->as_u64(), 7u);
  EXPECT_EQ(params->find("reps")->as_u64(), 3u);
  EXPECT_FALSE(params->has("latency"));
  EXPECT_FALSE(params->has("latency_effective"));

  // The recorded series carries raw samples plus Welford aggregates.
  const JsonValue* series = parsed.find("series");
  ASSERT_TRUE(series->is_array());
  ASSERT_EQ(series->size(), 1u);
  const JsonValue& entry = series->at(0);
  EXPECT_EQ(entry.find("name")->as_string(), "toy_series");
  EXPECT_EQ(entry.find("params")->find("n")->as_u64(), 128u);
  EXPECT_EQ(entry.find("params")->find("label")->as_string(), "unit");
  ASSERT_EQ(entry.find("samples")->size(), 3u);  // samples 1, 2, 3
  EXPECT_EQ(entry.find("count")->as_u64(), 3u);
  EXPECT_DOUBLE_EQ(entry.find("mean")->as_double(), 2.0);
  EXPECT_DOUBLE_EQ(entry.find("stddev")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(entry.find("stderr")->as_double(), 1.0 / std::sqrt(3.0));
  EXPECT_DOUBLE_EQ(entry.find("min")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(entry.find("max")->as_double(), 3.0);
}

// A toy that drives a latency model, so tests can assert on the
// latency_effective attribution.
int latency_toy_experiment(ExperimentContext& ctx) {
  const auto model = ctx.latency.make();
  ctx.note_effective_latency(model->name());
  std::vector<double> samples(ctx.reps, 1.0);
  ctx.record("latency_toy_series", {{"n", 1}}, samples);
  return 0;
}

const ExperimentRegistrar kLatencyToyRegistrar{
    "test_toy_latency", "latency-consuming toy for the registry tests",
    "Catalog paragraph of the latency toy: mints the requested latency "
    "model and notes it, so tests can assert on latency_effective.",
    /*default_reps=*/2, latency_toy_experiment};

TEST(Registry, RecordsResolvedLatencyModel) {
  const auto& registry = ExperimentRegistry::instance();
  const Experiment* toy = registry.find("test_toy");
  const Experiment* latency_toy = registry.find("test_toy_latency");
  ASSERT_NE(toy, nullptr);
  ASSERT_NE(latency_toy, nullptr);

  // Explicit flags reach params via the raw-args echo plus the
  // resolved per-family shape default; the model is only *attributed*
  // (latency_effective) when the experiment actually drives it.
  const Args args = make_args({"--latency=pareto", "--latency-mean=0.5"});
  const JsonValue record = registry.run_to_record(*latency_toy, args);
  const JsonValue* params = record.find("params");
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(params->find("latency")->as_string(), "pareto");
  EXPECT_DOUBLE_EQ(params->find("latency-mean")->as_double(), 0.5);
  EXPECT_DOUBLE_EQ(params->find("latency-shape")->as_double(), 2.5);
  EXPECT_EQ(params->find("latency_effective")->as_string(), "pareto");

  // The plain toy ignores --latency: the flags are still echoed (like
  // any unconsumed override) but no model is claimed as effective.
  const JsonValue ignored = registry.run_to_record(*toy, args);
  const JsonValue* toy_params = ignored.find("params");
  ASSERT_NE(toy_params, nullptr);
  EXPECT_EQ(toy_params->find("latency")->as_string(), "pareto");
  EXPECT_FALSE(toy_params->has("latency_effective"));

  // Malformed triples die at context construction, on the main thread,
  // with the flag names in the message.
  EXPECT_THROW(registry.run_to_record(
                   *toy, make_args({"--latency=uniform"})),
               ContractViolation);
  EXPECT_THROW(registry.run_to_record(
                   *toy, make_args({"--latency=exp", "--latency-mean=0"})),
               ContractViolation);
  try {
    registry.run_to_record(
        *toy, make_args({"--latency=pareto", "--latency-shape=1.0"}));
    FAIL() << "invalid shape must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--latency"), std::string::npos);
  }
}

TEST(Registry, RejectsInvalidScenarioFlags) {
  // The scenario axes (--graph*, --placement*) are validated at context
  // construction, on the main thread, with the flag names in the
  // message — unknown names and out-of-range rates must never silently
  // run the default scenario under an adversarial-sounding label.
  const auto& registry = ExperimentRegistry::instance();
  const Experiment* toy = registry.find("test_toy");
  ASSERT_NE(toy, nullptr);

  EXPECT_THROW(
      registry.run_to_record(*toy, make_args({"--graph=smallworld"})),
      ContractViolation);
  EXPECT_THROW(registry.run_to_record(
                   *toy, make_args({"--graph=sbm", "--graph-pin=0"})),
               ContractViolation);
  EXPECT_THROW(registry.run_to_record(
                   *toy, make_args({"--graph=sbm", "--graph-pout=1.5"})),
               ContractViolation);
  EXPECT_THROW(
      registry.run_to_record(*toy, make_args({"--placement=shuffle"})),
      ContractViolation);
  EXPECT_THROW(registry.run_to_record(
                   *toy, make_args({"--placement=community",
                                    "--placement-fraction=2"})),
               ContractViolation);
  try {
    registry.run_to_record(*toy, make_args({"--graph=sbm",
                                            "--graph-pin=1.5"}));
    FAIL() << "invalid p_in must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--graph-pin"), std::string::npos)
        << e.what();
  }

  // Valid specs resolve into the context and (for a requested kind) the
  // resolved family parameters land in the record.
  const JsonValue record = registry.run_to_record(
      *toy, make_args({"--graph=sbm", "--graph-blocks=8"}));
  const JsonValue* params = record.find("params");
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(params->find("graph")->as_string(), "sbm");
  EXPECT_EQ(params->find("graph-blocks")->as_u64(), 8u);
  EXPECT_DOUBLE_EQ(params->find("graph-pin")->as_double(), 0.3);
  EXPECT_DOUBLE_EQ(params->find("graph-pout")->as_double(), 0.01);
  // The toy never places a workload or builds a topology, so neither
  // axis is claimed as effective: the flag echo records the request,
  // the missing *_effective keys record that it was ignored.
  EXPECT_FALSE(params->has("placement_effective"));
  EXPECT_FALSE(params->has("graph_effective"));

  // A 2^32-wrapping degree must throw, not silently run d=8.
  EXPECT_THROW(registry.run_to_record(
                   *toy, make_args({"--graph=regular",
                                    "--graph-degree=4294967304"})),
               ContractViolation);
}

TEST(Registry, EndToEndRealExperimentProducesValidRecord) {
  // This test links the experiment object library, so the 17 migrated
  // bench experiments are registered here too. Run a real one, small.
  const auto& registry = ExperimentRegistry::instance();
  EXPECT_GE(registry.size(), 16u);
  const Experiment* experiment = registry.find("quadratic_growth");
  ASSERT_NE(experiment, nullptr);

  // --csv keeps the test log compact; tiny n and reps keep it fast.
  const Args args = make_args({"--reps=2", "--n=2048", "--csv"});
  ::testing::internal::CaptureStdout();
  const JsonValue record = registry.run_to_record(*experiment, args);
  const std::string stdout_text = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(stdout_text.find("initial_ratio"), std::string::npos);

  const JsonValue parsed = JsonValue::parse(record.dump());
  EXPECT_EQ(parsed.find("experiment")->as_string(), "quadratic_growth");
  EXPECT_EQ(parsed.find("exit_code")->as_u64(), 0u);
  EXPECT_EQ(parsed.find("params")->find("reps")->as_u64(), 2u);
  const JsonValue* series = parsed.find("series");
  ASSERT_TRUE(series->is_array());
  ASSERT_GT(series->size(), 0u);
  for (std::size_t i = 0; i < series->size(); ++i) {
    const JsonValue& entry = series->at(i);
    EXPECT_EQ(entry.find("samples")->size(), 2u);
    EXPECT_EQ(entry.find("count")->as_u64(), 2u);
    EXPECT_TRUE(entry.find("mean")->is_number());
    EXPECT_TRUE(entry.find("stderr")->is_number());
  }
}

}  // namespace
}  // namespace plurality
