// Unit tests for opinion/: the O(1)-bookkeeping table, workload
// generators, and snapshots.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "rng/distributions.hpp"

#include "opinion/assignment.hpp"
#include "opinion/snapshot.hpp"
#include "opinion/table.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

TEST(OpinionTable, InitialBookkeeping) {
  const OpinionTable t({0, 1, 1, 2, 2, 2}, 4);
  EXPECT_EQ(t.num_nodes(), 6u);
  EXPECT_EQ(t.num_colors(), 4u);
  EXPECT_EQ(t.support(0), 1u);
  EXPECT_EQ(t.support(1), 2u);
  EXPECT_EQ(t.support(2), 3u);
  EXPECT_EQ(t.support(3), 0u);
  EXPECT_EQ(t.surviving_colors(), 3u);
  EXPECT_FALSE(t.has_consensus());
  EXPECT_EQ(t.plurality_color(), 2u);
}

TEST(OpinionTable, SetColorUpdatesSupports) {
  OpinionTable t({0, 1}, 2);
  t.set_color(0, 1);
  EXPECT_EQ(t.support(0), 0u);
  EXPECT_EQ(t.support(1), 2u);
  EXPECT_EQ(t.surviving_colors(), 1u);
  EXPECT_TRUE(t.has_consensus());
  EXPECT_EQ(t.consensus_color(), 1u);
}

TEST(OpinionTable, SetSameColorIsNoop) {
  OpinionTable t({0, 1}, 2);
  t.set_color(0, 0);
  EXPECT_EQ(t.support(0), 1u);
  EXPECT_EQ(t.surviving_colors(), 2u);
}

TEST(OpinionTable, RevivingAColorIncrementsSurvivors) {
  OpinionTable t({0, 0, 1}, 3);
  EXPECT_EQ(t.surviving_colors(), 2u);
  t.set_color(2, 2);
  EXPECT_EQ(t.surviving_colors(), 2u);  // 1 died, 2 born
  t.set_color(1, 1);
  EXPECT_EQ(t.surviving_colors(), 3u);
}

TEST(OpinionTable, SupportsAlwaysSumToN) {
  OpinionTable t({0, 1, 2, 0, 1}, 3);
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto u = static_cast<NodeId>(uniform_below(rng, 5));
    const auto c = static_cast<ColorId>(uniform_below(rng, 3));
    t.set_color(u, c);
    const auto supports = t.supports();
    const std::uint64_t sum =
        std::accumulate(supports.begin(), supports.end(), std::uint64_t{0});
    ASSERT_EQ(sum, 5u);
  }
}

TEST(OpinionTable, PluralityTieBreaksToLowestIndex) {
  const OpinionTable t({0, 0, 1, 1, 2}, 3);
  EXPECT_EQ(t.plurality_color(), 0u);
}

TEST(OpinionTable, Contracts) {
  EXPECT_THROW(OpinionTable({}, 1), ContractViolation);
  EXPECT_THROW(OpinionTable({0, 2}, 2), ContractViolation);
  OpinionTable t({0, 0}, 2);
  EXPECT_THROW(t.set_color(5, 0), ContractViolation);
  EXPECT_THROW(t.set_color(0, 9), ContractViolation);
}

TEST(OpinionTable, ConsensusColorRequiresConsensus) {
  const OpinionTable mixed({0, 1}, 2);
  EXPECT_THROW(mixed.consensus_color(), ContractViolation);
  const OpinionTable agreed({1, 1}, 2);
  EXPECT_EQ(agreed.consensus_color(), 1u);
}

TEST(Assignment, ExactCountsRealized) {
  Xoshiro256 rng(2);
  const auto a = assign_exact({3, 5, 2}, rng);
  EXPECT_EQ(a.num_colors, 3u);
  EXPECT_EQ(a.colors.size(), 10u);
  std::array<int, 3> realized{};
  for (const ColorId c : a.colors) ++realized[c];
  EXPECT_EQ(realized[0], 3);
  EXPECT_EQ(realized[1], 5);
  EXPECT_EQ(realized[2], 2);
  EXPECT_EQ(a.counts, (std::vector<std::uint64_t>{3, 5, 2}));
}

TEST(Assignment, ShuffleDependsOnSeed) {
  Xoshiro256 rng_a(3);
  Xoshiro256 rng_b(4);
  const auto a = assign_exact({50, 50}, rng_a);
  const auto b = assign_exact({50, 50}, rng_b);
  EXPECT_NE(a.colors, b.colors);  // same counts, different placement
}

TEST(Assignment, EqualSplitNeverFavorsColorZero) {
  Xoshiro256 rng(5);
  const auto a = assign_equal(10, 4, rng);  // 10 = 2+2+3+3
  EXPECT_EQ(a.counts[0], 2u);
  EXPECT_EQ(a.counts[1], 2u);
  EXPECT_EQ(a.counts[2], 3u);
  EXPECT_EQ(a.counts[3], 3u);
  EXPECT_LE(a.bias(), 1);
}

TEST(Assignment, EqualSplitExactWhenDivisible) {
  Xoshiro256 rng(6);
  const auto a = assign_equal(100, 4, rng);
  for (const auto c : a.counts) EXPECT_EQ(c, 25u);
  EXPECT_EQ(a.bias(), 0);
}

TEST(Assignment, PluralityBiasRealizedWithinRounding) {
  Xoshiro256 rng(7);
  const auto a = assign_plurality_bias(1000, 7, 60, rng);
  EXPECT_EQ(a.counts.size(), 7u);
  // All minorities equal.
  for (ColorId c = 2; c < 7; ++c) EXPECT_EQ(a.counts[c], a.counts[1]);
  // Realized bias in [bias, bias + k - 1].
  const std::int64_t bias = a.bias();
  EXPECT_GE(bias, 60);
  EXPECT_LT(bias, 60 + 7);
  // Total is exact.
  EXPECT_EQ(std::accumulate(a.counts.begin(), a.counts.end(),
                            std::uint64_t{0}),
            1000u);
}

TEST(Assignment, PluralityBiasZeroGivesNearTie) {
  Xoshiro256 rng(8);
  const auto a = assign_plurality_bias(1000, 4, 0, rng);
  EXPECT_EQ(a.counts[0], 250u);
  EXPECT_EQ(a.counts[1], 250u);
}

TEST(Assignment, PluralityBiasContracts) {
  Xoshiro256 rng(9);
  EXPECT_THROW(assign_plurality_bias(10, 1, 0, rng), ContractViolation);
  EXPECT_THROW(assign_plurality_bias(10, 4, 20, rng), ContractViolation);
}

TEST(Assignment, TwoColors) {
  Xoshiro256 rng(10);
  const auto a = assign_two_colors(100, 64, rng);
  EXPECT_EQ(a.counts[0], 64u);
  EXPECT_EQ(a.counts[1], 36u);
  EXPECT_EQ(a.bias(), 28);
  EXPECT_THROW(assign_two_colors(100, 0, rng), ContractViolation);
  EXPECT_THROW(assign_two_colors(100, 100, rng), ContractViolation);
}

TEST(Assignment, GeometricProfile) {
  Xoshiro256 rng(11);
  const auto a = assign_geometric(1000, 5, 0.5, rng);
  EXPECT_EQ(std::accumulate(a.counts.begin(), a.counts.end(),
                            std::uint64_t{0}),
            1000u);
  // Strictly decreasing-ish profile with ratio ~ 0.5 between levels.
  EXPECT_GT(a.counts[0], a.counts[1]);
  EXPECT_GT(a.counts[1], a.counts[2]);
  for (const auto c : a.counts) EXPECT_GE(c, 1u);
  EXPECT_NEAR(static_cast<double>(a.counts[1]) /
                  static_cast<double>(a.counts[0]),
              0.5, 0.05);
}

TEST(Assignment, DirichletSumsExactlyAndPutsPluralityAtZero) {
  Xoshiro256 rng(12);
  for (int rep = 0; rep < 10; ++rep) {
    const auto a = assign_dirichlet(500, 6, 1.0, rng);
    EXPECT_EQ(std::accumulate(a.counts.begin(), a.counts.end(),
                              std::uint64_t{0}),
              500u);
    for (const auto c : a.counts) EXPECT_GE(c, 1u);
    const auto max_count =
        *std::max_element(a.counts.begin(), a.counts.end());
    EXPECT_EQ(a.counts[0], max_count);
  }
}

TEST(Assignment, BiasComputation) {
  Assignment a;
  a.num_colors = 3;
  a.counts = {10, 7, 7};
  EXPECT_EQ(a.bias(), 3);
  a.counts = {7, 10, 7};  // bias is order-free
  EXPECT_EQ(a.bias(), 3);
}

TEST(Snapshot, AggregatesSortedSupports) {
  const OpinionTable t({0, 0, 0, 1, 1, 2}, 3);
  const auto snap = snapshot_of(t);
  EXPECT_EQ(snap.n, 6u);
  EXPECT_EQ(snap.sorted_supports,
            (std::vector<std::uint64_t>{3, 2, 1}));
  EXPECT_EQ(snap.bias(), 1);
  EXPECT_NEAR(snap.plurality_fraction(), 0.5, 1e-12);
  EXPECT_NEAR(snap.top_ratio(), 1.5, 1e-12);
  EXPECT_GT(snap.normalized_entropy(), 0.0);
  EXPECT_LE(snap.normalized_entropy(), 1.0);
}

TEST(Snapshot, ConsensusHasZeroEntropyAndInfiniteRatio) {
  const OpinionTable t({1, 1, 1}, 2);
  const auto snap = snapshot_of(t);
  EXPECT_EQ(snap.surviving, 1u);
  EXPECT_DOUBLE_EQ(snap.normalized_entropy(), 0.0);
  EXPECT_TRUE(std::isinf(snap.top_ratio()));
  EXPECT_NEAR(snap.plurality_fraction(), 1.0, 1e-12);
}

TEST(Snapshot, UniformDistributionHasMaxEntropy) {
  const OpinionTable t({0, 1, 2, 3}, 4);
  const auto snap = snapshot_of(t);
  EXPECT_NEAR(snap.normalized_entropy(), 1.0, 1e-12);
}

}  // namespace
}  // namespace plurality
