// Tests for heterogeneous Poisson clocks (§4's "more general setting").

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/async_one_extra_bit.hpp"
#include "core/two_choices.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/heterogeneous.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

/// Tick counter reused from the engine tests, local copy.
class TickCounter {
 public:
  explicit TickCounter(std::uint64_t n)
      : table_(make_colors(n), 2), per_node_(n, 0) {}
  void on_tick(NodeId u, Xoshiro256&) { ++per_node_[u]; }
  std::uint64_t num_nodes() const noexcept { return per_node_.size(); }
  bool done() const noexcept { return false; }
  const OpinionTable& table() const noexcept { return table_; }
  std::uint64_t ticks_of(NodeId u) const { return per_node_[u]; }

 private:
  static std::vector<ColorId> make_colors(std::uint64_t n) {
    std::vector<ColorId> c(n, 0);
    c[0] = 1;
    return c;
  }
  OpinionTable table_;
  std::vector<std::uint64_t> per_node_;
};

TEST(Heterogeneous, FastNodesTickProportionallyMore) {
  const std::uint64_t n = 64;
  TickCounter proto(n);
  std::vector<double> rates(n, 1.0);
  for (NodeId u = 0; u < n / 2; ++u) rates[u] = 3.0;  // first half 3x
  Xoshiro256 rng(1);
  run_continuous_heterogeneous(proto, rng, rates, 200.0);
  double fast = 0.0;
  double slow = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    (u < n / 2 ? fast : slow) += static_cast<double>(proto.ticks_of(u));
  }
  EXPECT_NEAR(fast / slow, 3.0, 0.3);
}

TEST(Heterogeneous, UniformRatesMatchBaseModel) {
  const std::uint64_t n = 128;
  TickCounter proto(n);
  const auto rates = clock_rates::uniform(n);
  Xoshiro256 rng(2);
  const auto result =
      run_continuous_heterogeneous(proto, rng, rates, 50.0);
  EXPECT_NEAR(static_cast<double>(result.ticks), 50.0 * n,
              6.0 * std::sqrt(50.0 * n));
}

TEST(Heterogeneous, RejectsBadRates) {
  TickCounter proto(4);
  Xoshiro256 rng(3);
  const std::vector<double> wrong_size{1.0, 1.0};
  EXPECT_THROW(
      run_continuous_heterogeneous(proto, rng, wrong_size, 1.0),
      ContractViolation);
  const std::vector<double> zero_rate{1.0, 0.0, 1.0, 1.0};
  EXPECT_THROW(run_continuous_heterogeneous(proto, rng, zero_rate, 1.0),
               ContractViolation);
}

TEST(ClockRates, TwoSpeedPreservesMeanRate) {
  Xoshiro256 rng(4);
  const auto rates = clock_rates::two_speed(10000, 0.3, 0.25, rng);
  const double mean =
      std::accumulate(rates.begin(), rates.end(), 0.0) / 10000.0;
  EXPECT_NEAR(mean, 1.0, 1e-9);
  std::uint64_t slow = 0;
  for (const double r : rates) slow += (r < 0.5);
  EXPECT_EQ(slow, 3000u);
}

TEST(ClockRates, LogNormalMeanOneAndSpread) {
  Xoshiro256 rng(5);
  const auto rates = clock_rates::log_normal(20000, 0.5, rng);
  const double mean =
      std::accumulate(rates.begin(), rates.end(), 0.0) / 20000.0;
  EXPECT_NEAR(mean, 1.0, 0.02);
  // sigma = 0 degenerates to uniform.
  const auto flat = clock_rates::log_normal(100, 0.0, rng);
  for (const double r : flat) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(ClockRates, Contracts) {
  Xoshiro256 rng(6);
  EXPECT_THROW(clock_rates::two_speed(10, 1.0, 0.5, rng),
               ContractViolation);
  EXPECT_THROW(clock_rates::two_speed(10, 0.5, 1.5, rng),
               ContractViolation);
  EXPECT_THROW(clock_rates::log_normal(10, -1.0, rng),
               ContractViolation);
}

TEST(Heterogeneous, TwoChoicesStillConvergesUnderMildSkew) {
  const std::uint64_t n = 1024;
  const CompleteGraph g(n);
  Xoshiro256 rng(7);
  const auto rates = clock_rates::log_normal(n, 0.3, rng);
  TwoChoicesAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
  const auto result =
      run_continuous_heterogeneous(proto, rng, rates, 1e5);
  EXPECT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
}

TEST(Heterogeneous, AsyncOEBSurvivesMildSkew) {
  const std::uint64_t n = 2048;
  const CompleteGraph g(n);
  Xoshiro256 rng(8);
  const auto rates = clock_rates::two_speed(n, 0.1, 0.5, rng);
  auto proto = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_plurality_bias(n, 4, n / 4, rng));
  const auto result =
      run_continuous_heterogeneous(proto, rng, rates, 1e5);
  EXPECT_TRUE(result.consensus || proto.nodes_finished() == n);
  if (result.consensus) {
    EXPECT_EQ(result.winner, 0u);
  }
}

}  // namespace
}  // namespace plurality
