// Tests for the flat CSR topology view (graph/csr.hpp): structural
// agreement with every concrete family it is built from, bit-identical
// sampling where the representation is shared, and the GraphTopology
// contract the engines rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/complete.hpp"
#include "graph/csr.hpp"
#include "graph/factory.hpp"
#include "graph/ring.hpp"
#include "graph/torus.hpp"
#include "rng/xoshiro256.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

static_assert(GraphTopology<CsrTopology>);

TEST(CsrView, CompleteStaysImplicitAndSamplesBitIdentically) {
  const std::uint64_t n = 257;
  const CompleteGraph g(n);
  const AnyGraph any = CompleteGraph(n);
  const CsrTopology csr = make_csr_view(any);
  EXPECT_TRUE(csr.is_implicit_complete());
  EXPECT_EQ(csr.num_nodes(), n);
  EXPECT_EQ(csr.degree(0), n - 1);
  // Identical draw sequence: the view must be a drop-in replacement
  // for CompleteGraph on the clique experiments' RNG streams.
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 200; ++i) {
    const NodeId u = static_cast<NodeId>(i % n);
    EXPECT_EQ(csr.sample_neighbor(u, a), g.sample_neighbor(u, b));
  }
}

TEST(CsrView, ImplicitCompleteNeverSamplesSelf) {
  const CsrTopology csr = make_csr_view(AnyGraph{CompleteGraph(5)});
  Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    const NodeId u = static_cast<NodeId>(i % 5);
    const NodeId v = csr.sample_neighbor(u, rng);
    EXPECT_NE(v, u);
    EXPECT_LT(v, 5u);
  }
}

TEST(CsrView, RingMaterializesBothNeighbors) {
  const std::uint64_t n = 9;
  const RingGraph g(n);
  const AnyGraph any = RingGraph(n);
  const CsrTopology csr = make_csr_view(any);
  EXPECT_FALSE(csr.is_implicit_complete());
  EXPECT_EQ(csr.num_nodes(), n);
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(csr.degree(u), 2u);
    std::vector<NodeId> expected;
    g.append_neighbors(u, expected);
    const auto row = csr.neighbors(u);
    ASSERT_EQ(row.size(), expected.size());
    EXPECT_TRUE(std::equal(row.begin(), row.end(), expected.begin()));
  }
}

TEST(CsrView, TorusMaterializesAllFourNeighbors) {
  const TorusGraph g(4, 4);
  const AnyGraph any = TorusGraph(4, 4);
  const CsrTopology csr = make_csr_view(any);
  EXPECT_EQ(csr.num_nodes(), 16u);
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_EQ(csr.degree(u), 4u);
    std::vector<NodeId> expected;
    g.append_neighbors(u, expected);
    const auto row = csr.neighbors(u);
    ASSERT_EQ(row.size(), expected.size());
    EXPECT_TRUE(std::equal(row.begin(), row.end(), expected.begin()));
  }
}

TEST(CsrView, BorrowedViewMatchesAdjacencyFamiliesBitIdentically) {
  // er / regular / sbm share the AdjacencyList representation, so the
  // view borrows their rows and must sample identically to the
  // concrete graph for the same RNG stream.
  for (const GraphKind kind :
       {GraphKind::kErdosRenyi, GraphKind::kRandomRegular,
        GraphKind::kSbm}) {
    GraphSpec spec;
    spec.kind = kind;
    Xoshiro256 build_rng(99);
    const AnyGraph any = make_graph(spec, 512, build_rng);
    const CsrTopology csr = make_csr_view(any);
    std::visit(
        [&](const auto& g) {
          ASSERT_EQ(csr.num_nodes(), g.num_nodes());
          Xoshiro256 a(5);
          Xoshiro256 b(5);
          for (int i = 0; i < 300; ++i) {
            const NodeId u = static_cast<NodeId>(i % g.num_nodes());
            EXPECT_EQ(csr.degree(u), g.degree(u));
            EXPECT_EQ(csr.sample_neighbor(u, a), g.sample_neighbor(u, b))
                << graph_kind_name(kind);
          }
        },
        any);
  }
}

TEST(CsrView, SampledNeighborsStayInsideTheStoredRow) {
  GraphSpec spec;
  spec.kind = GraphKind::kSbm;
  Xoshiro256 build_rng(3);
  const AnyGraph any = make_graph(spec, 256, build_rng);
  const CsrTopology csr = make_csr_view(any);
  Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) {
    const NodeId u = static_cast<NodeId>(i % csr.num_nodes());
    const NodeId v = csr.sample_neighbor(u, rng);
    const auto row = csr.neighbors(u);
    EXPECT_NE(std::find(row.begin(), row.end(), v), row.end());
  }
}

TEST(CsrView, ImplicitCompleteRejectsRowEnumeration) {
  const CsrTopology csr = make_csr_view(AnyGraph{CompleteGraph(8)});
  EXPECT_THROW(csr.neighbors(0), ContractViolation);
}

TEST(CsrView, MoveTransfersOwnedStorageSafely) {
  const AnyGraph any = RingGraph(64);
  CsrTopology csr = make_csr_view(any);
  const CsrTopology moved = std::move(csr);
  EXPECT_EQ(moved.num_nodes(), 64u);
  EXPECT_EQ(moved.degree(0), 2u);
  const auto row = moved.neighbors(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], 63u);
  EXPECT_EQ(row[1], 1u);
}

}  // namespace
}  // namespace plurality
