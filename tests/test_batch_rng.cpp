// Tests for the SIMD-friendly batch RNG layer (rng/batch.hpp) and the
// engines consuming it: fixed-seed determinism of Xoshiro256Block,
// statistical gates (KS + moments) on every fill kernel against the
// scalar transforms they must reproduce in distribution, and
// engine-level equivalence — --sampling=batch runs are not
// bit-identical to scalar runs (different draw schedule BY DESIGN) but
// their consensus-time distributions must pass the shared gates.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/batch.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/sharded_engine.hpp"
#include "stat_gates.hpp"
#include "stats/quantiles.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

TEST(Xoshiro256Block, DeterministicForFixedSeed) {
  Xoshiro256Block a(12345);
  Xoshiro256Block b(12345);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
  Xoshiro256Block c(12346);
  int diff = 0;
  for (int i = 0; i < 64; ++i) diff += a() != c() ? 1 : 0;
  EXPECT_GT(diff, 32);  // different seed => different stream
}

TEST(Xoshiro256Block, FillRawMatchesScalarNextCalls) {
  // fill_raw and repeated operator() must walk the same interleaved
  // word stream: batch consumers and scalar transforms see one rng.
  Xoshiro256Block a(777);
  Xoshiro256Block b(777);
  std::vector<std::uint64_t> words(1000);
  a.fill_raw(words);
  for (const std::uint64_t w : words) ASSERT_EQ(w, b());
}

TEST(Xoshiro256Block, SatisfiesScalarDistributionTransforms) {
  // The block is a BitGenerator64, so the scalar distribution layer
  // runs on it unchanged; sanity-check bounds.
  Xoshiro256Block block(9);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = uniform_below(block, 17);
    ASSERT_LT(v, 17u);
    const double u = uniform_unit(block);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Block, UniformBelowKernelPassesGates) {
  // Batch node draws vs scalar uniform_below from an independent
  // stream: same distribution (KS on the integer values).
  const std::uint64_t bound = 1000;
  const std::size_t count = 4096;
  Xoshiro256Block block(31);
  std::vector<NodeId> batch(count);
  block.fill_uniform_below(bound, batch);

  Xoshiro256 scalar(32);
  std::vector<double> a(count);
  std::vector<double> b(count);
  for (std::size_t i = 0; i < count; ++i) {
    a[i] = static_cast<double>(batch[i]);
    ASSERT_LT(batch[i], bound);
    b[i] = static_cast<double>(uniform_below(scalar, bound));
  }
  EXPECT_LT(stat_gates::ks_statistic(a, b),
            stat_gates::ks_critical(count, count, 1e-3));
}

TEST(Xoshiro256Block, UniformPairKernelPassesGatesAndBounds) {
  const std::uint64_t bound = 257;
  const std::size_t count = 4096;
  Xoshiro256Block block(41);
  std::vector<NodeId> first(count);
  std::vector<NodeId> second(count);
  block.fill_uniform_pairs(bound, first, second);

  std::vector<double> a;
  std::vector<double> b;
  a.reserve(2 * count);
  Xoshiro256 scalar(42);
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_LT(first[i], bound);
    ASSERT_LT(second[i], bound);
    a.push_back(static_cast<double>(first[i]));
    a.push_back(static_cast<double>(second[i]));
    b.push_back(static_cast<double>(uniform_below(scalar, bound)));
    b.push_back(static_cast<double>(uniform_below(scalar, bound)));
  }
  EXPECT_LT(stat_gates::ks_statistic(a, b),
            stat_gates::ks_critical(a.size(), b.size(), 1e-3));
}

TEST(Xoshiro256Block, ExponentialKernelMatchesUnitMoments) {
  const std::size_t count = 1 << 15;
  Xoshiro256Block block(51);
  std::vector<double> waits(count);
  block.fill_exponential_unit(waits);
  for (const double w : waits) ASSERT_GE(w, 0.0);
  const auto m = stat_gates::moments(waits);
  // Exp(1): mean 1, variance 1. SE of the mean is 1/sqrt(count) ~
  // 0.0055; allow 5 sigma. Variance concentrates at a similar rate.
  EXPECT_NEAR(m.mean, 1.0, 0.03);
  EXPECT_NEAR(m.variance, 1.0, 0.15);
}

TEST(Xoshiro256Block, PoissonKernelMatchesMoments) {
  const std::size_t count = 1 << 14;
  for (const double mean : {0.25, 4.0, 64.0}) {
    Xoshiro256Block block(61);
    std::vector<std::uint64_t> draws(count);
    block.fill_poisson(mean, draws);
    std::vector<double> xs(count);
    for (std::size_t i = 0; i < count; ++i) {
      xs[i] = static_cast<double>(draws[i]);
    }
    const auto m = stat_gates::moments(xs);
    // Poisson(mean): mean == variance == `mean`. 6-sigma windows.
    const double se = std::sqrt(mean / static_cast<double>(count));
    EXPECT_NEAR(m.mean, mean, 6.0 * se) << "mean=" << mean;
    EXPECT_NEAR(m.variance, mean, 0.2 * mean + 0.1) << "mean=" << mean;
  }
}

/// Consensus-time samples for voter on a complete graph under the
/// superposition engine, scalar vs batch node/wait draws.
std::vector<double> superposition_times(SamplingMode mode,
                                        std::uint64_t seed_base) {
  const std::uint64_t n = 96;
  const CompleteGraph g(n);
  std::vector<double> times;
  for (std::uint64_t rep = 0; rep < 32; ++rep) {
    Xoshiro256 rng(seed_base + rep);
    VoterAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    const auto result =
        mode == SamplingMode::kBatch
            ? run_continuous_batch(proto, rng, /*max_time=*/1e6)
            : run_continuous(proto, rng, /*max_time=*/1e6);
    EXPECT_TRUE(result.consensus);
    times.push_back(result.time);
  }
  return times;
}

TEST(BatchSampling, SuperpositionBatchMatchesScalarDistribution) {
  const auto scalar = superposition_times(SamplingMode::kScalar, 100);
  const auto batch = superposition_times(SamplingMode::kBatch, 500);
  EXPECT_LT(stat_gates::ks_statistic(scalar, batch), stat_gates::kKsGate);
  EXPECT_LT(stat_gates::mean_z(summarize(scalar), summarize(batch)),
            stat_gates::kMeanZGate);
}

TEST(BatchSampling, SuperpositionBatchDeterministicForFixedSeed) {
  const auto a = superposition_times(SamplingMode::kBatch, 900);
  const auto b = superposition_times(SamplingMode::kBatch, 900);
  EXPECT_EQ(a, b);
}

/// Consensus-time samples for two-choices under the sharded engine
/// with the given tuning.
std::vector<double> sharded_times(const EngineTuning& tuning,
                                  std::uint64_t seed_base) {
  const std::uint64_t n = 128;
  const CompleteGraph g(n);
  std::vector<double> times;
  for (std::uint64_t rep = 0; rep < 32; ++rep) {
    Xoshiro256 rng(seed_base + rep);
    TwoChoicesAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    const auto result = run_sharded(proto, /*seed=*/seed_base + rep,
                                    /*num_shards=*/3, /*max_time=*/1e6,
                                    NullObserver{}, /*sample_every=*/1.0,
                                    /*epoch_length=*/0.25,
                                    /*snapshot_reads=*/false,
                                    /*perturb=*/nullptr, tuning);
    EXPECT_TRUE(result.consensus);
    times.push_back(result.time);
  }
  return times;
}

TEST(BatchSampling, ShardedBatchMatchesScalarDistribution) {
  EngineTuning scalar;
  EngineTuning batch;
  batch.sampling = SamplingMode::kBatch;
  const auto a = sharded_times(scalar, 1000);
  const auto b = sharded_times(batch, 2000);
  EXPECT_LT(stat_gates::ks_statistic(a, b), stat_gates::kKsGate);
  EXPECT_LT(stat_gates::mean_z(summarize(a), summarize(b)),
            stat_gates::kMeanZGate);
}

TEST(BatchSampling, ShardedBatchDeterministicForFixedSeedAndShards) {
  EngineTuning batch;
  batch.sampling = SamplingMode::kBatch;
  const auto a = sharded_times(batch, 3000);
  const auto b = sharded_times(batch, 3000);
  EXPECT_EQ(a, b);
}

TEST(BatchSampling, ScalarTuningDefaultsPreserveHistoricalTrajectories) {
  // EngineTuning{} must be the historical engine bit-for-bit: a run
  // with the defaulted tuning parameter equals a run without it.
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  const auto run_once = [&](bool pass_tuning) {
    Xoshiro256 rng(7);
    TwoChoicesAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    if (pass_tuning) {
      return run_sharded(proto, 42, 3, 1e6, NullObserver{}, 1.0, 0.25,
                         false, nullptr, EngineTuning{});
    }
    return run_sharded(proto, 42, 3, 1e6);
  };
  const auto a = run_once(false);
  const auto b = run_once(true);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.winner, b.winner);
}

TEST(SamplingModeParsing, NamesRoundTripAndBogusValueIsRejected) {
  EXPECT_EQ(parse_sampling_mode("scalar"), SamplingMode::kScalar);
  EXPECT_EQ(parse_sampling_mode("batch"), SamplingMode::kBatch);
  EXPECT_STREQ(sampling_mode_name(SamplingMode::kScalar), "scalar");
  EXPECT_STREQ(sampling_mode_name(SamplingMode::kBatch), "batch");
  try {
    parse_sampling_mode("simd");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--sampling="), std::string::npos);
  }
}

}  // namespace
}  // namespace plurality
