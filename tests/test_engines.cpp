// Tests for the engine drivers: synchronous rounds, sequential
// asynchronous steps, continuous Poisson clocks (both the superposition
// and the reference heap simulation), and the messaging driver with
// delayed deliveries.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/delayed.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/observers.hpp"
#include "sim/sequential_engine.hpp"
#include "sim/sync_driver.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

/// A protocol that never converges and counts its ticks: lets the tests
/// pin down engine mechanics (budgets, cadence) exactly.
class TickCounter {
 public:
  explicit TickCounter(std::uint64_t n)
      : table_(make_colors(n), 2), per_node_(n, 0) {}

  void on_tick(NodeId u, Xoshiro256&) { ++per_node_[u]; }
  std::uint64_t num_nodes() const noexcept { return per_node_.size(); }
  bool done() const noexcept { return false; }
  const OpinionTable& table() const noexcept { return table_; }

  std::uint64_t total_ticks() const {
    std::uint64_t total = 0;
    for (const auto t : per_node_) total += t;
    return total;
  }
  std::uint64_t ticks_of(NodeId u) const { return per_node_[u]; }

 private:
  static std::vector<ColorId> make_colors(std::uint64_t n) {
    std::vector<ColorId> c(n, 0);
    c[0] = 1;  // keep two colors alive so done() stays false
    return c;
  }
  OpinionTable table_;
  std::vector<std::uint64_t> per_node_;
};

static_assert(AsyncProtocol<TickCounter>);
static_assert(AsyncProtocol<TwoChoicesAsync<CompleteGraph>>);
static_assert(SyncProtocol<TwoChoicesSync<CompleteGraph>>);
static_assert(MessagingProtocol<TwoChoicesAsyncDelayed<CompleteGraph>>);

TEST(SequentialEngine, ExecutesExactlyMaxTimeTimesN) {
  TickCounter proto(64);
  Xoshiro256 rng(1);
  const auto result = run_sequential(proto, rng, 10.0);
  EXPECT_EQ(result.ticks, 640u);
  EXPECT_DOUBLE_EQ(result.time, 10.0);
  EXPECT_FALSE(result.consensus);
  EXPECT_EQ(proto.total_ticks(), 640u);
}

TEST(SequentialEngine, TicksSpreadUniformly) {
  TickCounter proto(16);
  Xoshiro256 rng(2);
  run_sequential(proto, rng, 1000.0);
  // Each node expects 1000 ticks, sd ~ 31; allow 6 sigma.
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_NEAR(static_cast<double>(proto.ticks_of(u)), 1000.0, 190.0);
  }
}

TEST(SequentialEngine, StopsOnConsensus) {
  const CompleteGraph g(64);
  Xoshiro256 rng(3);
  VoterAsync proto(g, assign_two_colors(64, 60, rng));
  const auto result = run_sequential(proto, rng, 1e6);
  EXPECT_TRUE(result.consensus);
  EXPECT_LT(result.time, 1e6);
  EXPECT_TRUE(proto.table().has_consensus());
}

TEST(SequentialEngine, ObserverCadence) {
  TickCounter proto(10);
  Xoshiro256 rng(4);
  std::vector<double> sample_times;
  run_sequential(
      proto, rng, 5.0,
      [&](double t, const TickCounter&) { sample_times.push_back(t); },
      1.0);
  // Samples at t = 0,1,2,3,4 plus the final sample at t = 5.
  ASSERT_EQ(sample_times.size(), 6u);
  EXPECT_DOUBLE_EQ(sample_times.front(), 0.0);
  EXPECT_DOUBLE_EQ(sample_times.back(), 5.0);
}

TEST(SequentialEngine, Contracts) {
  TickCounter proto(4);
  Xoshiro256 rng(5);
  EXPECT_THROW(run_sequential(proto, rng, 0.0), ContractViolation);
  EXPECT_THROW(run_sequential(proto, rng, 1.0, NullObserver{}, 0.0),
               ContractViolation);
}

TEST(ContinuousEngine, TickCountConcentratesAroundNT) {
  TickCounter proto(256);
  Xoshiro256 rng(6);
  const double horizon = 50.0;
  const auto result = run_continuous(proto, rng, horizon);
  // Total ticks ~ Poisson(n * t): mean 12800, sd ~ 113; allow 6 sigma.
  EXPECT_NEAR(static_cast<double>(result.ticks), 256.0 * horizon, 700.0);
  EXPECT_LE(result.time, horizon);
}

TEST(ContinuousEngine, PerNodeTicksArePoissonLike) {
  TickCounter proto(64);
  Xoshiro256 rng(7);
  const double horizon = 400.0;
  run_continuous(proto, rng, horizon);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (NodeId u = 0; u < 64; ++u) {
    const auto t = static_cast<double>(proto.ticks_of(u));
    sum += t;
    sum_sq += t * t;
  }
  const double mean = sum / 64.0;
  const double var = sum_sq / 64.0 - mean * mean;
  EXPECT_NEAR(mean, horizon, 20.0);
  // Poisson: variance == mean. Wide tolerance, 64 nodes only.
  EXPECT_NEAR(var, horizon, 200.0);
}

TEST(ContinuousEngine, StopsOnConsensus) {
  const CompleteGraph g(64);
  Xoshiro256 rng(8);
  TwoChoicesAsync proto(g, assign_two_colors(64, 56, rng));
  const auto result = run_continuous(proto, rng, 1e6);
  EXPECT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
  EXPECT_LT(result.time, 1e6);
}

TEST(ContinuousEngine, TimeIsMonotoneInObserver) {
  TickCounter proto(32);
  Xoshiro256 rng(9);
  double last = -1.0;
  run_continuous(
      proto, rng, 20.0,
      [&](double t, const TickCounter&) {
        EXPECT_GE(t, last);
        last = t;
      },
      2.0);
  EXPECT_GT(last, 0.0);
}

TEST(SequentialEngine, HorizonCutoffReportsMaxTime) {
  // A non-integer max_time * n used to report floor(max_time*n)/n; the
  // horizon actually simulated is max_time.
  TickCounter proto(64);
  Xoshiro256 rng(16);
  const auto result = run_sequential(proto, rng, 10.3);
  EXPECT_DOUBLE_EQ(result.time, 10.3);
  EXPECT_EQ(result.ticks, static_cast<std::uint64_t>(10.3 * 64.0));
}

TEST(ContinuousEngine, HorizonCutoffReportsMaxTime) {
  // The run is cut off by the horizon: result.time is the simulated
  // horizon, not the timestamp of the last processed tick.
  TickCounter proto(32);
  Xoshiro256 rng(17);
  const auto result = run_continuous(proto, rng, 12.5);
  EXPECT_DOUBLE_EQ(result.time, 12.5);
  TickCounter heap_proto(32);
  Xoshiro256 heap_rng(17);
  const auto heap_result = run_continuous_heap(heap_proto, heap_rng, 12.5);
  EXPECT_DOUBLE_EQ(heap_result.time, 12.5);
}

TEST(ContinuousEngine, ConsensusStopReportsEventTimeNotHorizon) {
  const CompleteGraph g(64);
  Xoshiro256 rng(18);
  VoterAsync proto(g, assign_two_colors(64, 60, rng));
  const auto result = run_continuous(proto, rng, 1e6);
  ASSERT_TRUE(result.consensus);
  EXPECT_LT(result.time, 1e6);
  EXPECT_GT(result.time, 0.0);
}

TEST(ContinuousEngine, SuperpositionIsDeterministicForFixedSeed) {
  const CompleteGraph g(256);
  const auto run_once = [&] {
    Xoshiro256 rng(99);
    TwoChoicesAsync proto(g, assign_two_colors(256, 192, rng));
    return run_continuous(proto, rng, 1e6);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.consensus, b.consensus);
  EXPECT_EQ(a.winner, b.winner);
}

TEST(HeapEngine, TickCountConcentratesAroundNT) {
  TickCounter proto(256);
  Xoshiro256 rng(19);
  const double horizon = 50.0;
  const auto result = run_continuous_heap(proto, rng, horizon);
  // Total ticks ~ Poisson(n * t): mean 12800, sd ~ 113; allow 6 sigma.
  EXPECT_NEAR(static_cast<double>(result.ticks), 256.0 * horizon, 700.0);
  EXPECT_DOUBLE_EQ(result.time, horizon);
}

TEST(HeapEngine, StopsOnConsensus) {
  const CompleteGraph g(64);
  Xoshiro256 rng(20);
  TwoChoicesAsync proto(g, assign_two_colors(64, 56, rng));
  const auto result = run_continuous_heap(proto, rng, 1e6);
  EXPECT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
  EXPECT_LT(result.time, 1e6);
}

/// Messaging protocol that posts a fixed fan of delayed messages on the
/// very first tick and records the order deliveries come back in; pins
/// down the engine's (delivery time, post order) sequencing exactly.
class MessageOrderRecorder {
 public:
  using Message = int;

  explicit MessageOrderRecorder(std::uint64_t n)
      : table_(make_colors(n), 2) {}

  void on_tick(NodeId, Xoshiro256&, double now, Outbox<int>& out) {
    if (posted_) return;
    posted_ = true;
    post_time_ = now;
    out.post(1, 5.0, 0);
    out.post(1, 1.0, 1);
    out.post(1, 1.0, 2);  // exact tie with message 1: post order decides
    out.post(1, 3.0, 3);
  }

  void on_message(NodeId, const int& m, Xoshiro256&, double now,
                  Outbox<int>&) {
    received_.push_back(m);
    delivery_times_.push_back(now);
  }

  std::uint64_t num_nodes() const noexcept { return table_.num_nodes(); }
  bool done() const noexcept { return received_.size() == 4; }
  const OpinionTable& table() const noexcept { return table_; }

  double post_time() const noexcept { return post_time_; }
  const std::vector<int>& received() const noexcept { return received_; }
  const std::vector<double>& delivery_times() const noexcept {
    return delivery_times_;
  }

 private:
  static std::vector<ColorId> make_colors(std::uint64_t n) {
    std::vector<ColorId> c(n, 0);
    c[0] = 1;
    return c;
  }
  OpinionTable table_;
  std::vector<int> received_;
  std::vector<double> delivery_times_;
  double post_time_ = 0.0;
  bool posted_ = false;
};

static_assert(MessagingProtocol<MessageOrderRecorder>);

TEST(MessagingEngine, DeliveriesArriveInTimeThenPostOrder) {
  MessageOrderRecorder proto(8);
  Xoshiro256 rng(21);
  const auto result = run_continuous_messaging(proto, rng, 1e4);
  ASSERT_EQ(proto.received().size(), 4u);
  // Delays 5, 1, 1, 3 posted in ids 0..3: arrival must be 1, 2 (tie in
  // post order), 3, 0.
  EXPECT_EQ(proto.received(), (std::vector<int>{1, 2, 3, 0}));
  const double t0 = proto.post_time();
  EXPECT_DOUBLE_EQ(proto.delivery_times()[0], t0 + 1.0);
  EXPECT_DOUBLE_EQ(proto.delivery_times()[1], t0 + 1.0);
  EXPECT_DOUBLE_EQ(proto.delivery_times()[2], t0 + 3.0);
  EXPECT_DOUBLE_EQ(proto.delivery_times()[3], t0 + 5.0);
  // done() fired on the last delivery, so its time is the reported one.
  EXPECT_DOUBLE_EQ(result.time, t0 + 5.0);
}

TEST(MessagingEngine, HorizonCutoffReportsMaxTime) {
  MessageOrderRecorder proto(8);
  Xoshiro256 rng(22);
  // Horizon shorter than the longest delay: the run is cut off.
  const auto result = run_continuous_messaging(proto, rng, 2.0);
  EXPECT_DOUBLE_EQ(result.time, 2.0);
  EXPECT_LT(proto.received().size(), 4u);
}

TEST(MessagingEngine, DelayedTwoChoicesReachesConsensus) {
  const CompleteGraph g(128);
  Xoshiro256 rng(10);
  const ExponentialLatency latency(0.25);
  TwoChoicesAsyncDelayed proto(g, assign_two_colors(128, 112, rng));
  const auto result = run_continuous_messaging(proto, latency, rng, 1e5);
  EXPECT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
}

TEST(MessagingEngine, HugeDelaysStallProgress) {
  const CompleteGraph g(64);
  Xoshiro256 rng(11);
  // Mean delay 1000 time units >> horizon: almost no answer arrives, so
  // almost no node ever flips.
  const ExponentialLatency latency(1000.0);
  TwoChoicesAsyncDelayed proto(g, assign_two_colors(64, 40, rng));
  const auto result = run_continuous_messaging(proto, latency, rng, 5.0);
  EXPECT_FALSE(result.consensus);
  EXPECT_GE(proto.table().support(1), 15u);  // minority barely dented
}

TEST(SyncDriver, RunsUntilConsensusAndReportsRounds) {
  const CompleteGraph g(128);
  Xoshiro256 rng(12);
  TwoChoicesSync proto(g, assign_two_colors(128, 112, rng));
  const auto result = run_sync(proto, rng, 10000);
  EXPECT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
  EXPECT_EQ(result.rounds, proto.rounds());
  EXPECT_GT(result.rounds, 0u);
}

TEST(SyncDriver, RespectsRoundBudget) {
  const CompleteGraph g(128);
  Xoshiro256 rng(13);
  // Zero bias, many colors: 3 rounds will not reach consensus.
  TwoChoicesSync proto(g, assign_equal(128, 16, rng));
  const auto result = run_sync(proto, rng, 3);
  EXPECT_EQ(result.rounds, 3u);
  EXPECT_FALSE(result.consensus);
}

TEST(SyncDriver, ObserverSeesEveryRound) {
  const CompleteGraph g(32);
  Xoshiro256 rng(14);
  VoterSync proto(g, assign_two_colors(32, 28, rng));
  std::vector<double> rounds_seen;
  run_sync(proto, rng, 5,
           [&](double r, const VoterSync<CompleteGraph>&) {
             rounds_seen.push_back(r);
           });
  // done-after-r rounds: observer fires before each round + once at end.
  ASSERT_GE(rounds_seen.size(), 2u);
  EXPECT_DOUBLE_EQ(rounds_seen.front(), 0.0);
  for (std::size_t i = 1; i < rounds_seen.size(); ++i) {
    EXPECT_DOUBLE_EQ(rounds_seen[i], rounds_seen[i - 1] + 1.0);
  }
}

TEST(TraceObserver, RecordsSnapshots) {
  const CompleteGraph g(64);
  Xoshiro256 rng(15);
  TwoChoicesAsync proto(g, assign_two_colors(64, 48, rng));
  TraceObserver trace;
  run_sequential(proto, rng, 100.0, std::ref(trace), 1.0);
  ASSERT_GE(trace.points().size(), 2u);
  EXPECT_EQ(trace.points().front().snapshot.n, 64u);
  // Supports in each snapshot sum to n.
  for (const auto& pt : trace.points()) {
    std::uint64_t sum = 0;
    for (const auto s : pt.snapshot.sorted_supports) sum += s;
    EXPECT_EQ(sum, 64u);
  }
}

}  // namespace
}  // namespace plurality
