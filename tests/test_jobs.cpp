// Tests for the work-stealing job executor (src/jobs/): dependency
// order on diamond / fan-out / fan-in graphs, the steal path under a
// deliberately unbalanced load, park/unpark with no lost wakeups over
// many tiny graphs, exception propagation (first throw wins, queued
// jobs skipped), RAII shutdown with work still queued, the zero-worker
// inline degradation, cycle detection, the thread-budget handshake,
// and SweepRunner's determinism / ordering contract.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "experiment/runner.hpp"
#include "jobs/budget.hpp"
#include "jobs/executor.hpp"
#include "jobs/graph.hpp"
#include "rng/seed.hpp"
#include "support/assert.hpp"

namespace plurality::jobs {
namespace {

// ---- JobGraph structure ----------------------------------------------

TEST(JobGraph, AddAndDependBookkeeping) {
  JobGraph graph;
  const auto a = graph.add([] {});
  const auto b = graph.add([] {});
  graph.depend(b, a);
  EXPECT_EQ(graph.size(), 2u);
  EXPECT_FALSE(graph.done());
  EXPECT_FALSE(graph.failed());
}

TEST(JobGraph, RejectsSelfDependencyAndEmptyJob) {
  JobGraph graph;
  const auto a = graph.add([] {});
  EXPECT_THROW(graph.depend(a, a), ContractViolation);
  EXPECT_THROW(graph.add(std::function<void()>{}), ContractViolation);
}

// ---- dependency order ------------------------------------------------

// Runs the graph on `workers` threads and returns per-job finish
// stamps from a shared atomic counter.
std::vector<std::uint64_t> run_stamped(
    unsigned workers, std::vector<std::function<void()>>& bodies,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  JobGraph graph;
  std::atomic<std::uint64_t> clock{0};
  std::vector<std::uint64_t> stamp(bodies.size(), 0);
  std::vector<JobGraph::JobId> ids;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    ids.push_back(graph.add([&, i] {
      bodies[i]();
      stamp[i] = clock.fetch_add(1) + 1;
    }));
  }
  for (const auto& [job, prereq] : edges) {
    graph.depend(ids[job], ids[prereq]);
  }
  Executor executor(workers);
  executor.run(graph);
  EXPECT_TRUE(graph.done());
  return stamp;
}

TEST(Executor, DiamondRespectsDependencies) {
  for (const unsigned workers : {0u, 1u, 4u}) {
    std::vector<std::function<void()>> bodies(4, [] {});
    // 0 -> {1, 2} -> 3
    const auto stamp = run_stamped(
        workers, bodies, {{1, 0}, {2, 0}, {3, 1}, {3, 2}});
    EXPECT_LT(stamp[0], stamp[1]);
    EXPECT_LT(stamp[0], stamp[2]);
    EXPECT_GT(stamp[3], stamp[1]);
    EXPECT_GT(stamp[3], stamp[2]);
  }
}

TEST(Executor, FanOutFanInRespectsDependencies) {
  constexpr std::size_t kFan = 32;
  for (const unsigned workers : {0u, 2u, 8u}) {
    std::vector<std::function<void()>> bodies(kFan + 2, [] {});
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 1; i <= kFan; ++i) {
      edges.push_back({i, 0});          // fan-out from the root
      edges.push_back({kFan + 1, i});   // fan-in to the sink
    }
    const auto stamp = run_stamped(workers, bodies, edges);
    for (std::size_t i = 1; i <= kFan; ++i) {
      EXPECT_LT(stamp[0], stamp[i]);
      EXPECT_LT(stamp[i], stamp[kFan + 1]);
    }
    EXPECT_EQ(stamp[kFan + 1], kFan + 2);  // sink finished last
  }
}

// ---- steal path ------------------------------------------------------

TEST(Executor, StealsAcrossWorkersUnderUnbalancedLoad) {
  // A root job fans out hundreds of continuations. The finishing worker
  // pushes all of them onto its OWN deque, so every other worker (and
  // the waiting caller) can only obtain work by stealing. Seeing more
  // than one executing thread proves the steal path moved jobs.
  constexpr int kJobs = 512;
  JobGraph graph;
  std::mutex mutex;
  std::set<std::thread::id> executors_seen;
  const auto root = graph.add([] {});
  for (int i = 0; i < kJobs; ++i) {
    const auto leaf = graph.add([&] {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        executors_seen.insert(std::this_thread::get_id());
      }
      // Enough work that the queue cannot drain before thieves arrive.
      volatile std::uint64_t sink = 0;
      for (int spin = 0; spin < 20000; ++spin) {
        sink = sink + static_cast<std::uint64_t>(spin);
      }
    });
    graph.depend(leaf, root);
  }
  Executor executor(3);
  executor.run(graph);
  EXPECT_TRUE(graph.done());
  // The caller helps too, so with 3 workers up to 4 threads execute;
  // on a single-core box the schedule may still time-slice across
  // workers. Require only that work left the owning deque.
  EXPECT_GE(executors_seen.size(), 2u);
}

// ---- park/unpark -----------------------------------------------------

TEST(Executor, ManySmallGraphsNoLostWakeups) {
  // Each tiny graph parks the workers before the next submission; a
  // lost wakeup would hang this loop (the 2-job graphs cannot finish
  // without a worker or the helping caller picking them up).
  Executor executor(2);
  for (int round = 0; round < 300; ++round) {
    JobGraph graph;
    std::atomic<int> ran{0};
    const auto a = graph.add([&] { ran.fetch_add(1); });
    const auto b = graph.add([&] { ran.fetch_add(1); });
    graph.depend(b, a);
    executor.run(graph);
    ASSERT_EQ(ran.load(), 2);
  }
}

// ---- exceptions ------------------------------------------------------

TEST(Executor, ExceptionPropagatesAndSkipsQueuedJobs) {
  JobGraph graph;
  std::atomic<int> downstream_ran{0};
  const auto boom = graph.add([] { throw std::runtime_error("boom"); });
  // A long chain behind the throwing job: all of it must be skipped,
  // yet the graph still drains (done() true) so wait() can rethrow.
  auto prev = boom;
  for (int i = 0; i < 50; ++i) {
    const auto next = graph.add([&] { downstream_ran.fetch_add(1); });
    graph.depend(next, prev);
    prev = next;
  }
  Executor executor(2);
  EXPECT_THROW(executor.run(graph), std::runtime_error);
  EXPECT_TRUE(graph.done());
  EXPECT_TRUE(graph.failed());
  EXPECT_EQ(downstream_ran.load(), 0);
}

TEST(Executor, FirstExceptionWins) {
  JobGraph graph;
  graph.add([] { throw std::runtime_error("first"); });
  Executor executor(0);  // inline: deterministic single throw
  try {
    executor.run(graph);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

// ---- shutdown --------------------------------------------------------

TEST(Executor, RaiiShutdownWithQueuedWork) {
  // Destroy the executor while a deep chain is still queued; the
  // destructor must stop and join without executing everything and
  // without touching freed state. The graph outlives the executor.
  JobGraph graph;
  std::atomic<int> ran{0};
  auto prev = graph.add([&] { ran.fetch_add(1); });
  for (int i = 0; i < 10000; ++i) {
    const auto next = graph.add([&] { ran.fetch_add(1); });
    graph.depend(next, prev);
    prev = next;
  }
  {
    Executor executor(2);
    executor.submit(graph);
    // No wait: the destructor runs with most of the chain pending.
  }
  EXPECT_LE(ran.load(), 10001);
}

// ---- zero workers ----------------------------------------------------

TEST(Executor, ZeroWorkersRunsInlineInReleaseOrder) {
  JobGraph graph;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    graph.add([&order, i] { order.push_back(i); });
  }
  Executor executor(0);
  executor.run(graph);
  // Independent jobs are injected FIFO and executed by the caller in
  // submission order — the serial reference schedule.
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, ZeroWorkersDetectsCycle) {
  JobGraph graph;
  const auto a = graph.add([] {});
  const auto b = graph.add([] {});
  graph.depend(a, b);
  graph.depend(b, a);
  Executor executor(0);
  EXPECT_THROW(executor.run(graph), ContractViolation);
}

// ---- thread budget ---------------------------------------------------

TEST(ThreadBudget, GrantsUpToCapAndRestoresOnRelease) {
  ThreadBudget budget;
  budget.configure(4);  // 3 tokens beyond the calling thread
  EXPECT_EQ(budget.limit(), 4u);
  EXPECT_EQ(budget.acquire(2), 2u);
  EXPECT_EQ(budget.acquire(5), 1u);  // partial grant
  EXPECT_EQ(budget.acquire(1), 0u);  // exhausted, never blocks
  budget.release(1);
  EXPECT_EQ(budget.acquire(9), 1u);
  budget.release(3);
  EXPECT_EQ(budget.available(), 3);
}

TEST(ThreadBudget, ConfigurePreservesOutstandingGrants) {
  ThreadBudget budget;
  budget.configure(8);
  ASSERT_EQ(budget.acquire(4), 4u);
  budget.configure(6);  // 5 workers allowed, 4 already out
  EXPECT_EQ(budget.acquire(9), 1u);
  budget.configure(3);  // over-committed: no new grants...
  EXPECT_EQ(budget.acquire(1), 0u);
  budget.release(5);  // ...until the old holders return tokens
  EXPECT_EQ(budget.acquire(9), 2u);
  budget.release(2);
}

TEST(ThreadBudget, ExecutorClampsToBudgetGrant) {
  ThreadBudget budget;
  budget.configure(3);  // 2 worker tokens
  Executor executor(8, &budget);
  EXPECT_EQ(executor.workers(), 2u);
  EXPECT_EQ(budget.acquire(1), 0u);  // executor holds both tokens
  JobGraph graph;
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) graph.add([&] { ran.fetch_add(1); });
  executor.run(graph);
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadBudget, UnconfiguredBudgetIsUnlimited) {
  ThreadBudget budget;
  EXPECT_EQ(budget.limit(), 0u);
  EXPECT_EQ(budget.acquire(64), 64u);
  budget.release(64);
}

// ---- SweepRunner -----------------------------------------------------

TEST(SweepRunner, MatchesSerialScheduleAndFinishOrder) {
  // The same two-point sweep under the serial path (threads=1), a
  // chained cap (threads=2), and full width (threads=0) must hand
  // identical per-slot samples to finish callbacks, in declaration
  // order — the contract the experiment layer's records rest on.
  const auto run_with = [](unsigned threads) {
    SweepRunner sweep(threads);
    std::vector<std::vector<std::vector<double>>> results;
    std::vector<int> finish_order;
    for (int point = 0; point < 3; ++point) {
      sweep.add_point(
          5, 2, SeedSequence(99).child(point),
          [](std::uint64_t rep, Xoshiro256& rng) {
            return std::vector<double>{
                static_cast<double>(rng.next() % 1000),
                static_cast<double>(rep)};
          },
          [&results, &finish_order, point](const auto& by_slot) {
            results.push_back(by_slot);
            finish_order.push_back(point);
          });
    }
    sweep.run();
    return std::pair{results, finish_order};
  };

  const auto [serial, serial_order] = run_with(1);
  ASSERT_EQ(serial.size(), 3u);
  EXPECT_EQ(serial_order, (std::vector<int>{0, 1, 2}));
  // Slot 1 carries the rep index: proves per-rep slots land in rep
  // order, not completion order.
  for (const auto& by_slot : serial) {
    for (std::uint64_t rep = 0; rep < 5; ++rep) {
      EXPECT_EQ(by_slot[1][rep], static_cast<double>(rep));
    }
  }
  for (const unsigned threads : {2u, 0u}) {
    const auto [parallel, parallel_order] = run_with(threads);
    EXPECT_EQ(parallel, serial);
    EXPECT_EQ(parallel_order, serial_order);
  }
}

TEST(SweepRunner, PropagatesBodyExceptions) {
  SweepRunner sweep(0);
  bool finished = false;
  sweep.add_point(
      2, 1, SeedSequence(1),
      [](std::uint64_t, Xoshiro256&) -> std::vector<double> {
        throw std::runtime_error("sweep boom");
      },
      [&finished](const auto&) { finished = true; });
  EXPECT_THROW(sweep.run(), std::runtime_error);
  EXPECT_FALSE(finished);
}

TEST(RunRepetitions, IdenticalAcrossJobGraphAndSerialPaths) {
  const SeedSequence seeds(1234);
  const auto body = [](std::uint64_t, Xoshiro256& rng) {
    return static_cast<double>(rng.next() % 100000);
  };
  const auto serial = run_repetitions(32, seeds, body, 1);
  for (const unsigned threads : {0u, 2u, 8u}) {
    EXPECT_EQ(run_repetitions(32, seeds, body, threads), serial);
  }
}

}  // namespace
}  // namespace plurality::jobs
