// Tests for the synchronous OneExtraBit protocol (§2): phase machine
// bookkeeping, bit dynamics, and the quadratic bias amplification that
// is the engine of Theorem 1.2.

#include <gtest/gtest.h>

#include <cmath>

#include "core/one_extra_bit.hpp"
#include "core/two_choices.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/seed.hpp"
#include "sim/sync_driver.hpp"
#include "stats/welford.hpp"

namespace plurality {
namespace {

TEST(OneExtraBit, PhaseMachineBookkeeping) {
  const CompleteGraph g(256);
  Xoshiro256 rng(1);
  OneExtraBitSync proto(g, assign_equal(256, 4, rng));
  const std::uint64_t bp = proto.bp_rounds_per_phase();
  EXPECT_GT(bp, 0u);
  EXPECT_TRUE(proto.at_phase_start());
  for (std::uint64_t r = 0; r < bp + 1; ++r) {
    EXPECT_EQ(proto.phases_completed(), 0u);
    proto.execute_round(rng);
  }
  EXPECT_EQ(proto.phases_completed(), 1u);
  EXPECT_TRUE(proto.at_phase_start());
  EXPECT_EQ(proto.rounds(), bp + 1);
}

TEST(OneExtraBit, DerivedBpRoundsScaleWithK) {
  const CompleteGraph g(1 << 14);
  Xoshiro256 rng(2);
  OneExtraBitSync small_k(g, assign_equal(1 << 14, 2, rng));
  OneExtraBitSync large_k(g, assign_equal(1 << 14, 512, rng));
  EXPECT_GT(large_k.bp_rounds_per_phase(), small_k.bp_rounds_per_phase());
}

TEST(OneExtraBit, TwoChoicesRoundSetsBitsNearCSquaredOverN) {
  // After the two-choices round, #bit-set ~ sum_j cj^2 / n. With two
  // equal colors that is n/2.
  const std::uint64_t n = 1 << 14;
  const CompleteGraph g(n);
  Xoshiro256 rng(3);
  OneExtraBitSync proto(g, assign_two_colors(n, n / 2, rng));
  proto.execute_round(rng);  // the phase's two-choices round
  const auto bits = static_cast<double>(proto.bits_set());
  // Mean n/2, sd ~ sqrt(n)/something; 6 sigma ~ 400 at n = 16384.
  EXPECT_NEAR(bits, n / 2.0, 6.0 * std::sqrt(static_cast<double>(n)));
}

TEST(OneExtraBit, BitsAreMonotoneWithinBitPropagation) {
  const std::uint64_t n = 4096;
  const CompleteGraph g(n);
  Xoshiro256 rng(4);
  OneExtraBitSync proto(g, assign_equal(n, 8, rng));
  proto.execute_round(rng);  // two-choices
  std::uint64_t prev_bits = proto.bits_set();
  for (std::uint64_t r = 0; r < proto.bp_rounds_per_phase(); ++r) {
    proto.execute_round(rng);
    const std::uint64_t now = proto.bits_set();
    EXPECT_GE(now, prev_bits);
    prev_bits = now;
  }
}

TEST(OneExtraBit, AllBitsSetByEndOfPhase) {
  // The bp sub-phase length is chosen so broadcast completes w.h.p.
  const std::uint64_t n = 1 << 14;
  const CompleteGraph g(n);
  Xoshiro256 rng(5);
  OneExtraBitSync proto(g, assign_equal(n, 16, rng));
  proto.execute_phase(rng);
  EXPECT_EQ(proto.bits_set(), n);
}

TEST(OneExtraBit, QuadraticRatioAmplificationPerPhase) {
  // One phase squares support ratios: c1'/cj' ~ (c1/cj)^2 (paper §2).
  const std::uint64_t n = 1 << 16;
  const CompleteGraph g(n);
  const SeedSequence seeds(600);
  Welford measured_over_predicted;
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    // ratio c1/c2 = 1.5 with two colors: c1 = 0.6n, c2 = 0.4n.
    OneExtraBitSync proto(
        g, assign_two_colors(n, (n * 6) / 10, rng));
    proto.execute_phase(rng);
    const double c1 = static_cast<double>(proto.table().support(0));
    const double c2 = static_cast<double>(proto.table().support(1));
    ASSERT_GT(c2, 0.0);
    measured_over_predicted.add((c1 / c2) / (1.5 * 1.5));
  }
  EXPECT_NEAR(measured_over_predicted.mean(), 1.0, 0.1);
}

TEST(OneExtraBit, ConvergesToPluralityWithModerateBias) {
  const std::uint64_t n = 1 << 14;
  const CompleteGraph g(n);
  const SeedSequence seeds(700);
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    // k = 32 colors, bias ~ 4 sqrt(n log n) — two-choices alone would
    // need ~k rounds; OneExtraBit should finish in tens of rounds.
    const auto bias = static_cast<std::uint64_t>(
        4.0 * std::sqrt(static_cast<double>(n) *
                        std::log(static_cast<double>(n))));
    OneExtraBitSync proto(g, assign_plurality_bias(n, 32, bias, rng));
    const auto result = run_sync(proto, rng, 2000);
    ASSERT_TRUE(result.consensus) << "rep " << rep;
    EXPECT_EQ(result.winner, 0u) << "rep " << rep;
  }
}

TEST(OneExtraBit, RunTimeFlatInKWhileTwoChoicesGrowsLinearly) {
  // The Omega(k) vs polylog separation (Theorems 1.1 vs 1.2), asserted
  // structurally: growing k from 8 to 128 must inflate Two-Choices'
  // rounds by a large factor while OneExtraBit's stay near-flat. The
  // workload keeps the relative bias fixed (c1 = 2 c2, minorities tied),
  // so the absolute bias n/(k+1) stays above the sqrt(n) noise floor.
  const std::uint64_t n = 1 << 16;
  const CompleteGraph g(n);
  const SeedSequence seeds(650);

  auto mean_rounds = [&](auto make_proto, std::uint32_t k) {
    Welford rounds;
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      Xoshiro256 rng = seeds.make_rng(rep + k);
      auto proto = make_proto(assign_plurality_bias(n, k, n / (k + 1), rng));
      const auto result = run_sync(proto, rng, 100000);
      EXPECT_TRUE(result.consensus);
      rounds.add(static_cast<double>(result.rounds));
    }
    return rounds.mean();
  };
  auto make_oeb = [&](Assignment a) {
    return OneExtraBitSync<CompleteGraph>(g, std::move(a));
  };
  auto make_tc = [&](Assignment a) {
    return TwoChoicesSync<CompleteGraph>(g, std::move(a));
  };

  const double oeb_small = mean_rounds(make_oeb, 8);
  const double oeb_large = mean_rounds(make_oeb, 128);
  const double tc_small = mean_rounds(make_tc, 8);
  const double tc_large = mean_rounds(make_tc, 128);

  EXPECT_LT(oeb_large, 2.5 * oeb_small)
      << "OneExtraBit should be near-flat in k";
  EXPECT_GT(tc_large, 4.0 * tc_small)
      << "Two-Choices should pay ~linearly in k";
  // And at k=128 the phased protocol already wins outright.
  EXPECT_LT(oeb_large, tc_large);
}

TEST(OneExtraBit, ExecutePhaseRequiresPhaseBoundary) {
  const CompleteGraph g(64);
  Xoshiro256 rng(9);
  OneExtraBitSync proto(g, assign_equal(64, 4, rng));
  proto.execute_round(rng);
  EXPECT_THROW(proto.execute_phase(rng), ContractViolation);
}

}  // namespace
}  // namespace plurality
