// Parameterized property sweeps (TEST_P): invariants that must hold
// across grids of (n, k, bias, protocol, seed) — conservation of nodes,
// absorbing consensus, valid winners, schedule well-formedness.

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "core/async_one_extra_bit.hpp"
#include "core/one_extra_bit.hpp"
#include "core/schedule.hpp"
#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/sequential_engine.hpp"
#include "sim/sync_driver.hpp"

namespace plurality {
namespace {

/// "n<n>_k<k>" test-name generator, built via += (not an operator+
/// chain) to dodge the GCC 12 -Wrestrict false positive (GCC bug
/// 105651).
template <typename Tuple>
std::string grid_name(const ::testing::TestParamInfo<Tuple>& info) {
  std::string name = "n";
  name += std::to_string(std::get<0>(info.param));
  name += "_k";
  name += std::to_string(std::get<1>(info.param));
  return name;
}

// ---------------------------------------------------------------------
// Support conservation + valid winner across (n, k) for every protocol.

using GridParam = std::tuple<std::uint64_t /*n*/, std::uint32_t /*k*/>;

class ProtocolGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(ProtocolGrid, SyncProtocolsConserveNodesAndFinishValid) {
  const auto [n, k] = GetParam();
  const CompleteGraph g(n);
  Xoshiro256 rng(n * 31 + k);

  auto check = [&](auto proto) {
    for (int r = 0; r < 12 && !proto.done(); ++r) {
      proto.execute_round(rng);
      const auto s = proto.table().supports();
      ASSERT_EQ(std::accumulate(s.begin(), s.end(), std::uint64_t{0}), n);
      ASSERT_GE(proto.table().surviving_colors(), 1u);
      ASSERT_LE(proto.table().surviving_colors(), k);
    }
  };
  check(VoterSync(g, assign_equal(n, k, rng)));
  check(TwoChoicesSync(g, assign_equal(n, k, rng)));
  check(ThreeMajoritySync(g, assign_equal(n, k, rng)));
  check(OneExtraBitSync(g, assign_equal(n, k, rng)));
}

TEST_P(ProtocolGrid, AsyncProtocolsConserveNodesAndFinishValid) {
  const auto [n, k] = GetParam();
  const CompleteGraph g(n);
  Xoshiro256 rng(n * 37 + k);

  auto check = [&](auto proto) {
    run_sequential(proto, rng, 30.0);
    const auto s = proto.table().supports();
    ASSERT_EQ(std::accumulate(s.begin(), s.end(), std::uint64_t{0}), n);
    if (proto.table().has_consensus()) {
      ASSERT_LT(proto.table().consensus_color(), k);
    }
  };
  check(VoterAsync(g, assign_equal(n, k, rng)));
  check(TwoChoicesAsync(g, assign_equal(n, k, rng)));
  check(ThreeMajorityAsync(g, assign_equal(n, k, rng)));
  check(AsyncOneExtraBit<CompleteGraph>::make(g, assign_equal(n, k, rng)));
}

INSTANTIATE_TEST_SUITE_P(
    SizeByColors, ProtocolGrid,
    ::testing::Combine(::testing::Values(64, 256, 1024),
                       ::testing::Values(2, 5, 16)),
    grid_name<GridParam>);

// ---------------------------------------------------------------------
// Bias monotonicity: stronger initial bias never hurts the plurality's
// win rate (checked coarsely at three bias levels).

class BiasSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BiasSweep, PluralityWinRateReasonable) {
  const std::uint64_t bias = GetParam();
  const std::uint64_t n = 512;
  const CompleteGraph g(n);
  int wins = 0;
  constexpr int kReps = 12;
  for (int rep = 0; rep < kReps; ++rep) {
    Xoshiro256 rng(static_cast<std::uint64_t>(rep) * 977 + bias);
    TwoChoicesAsync proto(g, assign_two_colors(n, n / 2 + bias / 2, rng));
    const auto result = run_sequential(proto, rng, 1e5);
    ASSERT_TRUE(result.consensus);
    wins += (result.winner == 0);
  }
  if (bias >= 128) {
    EXPECT_GE(wins, kReps - 1);  // strong bias: near-certain win
  } else {
    EXPECT_GE(wins, kReps / 4);  // weak bias: at least not dominated
  }
}

INSTANTIATE_TEST_SUITE_P(BiasLevels, BiasSweep,
                         ::testing::Values(16, 64, 128, 256));

// ---------------------------------------------------------------------
// Schedule well-formedness across a wide (n, k) grid.

using ScheduleParam = std::tuple<std::uint64_t, std::uint32_t>;

class ScheduleGrid : public ::testing::TestWithParam<ScheduleParam> {};

TEST_P(ScheduleGrid, WellFormedForAllSizes) {
  const auto [n, k] = GetParam();
  const AsyncSchedule s(n, k);
  EXPECT_GE(s.delta(), 1u);
  EXPECT_GE(s.bp_ticks(), 1u);
  EXPECT_GE(s.sync_ticks(), 1u);
  EXPECT_EQ(s.phase_length(),
            6 * s.delta() + s.bp_ticks() + s.sync_ticks() + 1);
  EXPECT_EQ(s.part1_length(), s.num_phases() * s.phase_length());
  // Every working time maps to exactly one op; spot-check the whole
  // first phase plus the boundaries.
  for (std::uint64_t wt = 0; wt < s.phase_length(); ++wt) {
    const auto op = s.op_at(wt);
    EXPECT_TRUE(op == AsyncSchedule::Op::kTwoChoicesSample ||
                op == AsyncSchedule::Op::kCommit ||
                op == AsyncSchedule::Op::kBitProp ||
                op == AsyncSchedule::Op::kSyncSample ||
                op == AsyncSchedule::Op::kJump ||
                op == AsyncSchedule::Op::kWait);
  }
  EXPECT_EQ(s.op_at(s.total_length()), AsyncSchedule::Op::kDone);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ScheduleGrid,
    ::testing::Combine(::testing::Values(3, 8, 100, 4096, 1u << 20),
                       ::testing::Values(1, 2, 64, 4096)),
    grid_name<ScheduleParam>);

// ---------------------------------------------------------------------
// Workload generators: exactness across a grid.

using WorkloadParam = std::tuple<std::uint64_t, std::uint32_t>;

class WorkloadGrid : public ::testing::TestWithParam<WorkloadParam> {};

TEST_P(WorkloadGrid, GeneratorsAreExact) {
  const auto [n, k] = GetParam();
  if (n < k + 10) GTEST_SKIP() << "n too small for this k";
  Xoshiro256 rng(n + k);

  const auto eq = assign_equal(n, k, rng);
  EXPECT_EQ(std::accumulate(eq.counts.begin(), eq.counts.end(),
                            std::uint64_t{0}),
            n);

  const auto biased = assign_plurality_bias(n, std::max(k, 2u), 10, rng);
  EXPECT_EQ(std::accumulate(biased.counts.begin(), biased.counts.end(),
                            std::uint64_t{0}),
            n);
  EXPECT_GE(biased.bias(), 10);

  const auto geo = assign_geometric(n, k, 0.7, rng);
  EXPECT_EQ(std::accumulate(geo.counts.begin(), geo.counts.end(),
                            std::uint64_t{0}),
            n);
  for (const auto c : geo.counts) EXPECT_GE(c, 1u);

  const auto dir = assign_dirichlet(n, k, 2.0, rng);
  EXPECT_EQ(std::accumulate(dir.counts.begin(), dir.counts.end(),
                            std::uint64_t{0}),
            n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WorkloadGrid,
    ::testing::Combine(::testing::Values(50, 1000, 65536),
                       ::testing::Values(2, 7, 32)),
    grid_name<WorkloadParam>);

// ---------------------------------------------------------------------
// Consensus absorbing across protocols and models (property form).

class AbsorbingGrid : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AbsorbingGrid, ConsensusNeverBreaks) {
  const std::uint32_t k = GetParam();
  const std::uint64_t n = 128;
  const CompleteGraph g(n);
  Xoshiro256 rng(k * 131);
  // All nodes already agree on the last color.
  std::vector<std::uint64_t> counts(k, 0);
  counts[k - 1] = n;
  {
    TwoChoicesAsync proto(g, assign_exact(counts, rng));
    run_sequential(proto, rng, 20.0);
    EXPECT_TRUE(proto.table().has_consensus());
    EXPECT_EQ(proto.table().consensus_color(), k - 1);
  }
  {
    auto proto =
        AsyncOneExtraBit<CompleteGraph>::make(g, assign_exact(counts, rng));
    run_sequential(proto, rng, 20.0);
    EXPECT_TRUE(proto.table().has_consensus());
    EXPECT_EQ(proto.table().consensus_color(), k - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Colors, AbsorbingGrid,
                         ::testing::Values(2, 3, 9, 33));

}  // namespace
}  // namespace plurality
