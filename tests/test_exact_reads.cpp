// Tests for the two sharded-engine tuning axes that change (or pin
// down) the schedule: --exact-reads, which replaces the one-epoch
// foreign-read staleness with a distribution-exact serial replay of
// the merged tick order, and --numa=, which must be
// trajectory-neutral plumbing (like --jobs=) at every mode. Also pins
// the ExperimentContext-level conflict contracts between the flags.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "experiment/args.hpp"
#include "experiment/registry.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/latency.hpp"
#include "sim/numa.hpp"
#include "sim/sharded_engine.hpp"
#include "stat_gates.hpp"
#include "stats/quantiles.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

Args make_args(std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

EngineTuning exact_tuning() {
  EngineTuning tuning;
  tuning.exact_reads = true;
  return tuning;
}

TEST(ExactReads, DeterministicForFixedSeedAndShardCount) {
  const std::uint64_t n = 192;
  const CompleteGraph g(n);
  const auto run_once = [&] {
    Xoshiro256 rng(7);
    TwoChoicesAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    return run_sharded(proto, /*seed=*/42, /*num_shards=*/3, 1e6,
                       NullObserver{}, 1.0, 0.25, /*snapshot_reads=*/false,
                       /*perturb=*/nullptr, exact_tuning());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.consensus, b.consensus);
  EXPECT_EQ(a.winner, b.winner);
}

TEST(ExactReads, ReachesConsensusAndKeepsTableConsistent) {
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  Xoshiro256 rng(1);
  TwoChoicesAsync proto(g, assign_two_colors(n, (n * 7) / 8, rng));
  const auto result =
      run_sharded(proto, /*seed=*/123, /*num_shards=*/4, 1e6, NullObserver{},
                  1.0, 0.25, false, nullptr, exact_tuning());
  EXPECT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
  std::uint64_t total = 0;
  for (const auto s : proto.table().supports()) total += s;
  EXPECT_EQ(total, n);
}

TEST(ExactReads, MatchesSuperpositionDistribution) {
  // The exact schedule IS the sequential process in distribution: its
  // consensus times must pass the shared gates against the
  // superposition engine, which no stale-read engine is guaranteed to
  // do at high shard counts. Voter on a small complete graph keeps the
  // staleness effect visible if the replay were wrong.
  const std::uint64_t n = 96;
  const CompleteGraph g(n);
  std::vector<double> exact;
  std::vector<double> sequential;
  for (std::uint64_t rep = 0; rep < 32; ++rep) {
    {
      Xoshiro256 rng(100 + rep);
      VoterAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
      const auto r = run_sharded(proto, /*seed=*/700 + rep, /*num_shards=*/8,
                                 1e6, NullObserver{}, 1.0, 0.25, false,
                                 nullptr, exact_tuning());
      EXPECT_TRUE(r.consensus);
      exact.push_back(r.time);
    }
    {
      Xoshiro256 rng(500 + rep);
      VoterAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
      const auto r = run_continuous(proto, rng, 1e6);
      EXPECT_TRUE(r.consensus);
      sequential.push_back(r.time);
    }
  }
  EXPECT_LT(stat_gates::ks_statistic(exact, sequential), stat_gates::kKsGate);
  EXPECT_LT(stat_gates::mean_z(summarize(exact), summarize(sequential)),
            stat_gates::kMeanZGate);
}

TEST(ExactReads, ShardCountInvarianceOfTickBudget) {
  // Total ticks over a fixed horizon stay Poisson(n * t) regardless of
  // the shard count (the union of per-shard Poisson processes).
  const std::uint64_t n = 128;
  const CompleteGraph g(n);
  const double horizon = 50.0;
  for (const unsigned shards : {1u, 4u}) {
    Xoshiro256 rng(3);
    VoterAsync proto(g, assign_equal(n, 64, rng));
    const auto result =
        run_sharded(proto, /*seed=*/9, shards, horizon, NullObserver{}, 1.0,
                    0.25, false, nullptr, exact_tuning());
    EXPECT_NEAR(static_cast<double>(result.ticks),
                static_cast<double>(n) * horizon, 480.0);
  }
}

TEST(ExactReads, RejectsSnapshotReadsAndDeliveryQueues) {
  const CompleteGraph g(8);
  Xoshiro256 rng(2);
  TwoChoicesAsync proto(g, assign_two_colors(8, 6, rng));
  EXPECT_THROW(run_sharded(proto, 1, 2, 1.0, NullObserver{}, 1.0, 0.25,
                           /*snapshot_reads=*/true, nullptr, exact_tuning()),
               ContractViolation);
  const ZeroLatency latency;
  try {
    run_sharded_queued(proto, latency, QueryDiscipline::kBlocking, 1, 2, 1.0,
                       NullObserver{}, 1.0, 0.25, nullptr, exact_tuning());
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--exact-reads"), std::string::npos);
  }
}

TEST(NumaModes, TrajectoryNeutralAcrossAllModes) {
  // --numa= is placement plumbing: every mode must reproduce the
  // default trajectory bit-for-bit, like --jobs=.
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  const auto run_once = [&](NumaMode numa) {
    Xoshiro256 rng(7);
    EngineTuning tuning;
    tuning.numa = numa;
    ThreeMajorityAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    return run_sharded(proto, /*seed=*/42, /*num_shards=*/4, 1e6,
                       NullObserver{}, 1.0, 0.25, false, nullptr, tuning);
  };
  const auto off = run_once(NumaMode::kOff);
  for (const NumaMode mode : {NumaMode::kFirstTouch, NumaMode::kBind}) {
    const auto other = run_once(mode);
    EXPECT_EQ(off.ticks, other.ticks);
    EXPECT_DOUBLE_EQ(off.time, other.time);
    EXPECT_EQ(off.winner, other.winner);
    EXPECT_EQ(off.consensus, other.consensus);
  }
}

TEST(NumaModes, QueuedEngineTrajectoryNeutralToo) {
  const std::uint64_t n = 128;
  const CompleteGraph g(n);
  const ConstantLatency latency(0.125);
  const auto run_once = [&](NumaMode numa) {
    Xoshiro256 rng(5);
    EngineTuning tuning;
    tuning.numa = numa;
    VoterAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    return run_sharded_queued(proto, latency, QueryDiscipline::kBlocking,
                              /*seed=*/31, /*num_shards=*/3, 1e6,
                              NullObserver{}, 1.0, 0.25, nullptr, tuning);
  };
  const auto off = run_once(NumaMode::kOff);
  const auto touch = run_once(NumaMode::kFirstTouch);
  EXPECT_EQ(off.ticks, touch.ticks);
  EXPECT_DOUBLE_EQ(off.time, touch.time);
  EXPECT_EQ(off.winner, touch.winner);
}

TEST(TuningContext, ParsesFlagsAndRejectsTheExactBatchConflict) {
  {
    const ExperimentContext ctx(
        make_args({"--sampling=batch", "--numa=firsttouch"}), 1);
    EXPECT_EQ(ctx.tuning.sampling, SamplingMode::kBatch);
    EXPECT_EQ(ctx.tuning.numa, NumaMode::kFirstTouch);
    EXPECT_FALSE(ctx.tuning.exact_reads);
  }
  {
    const ExperimentContext ctx(make_args({"--exact-reads"}), 1);
    EXPECT_TRUE(ctx.tuning.exact_reads);
    EXPECT_EQ(ctx.tuning.sampling, SamplingMode::kScalar);
  }
  EXPECT_THROW(ExperimentContext(make_args({"--numa=interleave"}), 1),
               ContractViolation);
  EXPECT_THROW(ExperimentContext(make_args({"--sampling=simd"}), 1),
               ContractViolation);
  try {
    const ExperimentContext ctx(
        make_args({"--exact-reads", "--sampling=batch"}), 1);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--exact-reads"), std::string::npos);
    EXPECT_NE(what.find("--sampling=batch"), std::string::npos);
  }
}

}  // namespace
}  // namespace plurality
