#pragma once

/// \file stat_gates.hpp
/// Shared statistical gates for the equivalence/robustness tests. The
/// engine-equivalence, perturbation, and latency suites all compare
/// sampled distributions against each other or against analytic
/// moments; the gates and their thresholds live here once so every
/// suite fails (and passes) for the same documented reason.
///
/// Thresholds:
///   - kKsGate = 0.45: two-sample KS distance bound for 30-40 vs 30-40
///     samples. The alpha = 0.001 critical value is
///     c(alpha) * sqrt((na+nb)/(na*nb)) with c(alpha) =
///     sqrt(ln(2/alpha)/2) ~ 1.95 — i.e. ~0.50 at 30v30 and ~0.44 at
///     40v40 — so 0.45 rejects only distributions that differ grossly
///     (false-positive rate well under 1e-3) while still catching a
///     one-pooled-sigma location shift with high power at these sizes
///     (see test_stat_gates.cpp, which measures both rates).
///   - mean_tolerance: two means agree when |ma - mb| is within the sum
///     of the two 95% CI half-widths plus a small absolute slack (the
///     slack absorbs quantization: engines that tick on epochs or
///     steps shift means by up to one grid cell).
///   - mean_z: the z-score form of the same moment gate,
///     |ma - mb| / sqrt(se_a^2 + se_b^2); kMeanZGate = 4.0 is a
///     two-sided ~6e-5 false-positive rate under equality.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "stats/quantiles.hpp"

namespace plurality::stat_gates {

/// Two-sample Kolmogorov-Smirnov statistic sup |F_a - F_b|. Both ECDFs
/// are evaluated after consuming *all* occurrences of each distinct
/// value — engines that quantize times (sharded epochs, sequential
/// steps) produce exact cross-sample ties, which must not inflate D
/// (two identical samples have D = 0). Requires non-empty samples.
inline double ks_statistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double value = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == value) ++i;
    while (j < b.size() && b[j] == value) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

/// Asymptotic two-sample KS critical value at significance alpha:
/// D > ks_critical(...) rejects "same distribution" at level ~alpha.
inline double ks_critical(std::size_t na, std::size_t nb, double alpha) {
  const double c = std::sqrt(std::log(2.0 / alpha) / 2.0);
  const double a = static_cast<double>(na);
  const double b = static_cast<double>(nb);
  return c * std::sqrt((a + b) / (a * b));
}

/// The shared KS gate used by the engine/perturbation equivalence
/// suites (see the file comment for the derivation).
inline constexpr double kKsGate = 0.45;

/// Moment gate tolerance: two sampled means are declared equal when
/// |ma - mb| <= ci95_a + ci95_b + slack. Use with EXPECT_NEAR so gtest
/// reports both means on failure.
inline double mean_tolerance(const Summary& a, const Summary& b,
                             double slack = 1.0) {
  return a.ci95_halfwidth + b.ci95_halfwidth + slack;
}

/// Two-sample z-score of the difference of means (standard errors from
/// each sample's own stddev). Infinity when either side has no spread
/// but the means differ; 0 when the means are exactly equal.
inline double mean_z(const Summary& a, const Summary& b) {
  if (a.mean == b.mean) return 0.0;
  const double se_a =
      a.count > 0 ? a.stddev / std::sqrt(static_cast<double>(a.count)) : 0.0;
  const double se_b =
      b.count > 0 ? b.stddev / std::sqrt(static_cast<double>(b.count)) : 0.0;
  const double se = std::sqrt(se_a * se_a + se_b * se_b);
  if (se == 0.0) return std::numeric_limits<double>::infinity();
  return std::abs(a.mean - b.mean) / se;
}

/// The shared z-score gate paired with mean_z.
inline constexpr double kMeanZGate = 4.0;

/// Raw sample moments (population variance) plus the minimum — the
/// latency suite compares these against analytic sampler moments.
struct SampleMoments {
  double mean = 0.0;
  double variance = 0.0;
  double min = 0.0;
};

inline SampleMoments moments(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = std::numeric_limits<double>::infinity();
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
    min = std::min(min, x);
  }
  const double n = static_cast<double>(xs.size());
  SampleMoments m;
  m.mean = sum / n;
  m.variance = sum_sq / n - m.mean * m.mean;
  m.min = min;
  return m;
}

}  // namespace plurality::stat_gates
