// Behavioral tests for the baseline protocols: voter, two-choices and
// 3-majority in both communication models. Statistical assertions use
// fixed seeds and comfortable margins.

#include <gtest/gtest.h>

#include <numeric>

#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "graph/ring.hpp"
#include "opinion/assignment.hpp"
#include "rng/seed.hpp"
#include "sim/sequential_engine.hpp"
#include "sim/sync_driver.hpp"

namespace plurality {
namespace {

template <typename Proto>
void expect_consensus_is_absorbing(Proto& proto, Xoshiro256& rng) {
  ASSERT_TRUE(proto.table().has_consensus());
  const ColorId color = proto.table().consensus_color();
  if constexpr (SyncProtocol<Proto>) {
    for (int r = 0; r < 5; ++r) proto.execute_round(rng);
  } else {
    for (NodeId u = 0; u < proto.num_nodes(); ++u) proto.on_tick(u, rng);
  }
  EXPECT_TRUE(proto.table().has_consensus());
  EXPECT_EQ(proto.table().consensus_color(), color);
}

TEST(Absorbing, AllProtocolsKeepConsensus) {
  const CompleteGraph g(32);
  Xoshiro256 rng(1);
  const std::vector<ColorId> agreed(32, 1);
  {
    VoterSync p(g, assign_exact({0, 32}, rng));
    expect_consensus_is_absorbing(p, rng);
  }
  {
    TwoChoicesSync p(g, assign_exact({0, 32}, rng));
    expect_consensus_is_absorbing(p, rng);
  }
  {
    ThreeMajoritySync p(g, assign_exact({0, 32}, rng));
    expect_consensus_is_absorbing(p, rng);
  }
  {
    VoterAsync p(g, assign_exact({0, 32}, rng));
    expect_consensus_is_absorbing(p, rng);
  }
  {
    TwoChoicesAsync p(g, assign_exact({0, 32}, rng));
    expect_consensus_is_absorbing(p, rng);
  }
  {
    ThreeMajorityAsync p(g, assign_exact({0, 32}, rng));
    expect_consensus_is_absorbing(p, rng);
  }
}

TEST(TwoChoicesSyncTest, StrongBiasWinsEveryRepetition) {
  const CompleteGraph g(512);
  const SeedSequence seeds(100);
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    // bias 160 >> sqrt(512 ln 512) ~ 56.
    TwoChoicesSync proto(g, assign_two_colors(512, 336, rng));
    const auto result = run_sync(proto, rng, 5000);
    ASSERT_TRUE(result.consensus) << "rep " << rep;
    EXPECT_EQ(result.winner, 0u) << "rep " << rep;
  }
}

TEST(TwoChoicesSyncTest, TieIsFairBetweenTwoColors) {
  const CompleteGraph g(256);
  const SeedSequence seeds(200);
  int wins0 = 0;
  constexpr int kReps = 40;
  for (int rep = 0; rep < kReps; ++rep) {
    Xoshiro256 rng = seeds.make_rng(static_cast<std::uint64_t>(rep));
    TwoChoicesSync proto(g, assign_two_colors(256, 128, rng));
    const auto result = run_sync(proto, rng, 50000);
    ASSERT_TRUE(result.consensus);
    wins0 += (result.winner == 0);
  }
  // Fair coin over 40 reps: P(|wins - 20| >= 14) < 1e-5.
  EXPECT_NEAR(wins0, kReps / 2, 14);
}

TEST(TwoChoicesSyncTest, PreservesSupportInvariant) {
  const CompleteGraph g(128);
  Xoshiro256 rng(3);
  TwoChoicesSync proto(g, assign_equal(128, 8, rng));
  for (int r = 0; r < 20; ++r) {
    proto.execute_round(rng);
    const auto supports = proto.table().supports();
    EXPECT_EQ(std::accumulate(supports.begin(), supports.end(),
                              std::uint64_t{0}),
              128u);
  }
}

TEST(TwoChoicesSyncTest, SurvivingColorsNeverIncrease) {
  const CompleteGraph g(256);
  Xoshiro256 rng(4);
  TwoChoicesSync proto(g, assign_equal(256, 16, rng));
  ColorId prev = proto.table().surviving_colors();
  for (int r = 0; r < 100 && !proto.done(); ++r) {
    proto.execute_round(rng);
    const ColorId now = proto.table().surviving_colors();
    // Two-choices can only adopt existing colors, never invent them;
    // a color with zero support stays extinct.
    EXPECT_LE(now, prev);
    prev = now;
  }
}

TEST(TwoChoicesAsyncTest, StrongBiasWins) {
  const CompleteGraph g(512);
  const SeedSequence seeds(300);
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    TwoChoicesAsync proto(g, assign_two_colors(512, 336, rng));
    const auto result = run_sequential(proto, rng, 1e5);
    ASSERT_TRUE(result.consensus);
    EXPECT_EQ(result.winner, 0u);
  }
}

TEST(VoterTest, WinsProportionallyToInitialSupport) {
  // Voter winner probability equals the initial fraction (exact
  // martingale result): with c1 = 3n/4 color 0 should win ~75%.
  const CompleteGraph g(64);
  const SeedSequence seeds(400);
  int wins0 = 0;
  constexpr int kReps = 60;
  for (int rep = 0; rep < kReps; ++rep) {
    Xoshiro256 rng = seeds.make_rng(static_cast<std::uint64_t>(rep));
    VoterAsync proto(g, assign_two_colors(64, 48, rng));
    const auto result = run_sequential(proto, rng, 1e6);
    ASSERT_TRUE(result.consensus);
    wins0 += (result.winner == 0);
  }
  // Binomial(60, .75): mean 45, sd 3.35; allow ~4 sigma.
  EXPECT_NEAR(wins0, 45, 14);
}

TEST(ThreeMajorityTest, MajorityHelperIsExhaustive) {
  using detail::majority_of_three;
  EXPECT_EQ(majority_of_three(1, 1, 1), 1u);
  EXPECT_EQ(majority_of_three(1, 1, 2), 1u);
  EXPECT_EQ(majority_of_three(1, 2, 1), 1u);
  EXPECT_EQ(majority_of_three(2, 1, 1), 1u);
  EXPECT_EQ(majority_of_three(1, 2, 3), 1u);  // all distinct -> first
}

TEST(ThreeMajorityTest, StrongBiasWinsBothModels) {
  const CompleteGraph g(512);
  Xoshiro256 rng(5);
  {
    ThreeMajoritySync proto(g, assign_two_colors(512, 384, rng));
    const auto result = run_sync(proto, rng, 5000);
    ASSERT_TRUE(result.consensus);
    EXPECT_EQ(result.winner, 0u);
  }
  {
    ThreeMajorityAsync proto(g, assign_two_colors(512, 384, rng));
    const auto result = run_sequential(proto, rng, 1e5);
    ASSERT_TRUE(result.consensus);
    EXPECT_EQ(result.winner, 0u);
  }
}

TEST(RingTopology, ProtocolsRunWithoutConsensusOnShortHorizons) {
  // On the ring, consensus takes Omega(n^2); a short run must leave
  // several colors alive — this exercises non-clique sampling paths.
  const RingGraph g(256);
  Xoshiro256 rng(6);
  VoterAsync proto(g, assign_equal(256, 8, rng));
  const auto result = run_sequential(proto, rng, 20.0);
  EXPECT_FALSE(result.consensus);
  EXPECT_GT(proto.table().surviving_colors(), 1u);
}

TEST(Degenerate, SingleColorIsInstantConsensus) {
  const CompleteGraph g(16);
  Xoshiro256 rng(7);
  TwoChoicesAsync proto(g, assign_equal(16, 1, rng));
  EXPECT_TRUE(proto.done());
  const auto result = run_sequential(proto, rng, 10.0);
  EXPECT_TRUE(result.consensus);
  EXPECT_EQ(result.ticks, 0u);
}

}  // namespace
}  // namespace plurality
