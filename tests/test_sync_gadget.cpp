// Tests for the Sync Gadget: the sample store in isolation, and the
// gadget's synchronizing effect inside the full protocol (with the
// ablation contrast that experiment E7 quantifies).

#include <gtest/gtest.h>

#include "core/async_one_extra_bit.hpp"
#include "core/sync_gadget.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/sequential_engine.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

TEST(SyncGadgetStore, RecordAndMedian) {
  SyncGadgetStore store(4, 5);
  store.record(1, 10);
  store.record(1, -3);
  store.record(1, 2);
  EXPECT_EQ(store.count(1), 3u);
  EXPECT_EQ(store.median_offset(1), 2);
  EXPECT_EQ(store.count(0), 0u);
}

TEST(SyncGadgetStore, EvenCountUsesLowerMedian) {
  SyncGadgetStore store(1, 8);
  store.record(0, 1);
  store.record(0, 2);
  store.record(0, 3);
  store.record(0, 4);
  EXPECT_EQ(store.median_offset(0), 2);
}

TEST(SyncGadgetStore, ClearResetsOnlyThatNode) {
  SyncGadgetStore store(2, 3);
  store.record(0, 7);
  store.record(1, 9);
  store.clear(0);
  EXPECT_EQ(store.count(0), 0u);
  EXPECT_EQ(store.count(1), 1u);
  EXPECT_EQ(store.median_offset(1), 9);
}

TEST(SyncGadgetStore, OverflowBeyondCapacityIsIgnored) {
  SyncGadgetStore store(1, 2);
  store.record(0, 1);
  store.record(0, 2);
  store.record(0, 100);  // dropped
  EXPECT_EQ(store.count(0), 2u);
  EXPECT_EQ(store.median_offset(0), 1);
}

TEST(SyncGadgetStore, SaturatesExtremeOffsets) {
  SyncGadgetStore store(1, 2);
  store.record(0, std::int64_t{1} << 40);
  EXPECT_EQ(store.median_offset(0), INT32_MAX);
}

TEST(SyncGadgetStore, Contracts) {
  EXPECT_THROW(SyncGadgetStore(0, 1), ContractViolation);
  EXPECT_THROW(SyncGadgetStore(1, 0), ContractViolation);
  SyncGadgetStore store(2, 2);
  EXPECT_THROW(store.median_offset(0), ContractViolation);  // empty
  EXPECT_THROW(store.record(5, 0), ContractViolation);
}

// --- gadget behavior inside the protocol -------------------------------

struct SpreadProbe {
  std::uint64_t max_spread = 0;
  double max_poor_fraction = 0.0;
  template <typename P>
  void operator()(double, const P& proto) {
    max_spread = std::max(max_spread, proto.working_time_spread());
    max_poor_fraction =
        std::max(max_poor_fraction,
                 proto.fraction_poorly_synced(proto.schedule().delta()));
  }
};

TEST(SyncGadget, KeepsWorkingTimesConcentrated) {
  // At laptop n the jump's median estimate carries O(sqrt(t)/sqrt(S))
  // noise (S = (ln ln n)^3 samples), so the per-Delta "poorly synced"
  // fraction is not yet o(1) — the asymptotic claim. What must hold at
  // every scale: spread stays bounded by ~1 phase length instead of
  // growing with sqrt(t), and most nodes sit within a few Delta of the
  // median. Experiment E7 charts the full trend against the ablation.
  const std::uint64_t n = 4096;
  const CompleteGraph g(n);
  Xoshiro256 rng(42);
  // Near-tie so the run lasts several phases.
  auto proto = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_plurality_bias(n, 8, 200, rng));
  SpreadProbe probe;
  run_sequential(proto, rng, 1e4, std::ref(probe), 5.0);
  EXPECT_GT(proto.jumps_performed(), 0u);
  // Bounded by a small constant number of phases (the jump noise is
  // ~sqrt(t/S) per phase, re-anchored every phase) — versus the
  // unbounded sqrt(t) growth the ablation test shows without it.
  EXPECT_LT(probe.max_spread, 3 * proto.schedule().phase_length());
}

TEST(SyncGadget, AblationSpreadGrowsWithoutIt) {
  const std::uint64_t n = 4096;
  const CompleteGraph g(n);

  auto run_with = [&](bool enabled) {
    AsyncParams params;
    params.sync_gadget_enabled = enabled;
    Xoshiro256 rng(43);
    auto proto = AsyncOneExtraBit<CompleteGraph>::make(
        g, assign_plurality_bias(n, 8, 200, rng), params);
    // Fixed horizon (no consensus stop) for a fair spread comparison.
    const double horizon =
        static_cast<double>(proto.schedule().part1_length());
    SpreadProbe probe;
    run_sequential(proto, rng, horizon, std::ref(probe), 10.0);
    return std::make_pair(probe, proto.jumps_performed());
  };

  const auto [with_probe, with_jumps] = run_with(true);
  const auto [without_probe, without_jumps] = run_with(false);
  EXPECT_GT(with_jumps, 0u);
  EXPECT_EQ(without_jumps, 0u);
  // Unsynchronized Poisson clocks drift apart; the gadget pins them.
  EXPECT_GT(without_probe.max_spread, with_probe.max_spread);
}

TEST(SyncGadget, JumpsLandNearTheMedian) {
  const std::uint64_t n = 1024;
  const CompleteGraph g(n);
  Xoshiro256 rng(44);
  auto proto = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_plurality_bias(n, 4, 100, rng));
  const double horizon =
      static_cast<double>(2 * proto.schedule().phase_length());
  run_sequential(proto, rng, horizon);
  EXPECT_GT(proto.jumps_performed(), 0u);
  // A jump corrects clock drift, which over one phase is a handful of
  // ticks — far below the phase length.
  EXPECT_LT(proto.mean_jump_distance(),
            static_cast<double>(proto.schedule().phase_length()));
}

TEST(SyncGadget, NoJumpReplayLoopOnTinyPopulations) {
  // Pathological scale: 8 nodes, huge relative clock noise. The
  // one-jump-per-phase guard must keep the run terminating.
  const CompleteGraph g(8);
  Xoshiro256 rng(45);
  auto proto = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_equal(8, 2, rng));
  const auto result = run_sequential(proto, rng, 1e5);
  // Either consensus or every node ran off the end; both terminate.
  EXPECT_TRUE(result.consensus || proto.nodes_finished() == 8u);
}

}  // namespace
}  // namespace plurality
