// The sequential model (uniform node per step, time = steps/n) and the
// continuous Poisson-clock model yield the same run-time distribution
// (paper §1, ref [4]); the continuous model's two exact simulations
// (n-timer heap, superposition sampling) and the sharded engine must
// agree with each other as well. These tests verify the equivalences
// empirically — the unit-test version of experiment E9 plus the engine
// equivalence gate of ISSUE 2 (moment comparison and a two-sample
// Kolmogorov–Smirnov statistic with generous thresholds).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/delayed.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "graph/csr.hpp"
#include "graph/factory.hpp"
#include "opinion/assignment.hpp"
#include "rng/seed.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/latency.hpp"
#include "sim/sequential_engine.hpp"
#include "sim/sharded_engine.hpp"
#include "stat_gates.hpp"
#include "stats/quantiles.hpp"

namespace plurality {
namespace {

using stat_gates::kKsGate;
using stat_gates::ks_statistic;
using stat_gates::mean_tolerance;

enum class Engine { kSequential, kHeap, kSuperposition, kSharded };

template <typename MakeProto>
std::vector<double> consensus_times(MakeProto&& make_proto, Engine engine,
                                    std::uint64_t reps,
                                    std::uint64_t seed_base) {
  const SeedSequence seeds(seed_base);
  std::vector<double> times;
  times.reserve(reps);
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    auto proto = make_proto(rng);
    AsyncRunResult result;
    switch (engine) {
      case Engine::kSequential:
        result = run_sequential(proto, rng, 1e6);
        break;
      case Engine::kHeap:
        result = run_continuous_heap(proto, rng, 1e6);
        break;
      case Engine::kSuperposition:
        result = run_continuous(proto, rng, 1e6);
        break;
      case Engine::kSharded:
        // 4 shards, epoch 0.25: small enough that the one-epoch foreign
        // read staleness cannot distort the consensus time visibly.
        result = run_sharded(proto, rng(), 4, 1e6, NullObserver{},
                             /*sample_every=*/1.0, /*epoch_length=*/0.25);
        break;
    }
    EXPECT_TRUE(result.consensus);
    times.push_back(result.time);
  }
  return times;
}

TEST(ModelEquivalence, TwoChoicesMeanTimesAgree) {
  const std::uint64_t n = 1024;
  const CompleteGraph g(n);
  auto make = [&](Xoshiro256& rng) {
    return TwoChoicesAsync<CompleteGraph>(
        g, assign_two_colors(n, (n * 3) / 4, rng));
  };
  constexpr std::uint64_t kReps = 30;
  const auto seq = consensus_times(make, Engine::kSequential, kReps, 10);
  const auto cont = consensus_times(make, Engine::kSuperposition, kReps, 20);
  const Summary seq_summary = summarize(seq);
  const Summary cont_summary = summarize(cont);
  // Means agree within the sum of the 95% confidence half-widths plus
  // a small absolute slack.
  const double tolerance = mean_tolerance(seq_summary, cont_summary);
  EXPECT_NEAR(seq_summary.mean, cont_summary.mean, tolerance);
}

TEST(ModelEquivalence, VoterMedianTimesAgree) {
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  auto make = [&](Xoshiro256& rng) {
    return VoterAsync<CompleteGraph>(g, assign_two_colors(n, n / 2, rng));
  };
  constexpr std::uint64_t kReps = 30;
  const auto seq = consensus_times(make, Engine::kSequential, kReps, 30);
  const auto cont = consensus_times(make, Engine::kSuperposition, kReps, 40);
  // Voter on the clique takes Theta(n) time with heavy tails; compare
  // medians with a generous multiplicative band.
  const double med_seq = quantile(seq, 0.5);
  const double med_cont = quantile(cont, 0.5);
  EXPECT_LT(med_seq, 3.0 * med_cont);
  EXPECT_LT(med_cont, 3.0 * med_seq);
}

TEST(EngineEquivalence, HeapSuperpositionShardedAgreeOnE1Runs) {
  // E1-style workload: Two-Choices on the clique, c1 = 3n/4. All three
  // continuous engines sample the same process, so the consensus-time
  // distributions must coincide up to sampling noise.
  const std::uint64_t n = 512;
  const CompleteGraph g(n);
  auto make = [&](Xoshiro256& rng) {
    return TwoChoicesAsync<CompleteGraph>(
        g, assign_two_colors(n, (n * 3) / 4, rng));
  };
  constexpr std::uint64_t kReps = 40;
  const auto heap = consensus_times(make, Engine::kHeap, kReps, 50);
  const auto sup = consensus_times(make, Engine::kSuperposition, kReps, 60);
  const auto shard = consensus_times(make, Engine::kSharded, kReps, 70);

  // Moment check: pairwise mean agreement within summed 95% CIs + slack.
  const Summary sh = summarize(heap);
  const Summary ss = summarize(sup);
  const Summary sd = summarize(shard);
  EXPECT_NEAR(sh.mean, ss.mean,
              mean_tolerance(sh, ss));
  EXPECT_NEAR(sh.mean, sd.mean,
              mean_tolerance(sh, sd));
  EXPECT_NEAR(ss.mean, sd.mean,
              mean_tolerance(ss, sd));

  // Distribution check: two-sample KS below the alpha ~ 0.001 critical
  // value for 40-vs-40 samples (~0.44), with a little headroom.
  EXPECT_LT(ks_statistic(heap, sup), kKsGate);
  EXPECT_LT(ks_statistic(heap, shard), kKsGate);
  EXPECT_LT(ks_statistic(sup, shard), kKsGate);
}

TEST(EngineEquivalence, ShardedOnGraphMatchesSequentialOnGraph) {
  // The PR 5 acceptance gate for the topology axis: the sharded engine
  // driving a protocol over the flat CSR view of a sparse graph
  // samples the same process as the sequential driver on the concrete
  // graph. Random 8-regular at n = 512: an expander, so consensus
  // lands well inside the horizon.
  GraphSpec spec;
  spec.kind = GraphKind::kRandomRegular;
  Xoshiro256 build_rng(123);
  const AnyGraph any = make_graph(spec, 512, build_rng);
  const CsrTopology csr = make_csr_view(any);
  constexpr std::uint64_t kReps = 40;

  auto make = [&](Xoshiro256& rng) {
    return TwoChoicesAsync<CsrTopology>(
        csr, assign_two_colors(512, (512 * 3) / 4, rng));
  };
  const auto seq = consensus_times(make, Engine::kSequential, kReps, 110);
  const auto shard = consensus_times(make, Engine::kSharded, kReps, 120);

  const Summary ss = summarize(seq);
  const Summary sd = summarize(shard);
  EXPECT_NEAR(ss.mean, sd.mean,
              mean_tolerance(ss, sd));
  EXPECT_LT(ks_statistic(seq, shard), kKsGate);
}

TEST(EngineEquivalence, ShardedQueuedMatchesMessagingUnderExpLatency) {
  // The PR 5 acceptance gate for the latency axis: the sharded
  // engine's per-shard delivery queues under the blocking discipline
  // sample the same process as the single-stream messaging driver
  // running the delayed protocol variant, for a genuinely *random*
  // latency model.
  const std::uint64_t n = 512;
  const CompleteGraph g(n);
  const ExponentialLatency latency(1.0);
  constexpr std::uint64_t kReps = 40;

  const SeedSequence msg_seeds(130);
  std::vector<double> messaging_times;
  messaging_times.reserve(kReps);
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    Xoshiro256 rng = msg_seeds.make_rng(rep);
    TwoChoicesAsyncDelayed proto(g, assign_two_colors(n, (n * 3) / 4, rng),
                                 QueryDiscipline::kBlocking);
    const auto result = run_continuous_messaging(proto, latency, rng, 1e6);
    EXPECT_TRUE(result.consensus);
    messaging_times.push_back(result.time);
  }

  const SeedSequence queued_seeds(140);
  std::vector<double> queued_times;
  queued_times.reserve(kReps);
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    Xoshiro256 rng = queued_seeds.make_rng(rep);
    TwoChoicesAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    const auto result =
        run_sharded_queued(proto, latency, QueryDiscipline::kBlocking,
                           rng(), /*num_shards=*/4, 1e6);
    EXPECT_TRUE(result.consensus);
    queued_times.push_back(result.time);
  }

  const Summary sm = summarize(messaging_times);
  const Summary sq = summarize(queued_times);
  EXPECT_NEAR(sm.mean, sq.mean,
              mean_tolerance(sm, sq));
  EXPECT_LT(ks_statistic(messaging_times, queued_times), kKsGate);
}

TEST(EngineEquivalence, ZeroLatencyMessagingMatchesInstantEngines) {
  // The latency-subsystem acceptance gate: the delayed Two-Choices
  // protocol on the messaging driver under ZeroLatency samples the
  // same process as the instant-response protocol on the plain
  // superposition and heap engines — an answer posted with zero delay
  // is applied before the next tick, so the delayed run is the instant
  // run with a different RNG-consumption order.
  const std::uint64_t n = 512;
  const CompleteGraph g(n);
  constexpr std::uint64_t kReps = 40;

  const ZeroLatency zero;
  const SeedSequence seeds(80);
  std::vector<double> delayed_times;
  delayed_times.reserve(kReps);
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    TwoChoicesAsyncDelayed proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    const auto result = run_continuous_messaging(proto, zero, rng, 1e6);
    EXPECT_TRUE(result.consensus);
    delayed_times.push_back(result.time);
  }

  auto make = [&](Xoshiro256& rng) {
    return TwoChoicesAsync<CompleteGraph>(
        g, assign_two_colors(n, (n * 3) / 4, rng));
  };
  const auto sup = consensus_times(make, Engine::kSuperposition, kReps, 90);
  const auto heap = consensus_times(make, Engine::kHeap, kReps, 100);

  const Summary sd = summarize(delayed_times);
  const Summary ss = summarize(sup);
  const Summary sh = summarize(heap);
  EXPECT_NEAR(sd.mean, ss.mean,
              mean_tolerance(sd, ss));
  EXPECT_NEAR(sd.mean, sh.mean,
              mean_tolerance(sd, sh));
  EXPECT_LT(ks_statistic(delayed_times, sup), kKsGate);
  EXPECT_LT(ks_statistic(delayed_times, heap), kKsGate);
}

}  // namespace
}  // namespace plurality
