// The sequential model (uniform node per step, time = steps/n) and the
// continuous Poisson-clock model yield the same run-time distribution
// (paper §1, ref [4]). These tests verify the equivalence empirically —
// the unit-test version of experiment E9.

#include <gtest/gtest.h>

#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/seed.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/sequential_engine.hpp"
#include "stats/quantiles.hpp"

namespace plurality {
namespace {

template <typename MakeProto>
std::vector<double> consensus_times(MakeProto&& make_proto, bool sequential,
                                    std::uint64_t reps,
                                    std::uint64_t seed_base) {
  const SeedSequence seeds(seed_base);
  std::vector<double> times;
  times.reserve(reps);
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    auto proto = make_proto(rng);
    const auto result = sequential ? run_sequential(proto, rng, 1e6)
                                   : run_continuous(proto, rng, 1e6);
    EXPECT_TRUE(result.consensus);
    times.push_back(result.time);
  }
  return times;
}

TEST(ModelEquivalence, TwoChoicesMeanTimesAgree) {
  const std::uint64_t n = 1024;
  const CompleteGraph g(n);
  auto make = [&](Xoshiro256& rng) {
    return TwoChoicesAsync<CompleteGraph>(
        g, assign_two_colors(n, (n * 3) / 4, rng));
  };
  constexpr std::uint64_t kReps = 30;
  const auto seq = consensus_times(make, true, kReps, 10);
  const auto cont = consensus_times(make, false, kReps, 20);
  const Summary seq_summary = summarize(seq);
  const Summary cont_summary = summarize(cont);
  // Means agree within the sum of the 95% confidence half-widths plus
  // a small absolute slack.
  const double tolerance = seq_summary.ci95_halfwidth +
                           cont_summary.ci95_halfwidth + 1.0;
  EXPECT_NEAR(seq_summary.mean, cont_summary.mean, tolerance);
}

TEST(ModelEquivalence, VoterMedianTimesAgree) {
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  auto make = [&](Xoshiro256& rng) {
    return VoterAsync<CompleteGraph>(g, assign_two_colors(n, n / 2, rng));
  };
  constexpr std::uint64_t kReps = 30;
  const auto seq = consensus_times(make, true, kReps, 30);
  const auto cont = consensus_times(make, false, kReps, 40);
  // Voter on the clique takes Theta(n) time with heavy tails; compare
  // medians with a generous multiplicative band.
  const double med_seq = quantile(seq, 0.5);
  const double med_cont = quantile(cont, 0.5);
  EXPECT_LT(med_seq, 3.0 * med_cont);
  EXPECT_LT(med_cont, 3.0 * med_seq);
}

}  // namespace
}  // namespace plurality
