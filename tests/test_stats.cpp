// Unit tests for stats/: Welford moments, quantiles, histogram,
// regression fits.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/quantiles.hpp"
#include "stats/regression.hpp"
#include "stats/welford.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

TEST(Welford, MatchesDirectComputation) {
  const std::vector<double> data{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Welford w;
  for (const double x : data) w.add(x);
  EXPECT_EQ(w.count(), data.size());
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  // Sample variance of this classic dataset: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, ContractsOnEmpty) {
  const Welford w;
  EXPECT_THROW(w.mean(), ContractViolation);
  EXPECT_THROW(w.min(), ContractViolation);
  Welford one;
  one.add(1.0);
  EXPECT_THROW(one.variance(), ContractViolation);
}

TEST(Welford, MergeEqualsCombinedStream) {
  Welford a;
  Welford b;
  Welford combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(Welford, MergeWithEmptyIsIdentity) {
  Welford a;
  a.add(3.0);
  a.add(5.0);
  const double mean_before = a.mean();
  Welford empty;
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(Quantile, ExactOrderStatistics) {
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.25), 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  const std::vector<double> data{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.75), 7.5);
}

TEST(Quantile, SingletonAndContracts) {
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(quantile(one, 0.3), 7.0);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), ContractViolation);
  EXPECT_THROW(quantile(one, 1.5), ContractViolation);
}

TEST(Summary, BundlesAllFields) {
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0, 100.0};
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_GT(s.stddev, 0.0);
  EXPECT_GT(s.ci95_halfwidth, 0.0);
}

TEST(Summary, SingleObservationHasZeroSpread) {
  const std::vector<double> data{4.0};
  const Summary s = summarize(data);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth, 0.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, BinRange) {
  const Histogram h(0.0, 10.0, 5);
  const auto [lo, hi] = h.bin_range(2);
  EXPECT_DOUBLE_EQ(lo, 4.0);
  EXPECT_DOUBLE_EQ(hi, 6.0);
  EXPECT_THROW(h.bin_range(5), ContractViolation);
}

TEST(Histogram, RenderProducesOneLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string out = h.render(20);
  int lines = 0;
  for (const char c : out) lines += (c == '\n');
  EXPECT_EQ(lines, 4);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Regression, ExactLinearData) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{5.0, 7.0, 9.0, 11.0};  // y = 3 + 2x
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, ConstantYIsPerfectFitWithZeroSlope) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, 4.0, 4.0};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, NoisyDataHasImperfectR2) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{2.0, 1.0, 4.0, 3.0, 6.0};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_GT(fit.slope, 0.0);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.3);
}

TEST(Regression, LogXFit) {
  // y = 2 + 5 ln x, exactly.
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 1.0; v <= 128.0; v *= 2.0) {
    x.push_back(v);
    y.push_back(2.0 + 5.0 * std::log(v));
  }
  const LinearFit fit = fit_log_x(x, y);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
  EXPECT_NEAR(fit.slope, 5.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, PowerLawFitRecoversExponent) {
  // y = 3 x^1.5, exactly.
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 1.0; v <= 64.0; v *= 2.0) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 1.5));
  }
  const LinearFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(Regression, Contracts) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(fit_linear(one, one), ContractViolation);
  const std::vector<double> same_x{1.0, 1.0};
  const std::vector<double> y2{1.0, 2.0};
  EXPECT_THROW(fit_linear(same_x, y2), ContractViolation);
  const std::vector<double> neg{-1.0, 2.0};
  EXPECT_THROW(fit_log_x(neg, y2), ContractViolation);
  EXPECT_THROW(fit_power_law(y2, neg), ContractViolation);
}

}  // namespace
}  // namespace plurality
