// Tests for the sharded tick engine: shard-count-independent
// correctness, fixed-seed determinism, the OpinionTable bulk merge it
// relies on, the --engine dispatch (including the fallback for
// protocols that are not shardable), and the delivery-queue driver
// (run_sharded_queued): determinism, the blocking one-query-in-flight
// discipline, and delivery across epoch boundaries.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "graph/csr.hpp"
#include "graph/factory.hpp"
#include "opinion/assignment.hpp"
#include "sim/engine_select.hpp"
#include "sim/latency.hpp"
#include "sim/sharded_engine.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

static_assert(ShardableProtocol<VoterAsync<CompleteGraph>>);
static_assert(ShardableProtocol<TwoChoicesAsync<CompleteGraph>>);
static_assert(ShardableProtocol<ThreeMajorityAsync<CompleteGraph>>);

static_assert(DelayedShardableProtocol<VoterAsync<CompleteGraph>>);
static_assert(DelayedShardableProtocol<TwoChoicesAsync<CsrTopology>>);
static_assert(DelayedShardableProtocol<ThreeMajorityAsync<CsrTopology>>);

/// Ticks are counted but never change colors; not shardable (no
/// propose), used to pin the engine-select fallback.
class CountOnly {
 public:
  explicit CountOnly(std::uint64_t n) : table_(make_colors(n), 2) {}
  void on_tick(NodeId, Xoshiro256&) { ++ticks_; }
  std::uint64_t num_nodes() const noexcept { return table_.num_nodes(); }
  bool done() const noexcept { return false; }
  const OpinionTable& table() const noexcept { return table_; }
  std::uint64_t ticks() const noexcept { return ticks_; }

 private:
  static std::vector<ColorId> make_colors(std::uint64_t n) {
    std::vector<ColorId> c(n, 0);
    c[0] = 1;
    return c;
  }
  OpinionTable table_;
  std::uint64_t ticks_ = 0;
};

static_assert(!ShardableProtocol<CountOnly>);

TEST(OpinionTableMerge, AppliesChangesAndDeltasInBulk) {
  OpinionTable table({0, 0, 1, 1, 2}, 3);
  // Recolor node 0 -> 1 and node 4 -> 1 (color 2 dies out). The live
  // buffer is packed at the table's resolved width, as in the engine.
  const std::vector<ColorId> live_colors = {1, 0, 1, 1, 1};
  const PackedColors live(live_colors, table.width());
  const std::vector<NodeId> changed = {0, 4};
  const std::vector<std::int64_t> delta = {-1, +2, -1};
  table.merge_shard_deltas(changed, live, delta);
  EXPECT_EQ(table.color(0), 1u);
  EXPECT_EQ(table.color(4), 1u);
  EXPECT_EQ(table.support(0), 1u);
  EXPECT_EQ(table.support(1), 4u);
  EXPECT_EQ(table.support(2), 0u);
  EXPECT_EQ(table.surviving_colors(), 2u);
  EXPECT_EQ(table.plurality_color(), 1u);
}

TEST(OpinionTableMerge, DuplicateChangedEntriesAreHarmless) {
  OpinionTable table({0, 1}, 2);
  const std::vector<ColorId> live_colors = {1, 1};
  const PackedColors live(live_colors, table.width());
  const std::vector<NodeId> changed = {0, 0, 0};
  const std::vector<std::int64_t> delta = {-1, +1};
  table.merge_shard_deltas(changed, live, delta);
  EXPECT_TRUE(table.has_consensus());
  EXPECT_EQ(table.consensus_color(), 1u);
}

TEST(OpinionTableMerge, RejectsUnbalancedDeltas) {
  OpinionTable table({0, 1}, 2);
  const std::vector<ColorId> live_colors = {0, 1};
  const PackedColors live(live_colors, table.width());
  const std::vector<NodeId> changed = {};
  const std::vector<std::int64_t> delta = {+1, 0};
  EXPECT_THROW(table.merge_shard_deltas(changed, live, delta),
               ContractViolation);
}

TEST(ShardedEngine, ReachesConsensusAndKeepsTableConsistent) {
  const std::uint64_t n = 512;
  const CompleteGraph g(n);
  Xoshiro256 rng(1);
  TwoChoicesAsync proto(g, assign_two_colors(n, (n * 7) / 8, rng));
  const auto result = run_sharded(proto, /*seed=*/123, /*num_shards=*/4,
                                  /*max_time=*/1e6);
  EXPECT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
  EXPECT_GT(result.ticks, 0u);
  std::uint64_t total = 0;
  for (const auto s : proto.table().supports()) total += s;
  EXPECT_EQ(total, n);
}

TEST(ShardedEngine, DeterministicForFixedSeedAndShardCount) {
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  const auto run_once = [&] {
    Xoshiro256 rng(7);
    TwoChoicesAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    return run_sharded(proto, /*seed=*/42, /*num_shards=*/3, 1e6);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.consensus, b.consensus);
  EXPECT_EQ(a.winner, b.winner);
}

TEST(ShardedEngine, ShardCountClampsToNodes) {
  const std::uint64_t n = 8;
  const CompleteGraph g(n);
  Xoshiro256 rng(2);
  VoterAsync proto(g, assign_two_colors(n, 7, rng));
  // More shards than nodes must still run (shards clamp to n).
  const auto result = run_sharded(proto, /*seed=*/5, /*num_shards=*/32, 1e6);
  EXPECT_TRUE(result.consensus);
}

TEST(ShardedEngine, SingleShardMatchesProcessStatistics) {
  // One shard, epoch 1.0: total ticks over a fixed horizon are
  // Poisson(n * t). Mean 6400, sd ~ 80; allow 6 sigma.
  const std::uint64_t n = 128;
  const CompleteGraph g(n);
  Xoshiro256 rng(3);
  VoterAsync proto(g, assign_equal(n, 64, rng));
  const double horizon = 50.0;
  const auto result =
      run_sharded(proto, /*seed=*/9, /*num_shards=*/1, horizon);
  EXPECT_NEAR(static_cast<double>(result.ticks),
              static_cast<double>(n) * horizon, 480.0);
  EXPECT_DOUBLE_EQ(result.time, horizon);
}

TEST(ShardedEngine, ObserverFiresAtSampleBoundaries) {
  const std::uint64_t n = 64;
  const CompleteGraph g(n);
  Xoshiro256 rng(4);
  VoterAsync proto(g, assign_equal(n, 64, rng));
  std::vector<double> seen;
  run_sharded(
      proto, /*seed=*/11, /*num_shards=*/2, 4.0,
      [&](double t, const VoterAsync<CompleteGraph>&) { seen.push_back(t); },
      1.0);
  ASSERT_GE(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen.front(), 0.0);
  EXPECT_DOUBLE_EQ(seen.back(), 4.0);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GT(seen[i], seen[i - 1]);
  }
}

TEST(ShardedEngine, Contracts) {
  const CompleteGraph g(4);
  Xoshiro256 rng(5);
  VoterAsync proto(g, assign_equal(4, 2, rng));
  EXPECT_THROW(run_sharded(proto, 1, 1, 0.0), ContractViolation);
  EXPECT_THROW(run_sharded(proto, 1, 1, 1.0, NullObserver{}, 0.0),
               ContractViolation);
}

TEST(EngineSelect, ParsesAllEngineNamesAndRejectsUnknown) {
  EXPECT_EQ(parse_engine_kind("sequential"), EngineKind::kSequential);
  EXPECT_EQ(parse_engine_kind("heap"), EngineKind::kHeap);
  EXPECT_EQ(parse_engine_kind("superposition"), EngineKind::kSuperposition);
  EXPECT_EQ(parse_engine_kind("sharded"), EngineKind::kSharded);
  EXPECT_THROW(parse_engine_kind("warp-drive"), ContractViolation);
  EXPECT_STREQ(engine_kind_name(EngineKind::kSharded), "sharded");
}

TEST(EngineSelect, DispatchRunsEveryEngine) {
  const std::uint64_t n = 128;
  const CompleteGraph g(n);
  for (const EngineKind kind :
       {EngineKind::kSequential, EngineKind::kHeap,
        EngineKind::kSuperposition, EngineKind::kSharded}) {
    Xoshiro256 rng(6);
    TwoChoicesAsync proto(g, assign_two_colors(n, (n * 7) / 8, rng));
    const auto result = run_async_engine(kind, proto, rng, /*seed=*/13,
                                         /*shards=*/2, 1e6);
    EXPECT_TRUE(result.consensus) << engine_kind_name(kind);
    EXPECT_EQ(result.winner, 0u) << engine_kind_name(kind);
  }
}

TEST(EngineSelect, ShardedFallsBackForNonShardableProtocols) {
  CountOnly proto(32);
  Xoshiro256 rng(8);
  const auto result = run_async_engine(EngineKind::kSharded, proto, rng,
                                       /*seed=*/1, /*shards=*/4, 10.0);
  // Fallback superposition engine drove the protocol to the horizon.
  EXPECT_DOUBLE_EQ(result.time, 10.0);
  EXPECT_EQ(result.ticks, proto.ticks());
  EXPECT_GT(proto.ticks(), 0u);
}

/// A delayed-shardable probe that counts how many queries were issued
/// and how many answers were applied. Single-shard only (the counters
/// are plain, not atomic); never reaches consensus, so runs always
/// burn the full horizon.
class CountingDelayed {
 public:
  explicit CountingDelayed(std::uint64_t n) : table_(make_colors(n), 2) {}

  struct Query {
    ColorId ignored;
  };

  void on_tick(NodeId, Xoshiro256&) {}
  template <typename View>
  ColorId propose(NodeId u, const View& view, Xoshiro256&) const {
    return view.color(u);
  }
  template <typename View>
  Query query(NodeId, const View&, Xoshiro256&) const {
    ++queries_;
    return Query{0};
  }
  template <typename View>
  ColorId apply_query(NodeId u, const Query&, const View& view) const {
    ++applies_;
    return view.color(u);
  }

  std::uint64_t num_nodes() const noexcept { return table_.num_nodes(); }
  bool done() const noexcept { return false; }
  const OpinionTable& table() const noexcept { return table_; }
  OpinionTable& mutable_table() noexcept { return table_; }
  std::uint64_t queries() const noexcept { return queries_; }
  std::uint64_t applies() const noexcept { return applies_; }

 private:
  static std::vector<ColorId> make_colors(std::uint64_t n) {
    std::vector<ColorId> c(n, 0);
    c[0] = 1;
    return c;
  }
  OpinionTable table_;
  mutable std::uint64_t queries_ = 0;
  mutable std::uint64_t applies_ = 0;
};

static_assert(DelayedShardableProtocol<CountingDelayed>);

TEST(ShardedQueued, ReachesConsensusUnderRandomLatencyOnAGraph) {
  // The headline composition: a community graph, a random (exponential)
  // latency model, and the parallel delivery-queue driver.
  GraphSpec spec;
  spec.kind = GraphKind::kSbm;
  Xoshiro256 build_rng(17);
  const AnyGraph any = make_graph(spec, 512, build_rng);
  const CsrTopology csr = make_csr_view(any);
  Xoshiro256 rng(1);
  TwoChoicesAsync<CsrTopology> proto(
      csr, assign_two_colors(512, (512 * 7) / 8, rng));
  const ExponentialLatency latency(0.5);
  const auto result =
      run_sharded_queued(proto, latency, QueryDiscipline::kBlocking,
                         /*seed=*/9, /*num_shards=*/4, /*max_time=*/1e6);
  EXPECT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
  std::uint64_t total = 0;
  for (const auto s : proto.table().supports()) total += s;
  EXPECT_EQ(total, 512u);
}

TEST(ShardedQueued, DeterministicForFixedSeedAndShardCount) {
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  const ParetoLatency latency(1.0, 2.5);
  const auto run_once = [&] {
    Xoshiro256 rng(7);
    TwoChoicesAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    return run_sharded_queued(proto, latency, QueryDiscipline::kBlocking,
                              /*seed=*/42, /*num_shards=*/3, 1e6);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.consensus, b.consensus);
  EXPECT_EQ(a.winner, b.winner);
}

TEST(ShardedQueued, BlockingKeepsAtMostOneQueryInFlight) {
  // Constant latency L and blocking discipline: a node completes at
  // most one query per L time units, so over horizon T at most
  // n * (T/L + 1) queries are ever issued. Fire-and-forget queries on
  // every tick (~ Poisson(n*T) of them). One shard: plain counters.
  const std::uint64_t n = 64;
  const double horizon = 50.0;
  const double mean = 2.0;
  const ConstantLatency latency(mean);

  CountingDelayed blocking(n);
  run_sharded_queued(blocking, latency, QueryDiscipline::kBlocking,
                     /*seed=*/3, /*num_shards=*/1, horizon);
  const double bound =
      static_cast<double>(n) * (horizon / mean + 1.0);
  EXPECT_LE(static_cast<double>(blocking.queries()), bound);
  // Every applied answer re-arms its node, so the two counters track
  // each other to within the queries still in flight at the horizon.
  EXPECT_LE(blocking.applies(), blocking.queries());
  EXPECT_LE(blocking.queries() - blocking.applies(), n);

  CountingDelayed eager(n);
  const auto result =
      run_sharded_queued(eager, latency, QueryDiscipline::kFireAndForget,
                         /*seed=*/3, /*num_shards=*/1, horizon);
  // ~Poisson(n * T) = 3200 expected queries vs the blocking bound of
  // 1664: fire-and-forget clearly exceeds what blocking allows.
  EXPECT_EQ(eager.queries(), result.ticks);
  EXPECT_GT(static_cast<double>(eager.queries()), 1.5 * bound);
}

TEST(ShardedQueued, DeliveriesCrossEpochAndSampleBoundaries) {
  // Latency far above the epoch length (0.25) and the sample cadence:
  // answers must survive on the per-shard queues until their delivery
  // time, not die at the next barrier.
  const std::uint64_t n = 32;
  const double mean = 5.0;
  const ConstantLatency latency(mean);
  CountingDelayed proto(n);
  // One shard: the probe's counters are plain, and queue persistence
  // across epochs is a per-shard property anyway.
  run_sharded_queued(proto, latency, QueryDiscipline::kBlocking,
                     /*seed=*/4, /*num_shards=*/1, /*max_time=*/20.0);
  EXPECT_GT(proto.applies(), 0u);
  // With blocking and constant latency 5 over horizon 20, each node
  // completes at most 20/5 + 1 round trips.
  EXPECT_LE(static_cast<double>(proto.applies()),
            static_cast<double>(n) * (20.0 / mean + 1.0));
}

TEST(ShardedQueued, ZeroLatencyMatchesPlainShardedStatistics) {
  // Instant answers: the queued driver is the plain process with a
  // different RNG-consumption order; tick counts over a fixed horizon
  // stay Poisson(n * t) (mean 6400, sd 80; allow 6 sigma).
  const std::uint64_t n = 128;
  const CompleteGraph g(n);
  const ZeroLatency latency;
  Xoshiro256 rng(3);
  VoterAsync proto(g, assign_equal(n, 64, rng));
  const double horizon = 50.0;
  const auto result =
      run_sharded_queued(proto, latency, QueryDiscipline::kFireAndForget,
                         /*seed=*/9, /*num_shards=*/1, horizon);
  EXPECT_NEAR(static_cast<double>(result.ticks),
              static_cast<double>(n) * horizon, 480.0);
  EXPECT_DOUBLE_EQ(result.time, horizon);
}

TEST(ShardedQueued, Contracts) {
  const CompleteGraph g(4);
  const ZeroLatency latency;
  Xoshiro256 rng(5);
  VoterAsync proto(g, assign_equal(4, 2, rng));
  EXPECT_THROW(run_sharded_queued(proto, latency,
                                  QueryDiscipline::kBlocking, 1, 1, 0.0),
               ContractViolation);
  EXPECT_THROW(
      run_sharded_queued(proto, latency, QueryDiscipline::kBlocking, 1, 1,
                         1.0, NullObserver{}, /*sample_every=*/0.0),
      ContractViolation);
}

}  // namespace
}  // namespace plurality
