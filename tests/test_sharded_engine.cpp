// Tests for the sharded tick engine: shard-count-independent
// correctness, fixed-seed determinism, the OpinionTable bulk merge it
// relies on, and the --engine dispatch (including the fallback for
// protocols that are not shardable).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/engine_select.hpp"
#include "sim/sharded_engine.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

static_assert(ShardableProtocol<VoterAsync<CompleteGraph>>);
static_assert(ShardableProtocol<TwoChoicesAsync<CompleteGraph>>);
static_assert(ShardableProtocol<ThreeMajorityAsync<CompleteGraph>>);

/// Ticks are counted but never change colors; not shardable (no
/// propose), used to pin the engine-select fallback.
class CountOnly {
 public:
  explicit CountOnly(std::uint64_t n) : table_(make_colors(n), 2) {}
  void on_tick(NodeId, Xoshiro256&) { ++ticks_; }
  std::uint64_t num_nodes() const noexcept { return table_.num_nodes(); }
  bool done() const noexcept { return false; }
  const OpinionTable& table() const noexcept { return table_; }
  std::uint64_t ticks() const noexcept { return ticks_; }

 private:
  static std::vector<ColorId> make_colors(std::uint64_t n) {
    std::vector<ColorId> c(n, 0);
    c[0] = 1;
    return c;
  }
  OpinionTable table_;
  std::uint64_t ticks_ = 0;
};

static_assert(!ShardableProtocol<CountOnly>);

TEST(OpinionTableMerge, AppliesChangesAndDeltasInBulk) {
  OpinionTable table({0, 0, 1, 1, 2}, 3);
  // Recolor node 0 -> 1 and node 4 -> 1 (color 2 dies out).
  std::vector<ColorId> live = {1, 0, 1, 1, 1};
  const std::vector<NodeId> changed = {0, 4};
  const std::vector<std::int64_t> delta = {-1, +2, -1};
  table.merge_shard_deltas(changed, live, delta);
  EXPECT_EQ(table.color(0), 1u);
  EXPECT_EQ(table.color(4), 1u);
  EXPECT_EQ(table.support(0), 1u);
  EXPECT_EQ(table.support(1), 4u);
  EXPECT_EQ(table.support(2), 0u);
  EXPECT_EQ(table.surviving_colors(), 2u);
  EXPECT_EQ(table.plurality_color(), 1u);
}

TEST(OpinionTableMerge, DuplicateChangedEntriesAreHarmless) {
  OpinionTable table({0, 1}, 2);
  std::vector<ColorId> live = {1, 1};
  const std::vector<NodeId> changed = {0, 0, 0};
  const std::vector<std::int64_t> delta = {-1, +1};
  table.merge_shard_deltas(changed, live, delta);
  EXPECT_TRUE(table.has_consensus());
  EXPECT_EQ(table.consensus_color(), 1u);
}

TEST(OpinionTableMerge, RejectsUnbalancedDeltas) {
  OpinionTable table({0, 1}, 2);
  std::vector<ColorId> live = {0, 1};
  const std::vector<NodeId> changed = {};
  const std::vector<std::int64_t> delta = {+1, 0};
  EXPECT_THROW(table.merge_shard_deltas(changed, live, delta),
               ContractViolation);
}

TEST(ShardedEngine, ReachesConsensusAndKeepsTableConsistent) {
  const std::uint64_t n = 512;
  const CompleteGraph g(n);
  Xoshiro256 rng(1);
  TwoChoicesAsync proto(g, assign_two_colors(n, (n * 7) / 8, rng));
  const auto result = run_sharded(proto, /*seed=*/123, /*num_shards=*/4,
                                  /*max_time=*/1e6);
  EXPECT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
  EXPECT_GT(result.ticks, 0u);
  std::uint64_t total = 0;
  for (const auto s : proto.table().supports()) total += s;
  EXPECT_EQ(total, n);
}

TEST(ShardedEngine, DeterministicForFixedSeedAndShardCount) {
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  const auto run_once = [&] {
    Xoshiro256 rng(7);
    TwoChoicesAsync proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    return run_sharded(proto, /*seed=*/42, /*num_shards=*/3, 1e6);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.consensus, b.consensus);
  EXPECT_EQ(a.winner, b.winner);
}

TEST(ShardedEngine, ShardCountClampsToNodes) {
  const std::uint64_t n = 8;
  const CompleteGraph g(n);
  Xoshiro256 rng(2);
  VoterAsync proto(g, assign_two_colors(n, 7, rng));
  // More shards than nodes must still run (shards clamp to n).
  const auto result = run_sharded(proto, /*seed=*/5, /*num_shards=*/32, 1e6);
  EXPECT_TRUE(result.consensus);
}

TEST(ShardedEngine, SingleShardMatchesProcessStatistics) {
  // One shard, epoch 1.0: total ticks over a fixed horizon are
  // Poisson(n * t). Mean 6400, sd ~ 80; allow 6 sigma.
  const std::uint64_t n = 128;
  const CompleteGraph g(n);
  Xoshiro256 rng(3);
  VoterAsync proto(g, assign_equal(n, 64, rng));
  const double horizon = 50.0;
  const auto result =
      run_sharded(proto, /*seed=*/9, /*num_shards=*/1, horizon);
  EXPECT_NEAR(static_cast<double>(result.ticks),
              static_cast<double>(n) * horizon, 480.0);
  EXPECT_DOUBLE_EQ(result.time, horizon);
}

TEST(ShardedEngine, ObserverFiresAtSampleBoundaries) {
  const std::uint64_t n = 64;
  const CompleteGraph g(n);
  Xoshiro256 rng(4);
  VoterAsync proto(g, assign_equal(n, 64, rng));
  std::vector<double> seen;
  run_sharded(
      proto, /*seed=*/11, /*num_shards=*/2, 4.0,
      [&](double t, const VoterAsync<CompleteGraph>&) { seen.push_back(t); },
      1.0);
  ASSERT_GE(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen.front(), 0.0);
  EXPECT_DOUBLE_EQ(seen.back(), 4.0);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GT(seen[i], seen[i - 1]);
  }
}

TEST(ShardedEngine, Contracts) {
  const CompleteGraph g(4);
  Xoshiro256 rng(5);
  VoterAsync proto(g, assign_equal(4, 2, rng));
  EXPECT_THROW(run_sharded(proto, 1, 1, 0.0), ContractViolation);
  EXPECT_THROW(run_sharded(proto, 1, 1, 1.0, NullObserver{}, 0.0),
               ContractViolation);
}

TEST(EngineSelect, ParsesAllEngineNamesAndRejectsUnknown) {
  EXPECT_EQ(parse_engine_kind("sequential"), EngineKind::kSequential);
  EXPECT_EQ(parse_engine_kind("heap"), EngineKind::kHeap);
  EXPECT_EQ(parse_engine_kind("superposition"), EngineKind::kSuperposition);
  EXPECT_EQ(parse_engine_kind("sharded"), EngineKind::kSharded);
  EXPECT_THROW(parse_engine_kind("warp-drive"), ContractViolation);
  EXPECT_STREQ(engine_kind_name(EngineKind::kSharded), "sharded");
}

TEST(EngineSelect, DispatchRunsEveryEngine) {
  const std::uint64_t n = 128;
  const CompleteGraph g(n);
  for (const EngineKind kind :
       {EngineKind::kSequential, EngineKind::kHeap,
        EngineKind::kSuperposition, EngineKind::kSharded}) {
    Xoshiro256 rng(6);
    TwoChoicesAsync proto(g, assign_two_colors(n, (n * 7) / 8, rng));
    const auto result = run_async_engine(kind, proto, rng, /*seed=*/13,
                                         /*shards=*/2, 1e6);
    EXPECT_TRUE(result.consensus) << engine_kind_name(kind);
    EXPECT_EQ(result.winner, 0u) << engine_kind_name(kind);
  }
}

TEST(EngineSelect, ShardedFallsBackForNonShardableProtocols) {
  CountOnly proto(32);
  Xoshiro256 rng(8);
  const auto result = run_async_engine(EngineKind::kSharded, proto, rng,
                                       /*seed=*/1, /*shards=*/4, 10.0);
  // Fallback superposition engine drove the protocol to the horizon.
  EXPECT_DOUBLE_EQ(result.time, 10.0);
  EXPECT_EQ(result.ticks, proto.ticks());
  EXPECT_GT(proto.ticks(), 0u);
}

}  // namespace
}  // namespace plurality
