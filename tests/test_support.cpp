// Unit tests for support/: contract macros and math helpers.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace plurality {
namespace {

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(PC_EXPECTS(1 == 2), ContractViolation);
  EXPECT_NO_THROW(PC_EXPECTS(1 == 1));
}

TEST(Contracts, EnsuresThrowsOnViolation) {
  EXPECT_THROW(PC_ENSURES(false), ContractViolation);
  EXPECT_NO_THROW(PC_ENSURES(true));
}

TEST(Contracts, AssertThrowsOnViolation) {
  EXPECT_THROW(PC_ASSERT(false), ContractViolation);
}

TEST(Contracts, MessageNamesConditionAndLocation) {
  try {
    PC_EXPECTS(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(Math, SafeLnMatchesStdLog) {
  EXPECT_DOUBLE_EQ(safe_ln(1.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_ln(std::exp(1.0)), 1.0);
  EXPECT_THROW(safe_ln(0.0), ContractViolation);
  EXPECT_THROW(safe_ln(-1.0), ContractViolation);
}

TEST(Math, LnLnFlooredAtOne) {
  // ln ln of anything with ln(n) <= e floors to 1.
  EXPECT_DOUBLE_EQ(ln_ln(2.0), 1.0);
  EXPECT_DOUBLE_EQ(ln_ln(10.0), 1.0);
  // For large n it is the true ln ln n.
  const double n = 1e9;
  EXPECT_NEAR(ln_ln(n), std::log(std::log(n)), 1e-12);
  EXPECT_THROW(ln_ln(1.0), ContractViolation);
}

TEST(Math, LnLnMonotoneForLargeN) {
  double prev = 0.0;
  for (double n = 100.0; n < 1e12; n *= 10.0) {
    const double v = ln_ln(n);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 1), 1u);
  EXPECT_THROW(ceil_div(1, 0), ContractViolation);
}

TEST(Math, CeilAtLeast) {
  EXPECT_EQ(ceil_at_least(0.0), 1u);
  EXPECT_EQ(ceil_at_least(0.2), 1u);
  EXPECT_EQ(ceil_at_least(1.0), 1u);
  EXPECT_EQ(ceil_at_least(1.2), 2u);
  EXPECT_EQ(ceil_at_least(5.0, 10), 10u);
  EXPECT_THROW(ceil_at_least(-1.0), ContractViolation);
}

TEST(Math, MedianOddCount) {
  std::vector<int> v{5, 1, 4, 2, 3};
  EXPECT_EQ(median_inplace(std::span<int>(v)), 3);
}

TEST(Math, MedianEvenCountReturnsLowerMiddle) {
  std::vector<int> v{4, 1, 3, 2};
  EXPECT_EQ(median_inplace(std::span<int>(v)), 2);
}

TEST(Math, MedianSingleton) {
  std::vector<int> v{42};
  EXPECT_EQ(median_inplace(std::span<int>(v)), 42);
}

TEST(Math, MedianEmptyThrows) {
  std::vector<int> v;
  EXPECT_THROW(median_inplace(std::span<int>(v)), ContractViolation);
}

TEST(Math, MedianCopyDoesNotMutate) {
  const std::vector<int> v{3, 1, 2};
  const std::vector<int> original = v;
  EXPECT_EQ(median_copy(std::span<const int>(v)), 2);
  EXPECT_EQ(v, original);
}

TEST(Math, MedianNegativeOffsets) {
  std::vector<std::int32_t> v{-5, 3, -1, 0, 2};
  EXPECT_EQ(median_inplace(std::span<std::int32_t>(v)), 0);
}

TEST(Math, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-9, 1e-6));
  EXPECT_FALSE(approx_equal(1.0, 1.1, 1e-6));
}

}  // namespace
}  // namespace plurality
