// Tests for crash-stop fault injection.

#include <gtest/gtest.h>

#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/crash.hpp"
#include "sim/sequential_engine.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

TEST(CrashAdapter, CrashedNodesStopTicking) {
  const std::uint64_t n = 16;
  const CompleteGraph g(n);
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> plan(n, kNeverCrashes);
  plan[3] = 0;  // node 3 dead from the start
  CrashAdapter<VoterAsync<CompleteGraph>> proto(
      VoterAsync<CompleteGraph>(g, assign_equal(n, 4, rng)),
      std::move(plan));
  const ColorId frozen = proto.table().color(3);
  run_sequential(proto, rng, 100.0);
  EXPECT_TRUE(proto.is_crashed(3));
  EXPECT_EQ(proto.table().color(3), frozen);
  EXPECT_EQ(proto.crashed_count(), 1u);
}

TEST(CrashAdapter, DeadlineCountsOwnTicks) {
  const std::uint64_t n = 8;
  const CompleteGraph g(n);
  Xoshiro256 rng(2);
  std::vector<std::uint64_t> plan(n, 5);  // everyone dies after 5 ticks
  CrashAdapter<VoterAsync<CompleteGraph>> proto(
      VoterAsync<CompleteGraph>(g, assign_equal(n, 2, rng)),
      std::move(plan));
  EXPECT_EQ(proto.crashed_count(), 0u);
  // Drive ticks directly (an engine would stop at consensus, which tiny
  // voter populations reach before anyone's deadline).
  for (int round = 0; round < 10; ++round) {
    for (NodeId u = 0; u < n; ++u) proto.on_tick(u, rng);
  }
  EXPECT_EQ(proto.crashed_count(), n);
}

TEST(CrashAdapter, LiveAgreementIgnoresCrashedHoldouts) {
  const std::uint64_t n = 64;
  const CompleteGraph g(n);
  Xoshiro256 rng(3);
  // Strong majority; a couple of dead-at-start minority nodes pin color 1.
  auto workload = assign_two_colors(n, n - 4, rng);
  std::vector<std::uint64_t> plan(n, kNeverCrashes);
  // Crash exactly the minority holders at tick 0.
  for (NodeId u = 0; u < n; ++u) {
    if (workload.colors[u] == 1) plan[u] = 0;
  }
  CrashAdapter<TwoChoicesAsync<CompleteGraph>> proto(
      TwoChoicesAsync<CompleteGraph>(g, std::move(workload)),
      std::move(plan));
  const auto result = run_sequential(proto, rng, 500.0);
  // Global consensus is impossible: crashed nodes pin color 1 ...
  EXPECT_FALSE(result.consensus);
  EXPECT_GE(proto.table().support(1), 4u);
  // ... but live nodes essentially agree. (A live node can transiently
  // hold color 1 at the stop snapshot by sampling two pinned nodes, so
  // "essentially": at most one straggler among 60 live nodes.)
  EXPECT_GE(proto.live_agreement(), 59.0 / 60.0);
}

TEST(CrashAdapter, PlanRejectsSizeMismatch) {
  const CompleteGraph g(8);
  Xoshiro256 rng(4);
  EXPECT_THROW(
      (CrashAdapter<VoterAsync<CompleteGraph>>(
          VoterAsync<CompleteGraph>(g, assign_equal(8, 2, rng)),
          std::vector<std::uint64_t>(3, kNeverCrashes))),
      ContractViolation);
}

TEST(CrashFractionPlan, MarksExactFraction) {
  Xoshiro256 rng(5);
  const auto plan = crash_fraction_plan(1000, 0.25, 7, rng);
  std::uint64_t crashing = 0;
  for (const auto deadline : plan) {
    if (deadline != kNeverCrashes) {
      EXPECT_EQ(deadline, 7u);
      ++crashing;
    }
  }
  EXPECT_EQ(crashing, 250u);
}

TEST(CrashFractionPlan, ZeroAndFullFractions) {
  Xoshiro256 rng(6);
  const auto none = crash_fraction_plan(100, 0.0, 1, rng);
  for (const auto d : none) EXPECT_EQ(d, kNeverCrashes);
  const auto all = crash_fraction_plan(100, 1.0, 1, rng);
  for (const auto d : all) EXPECT_EQ(d, 1u);
  EXPECT_THROW(crash_fraction_plan(100, 1.5, 1, rng), ContractViolation);
}

// The O(1)/O(k) incremental counters (crashed_count, live_agreement)
// must agree with a from-scratch O(n) rescan at every point of a run
// with staggered deadlines — including deadline-0 nodes counted at
// construction and the exact crash-transition ticks.
TEST(CrashAdapter, IncrementalCountersMatchBruteForceRescan) {
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  Xoshiro256 rng(8);
  std::vector<std::uint64_t> plan(n, kNeverCrashes);
  for (NodeId u = 0; u < n; ++u) {
    if (u % 3 == 0) plan[u] = u % 17;  // staggered; includes deadline 0
  }
  CrashAdapter<TwoChoicesAsync<CompleteGraph>> proto(
      TwoChoicesAsync<CompleteGraph>(g, assign_equal(n, 4, rng)),
      std::move(plan));

  const auto brute_force_check = [&] {
    std::uint64_t crashed = 0;
    std::vector<std::uint64_t> live_support(proto.table().num_colors(), 0);
    for (NodeId u = 0; u < n; ++u) {
      if (proto.is_crashed(u)) {
        ++crashed;
      } else {
        ++live_support[proto.table().color(u)];
      }
    }
    EXPECT_EQ(proto.crashed_count(), crashed);
    const std::uint64_t live = n - crashed;
    std::uint64_t best = 0;
    for (const auto s : live_support) best = std::max(best, s);
    const double expected =
        live == 0 ? 1.0
                  : static_cast<double>(best) / static_cast<double>(live);
    EXPECT_DOUBLE_EQ(proto.live_agreement(), expected);
  };

  brute_force_check();  // deadline-0 nodes already crashed
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 64; ++i) {
      proto.on_tick(static_cast<NodeId>(uniform_below(rng, n)), rng);
    }
    brute_force_check();
  }
  EXPECT_GT(proto.crashed_count(), 0u);
}

TEST(CrashAdapter, SurvivorsStillReachLiveAgreementUnderLateCrashes) {
  const std::uint64_t n = 512;
  const CompleteGraph g(n);
  Xoshiro256 rng(7);
  const auto plan = crash_fraction_plan(n, 0.2, 20, rng);
  CrashAdapter<TwoChoicesAsync<CompleteGraph>> proto(
      TwoChoicesAsync<CompleteGraph>(
          g, assign_two_colors(n, (n * 3) / 4, rng)),
      plan);
  run_sequential(proto, rng, 2000.0);
  EXPECT_GT(proto.live_agreement(), 0.999);
}

}  // namespace
}  // namespace plurality
