// Unit + statistical tests for the RNG stack. Statistical assertions use
// wide tolerances (>= 5 sigma) with fixed seeds, so they are
// deterministic in practice and never flaky.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "rng/alias_table.hpp"
#include "rng/distributions.hpp"
#include "rng/seed.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

TEST(SplitMix64, KnownVectors) {
  // Reference outputs for seed 1234567 from the public-domain reference
  // implementation.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.next(), 9817491932198370423ULL);
}

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(99);
  SplitMix64 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.jump();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(a.next());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(seen.count(b.next()));
}

TEST(Xoshiro, LongJumpDiffersFromJump) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  a.jump();
  b.long_jump();
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, BitBalance) {
  // Each bit position should be ~50% ones.
  Xoshiro256 rng(7);
  constexpr int kSamples = 20000;
  std::array<int, 64> ones{};
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t x = rng.next();
    for (int bit = 0; bit < 64; ++bit) ones[bit] += (x >> bit) & 1;
  }
  for (int bit = 0; bit < 64; ++bit) {
    EXPECT_NEAR(ones[bit], kSamples / 2, 5 * std::sqrt(kSamples) / 2)
        << "bit " << bit;
  }
}

TEST(SeedSequence, StreamsAreDistinctAndStable) {
  const SeedSequence seeds(2024);
  EXPECT_EQ(seeds.stream(0), seeds.stream(0));
  std::set<std::uint64_t> all;
  for (std::uint64_t i = 0; i < 1000; ++i) all.insert(seeds.stream(i));
  EXPECT_EQ(all.size(), 1000u);
}

TEST(SeedSequence, ChildSequencesDecorrelated) {
  const SeedSequence root(5);
  EXPECT_NE(root.child(0).stream(0), root.child(1).stream(0));
  EXPECT_NE(root.child(0).stream(0), root.stream(0));
}

TEST(UniformBelow, RespectsBound) {
  Xoshiro256 rng(3);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(uniform_below(rng, bound), bound);
    }
  }
}

TEST(UniformBelow, BoundOneAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_below(rng, 1), 0u);
}

TEST(UniformBelow, ZeroBoundViolatesContract) {
  Xoshiro256 rng(3);
  EXPECT_THROW(uniform_below(rng, 0), ContractViolation);
}

TEST(UniformBelow, ChiSquareUniformity) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBuckets = 16;
  constexpr int kSamples = 160000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[uniform_below(rng, kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 degrees of freedom; 99.99th percentile ~ 44.3.
  EXPECT_LT(chi2, 45.0);
}

TEST(UniformRange, InclusiveBounds) {
  Xoshiro256 rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = uniform_range(rng, -3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(UniformUnit, HalfOpenRangeAndMean) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = uniform_unit(rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.005);
}

TEST(UniformOpen, NeverZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double u = uniform_open(rng);
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(Bernoulli, EdgeProbabilities) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(bernoulli(rng, 0.0));
    EXPECT_TRUE(bernoulli(rng, 1.0));
  }
  EXPECT_THROW(bernoulli(rng, 1.5), ContractViolation);
  EXPECT_THROW(bernoulli(rng, -0.1), ContractViolation);
}

TEST(Bernoulli, FrequencyMatchesP) {
  Xoshiro256 rng(8);
  constexpr int kSamples = 100000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) hits += bernoulli(rng, 0.3);
  EXPECT_NEAR(hits / static_cast<double>(kSamples), 0.3, 0.01);
}

TEST(Exponential, MeanAndVariance) {
  Xoshiro256 rng(13);
  constexpr int kSamples = 200000;
  const double rate = 2.5;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = exponential(rng, rate);
    ASSERT_GE(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 1.0 / rate, 0.01);
  EXPECT_NEAR(var, 1.0 / (rate * rate), 0.02);
  EXPECT_THROW(exponential(rng, 0.0), ContractViolation);
}

TEST(Poisson, SmallMeanMoments) {
  Xoshiro256 rng(17);
  constexpr int kSamples = 100000;
  const double mean = 3.7;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const auto x = static_cast<double>(poisson(rng, mean));
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / kSamples;
  const double var = sum_sq / kSamples - m * m;
  EXPECT_NEAR(m, mean, 0.05);
  EXPECT_NEAR(var, mean, 0.1);  // Poisson: variance == mean
}

TEST(Poisson, LargeMeanUsesSplitAndStaysExact) {
  Xoshiro256 rng(19);
  constexpr int kSamples = 20000;
  const double mean = 500.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const auto x = static_cast<double>(poisson(rng, mean));
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / kSamples;
  const double var = sum_sq / kSamples - m * m;
  EXPECT_NEAR(m, mean, 1.0);
  EXPECT_NEAR(var, mean, 25.0);
}

TEST(Poisson, ZeroMeanIsZero) {
  Xoshiro256 rng(19);
  EXPECT_EQ(poisson(rng, 0.0), 0u);
}

TEST(Gamma, MeanMatchesShape) {
  Xoshiro256 rng(23);
  constexpr int kSamples = 100000;
  for (const double shape : {0.5, 1.0, 2.0, 7.5}) {
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) sum += gamma(rng, shape);
    EXPECT_NEAR(sum / kSamples, shape, 0.05 * std::max(shape, 1.0))
        << "shape " << shape;
  }
  EXPECT_THROW(gamma(rng, 0.0), ContractViolation);
}

TEST(StandardNormal, Moments) {
  Xoshiro256 rng(29);
  constexpr int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = standard_normal(rng);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.02);
}

TEST(AliasTable, NormalizesWeights) {
  const std::vector<double> w{1.0, 3.0};
  const AliasTable table(w);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_NEAR(table.probability_of(0), 0.25, 1e-12);
  EXPECT_NEAR(table.probability_of(1), 0.75, 1e-12);
}

TEST(AliasTable, SamplingFrequencies) {
  const std::vector<double> w{0.1, 0.2, 0.3, 0.4};
  const AliasTable table(w);
  Xoshiro256 rng(31);
  constexpr int kSamples = 400000;
  std::array<int, 4> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[table.sample(rng)];
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(counts[c] / static_cast<double>(kSamples), w[c], 0.005)
        << "outcome " << c;
  }
}

TEST(AliasTable, SingleOutcome) {
  const std::vector<double> w{2.0};
  const AliasTable table(w);
  Xoshiro256 rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> w{0.0, 1.0, 0.0};
  const AliasTable table(w);
  Xoshiro256 rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(table.sample(rng), 1u);
}

TEST(AliasTable, RejectsInvalidWeights) {
  Xoshiro256 rng(1);
  EXPECT_THROW(AliasTable(std::vector<double>{}), ContractViolation);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), ContractViolation);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}),
               ContractViolation);
}

}  // namespace
}  // namespace plurality
