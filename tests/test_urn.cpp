// Tests for the Pólya urn substrate, including the martingale property
// the paper's §3.1 Bit-Propagation analysis rests on — checked on the
// abstract urn AND against the protocol's realized bit dynamics.

#include <gtest/gtest.h>

#include <cmath>

#include "core/one_extra_bit.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/seed.hpp"
#include "stats/welford.hpp"
#include "support/assert.hpp"
#include "urn/polya.hpp"

namespace plurality {
namespace {

TEST(PolyaUrn, StepAddsReinforcement) {
  PolyaUrn urn({3, 7}, 2);
  Xoshiro256 rng(1);
  const std::size_t drawn = urn.step(rng);
  EXPECT_LT(drawn, 2u);
  EXPECT_EQ(urn.total(), 12u);
  EXPECT_EQ(urn.count(drawn), (drawn == 0 ? 5u : 9u));
}

TEST(PolyaUrn, FractionsSumToOne) {
  PolyaUrn urn({1, 2, 3}, 1);
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) urn.step(rng);
  double total = 0.0;
  for (std::size_t c = 0; c < 3; ++c) total += urn.fraction(c);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(urn.total(), 106u);
}

TEST(PolyaUrn, FractionIsAMartingale) {
  // E[fraction after T steps] == initial fraction. 400 independent urns,
  // initial fraction 0.25; sample mean sd ~ 0.28/20 = 0.014 -> 5 sigma.
  const SeedSequence seeds(42);
  Welford final_fraction;
  for (std::uint64_t rep = 0; rep < 400; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    PolyaUrn urn({5, 15}, 1);
    for (int t = 0; t < 200; ++t) urn.step(rng);
    final_fraction.add(urn.fraction(0));
  }
  EXPECT_NEAR(final_fraction.mean(), 0.25, 0.07);
  // And unlike a concentrating process, the Pólya limit is random:
  // variance stays macroscopic.
  EXPECT_GT(final_fraction.stddev(), 0.05);
}

TEST(PolyaUrn, DominantColorUsuallyStaysDominant) {
  const SeedSequence seeds(43);
  int stayed = 0;
  constexpr int kReps = 100;
  for (int rep = 0; rep < kReps; ++rep) {
    Xoshiro256 rng = seeds.make_rng(static_cast<std::uint64_t>(rep));
    PolyaUrn urn({30, 10}, 1);
    for (int t = 0; t < 300; ++t) urn.step(rng);
    stayed += (urn.fraction(0) > 0.5);
  }
  EXPECT_GT(stayed, 75);  // Beta(30,10) puts ~97% mass above 1/2
}

TEST(PolyaUrn, Contracts) {
  Xoshiro256 rng(3);
  EXPECT_THROW(PolyaUrn({}, 1), ContractViolation);
  EXPECT_THROW(PolyaUrn({0, 0}, 1), ContractViolation);
  EXPECT_THROW(PolyaUrn({1}, 0), ContractViolation);
  PolyaUrn urn({1, 1}, 1);
  EXPECT_THROW(urn.count(5), ContractViolation);
  EXPECT_THROW(urn.fraction(5), ContractViolation);
}

TEST(GeneralizedUrn, IdentityMatrixMatchesPolya) {
  // With R = I the generalized urn is the classic urn: same seed, same
  // trajectory.
  Xoshiro256 rng_a(4);
  Xoshiro256 rng_b(4);
  PolyaUrn classic({2, 5, 3}, 1);
  GeneralizedUrn general({2, 5, 3}, {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}});
  for (int t = 0; t < 500; ++t) {
    EXPECT_EQ(classic.step(rng_a), general.step(rng_b));
  }
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(classic.count(c), general.count(c));
  }
}

TEST(GeneralizedUrn, FriedmanUrnDriftsTowardBalance) {
  // Friedman urn (add to the *other* color) pushes fractions to 1/2
  // regardless of the start — the opposite of Pólya stickiness.
  const SeedSequence seeds(44);
  Welford final_fraction;
  for (std::uint64_t rep = 0; rep < 50; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    GeneralizedUrn urn({40, 10}, {{0, 1}, {1, 0}});
    for (int t = 0; t < 2000; ++t) urn.step(rng);
    final_fraction.add(urn.fraction(0));
  }
  EXPECT_NEAR(final_fraction.mean(), 0.5, 0.03);
  EXPECT_LT(final_fraction.stddev(), 0.05);
}

TEST(GeneralizedUrn, RejectsShapeMismatch) {
  EXPECT_THROW(GeneralizedUrn({1, 1}, {{1, 0}}), ContractViolation);
  EXPECT_THROW(GeneralizedUrn({1, 1}, {{1}, {1}}), ContractViolation);
}

TEST(BitPropagationAsUrn, ColorFractionsAmongBitSettersPreserved) {
  // The paper's claim: Bit-Propagation grows the bit-set population
  // without (materially) changing its color mix. Measure C1's fraction
  // among bit-set nodes right after the two-choices round vs at the end
  // of the phase; the mean drift over repetitions must be small.
  const std::uint64_t n = 1 << 14;
  const CompleteGraph g(n);
  const SeedSequence seeds(45);
  Welford drift;
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    OneExtraBitSync proto(g, assign_two_colors(n, (n * 3) / 5, rng));
    proto.execute_round(rng);  // two-choices: bits seeded ~ cj^2/n
    // Expected fraction of C1 among bit setters: c1^2/(c1^2+c2^2).
    const double before = 0.36 / (0.36 + 0.16);
    for (std::uint64_t r = 0; r < proto.bp_rounds_per_phase(); ++r) {
      proto.execute_round(rng);
    }
    const double after =
        static_cast<double>(proto.table().support(0)) /
        static_cast<double>(n);
    drift.add(after - before);
  }
  EXPECT_NEAR(drift.mean(), 0.0, 0.02);
}

}  // namespace
}  // namespace plurality
