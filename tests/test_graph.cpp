// Unit + statistical tests for the graph substrate.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "graph/adjacency.hpp"
#include "graph/complete.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"
#include "graph/random_regular.hpp"
#include "graph/ring.hpp"
#include "graph/torus.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

static_assert(GraphTopology<CompleteGraph>);
static_assert(GraphTopology<RingGraph>);
static_assert(GraphTopology<TorusGraph>);
static_assert(GraphTopology<ErdosRenyiGraph>);
static_assert(GraphTopology<RandomRegularGraph>);

TEST(CompleteGraph, NeverSamplesSelf) {
  const CompleteGraph g(10);
  Xoshiro256 rng(1);
  for (NodeId u = 0; u < 10; ++u) {
    for (int i = 0; i < 1000; ++i) {
      const NodeId v = g.sample_neighbor(u, rng);
      EXPECT_NE(v, u);
      EXPECT_LT(v, 10u);
    }
  }
}

TEST(CompleteGraph, CoversAllOtherNodesUniformly) {
  const CompleteGraph g(5);
  Xoshiro256 rng(2);
  std::array<int, 5> counts{};
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) ++counts[g.sample_neighbor(2, rng)];
  EXPECT_EQ(counts[2], 0);
  for (const NodeId v : {0u, 1u, 3u, 4u}) {
    EXPECT_NEAR(counts[v], kSamples / 4, 5 * std::sqrt(kSamples / 4.0));
  }
}

TEST(CompleteGraph, DegreeAndSize) {
  const CompleteGraph g(100);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.degree(0), 99u);
  EXPECT_THROW(CompleteGraph(1), ContractViolation);
}

TEST(CompleteGraph, TwoNodesAlwaysSampleTheOther) {
  const CompleteGraph g(2);
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(g.sample_neighbor(0, rng), 1u);
    EXPECT_EQ(g.sample_neighbor(1, rng), 0u);
  }
}

TEST(RingGraph, OnlyAdjacentNodes) {
  const RingGraph g(7);
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const NodeId v = g.sample_neighbor(3, rng);
    EXPECT_TRUE(v == 2 || v == 4);
  }
}

TEST(RingGraph, WrapsAround) {
  const RingGraph g(5);
  Xoshiro256 rng(5);
  std::set<NodeId> seen0;
  std::set<NodeId> seen4;
  for (int i = 0; i < 500; ++i) {
    seen0.insert(g.sample_neighbor(0, rng));
    seen4.insert(g.sample_neighbor(4, rng));
  }
  EXPECT_EQ(seen0, (std::set<NodeId>{4, 1}));
  EXPECT_EQ(seen4, (std::set<NodeId>{3, 0}));
  EXPECT_THROW(RingGraph(2), ContractViolation);
}

TEST(TorusGraph, FourDistinctNeighbors) {
  const TorusGraph g(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.degree(0), 4u);
  Xoshiro256 rng(6);
  std::set<NodeId> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(g.sample_neighbor(5, rng));
  // Node 5 is (x=1, y=1): neighbors (2,1)=6, (0,1)=4, (1,2)=9, (1,0)=1.
  EXPECT_EQ(seen, (std::set<NodeId>{6, 4, 9, 1}));
}

TEST(TorusGraph, CornerWrapsBothAxes) {
  const TorusGraph g(3, 3);
  Xoshiro256 rng(7);
  std::set<NodeId> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(g.sample_neighbor(0, rng));
  // (0,0): east (1,0)=1, west (2,0)=2, south (0,1)=3, north (0,2)=6.
  EXPECT_EQ(seen, (std::set<NodeId>{1, 2, 3, 6}));
  EXPECT_THROW(TorusGraph(2, 5), ContractViolation);
}

TEST(AdjacencyList, CsrLayout) {
  const std::vector<std::vector<NodeId>> lists{{1, 2}, {0}, {0}};
  const AdjacencyList adj(lists);
  EXPECT_EQ(adj.num_nodes(), 3u);
  EXPECT_EQ(adj.degree(0), 2u);
  EXPECT_EQ(adj.degree(1), 1u);
  EXPECT_EQ(adj.num_edges(), 2u);
  const auto row = adj.neighbors(0);
  EXPECT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], 1u);
  EXPECT_EQ(row[1], 2u);
}

TEST(AdjacencyList, SampleFromEmptyRowViolatesContract) {
  const std::vector<std::vector<NodeId>> lists{{1}, {0}, {}};
  const AdjacencyList adj(lists);
  Xoshiro256 rng(8);
  EXPECT_THROW(adj.sample_neighbor(2, rng), ContractViolation);
}

TEST(ErdosRenyi, FullProbabilityGivesClique) {
  Xoshiro256 rng(9);
  const ErdosRenyiGraph g(8, 1.0, rng);
  for (NodeId u = 0; u < 8; ++u) EXPECT_EQ(g.degree(u), 7u);
  EXPECT_EQ(g.num_isolated(), 0u);
  EXPECT_EQ(g.num_edges(), 28u);
}

TEST(ErdosRenyi, MeanDegreeMatchesNP) {
  Xoshiro256 rng(10);
  const std::uint64_t n = 2000;
  const double p = 0.01;
  const ErdosRenyiGraph g(n, p, rng);
  double total_degree = 0.0;
  for (NodeId u = 0; u < n; ++u) total_degree += g.degree(u);
  const double mean_degree = total_degree / n;
  const double expected = p * (n - 1);
  EXPECT_NEAR(mean_degree, expected, 1.0);
}

TEST(ErdosRenyi, SamplesAreActualNeighbors) {
  Xoshiro256 rng(11);
  const ErdosRenyiGraph g(50, 0.3, rng);
  for (NodeId u = 0; u < 50; ++u) {
    if (g.degree(u) == 0) continue;
    for (int i = 0; i < 20; ++i) {
      const NodeId v = g.sample_neighbor(u, rng);
      EXPECT_NE(v, u);
      EXPECT_LT(v, 50u);
    }
  }
}

TEST(ErdosRenyi, SparseGraphReportsIsolatedNodes) {
  Xoshiro256 rng(12);
  const ErdosRenyiGraph g(500, 0.0005, rng);
  // Expected degree ~ 0.25: most nodes are isolated.
  EXPECT_GT(g.num_isolated(), 100u);
  EXPECT_THROW(ErdosRenyiGraph(2, 0.0, rng), ContractViolation);
}

TEST(RandomRegular, ExactDegrees) {
  Xoshiro256 rng(13);
  const RandomRegularGraph g(100, 4, rng);
  for (NodeId u = 0; u < 100; ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_EQ(g.defects(), 0u);
}

TEST(RandomRegular, OddDegreeTimesOddNodesRejected) {
  Xoshiro256 rng(14);
  EXPECT_THROW(RandomRegularGraph(5, 3, rng), ContractViolation);
  EXPECT_NO_THROW(RandomRegularGraph(6, 3, rng));
}

TEST(RandomRegular, NeighborsAreValid) {
  Xoshiro256 rng(15);
  const RandomRegularGraph g(64, 6, rng);
  for (NodeId u = 0; u < 64; ++u) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_LT(g.sample_neighbor(u, rng), 64u);
    }
  }
}

}  // namespace
}  // namespace plurality
