// Unit + statistical tests for the graph substrate.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "graph/adjacency.hpp"
#include "graph/complete.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/factory.hpp"
#include "graph/graph.hpp"
#include "graph/random_regular.hpp"
#include "graph/ring.hpp"
#include "graph/sbm.hpp"
#include "graph/torus.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

static_assert(GraphTopology<CompleteGraph>);
static_assert(GraphTopology<RingGraph>);
static_assert(GraphTopology<TorusGraph>);
static_assert(GraphTopology<ErdosRenyiGraph>);
static_assert(GraphTopology<RandomRegularGraph>);
static_assert(GraphTopology<StochasticBlockModelGraph>);

TEST(CompleteGraph, NeverSamplesSelf) {
  const CompleteGraph g(10);
  Xoshiro256 rng(1);
  for (NodeId u = 0; u < 10; ++u) {
    for (int i = 0; i < 1000; ++i) {
      const NodeId v = g.sample_neighbor(u, rng);
      EXPECT_NE(v, u);
      EXPECT_LT(v, 10u);
    }
  }
}

TEST(CompleteGraph, CoversAllOtherNodesUniformly) {
  const CompleteGraph g(5);
  Xoshiro256 rng(2);
  std::array<int, 5> counts{};
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) ++counts[g.sample_neighbor(2, rng)];
  EXPECT_EQ(counts[2], 0);
  for (const NodeId v : {0u, 1u, 3u, 4u}) {
    EXPECT_NEAR(counts[v], kSamples / 4, 5 * std::sqrt(kSamples / 4.0));
  }
}

TEST(CompleteGraph, DegreeAndSize) {
  const CompleteGraph g(100);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.degree(0), 99u);
  EXPECT_THROW(CompleteGraph(1), ContractViolation);
}

TEST(CompleteGraph, TwoNodesAlwaysSampleTheOther) {
  const CompleteGraph g(2);
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(g.sample_neighbor(0, rng), 1u);
    EXPECT_EQ(g.sample_neighbor(1, rng), 0u);
  }
}

TEST(RingGraph, OnlyAdjacentNodes) {
  const RingGraph g(7);
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const NodeId v = g.sample_neighbor(3, rng);
    EXPECT_TRUE(v == 2 || v == 4);
  }
}

TEST(RingGraph, WrapsAround) {
  const RingGraph g(5);
  Xoshiro256 rng(5);
  std::set<NodeId> seen0;
  std::set<NodeId> seen4;
  for (int i = 0; i < 500; ++i) {
    seen0.insert(g.sample_neighbor(0, rng));
    seen4.insert(g.sample_neighbor(4, rng));
  }
  EXPECT_EQ(seen0, (std::set<NodeId>{4, 1}));
  EXPECT_EQ(seen4, (std::set<NodeId>{3, 0}));
  EXPECT_THROW(RingGraph(2), ContractViolation);
}

TEST(TorusGraph, FourDistinctNeighbors) {
  const TorusGraph g(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.degree(0), 4u);
  Xoshiro256 rng(6);
  std::set<NodeId> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(g.sample_neighbor(5, rng));
  // Node 5 is (x=1, y=1): neighbors (2,1)=6, (0,1)=4, (1,2)=9, (1,0)=1.
  EXPECT_EQ(seen, (std::set<NodeId>{6, 4, 9, 1}));
}

TEST(TorusGraph, CornerWrapsBothAxes) {
  const TorusGraph g(3, 3);
  Xoshiro256 rng(7);
  std::set<NodeId> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(g.sample_neighbor(0, rng));
  // (0,0): east (1,0)=1, west (2,0)=2, south (0,1)=3, north (0,2)=6.
  EXPECT_EQ(seen, (std::set<NodeId>{1, 2, 3, 6}));
  EXPECT_THROW(TorusGraph(2, 5), ContractViolation);
}

TEST(AdjacencyList, CsrLayout) {
  const std::vector<std::vector<NodeId>> lists{{1, 2}, {0}, {0}};
  const AdjacencyList adj(lists);
  EXPECT_EQ(adj.num_nodes(), 3u);
  EXPECT_EQ(adj.degree(0), 2u);
  EXPECT_EQ(adj.degree(1), 1u);
  EXPECT_EQ(adj.num_edges(), 2u);
  const auto row = adj.neighbors(0);
  EXPECT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], 1u);
  EXPECT_EQ(row[1], 2u);
}

TEST(AdjacencyList, SampleFromEmptyRowViolatesContract) {
  const std::vector<std::vector<NodeId>> lists{{1}, {0}, {}};
  const AdjacencyList adj(lists);
  Xoshiro256 rng(8);
  EXPECT_THROW(adj.sample_neighbor(2, rng), ContractViolation);
}

TEST(ErdosRenyi, FullProbabilityGivesClique) {
  Xoshiro256 rng(9);
  const ErdosRenyiGraph g(8, 1.0, rng);
  for (NodeId u = 0; u < 8; ++u) EXPECT_EQ(g.degree(u), 7u);
  EXPECT_EQ(g.num_isolated(), 0u);
  EXPECT_EQ(g.num_edges(), 28u);
}

TEST(ErdosRenyi, MeanDegreeMatchesNP) {
  Xoshiro256 rng(10);
  const std::uint64_t n = 2000;
  const double p = 0.01;
  const ErdosRenyiGraph g(n, p, rng);
  double total_degree = 0.0;
  for (NodeId u = 0; u < n; ++u) total_degree += g.degree(u);
  const double mean_degree = total_degree / n;
  const double expected = p * (n - 1);
  EXPECT_NEAR(mean_degree, expected, 1.0);
}

TEST(ErdosRenyi, SamplesAreActualNeighbors) {
  Xoshiro256 rng(11);
  const ErdosRenyiGraph g(50, 0.3, rng);
  for (NodeId u = 0; u < 50; ++u) {
    if (g.degree(u) == 0) continue;
    for (int i = 0; i < 20; ++i) {
      const NodeId v = g.sample_neighbor(u, rng);
      EXPECT_NE(v, u);
      EXPECT_LT(v, 50u);
    }
  }
}

TEST(ErdosRenyi, SparseGraphReportsIsolatedNodes) {
  Xoshiro256 rng(12);
  const ErdosRenyiGraph g(500, 0.0005, rng);
  // Expected degree ~ 0.25: most nodes are isolated.
  EXPECT_GT(g.num_isolated(), 100u);
  EXPECT_THROW(ErdosRenyiGraph(2, 0.0, rng), ContractViolation);
}

TEST(RandomRegular, ExactDegrees) {
  Xoshiro256 rng(13);
  const RandomRegularGraph g(100, 4, rng);
  for (NodeId u = 0; u < 100; ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_EQ(g.defects(), 0u);
}

TEST(RandomRegular, OddDegreeTimesOddNodesRejected) {
  Xoshiro256 rng(14);
  EXPECT_THROW(RandomRegularGraph(5, 3, rng), ContractViolation);
  EXPECT_NO_THROW(RandomRegularGraph(6, 3, rng));
}

TEST(RandomRegular, NeighborsAreValid) {
  Xoshiro256 rng(15);
  const RandomRegularGraph g(64, 6, rng);
  for (NodeId u = 0; u < 64; ++u) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_LT(g.sample_neighbor(u, rng), 64u);
    }
  }
}

TEST(StochasticBlockModel, BlockSizesAreAsEqualAsPossible) {
  Xoshiro256 rng(16);
  const StochasticBlockModelGraph g(103, 4, 0.5, 0.1, rng);
  EXPECT_EQ(g.num_nodes(), 103u);
  EXPECT_EQ(g.num_blocks(), 4u);
  // 103 = 26 + 26 + 26 + 25: the first n % B blocks get the extra node.
  EXPECT_EQ(g.communities()[0].size(), 26u);
  EXPECT_EQ(g.communities()[1].size(), 26u);
  EXPECT_EQ(g.communities()[2].size(), 26u);
  EXPECT_EQ(g.communities()[3].size(), 25u);
  std::uint64_t covered = 0;
  for (std::uint32_t b = 0; b < g.num_blocks(); ++b) {
    for (const NodeId u : g.communities()[b]) {
      EXPECT_EQ(g.block_of(u), b);
      ++covered;
    }
  }
  EXPECT_EQ(covered, g.num_nodes());
}

TEST(StochasticBlockModel, EdgeRatesMatchPinAndPout) {
  Xoshiro256 rng(17);
  const std::uint64_t n = 2000;
  const std::uint32_t blocks = 4;
  const double p_in = 0.1;
  const double p_out = 0.01;
  const StochasticBlockModelGraph g(n, blocks, p_in, p_out, rng);

  // Within-pair count: B * s*(s-1)/2 with s = 500; between-pair count:
  // C(B,2) * s^2. Compare realized edge counts against Binomial moments
  // at 5 sigma.
  const double s = 500.0;
  const double within_pairs = blocks * s * (s - 1) / 2.0;
  const double between_pairs = 6.0 * s * s;
  const double within_mean = within_pairs * p_in;
  const double within_sd = std::sqrt(within_pairs * p_in * (1 - p_in));
  const double between_mean = between_pairs * p_out;
  const double between_sd =
      std::sqrt(between_pairs * p_out * (1 - p_out));
  EXPECT_NEAR(static_cast<double>(g.num_within_edges()), within_mean,
              5 * within_sd);
  EXPECT_NEAR(static_cast<double>(g.num_between_edges()), between_mean,
              5 * between_sd);
  EXPECT_EQ(g.num_edges(), g.num_within_edges() + g.num_between_edges());
}

TEST(StochasticBlockModel, SamplesAreActualNeighborsAcrossBlocks) {
  Xoshiro256 rng(18);
  const StochasticBlockModelGraph g(120, 3, 0.5, 0.1, rng);
  std::set<NodeId> cross_sampled;
  for (NodeId u = 0; u < 120; ++u) {
    if (g.degree(u) == 0) continue;
    for (int i = 0; i < 20; ++i) {
      const NodeId v = g.sample_neighbor(u, rng);
      EXPECT_NE(v, u);
      EXPECT_LT(v, 120u);
      if (g.block_of(v) != g.block_of(u)) cross_sampled.insert(v);
    }
  }
  EXPECT_FALSE(cross_sampled.empty());
}

TEST(StochasticBlockModel, ConnectedAtTheDefaultSweepPoint) {
  // The default --graph=sbm sweep point (scaled down to n=1024):
  // blocks=4, p_in=0.3, p_out=0.01 must give one connected component,
  // or consensus experiments could never terminate.
  Xoshiro256 rng(19);
  const StochasticBlockModelGraph g(1024, 4, 0.3, 0.01, rng);
  EXPECT_EQ(g.num_isolated(), 0u);
  std::vector<bool> seen(1024, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::uint64_t reached = 0;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    ++reached;
    for (const NodeId v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(reached, g.num_nodes());
}

TEST(StochasticBlockModel, RejectsOutOfRangeParameters) {
  Xoshiro256 rng(20);
  EXPECT_THROW(StochasticBlockModelGraph(100, 0, 0.5, 0.1, rng),
               ContractViolation);
  EXPECT_THROW(StochasticBlockModelGraph(100, 101, 0.5, 0.1, rng),
               ContractViolation);
  EXPECT_THROW(StochasticBlockModelGraph(100, 4, 0.0, 0.1, rng),
               ContractViolation);
  EXPECT_THROW(StochasticBlockModelGraph(100, 4, 0.5, 1.5, rng),
               ContractViolation);
}

TEST(GraphFactory, ParsesEveryRegisteredKind) {
  EXPECT_EQ(parse_graph_kind("complete"), GraphKind::kComplete);
  EXPECT_EQ(parse_graph_kind("ring"), GraphKind::kRing);
  EXPECT_EQ(parse_graph_kind("torus"), GraphKind::kTorus);
  EXPECT_EQ(parse_graph_kind("er"), GraphKind::kErdosRenyi);
  EXPECT_EQ(parse_graph_kind("regular"), GraphKind::kRandomRegular);
  EXPECT_EQ(parse_graph_kind("sbm"), GraphKind::kSbm);
  EXPECT_THROW(parse_graph_kind("smallworld"), ContractViolation);
  try {
    parse_graph_kind("smallworld");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--graph"), std::string::npos) << what;
    EXPECT_NE(what.find("smallworld"), std::string::npos) << what;
  }
}

TEST(GraphFactory, BuildsEveryKindWithTheRightSize) {
  Xoshiro256 rng(21);
  GraphSpec spec;
  for (const GraphKind kind :
       {GraphKind::kComplete, GraphKind::kRing, GraphKind::kTorus,
        GraphKind::kErdosRenyi, GraphKind::kRandomRegular, GraphKind::kSbm}) {
    spec.kind = kind;
    const AnyGraph g = make_graph(spec, 100, rng);
    // The torus rounds 100 down to 10x10 = 100; everything else is exact.
    EXPECT_EQ(num_nodes(g), 100u) << spec.label();
  }
  spec.kind = GraphKind::kTorus;
  EXPECT_EQ(num_nodes(make_graph(spec, 90, rng)), 81u);
}

TEST(GraphFactory, ValidationNamesTheFlag) {
  Xoshiro256 rng(22);
  GraphSpec spec;
  spec.kind = GraphKind::kSbm;
  spec.p_in = 1.5;
  try {
    make_graph(spec, 100, rng);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--graph-pin"), std::string::npos)
        << e.what();
  }
  spec.p_in = 0.3;
  spec.p_out = -0.1;
  EXPECT_THROW(make_graph(spec, 100, rng), ContractViolation);
  spec.p_out = 0.01;
  spec.blocks = 0;
  EXPECT_THROW(spec.validate(), ContractViolation);
  spec.blocks = 101;  // more blocks than nodes
  EXPECT_THROW(make_graph(spec, 100, rng), ContractViolation);

  GraphSpec regular;
  regular.kind = GraphKind::kRandomRegular;
  regular.degree = 3;  // odd degree * odd n violates handshake parity
  try {
    make_graph(regular, 99, rng);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--graph-degree"),
              std::string::npos)
        << e.what();
  }
}

TEST(GraphFactory, ErdosRenyiAutoProbabilityConnects) {
  Xoshiro256 rng(23);
  GraphSpec spec;
  spec.kind = GraphKind::kErdosRenyi;
  const AnyGraph g = make_graph(spec, 512, rng);  // er_p = 0 -> 3 ln n / n
  EXPECT_EQ(std::get<ErdosRenyiGraph>(g).num_isolated(), 0u);
}

TEST(GraphFactory, RejectsBuildsWithIsolatedNodes) {
  // In-range rates that strand nodes must fail at build time with the
  // flag named, not crash later inside sample_neighbor on a worker.
  Xoshiro256 rng(24);
  GraphSpec sparse_er;
  sparse_er.kind = GraphKind::kErdosRenyi;
  sparse_er.er_p = 0.0005;  // expected degree ~ 0.25: mostly isolated
  try {
    make_graph(sparse_er, 500, rng);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--graph-p"), std::string::npos)
        << e.what();
  }

  GraphSpec sparse_sbm;
  sparse_sbm.kind = GraphKind::kSbm;
  sparse_sbm.blocks = 2;
  sparse_sbm.p_in = 0.001;
  sparse_sbm.p_out = 0.0;
  try {
    make_graph(sparse_sbm, 400, rng);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--graph-pin"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace plurality
