// Tests for the edge-latency model subsystem (sim/latency.hpp): sampler
// moments against the analytic values, hazard-rate monotonicity for the
// positive-aging family, parse/factory contracts, fixed-seed
// determinism through the messaging driver, and the sharded engine's
// constant-latency epoch fold against the messaging driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/delayed.hpp"
#include "core/two_choices.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/seed.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/engine_select.hpp"
#include "sim/latency.hpp"
#include "stat_gates.hpp"
#include "stats/quantiles.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

using Moments = stat_gates::SampleMoments;

Moments empirical_moments(const LatencyModel& model, std::uint64_t draws,
                          std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> xs;
  xs.reserve(draws);
  for (std::uint64_t i = 0; i < draws; ++i) xs.push_back(model.sample(rng));
  return stat_gates::moments(xs);
}

TEST(LatencySamplers, MatchAnalyticMeanAndVariance) {
  constexpr std::uint64_t kDraws = 200000;
  const double mean = 0.8;

  const ZeroLatency zero;
  const Moments mz = empirical_moments(zero, 1000, 1);
  EXPECT_EQ(mz.mean, 0.0);
  EXPECT_EQ(mz.variance, 0.0);

  const ConstantLatency constant(mean);
  const Moments mc = empirical_moments(constant, 1000, 2);
  EXPECT_NEAR(mc.mean, mean, 1e-9);
  EXPECT_NEAR(mc.variance, 0.0, 1e-9);

  // Exp(1/mean): variance mean^2.
  const ExponentialLatency expo(mean);
  const Moments me = empirical_moments(expo, kDraws, 3);
  EXPECT_NEAR(me.mean, mean, 0.02 * mean);
  EXPECT_NEAR(me.variance, mean * mean, 0.1 * mean * mean);
  EXPECT_GE(me.min, 0.0);

  // Lomax(alpha, sigma = mean(alpha-1)): variance mean^2*alpha/(alpha-2).
  const double alpha = 2.5;
  const ParetoLatency pareto(mean, alpha);
  const Moments mp = empirical_moments(pareto, kDraws, 4);
  EXPECT_NEAR(mp.mean, mean, 0.05 * mean);
  // Heavy tail: the variance estimator converges slowly; allow 30%.
  const double pareto_var = mean * mean * alpha / (alpha - 2.0);
  EXPECT_NEAR(mp.variance, pareto_var, 0.3 * pareto_var);
  EXPECT_GE(mp.min, 0.0);

  // Weibull(k=2): variance mean^2 * (Gamma(2)/Gamma(1.5)^2 - 1).
  const PositiveAgingLatency aging(mean, 2.0);
  const Moments ma = empirical_moments(aging, kDraws, 5);
  EXPECT_NEAR(ma.mean, mean, 0.02 * mean);
  const double g15 = std::tgamma(1.5);
  const double aging_var = mean * mean * (1.0 / (g15 * g15) - 1.0);
  EXPECT_NEAR(ma.variance, aging_var, 0.1 * aging_var);
  EXPECT_GE(ma.min, 0.0);
}

TEST(LatencySamplers, AgingHazardIsNonDecreasing) {
  // Analytic hazard of the Weibull family on a grid, for shapes at and
  // above the exponential boundary.
  for (const double shape : {1.0, 2.0, 4.0}) {
    const PositiveAgingLatency model(1.0, shape);
    double previous = model.hazard(0.05);
    for (double t = 0.1; t <= 4.0; t += 0.05) {
      const double h = model.hazard(t);
      EXPECT_GE(h, previous - 1e-12)
          << "shape " << shape << " hazard decreased at t=" << t;
      previous = h;
    }
  }
  // Contrast: the Lomax hazard strictly decreases and the exponential
  // hazard is flat.
  const ParetoLatency pareto(1.0, 2.5);
  EXPECT_GT(pareto.hazard(0.1), pareto.hazard(1.0));
  const ExponentialLatency expo(1.0);
  EXPECT_DOUBLE_EQ(expo.hazard(0.1), expo.hazard(10.0));
}

TEST(LatencySamplers, AgingHazardIsNonDecreasingEmpirically) {
  // Spot-check the aging property on actual draws: the conditional
  // exit probability P(T <= t + dt | T > t) must grow with t.
  const PositiveAgingLatency model(1.0, 2.0);
  Xoshiro256 rng(6);
  constexpr std::uint64_t kDraws = 400000;
  const double t_lo = 0.3;
  const double t_hi = 1.2;
  const double dt = 0.3;
  std::uint64_t at_lo = 0;
  std::uint64_t exit_lo = 0;
  std::uint64_t at_hi = 0;
  std::uint64_t exit_hi = 0;
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const double x = model.sample(rng);
    if (x > t_lo) {
      ++at_lo;
      exit_lo += (x <= t_lo + dt);
    }
    if (x > t_hi) {
      ++at_hi;
      exit_hi += (x <= t_hi + dt);
    }
  }
  ASSERT_GT(at_lo, 1000u);
  ASSERT_GT(at_hi, 1000u);
  const double p_lo = static_cast<double>(exit_lo) /
                      static_cast<double>(at_lo);
  const double p_hi = static_cast<double>(exit_hi) /
                      static_cast<double>(at_hi);
  EXPECT_GT(p_hi, p_lo);
}

TEST(LatencyFactory, ParsesAndValidates) {
  EXPECT_EQ(parse_latency_kind("zero"), LatencyKind::kZero);
  EXPECT_EQ(parse_latency_kind("const"), LatencyKind::kConstant);
  EXPECT_EQ(parse_latency_kind("exp"), LatencyKind::kExponential);
  EXPECT_EQ(parse_latency_kind("pareto"), LatencyKind::kPareto);
  EXPECT_EQ(parse_latency_kind("aging"), LatencyKind::kAging);
  EXPECT_THROW(parse_latency_kind("uniform"), ContractViolation);

  for (const LatencyKind kind :
       {LatencyKind::kZero, LatencyKind::kConstant,
        LatencyKind::kExponential, LatencyKind::kPareto,
        LatencyKind::kAging}) {
    const auto model =
        make_latency_model(kind, 1.5, default_latency_shape(kind));
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->kind(), kind);
    EXPECT_STREQ(model->name(), latency_kind_name(kind));
    if (kind != LatencyKind::kZero) {
      EXPECT_DOUBLE_EQ(model->mean(), 1.5);
    }
  }

  // Parameter contracts: positive mean, Lomax shape > 1 (finite mean),
  // Weibull shape >= 1 (non-decreasing hazard).
  EXPECT_THROW(make_latency_model(LatencyKind::kConstant, 0.0, 1.0),
               ContractViolation);
  EXPECT_THROW(make_latency_model(LatencyKind::kExponential, -1.0, 1.0),
               ContractViolation);
  EXPECT_THROW(make_latency_model(LatencyKind::kPareto, 1.0, 1.0),
               ContractViolation);
  EXPECT_THROW(make_latency_model(LatencyKind::kAging, 1.0, 0.5),
               ContractViolation);

  const LatencySpec zero_spec{LatencyKind::kZero, 1.0, 1.0};
  const LatencySpec const_spec{LatencyKind::kConstant, 1.0, 1.0};
  const LatencySpec pareto_spec{LatencyKind::kPareto, 1.0, 2.5};
  EXPECT_TRUE(zero_spec.foldable_into_sharded());
  EXPECT_TRUE(const_spec.foldable_into_sharded());
  EXPECT_FALSE(pareto_spec.foldable_into_sharded());
}

TEST(LatencyDriver, FixedSeedIsDeterministicPerModel) {
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  const auto run_once = [&](const LatencyModel& model, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    TwoChoicesAsyncDelayed proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    return run_continuous_messaging(proto, model, rng, 1e5);
  };

  const ExponentialLatency expo(0.5);
  const auto a = run_once(expo, 9);
  const auto b = run_once(expo, 9);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.consensus, b.consensus);

  // A different model consumes the stream differently: same seed, a
  // different realized trajectory (statistically certain at n=256).
  const PositiveAgingLatency aging(0.5, 4.0);
  const auto c = run_once(aging, 9);
  EXPECT_NE(a.time, c.time);
}

TEST(LatencyDriver, ZeroLatencyDrawsNoRngAndDeliversInstantly) {
  // With ZeroLatency every answer lands before the next tick, so the
  // delayed protocol finishes in essentially the instant-protocol time
  // horizon (the distributional KS check lives in
  // test_model_equivalence.cpp).
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  const ZeroLatency zero;
  Xoshiro256 rng(11);
  TwoChoicesAsyncDelayed proto(g, assign_two_colors(n, (n * 3) / 4, rng));
  const auto result = run_continuous_messaging(proto, zero, rng, 1e5);
  EXPECT_TRUE(result.consensus);
  EXPECT_EQ(result.winner, 0u);
}

TEST(LatencySharded, ConstantFoldTracksMessagingDriver) {
  // The sharded engine folds ConstantLatency(c) into its epoch
  // schedule (epoch = 2c, snapshot neighbor reads — mean read age c):
  // updates happen at the full tick rate from stale reads, i.e. the
  // fire-and-forget query discipline. Its consensus-time distribution
  // must agree with the messaging driver running the same workload and
  // discipline under the same constant latency, up to the fold's
  // epoch-quantization and its tick-time (rather than tick + c)
  // update application — one latency of slack on top of the CI bands.
  const std::uint64_t n = 512;
  const double c = 0.5;
  const CompleteGraph g(n);
  constexpr std::uint64_t kReps = 30;

  const ConstantLatency latency(c);
  std::vector<double> folded;
  std::vector<double> messaged;
  const SeedSequence seeds_f(21);
  const SeedSequence seeds_m(22);
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    {
      Xoshiro256 rng = seeds_f.make_rng(rep);
      TwoChoicesAsync<CompleteGraph> proto(
          g, assign_two_colors(n, (n * 3) / 4, rng));
      const auto result =
          run_sharded_latency(proto, latency, rng(), 4, 1e5);
      EXPECT_TRUE(result.consensus);
      folded.push_back(result.time);
    }
    {
      Xoshiro256 rng = seeds_m.make_rng(rep);
      TwoChoicesAsyncDelayed proto(g,
                                   assign_two_colors(n, (n * 3) / 4, rng),
                                   QueryDiscipline::kFireAndForget);
      const auto result = run_continuous_messaging(proto, latency, rng, 1e5);
      EXPECT_TRUE(result.consensus);
      messaged.push_back(result.time);
    }
  }
  const Summary sf = summarize(folded);
  const Summary sm = summarize(messaged);
  EXPECT_NEAR(sf.mean, sm.mean,
              sf.ci95_halfwidth + sm.ci95_halfwidth + c + 1.0);
}

TEST(LatencyDriver, BlockingSuppressesTicksWhileQueryInFlight) {
  // Under kBlocking with a latency far beyond the horizon every node
  // posts exactly one query and then stays silent: no answer ever
  // arrives, so no node flips and the support stays exactly the
  // initial split.
  const std::uint64_t n = 64;
  const CompleteGraph g(n);
  const ConstantLatency latency(1e6);
  Xoshiro256 rng(33);
  TwoChoicesAsyncDelayed proto(g, assign_two_colors(n, 40, rng),
                               QueryDiscipline::kBlocking);
  const auto result = run_continuous_messaging(proto, latency, rng, 50.0);
  EXPECT_FALSE(result.consensus);
  EXPECT_EQ(proto.table().support(0), 40u);
  EXPECT_EQ(proto.table().support(1), 24u);
}

TEST(LatencySharded, NonFoldableModelIsRejected) {
  const std::uint64_t n = 64;
  const CompleteGraph g(n);
  Xoshiro256 rng(30);
  TwoChoicesAsync<CompleteGraph> proto(g, assign_equal(n, 2, rng));
  const ExponentialLatency expo(0.5);
  EXPECT_THROW(run_sharded_latency(proto, expo, rng(), 2, 1e3),
               ContractViolation);
}

}  // namespace
}  // namespace plurality
