// Tests for the delayed-response protocols (§4 generalized to latency
// models): delayed Two-Choices / 3-Majority and the delayed
// asynchronous OneExtraBit protocol, all driven by the messaging
// engine's LatencyModel (the protocols no longer sample delays).

#include <gtest/gtest.h>

#include "core/async_one_extra_bit.hpp"
#include "core/delayed.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "rng/seed.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/latency.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

static_assert(MessagingProtocol<AsyncOneExtraBitDelayed<CompleteGraph>>);
static_assert(MessagingProtocol<TwoChoicesAsyncDelayed<CompleteGraph>>);
static_assert(MessagingProtocol<ThreeMajorityAsyncDelayed<CompleteGraph>>);

TEST(DelayedTwoChoices, ConsensusUnderModerateDelays) {
  const std::uint64_t n = 512;
  const CompleteGraph g(n);
  const SeedSequence seeds(1);
  const ExponentialLatency latency(0.5);
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    TwoChoicesAsyncDelayed proto(g, assign_two_colors(n, (n * 3) / 4, rng));
    const auto result = run_continuous_messaging(proto, latency, rng, 1e5);
    ASSERT_TRUE(result.consensus);
    EXPECT_EQ(result.winner, 0u);
  }
}

TEST(DelayedThreeMajority, ConsensusUnderModerateDelays) {
  const std::uint64_t n = 512;
  const CompleteGraph g(n);
  const SeedSequence seeds(2);
  const ExponentialLatency latency(0.5);
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    ThreeMajorityAsyncDelayed proto(g,
                                    assign_two_colors(n, (n * 3) / 4, rng));
    const auto result = run_continuous_messaging(proto, latency, rng, 1e5);
    ASSERT_TRUE(result.consensus);
    EXPECT_EQ(result.winner, 0u);
  }
}

TEST(DelayedTwoChoices, ModelPostWithoutModelIsContractViolation) {
  // A protocol that posts via the delay-less Outbox overload requires a
  // driver constructed with a LatencyModel.
  const std::uint64_t n = 16;
  const CompleteGraph g(n);
  Xoshiro256 rng(2);
  TwoChoicesAsyncDelayed proto(g, assign_equal(n, 2, rng));
  EXPECT_THROW(run_continuous_messaging(proto, rng, 1e3),
               ContractViolation);
}

TEST(DelayedOEB, Theorem13RegimeStillConverges) {
  // Constant-mean delays (mean 0.5 time units < one block) must leave
  // the protocol functional, as §4 conjectures.
  const std::uint64_t n = 4096;
  const CompleteGraph g(n);
  const SeedSequence seeds(3);
  const ExponentialLatency latency(0.5);
  int wins = 0;
  constexpr std::uint64_t kReps = 5;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    Xoshiro256 rng = seeds.make_rng(rep);
    auto proto = AsyncOneExtraBitDelayed<CompleteGraph>::make(
        g, assign_plurality_bias(n, 4, n / 4, rng));
    const auto result = run_continuous_messaging(proto, latency, rng, 1e5);
    ASSERT_TRUE(result.consensus || proto.nodes_finished() == n);
    wins += (result.consensus && result.winner == 0);
  }
  EXPECT_GE(wins, 4) << "plurality should win nearly always";
}

TEST(DelayedOEB, StaleAnswersAreDroppedNotCrashing) {
  // Very slow responses (mean 50 time units ~ an entire phase): most
  // answers are stale and dropped via the phase tag. The run must stay
  // well-defined and terminate (usually via all-finished).
  const std::uint64_t n = 512;
  const CompleteGraph g(n);
  Xoshiro256 rng(4);
  const ExponentialLatency latency(50.0);
  auto proto = AsyncOneExtraBitDelayed<CompleteGraph>::make(
      g, assign_plurality_bias(n, 4, n / 4, rng));
  const auto result = run_continuous_messaging(proto, latency, rng, 2e4);
  EXPECT_TRUE(result.consensus || proto.nodes_finished() == n ||
              result.time >= 2e4 - 1.0);
}

TEST(DelayedOEB, FastDelaysApproachInstantBehavior) {
  // With mean delay 0.01 time units the delayed protocol should behave
  // like the instant-read protocol: compare consensus times loosely.
  const std::uint64_t n = 4096;
  const CompleteGraph g(n);

  Xoshiro256 rng_d(5);
  const ExponentialLatency latency(0.01);
  auto delayed = AsyncOneExtraBitDelayed<CompleteGraph>::make(
      g, assign_plurality_bias(n, 4, n / 4, rng_d));
  const auto delayed_result =
      run_continuous_messaging(delayed, latency, rng_d, 1e5);

  Xoshiro256 rng_i(5);
  auto instant = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_plurality_bias(n, 4, n / 4, rng_i));
  const auto instant_result = run_continuous(instant, rng_i, 1e5);

  ASSERT_TRUE(delayed_result.consensus);
  ASSERT_TRUE(instant_result.consensus);
  EXPECT_EQ(delayed_result.winner, instant_result.winner);
  EXPECT_LT(delayed_result.time, 3.0 * instant_result.time + 50.0);
  EXPECT_LT(instant_result.time, 3.0 * delayed_result.time + 50.0);
}

}  // namespace
}  // namespace plurality
