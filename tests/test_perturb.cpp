// Tests for the perturbation subsystem (sim/perturb.hpp): flag
// parsing/validation contracts, per-kind determinism for a fixed
// (seed, shards) — identical event logs and recovery series across
// reruns, identical event streams across engines for the
// state-independent kinds — churn's degree-preserving rewiring, the
// adversary's budget accounting, the recovery helpers, and a
// sequential-vs-sharded KS/moment gate for crash-by-global-time.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "core/two_choices.hpp"
#include "graph/csr.hpp"
#include "graph/factory.hpp"
#include "opinion/assignment.hpp"
#include "rng/distributions.hpp"
#include "sim/crash.hpp"
#include "sim/perturb.hpp"
#include "sim/sequential_engine.hpp"
#include "sim/sharded_engine.hpp"
#include "stat_gates.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

PerturbSpec make_spec(PerturbKind kind, double rate, std::uint64_t budget,
                      double start = 0.0) {
  PerturbSpec spec;
  spec.kind = kind;
  spec.rate = rate;
  spec.budget = budget;
  spec.start = start;
  return spec;
}

// make_csr_view borrows the AnyGraph's adjacency storage, so the graph
// must stay alive next to the view (vector moves keep their heap
// buffers, so moving the pair is safe).
struct OwnedCsr {
  AnyGraph any;
  CsrTopology csr = CsrTopology::implicit_complete(2);
};

OwnedCsr regular_graph(std::uint64_t n, std::uint32_t degree,
                       std::uint64_t seed) {
  GraphSpec spec;
  spec.kind = GraphKind::kRandomRegular;
  spec.degree = degree;
  Xoshiro256 rng(seed);
  OwnedCsr out{make_graph(spec, n, rng)};
  out.csr = make_csr_view(out.any);
  return out;
}

// --- parsing / validation ------------------------------------------------

TEST(PerturbSpec, ParseRejectsUnknownKindNamingTheFlag) {
  try {
    parse_perturb_kind("bogus");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--perturb=bogus"),
              std::string::npos);
  }
  EXPECT_EQ(parse_perturb_kind("none"), PerturbKind::kNone);
  EXPECT_EQ(parse_perturb_kind("inject"), PerturbKind::kInject);
  EXPECT_EQ(parse_perturb_kind("crash"), PerturbKind::kCrash);
  EXPECT_EQ(parse_perturb_kind("churn"), PerturbKind::kChurn);
  EXPECT_EQ(parse_perturb_kind("adversary"), PerturbKind::kAdversary);
  EXPECT_THROW(parse_perturb_target("middle"), ContractViolation);
}

TEST(PerturbSpec, ValidateNamesTheOffendingFlag) {
  EXPECT_NO_THROW(make_spec(PerturbKind::kInject, 1.0, 0).validate());
  EXPECT_THROW(make_spec(PerturbKind::kInject, 0.0, 0).validate(),
               ContractViolation);
  EXPECT_THROW(make_spec(PerturbKind::kInject, -2.0, 0).validate(),
               ContractViolation);
  EXPECT_THROW(make_spec(PerturbKind::kCrash, 1.0, 4, -1.0).validate(),
               ContractViolation);
  // The adversary requires an explicit corruption budget.
  try {
    make_spec(PerturbKind::kAdversary, 1.0, 0).validate();
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--perturb-budget"),
              std::string::npos);
  }
  auto adv = make_spec(PerturbKind::kAdversary, 1.0, 4);
  adv.interval = 0.0;
  EXPECT_THROW(adv.validate(), ContractViolation);
}

// --- determinism: rerun with the same seed --------------------------------

struct RunTrace {
  std::vector<PerturbEvent> events;
  std::vector<AgreementPoint> agreement;
  double time = 0.0;
};

template <typename Engine>
RunTrace traced_run(const PerturbSpec& spec, const CsrTopology& csr,
                    std::uint64_t seed, Engine&& engine) {
  const std::uint64_t n = csr.num_nodes();
  // Churn rewires in place: give each run its own adjacency copy so
  // reruns start from the pristine graph.
  std::optional<ChurnableCsr> churn;
  const CsrTopology* run_csr = &csr;
  if (spec.kind == PerturbKind::kChurn && !csr.is_implicit_complete()) {
    churn.emplace(csr);
    run_csr = &churn->view();
  }
  Xoshiro256 rng(seed);
  TwoChoicesAsync<CsrTopology> proto(
      *run_csr, assign_two_colors(n, (n * 7) / 10, rng));
  Perturber perturb(spec, n, 2, seed * 1000 + 7, run_csr,
                    churn ? &*churn : nullptr);
  AgreementTrace trace(perturb);
  const auto result = engine(proto, rng, perturb, trace);
  return RunTrace{perturb.events(), trace.points(), result.time};
}

void expect_identical(const RunTrace& a, const RunTrace& b) {
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    EXPECT_EQ(a.events[i].color, b.events[i].color);
  }
  ASSERT_EQ(a.agreement.size(), b.agreement.size());
  for (std::size_t i = 0; i < a.agreement.size(); ++i) {
    EXPECT_EQ(a.agreement[i].time, b.agreement[i].time);
    EXPECT_EQ(a.agreement[i].agreement, b.agreement[i].agreement);
  }
  EXPECT_EQ(a.time, b.time);
}

// Every kind, sequential engine: rerunning with the same seed gives
// the same applied events and the same recovery series, bit for bit.
TEST(PerturbDeterminism, SequentialRerunIsBitIdenticalForEveryKind) {
  const OwnedCsr owned = regular_graph(256, 8, 11);
  const CsrTopology& csr = owned.csr;
  const auto sequential = [](auto& proto, Xoshiro256& rng, Perturber& p,
                             AgreementTrace& trace) {
    return run_sequential(proto, rng, 120.0, trace, 0.5, &p);
  };
  auto adv = make_spec(PerturbKind::kAdversary, 2.0, 12, 1.0);
  adv.interval = 1.0;
  const PerturbSpec specs[] = {
      make_spec(PerturbKind::kInject, 1.0, 16, 2.0),
      make_spec(PerturbKind::kCrash, 1.0, 16, 2.0),
      make_spec(PerturbKind::kChurn, 1.0, 16, 2.0),
      adv,
  };
  for (const PerturbSpec& spec : specs) {
    const RunTrace first = traced_run(spec, csr, 99, sequential);
    const RunTrace second = traced_run(spec, csr, 99, sequential);
    EXPECT_EQ(first.events.size(), spec.budget);
    expect_identical(first, second);
  }
}

// Sharded engine, fixed (seed, shards): rerunning is bit-identical,
// for every kind including the adaptive adversary.
TEST(PerturbDeterminism, ShardedRerunIsBitIdenticalForFixedSeedAndShards) {
  const OwnedCsr owned = regular_graph(256, 8, 12);
  const CsrTopology& csr = owned.csr;
  const auto sharded = [](auto& proto, Xoshiro256& rng, Perturber& p,
                          AgreementTrace& trace) {
    return run_sharded(proto, rng(), 4, 120.0, trace, 0.5, 0.25, false,
                       &p);
  };
  auto adv = make_spec(PerturbKind::kAdversary, 2.0, 12, 1.0);
  adv.interval = 1.0;
  const PerturbSpec specs[] = {
      make_spec(PerturbKind::kInject, 1.0, 16, 2.0),
      make_spec(PerturbKind::kCrash, 1.0, 16, 2.0),
      adv,
  };
  for (const PerturbSpec& spec : specs) {
    const RunTrace first = traced_run(spec, csr, 17, sharded);
    const RunTrace second = traced_run(spec, csr, 17, sharded);
    EXPECT_EQ(first.events.size(), spec.budget);
    expect_identical(first, second);
  }
}

// The Perturber owns its RNG, so the state-independent parts of the
// event stream — times and victims for inject/crash, everything for
// churn — are identical whichever engine drains it, at any shard
// count. (Injected colors are relative to the victim's current color
// and crash logs freeze the trajectory-dependent color, so those
// fields may differ across engines; churn draws an absolute color.)
TEST(PerturbDeterminism, EventStreamIdenticalAcrossEnginesAndShardCounts) {
  const OwnedCsr owned = regular_graph(256, 8, 13);
  const CsrTopology& csr = owned.csr;
  const auto sequential = [](auto& proto, Xoshiro256& rng, Perturber& p,
                             AgreementTrace& trace) {
    return run_sequential(proto, rng, 120.0, trace, 0.5, &p);
  };
  const auto sharded_at = [](unsigned shards) {
    return [shards](auto& proto, Xoshiro256& rng, Perturber& p,
                    AgreementTrace& trace) {
      return run_sharded(proto, rng(), shards, 120.0, trace, 0.5, 0.25,
                         false, &p);
    };
  };
  for (const PerturbKind kind :
       {PerturbKind::kInject, PerturbKind::kCrash, PerturbKind::kChurn}) {
    const PerturbSpec spec = make_spec(kind, 1.5, 20, 2.0);
    const RunTrace seq = traced_run(spec, csr, 21, sequential);
    const RunTrace two = traced_run(spec, csr, 21, sharded_at(2));
    const RunTrace four = traced_run(spec, csr, 21, sharded_at(4));
    ASSERT_EQ(seq.events.size(), spec.budget);
    ASSERT_EQ(two.events.size(), spec.budget);
    ASSERT_EQ(four.events.size(), spec.budget);
    for (std::size_t i = 0; i < spec.budget; ++i) {
      EXPECT_EQ(seq.events[i].time, two.events[i].time);
      EXPECT_EQ(seq.events[i].time, four.events[i].time);
      EXPECT_EQ(seq.events[i].node, two.events[i].node);
      EXPECT_EQ(seq.events[i].node, four.events[i].node);
      if (kind == PerturbKind::kChurn) {
        EXPECT_EQ(seq.events[i].color, two.events[i].color);
        EXPECT_EQ(seq.events[i].color, four.events[i].color);
      }
    }
  }
}

// --- engine integration ---------------------------------------------------

// Perturbations can break consensus after it forms: the engines must
// keep draining until the budget is exhausted, so every scheduled
// event lands even when the protocol reaches transient consensus
// first.
TEST(PerturbEngine, RunsPastTransientConsensusUntilExhausted) {
  const std::uint64_t n = 64;
  const CsrTopology csr = CsrTopology::implicit_complete(n);
  Xoshiro256 rng(31);
  // 63:1 split reaches consensus almost immediately; events arrive
  // far later and must still be applied.
  TwoChoicesAsync<CsrTopology> proto(csr, assign_two_colors(n, n - 1, rng));
  Perturber perturb(make_spec(PerturbKind::kInject, 0.5, 8, 30.0), n, 2,
                    77);
  const auto result = run_sequential(proto, rng, 500.0, NullObserver{},
                                     1.0, &perturb);
  EXPECT_TRUE(perturb.exhausted());
  EXPECT_EQ(perturb.events().size(), 8u);
  EXPECT_GT(result.time, 30.0);
  EXPECT_TRUE(result.consensus);  // re-converged after the last event
}

// Crashed nodes stop ticking (their colors freeze) but stay readable.
TEST(PerturbEngine, CrashByGlobalTimeFreezesVictimColors) {
  const std::uint64_t n = 128;
  const CsrTopology csr = CsrTopology::implicit_complete(n);
  Xoshiro256 rng(32);
  TwoChoicesAsync<CsrTopology> proto(
      csr, assign_two_colors(n, (n * 3) / 4, rng));
  Perturber perturb(make_spec(PerturbKind::kCrash, 2.0, 10, 1.0), n, 2,
                    123);
  run_sequential(proto, rng, 300.0, NullObserver{}, 1.0, &perturb);
  EXPECT_EQ(perturb.crashed_count(), 10u);
  for (const PerturbEvent& event : perturb.events()) {
    EXPECT_EQ(event.kind, PerturbKind::kCrash);
    EXPECT_TRUE(perturb.is_crashed(event.node));
    EXPECT_FALSE(perturb.allows_tick(event.node));
    // The logged color is the frozen one: still held at the end.
    EXPECT_EQ(proto.table().color(event.node), event.color);
  }
  // Live nodes still agree even if dead minority colors are pinned.
  EXPECT_GT(perturb.live_agreement(proto.table()), 0.99);
}

// The perturbation layer refuses protocols it cannot re-color instead
// of silently doing nothing.
TEST(PerturbEngine, ProtocolWithoutMutableTableIsLoudlyRejected) {
  const std::uint64_t n = 32;
  const CompleteGraph g(n);
  Xoshiro256 rng(33);
  CrashAdapter<TwoChoicesAsync<CompleteGraph>> proto(
      TwoChoicesAsync<CompleteGraph>(g, assign_equal(n, 2, rng)),
      std::vector<std::uint64_t>(n, kNeverCrashes));
  Perturber perturb(make_spec(PerturbKind::kInject, 5.0, 4), n, 2, 55);
  EXPECT_THROW(
      run_sequential(proto, rng, 100.0, NullObserver{}, 1.0, &perturb),
      ContractViolation);
}

// --- churn ----------------------------------------------------------------

TEST(ChurnableCsr, RewiringPreservesDegreesAndInvariants) {
  const OwnedCsr owned = regular_graph(128, 6, 41);
  const CsrTopology& source = owned.csr;
  ChurnableCsr churn(source);
  ASSERT_TRUE(churn.check_consistent());
  std::vector<std::uint64_t> degrees(churn.num_nodes());
  for (NodeId u = 0; u < churn.num_nodes(); ++u) {
    degrees[u] = churn.degree(u);
  }
  Xoshiro256 rng(42);
  bool changed = false;
  std::vector<NodeId> before(
      churn.view().neighbors(5).begin(), churn.view().neighbors(5).end());
  for (int i = 0; i < 20; ++i) {
    churn.rewire_node(static_cast<NodeId>(uniform_below(rng, 128)), rng);
  }
  churn.rewire_node(5, rng);
  std::vector<NodeId> after(
      churn.view().neighbors(5).begin(), churn.view().neighbors(5).end());
  changed = before != after;
  EXPECT_TRUE(changed);  // 6 incident swap attempts: rewiring happened
  EXPECT_TRUE(churn.check_consistent());
  for (NodeId u = 0; u < churn.num_nodes(); ++u) {
    EXPECT_EQ(churn.degree(u), degrees[u]);
  }
}

TEST(PerturbChurn, ChurnEventsRewireTheLiveTopology) {
  const OwnedCsr owned = regular_graph(128, 6, 43);
  const CsrTopology& source = owned.csr;
  ChurnableCsr churn(source);
  const std::uint64_t n = churn.num_nodes();
  Xoshiro256 rng(44);
  TwoChoicesAsync<CsrTopology> proto(
      churn.view(), assign_two_colors(n, (n * 3) / 4, rng));
  Perturber perturb(make_spec(PerturbKind::kChurn, 2.0, 24, 1.0), n, 2,
                    321, &churn.view(), &churn);
  run_sequential(proto, rng, 300.0, NullObserver{}, 1.0, &perturb);
  EXPECT_EQ(perturb.events().size(), 24u);
  EXPECT_TRUE(churn.check_consistent());
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(churn.degree(u), 6u);
  }
}

// On the implicit complete view churn degenerates to the color reset
// (K_n is invariant under degree-preserving rewiring) — no
// ChurnableCsr needed, no throw.
TEST(PerturbChurn, ImplicitCompleteNeedsNoChurnableCsr) {
  const std::uint64_t n = 64;
  const CsrTopology csr = CsrTopology::implicit_complete(n);
  Xoshiro256 rng(45);
  TwoChoicesAsync<CsrTopology> proto(
      csr, assign_two_colors(n, (n * 3) / 4, rng));
  Perturber perturb(make_spec(PerturbKind::kChurn, 2.0, 8, 1.0), n, 2,
                    322, &csr);
  run_sequential(proto, rng, 200.0, NullObserver{}, 1.0, &perturb);
  EXPECT_EQ(perturb.events().size(), 8u);
}

// --- adversary ------------------------------------------------------------

TEST(PerturbAdversary, SpendsExactlyTheBudgetOnLeadingColorNodes) {
  const OwnedCsr owned = regular_graph(256, 8, 51);
  const CsrTopology& csr = owned.csr;
  const std::uint64_t n = csr.num_nodes();
  Xoshiro256 rng(52);
  TwoChoicesAsync<CsrTopology> proto(
      csr, assign_two_colors(n, (n * 3) / 5, rng));
  auto spec = make_spec(PerturbKind::kAdversary, 4.0, 20, 2.0);
  spec.interval = 1.0;
  Perturber perturb(spec, n, 2, 53, &csr);
  const auto result = run_sequential(proto, rng, 400.0, NullObserver{},
                                     1.0, &perturb);
  EXPECT_TRUE(perturb.exhausted());
  EXPECT_EQ(perturb.events().size(), 20u);
  for (const PerturbEvent& event : perturb.events()) {
    EXPECT_EQ(event.kind, PerturbKind::kAdversary);
  }
  EXPECT_TRUE(result.consensus);  // pressure ends once the budget is spent
}

// A sweep at transient consensus revives the lowest-indexed other
// color (the RSS move) rather than treating the run as finished.
TEST(PerturbAdversary, RevivesAChallengerAtTransientConsensus) {
  const std::uint64_t n = 64;
  const CsrTopology csr = CsrTopology::implicit_complete(n);
  Xoshiro256 rng(54);
  // Start AT consensus (built by hand: the generators require both
  // colors present); the adversary must still spend its budget.
  Assignment all_zero;
  all_zero.colors.assign(n, 0);
  all_zero.num_colors = 2;
  all_zero.counts = {n, 0};
  TwoChoicesAsync<CsrTopology> proto(csr, std::move(all_zero));
  auto spec = make_spec(PerturbKind::kAdversary, 4.0, 8, 1.0);
  spec.interval = 1.0;
  Perturber perturb(spec, n, 2, 55, &csr);
  run_sequential(proto, rng, 200.0, NullObserver{}, 1.0, &perturb);
  EXPECT_TRUE(perturb.exhausted());
  ASSERT_FALSE(perturb.events().empty());
  EXPECT_EQ(perturb.events().front().color, 1u);  // revived challenger
}

// --- recovery helpers -----------------------------------------------------

TEST(RecoveryHelpers, RecoveryTimesFindFirstThresholdCrossing) {
  const std::vector<AgreementPoint> trace = {
      {0.0, 1.0}, {1.0, 0.8}, {2.0, 0.9}, {3.0, 1.0}, {4.0, 0.7},
      {5.0, 0.95}, {6.0, 1.0}};
  const std::vector<PerturbEvent> events = {
      {0.5, PerturbKind::kInject, 1, 0},
      {3.5, PerturbKind::kInject, 2, 1},
      {5.8, PerturbKind::kInject, 3, 0}};
  const auto rec = recovery_times(events, trace, 1.0);
  ASSERT_EQ(rec.size(), 3u);
  EXPECT_DOUBLE_EQ(rec[0], 2.5);  // recovered at t=3
  EXPECT_DOUBLE_EQ(rec[1], 2.5);  // recovered at t=6
  EXPECT_NEAR(rec[2], 0.2, 1e-12);  // recovered at t=6
  // A threshold the trace never reaches again censors at the end.
  const auto censored = recovery_times(
      {{4.5, PerturbKind::kInject, 1, 0}},
      {{0.0, 1.0}, {4.0, 0.7}, {5.0, 0.8}}, 1.0);
  ASSERT_EQ(censored.size(), 1u);
  EXPECT_DOUBLE_EQ(censored[0], 0.5);
}

TEST(RecoveryHelpers, AgreementAtIsTheLastPointNotAfterT) {
  const std::vector<AgreementPoint> trace = {
      {1.0, 0.5}, {2.0, 0.75}, {4.0, 1.0}};
  EXPECT_DOUBLE_EQ(agreement_at(trace, 0.0), 0.5);   // before: first
  EXPECT_DOUBLE_EQ(agreement_at(trace, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(agreement_at(trace, 3.0), 0.75);
  EXPECT_DOUBLE_EQ(agreement_at(trace, 9.0), 1.0);
}

// --- sequential vs sharded distribution gate ------------------------------

// Crash-by-global-time on the sequential vs the sharded engine: the
// same stochastic process (engines differ in RNG consumption and
// epoch-quantized drains), so the distribution of the
// time-to-full-live-agreement after the last crash must match within
// the usual KS gate, and so must the mean final live agreement.
TEST(PerturbEquivalence, CrashRecoveryDistributionMatchesAcrossEngines) {
  const std::uint64_t n = 512;
  const CsrTopology csr = CsrTopology::implicit_complete(n);
  const PerturbSpec spec = make_spec(PerturbKind::kCrash, 4.0, 24, 2.0);
  const int kReps = 30;

  // Measured from the first sample at/after the event, not from the
  // scheduled event time: the sharded engine applies events at epoch
  // boundaries (documented), so anchoring on each engine's own grid
  // removes that fixed application phase and compares what must match —
  // the healing dynamics after the hit.
  const auto recovery_after_last_crash = [](const RunTrace& run) {
    PC_EXPECTS(!run.events.empty());
    const double last = run.events.back().time;
    double anchor = -1.0;
    for (const AgreementPoint& p : run.agreement) {
      if (p.time < last) continue;
      if (anchor < 0.0) anchor = p.time;
      if (p.agreement >= 1.0) return p.time - anchor;
    }
    PC_EXPECTS(anchor >= 0.0);
    return run.agreement.back().time - anchor;  // censored
  };

  std::vector<double> seq_times, shard_times;
  double seq_agree = 0.0;
  double shard_agree = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto seed = static_cast<std::uint64_t>(900 + rep);
    const RunTrace seq = traced_run(
        spec, csr, seed,
        [](auto& proto, Xoshiro256& rng, Perturber& p,
           AgreementTrace& trace) {
          return run_sequential(proto, rng, 300.0, trace, 0.25, &p);
        });
    const RunTrace shard = traced_run(
        spec, csr, seed,
        [](auto& proto, Xoshiro256& rng, Perturber& p,
           AgreementTrace& trace) {
          return run_sharded(proto, rng(), 4, 300.0, trace, 0.25, 0.25,
                             false, &p);
        });
    seq_times.push_back(recovery_after_last_crash(seq));
    shard_times.push_back(recovery_after_last_crash(shard));
    seq_agree += seq.agreement.back().agreement;
    shard_agree += shard.agreement.back().agreement;
  }
  seq_agree /= kReps;
  shard_agree /= kReps;

  EXPECT_LT(stat_gates::ks_statistic(seq_times, shard_times),
            stat_gates::kKsGate);
  EXPECT_GT(seq_agree, 0.999);
  EXPECT_GT(shard_agree, 0.999);
}

}  // namespace
}  // namespace plurality
